# Standard developer entry points. `make check` is the full tier-2 gate
# (see scripts/check.sh); the other targets are its individual stages.

GO ?= go

.PHONY: all build test lint race check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/delint ./...

# The -short gate under race is deliberate; see scripts/check.sh.
race:
	$(GO) test -race -short ./...

check:
	sh scripts/check.sh
