# Standard developer entry points. `make check` is the full tier-2 gate
# (see scripts/check.sh); the other targets are its individual stages.

GO ?= go

.PHONY: all build test lint race race-runner check bench bench-baseline equiv-gate replay-gate record-corpus serve service-smoke loadtest campaign

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/delint ./...

# The -short gate under race is deliberate; see scripts/check.sh.
race:
	$(GO) test -race -short ./...

# Un-short race pass over the parallel runner, the batched fleet
# executor, and the workers=1-vs-8 determinism sweep — the places a data
# race could corrupt results.
race-runner:
	$(GO) test -race -timeout 1800s ./internal/runner
	$(GO) test -race -timeout 1800s ./internal/fleet
	$(GO) test -race -timeout 1800s -run 'TestParallelDeterminism|TestDeltaForSingleflight|TestReportDeterminism' ./internal/experiments

# Pipeline-equivalence gate: reduced experiment suite vs the committed
# pre-refactor golden snapshot, at workers=1 and N.
equiv-gate:
	sh scripts/equiv_gate.sh

# Replay-determinism gate: the committed recorded mission
# (internal/sim/testdata/attack_mission.trace) must replay to the
# committed golden report byte for byte.
replay-gate:
	bash scripts/replay_gate.sh

# Run the mission service locally (see README "Mission service").
serve:
	$(GO) run ./cmd/delorean-server

# Service smoke gate: boot delorean-server, replay the committed corpus
# mission over HTTP, and diff the streamed report against the golden.
service-smoke:
	bash scripts/service_smoke.sh

# Concurrent-load byte-identity gate: N identical submissions must yield
# byte-identical NDJSON responses, then the server must drain cleanly.
loadtest:
	bash scripts/loadtest.sh

# Campaign smoke gate: the committed tiny grid study must reproduce its
# golden byte for byte — monolithic, sharded+checkpointed on the fleet
# engine, and across a -halt-after interrupt followed by -resume.
campaign:
	bash scripts/campaign_smoke.sh

# Regenerate the committed replay corpus (trace + golden report). A
# deliberate act: rerun and commit the diff when the mission semantics
# intentionally change.
record-corpus:
	sh scripts/record_corpus.sh

check:
	sh scripts/check.sh

# Before/after hot-path benchmark comparison against the pre-campaign
# tree (git worktree), the runner-vs-fleet engine race, the campaign-vs-
# direct overhead race, and the byte-identity checks; writes
# BENCH_PR10.json. See scripts/bench_compare.sh for the BEFORE_REF/
# BENCHTIME/MIN_FLEET_SPEEDUP/MIN_CAMPAIGN_RATIO knobs.
bench:
	bash scripts/bench_compare.sh

# Records wall-clock for `cmd/experiments -exp all` at workers=1 vs
# workers=NumCPU into BENCH_BASELINE.json and verifies the two outputs
# are byte-identical.
bench-baseline:
	sh scripts/bench_baseline.sh
