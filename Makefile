# Standard developer entry points. `make check` is the full tier-2 gate
# (see scripts/check.sh); the other targets are its individual stages.

GO ?= go

.PHONY: all build test lint race race-runner check bench-baseline

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/delint ./...

# The -short gate under race is deliberate; see scripts/check.sh.
race:
	$(GO) test -race -short ./...

# Un-short race pass over the parallel runner and the workers=1-vs-8
# determinism sweep — the two places a data race could corrupt results.
race-runner:
	$(GO) test -race -timeout 1800s ./internal/runner
	$(GO) test -race -timeout 1800s -run 'TestParallelDeterminism|TestDeltaForSingleflight|TestReportDeterminism' ./internal/experiments

check:
	sh scripts/check.sh

# Records wall-clock for `cmd/experiments -exp all` at workers=1 vs
# workers=NumCPU into BENCH_BASELINE.json and verifies the two outputs
# are byte-identical.
bench-baseline:
	sh scripts/bench_baseline.sh
