package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what
// it wrote.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	fn()
	w.Close()
	return <-done
}

// The floatcmp fixture has known findings; against it, every output mode
// must exit 1 and render each finding in its wire form.
const fixture = "../../internal/lint/testdata/floatcmp"

func TestJSONOutput(t *testing.T) {
	var code int
	out := capture(t, func() {
		code = run([]string{"-json", "-only", "floatcmp", fixture})
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	n := 0
	for sc.Scan() {
		var d jsonDiagnostic
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", n+1, err, sc.Text())
		}
		if d.File == "" || d.Line == 0 || d.Analyzer != "floatcmp" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		n++
	}
	if n == 0 {
		t.Error("no JSON findings emitted")
	}
}

func TestGitHubOutput(t *testing.T) {
	var code int
	out := capture(t, func() {
		code = run([]string{"-github", "-only", "floatcmp", fixture})
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("line is not a workflow command: %q", line)
		}
		if !strings.Contains(line, "title=delint floatcmp::") {
			t.Errorf("line missing analyzer title: %q", line)
		}
	}
	if len(lines) == 0 {
		t.Error("no annotations emitted")
	}
}

func TestModeExclusivity(t *testing.T) {
	if code := run([]string{"-json", "-github", fixture}); code != 2 {
		t.Errorf("exit code = %d, want 2 for -json with -github", code)
	}
}

func TestTextOutputStable(t *testing.T) {
	var code int
	out := capture(t, func() {
		code = run([]string{"-only", "floatcmp", fixture})
	})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasSuffix(line, "(floatcmp)") {
			t.Errorf("text line missing analyzer suffix: %q", line)
		}
	}
}
