// Command delint runs DeLorean's project-specific static-analysis suite
// (internal/lint) over the module's packages and exits non-zero on any
// finding. It is the tier-2 gate of scripts/check.sh:
//
//	go run ./cmd/delint ./...
//
// Usage:
//
//	delint [-list] [-only name,name] [packages...]
//
// Packages are directory patterns relative to the working directory
// ("./..." by default). Suppress an intentional violation with
// `//lint:ignore <analyzer> <reason>` on the offending line or the line
// above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("delint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *only != "" {
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			az := lint.AnalyzerByName(strings.TrimSpace(name))
			if az == nil {
				fmt.Fprintf(os.Stderr, "delint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			selected = append(selected, az)
		}
		analyzers = selected
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "delint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "delint: %v\n", err)
		return 2
	}

	// Analyzers are only sound on fully type-checked code.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "delint: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "delint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
