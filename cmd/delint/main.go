// Command delint runs DeLorean's project-specific static-analysis suite
// (internal/lint) over the module's packages and exits non-zero on any
// finding. It is the tier-2 gate of scripts/check.sh:
//
//	go run ./cmd/delint ./...
//
// Usage:
//
//	delint [-list] [-only name,name] [-json] [-github] [packages...]
//
// Packages are directory patterns relative to the working directory
// ("./..." by default). Suppress an intentional violation with
// `//lint:ignore <analyzer> <reason>` on the offending line or the line
// above it.
//
// Output modes: the default is the canonical file:line:col text form;
// -json emits one JSON object per finding on stdout (machine-readable,
// stable field names); -github emits GitHub Actions workflow commands
// (::error file=...) so findings annotate the offending lines in pull
// requests. The modes are mutually exclusive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiagnostic is the stable wire form of one finding for -json mode.
// Field names are part of the CLI contract; tools parse them.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printText renders findings in the canonical file:line:col form.
func printText(diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Println(d.String())
	}
}

// printJSON renders findings as newline-delimited JSON objects.
func printJSON(diags []lint.Diagnostic) error {
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}

// printGitHub renders findings as GitHub Actions error annotations.
// Message text must have newlines and percent signs escaped per the
// workflow-command grammar.
func printGitHub(diags []lint.Diagnostic) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, d := range diags {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=delint %s::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, esc.Replace(d.Message))
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("delint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding on stdout")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *github {
		fmt.Fprintln(os.Stderr, "delint: -json and -github are mutually exclusive")
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if *only != "" {
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			az := lint.AnalyzerByName(strings.TrimSpace(name))
			if az == nil {
				fmt.Fprintf(os.Stderr, "delint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			selected = append(selected, az)
		}
		analyzers = selected
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "delint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "delint: %v\n", err)
		return 2
	}

	// Analyzers are only sound on fully type-checked code.
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "delint: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	switch {
	case *jsonOut:
		if err := printJSON(diags); err != nil {
			fmt.Fprintf(os.Stderr, "delint: %v\n", err)
			return 2
		}
	case *github:
		printGitHub(diags)
	default:
		printText(diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "delint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
