// Command jsonfmt reformats one JSON document between the compact
// NDJSON framing the mission service streams and the indented layout of
// the committed golden reports, preserving every token byte-for-byte
// (json.Compact/json.Indent never re-render numbers or strings). The CI
// service-smoke gate uses it to diff a streamed report line against
// internal/sim/testdata/attack_mission.report.golden.json without
// trusting an external tool's number formatting.
//
// Usage:
//
//	jsonfmt [-indent] < in.json > out.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	indent := flag.Bool("indent", false, "indent with two spaces (default: compact to one line)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *indent); err != nil {
		fmt.Fprintln(os.Stderr, "jsonfmt:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer, indent bool) error {
	in, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	// Indent preserves trailing whitespace from the source; trim it so
	// the output framing is exactly one trailing newline either way.
	in = bytes.TrimSpace(in)
	var buf bytes.Buffer
	if indent {
		err = json.Indent(&buf, in, "", "  ")
	} else {
		err = json.Compact(&buf, in)
	}
	if err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}
