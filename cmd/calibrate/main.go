// Command calibrate derives the per-RV diagnosis thresholds δ (Table 3)
// and checkpoint window sizes (§5.4) from attack-free and stealthy-probe
// missions, printing one Table-3-style block per vehicle profile.
//
// Usage:
//
//	calibrate [-rv Pixhawk] [-missions 15] [-seed 1] [-workers 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiments"
	"repro/internal/vehicle"
)

func main() {
	rv := flag.String("rv", "", "profile to calibrate (default: all)")
	missions := flag.Int("missions", 15, "attack-free calibration missions")
	seed := flag.Int64("seed", 1, "master seed")
	workers := flag.Int("workers", 0, "parallel mission workers (0 = all CPUs)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, *rv, *missions, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, rv string, missions int, seed int64, workers int) error {
	names := vehicle.AllRVs()
	if rv != "" {
		names = []vehicle.ProfileName{vehicle.ProfileName(rv)}
	}
	opt := experiments.Options{Missions: missions, Seed: seed, Wind: 4.5, Workers: workers}
	for _, name := range names {
		p, err := vehicle.LookupProfile(name)
		if err != nil {
			return err
		}
		cal, err := experiments.Calibrate(ctx, p, opt)
		if err != nil {
			return err
		}
		if err := experiments.WriteCalibration(os.Stdout, cal); err != nil {
			return err
		}
		sw, err := experiments.StealthyWindow(ctx, p, experiments.Options{Missions: missions / 2, Seed: seed, Wind: 2, Workers: workers})
		if err != nil {
			return err
		}
		if err := experiments.WriteStealthyWindow(os.Stdout, sw); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
