// Command calibrate derives the per-RV diagnosis thresholds δ (Table 3)
// and checkpoint window sizes (§5.4) from attack-free and stealthy-probe
// missions, printing one Table-3-style block per vehicle profile.
//
// Usage:
//
//	calibrate [-rv Pixhawk] [-missions 15] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/vehicle"
)

func main() {
	rv := flag.String("rv", "", "profile to calibrate (default: all)")
	missions := flag.Int("missions", 15, "attack-free calibration missions")
	seed := flag.Int64("seed", 1, "master seed")
	flag.Parse()

	if err := run(*rv, *missions, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(rv string, missions int, seed int64) error {
	names := vehicle.AllRVs()
	if rv != "" {
		names = []vehicle.ProfileName{vehicle.ProfileName(rv)}
	}
	opt := experiments.Options{Missions: missions, Seed: seed, Wind: 4.5}
	for _, name := range names {
		p, err := vehicle.LookupProfile(name)
		if err != nil {
			return err
		}
		cal := experiments.Calibrate(p, opt)
		if err := experiments.WriteCalibration(os.Stdout, cal); err != nil {
			return err
		}
		sw := experiments.StealthyWindow(p, experiments.Options{Missions: missions / 2, Seed: seed, Wind: 2})
		if err := experiments.WriteStealthyWindow(os.Stdout, sw); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
