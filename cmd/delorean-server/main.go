// Command delorean-server runs DeLorean as a long-lived mission service:
// an HTTP JSON API that accepts mission and experiment requests, runs
// them on a sharded pool, and streams per-mission results plus the final
// versioned run report back as NDJSON. Determinism survives the service
// boundary — the same request body yields byte-identical response bytes
// at any pool size.
//
// Endpoints:
//
//	POST /v1/missions     one mission (inline spec, or trace_b64 replay)
//	POST /v1/experiments  a pre-drawn seed sweep of one spec
//	GET  /healthz         ok / draining
//	GET  /statusz         pool depth, quota, and run counters (JSON)
//
// Overload is shed, never queued unboundedly: submissions that do not
// fit the bounded queue get 429 with Retry-After, tenants over their
// token-bucket quota get 429, and a draining server (SIGTERM received)
// rejects new submissions with 503 while in-flight missions finish.
//
// Usage:
//
//	delorean-server -addr 127.0.0.1:8080 -shards 8 -queue 256 \
//	                -quota-rate 10 -quota-burst 50
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port; the bound address is printed)")
		shards     = flag.Int("shards", 0, "mission pool shards (0 = NumCPU)")
		queue      = flag.Int("queue", 256, "bounded mission queue depth (backpressure beyond it)")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant quota in missions/sec (0 = unlimited)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant quota burst in missions (0 = default 16)")
		maxMiss    = flag.Int("max-missions", 256, "largest experiment sweep one request may ask for")
		drainSec   = flag.Float64("drain-sec", 60, "graceful-drain budget on SIGTERM/SIGINT (seconds)")
	)
	flag.Parse()

	if err := run(*addr, service.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		QuotaRate:   *quotaRate,
		QuotaBurst:  *quotaBurst,
		MaxMissions: *maxMiss,
	}, time.Duration(*drainSec*float64(time.Second))); err != nil {
		fmt.Fprintln(os.Stderr, "delorean-server:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, drainBudget time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := service.New(cfg)
	hs := &http.Server{
		Handler: srv.Handler(),
		// Result streams are long-lived; only bound the header read.
		ReadHeaderTimeout: 10 * time.Second,
	}
	// The machine-readable address line: scripts boot on :0 and parse
	// the actual port from here.
	fmt.Printf("delorean-server listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	// Graceful drain: reject new submissions (healthz flips 503 so load
	// balancers stop routing here), let every accepted mission finish
	// and its response stream complete, then close the listener.
	fmt.Println("delorean-server: draining (in-flight missions finish; new submissions get 503)")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "delorean-server: drain budget exceeded; abandoning in-flight work:", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	fmt.Println("delorean-server: drained, bye")
	return nil
}
