package main

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/service"
)

// testOptions mirrors the flag defaults of main for direct run() tests.
func testOptions() options {
	return options{
		spec: service.MissionSpec{
			RV: "ArduCopter", Defense: "DeLorean", Path: "S",
			AttackStart: 15, AttackDur: 20, Wind: 1, MaxSec: 300, Seed: 1,
		},
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full mission")
	}
	o := testOptions()
	o.spec.Attack = "GPS"
	o.spec.AttackStart, o.spec.AttackDur = 12, 10
	o.spec.Seed = 3
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRecordReplayCLI exercises the full -record → -replay → -report
// loop: the replayed mission's report bytes must reproduce the recorded
// run's exactly.
func TestRecordReplayCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("two full missions")
	}
	dir := t.TempDir()
	rec := testOptions()
	rec.spec.Attack = "GPS,gyroscope"
	rec.spec.AttackStart, rec.spec.AttackDur = 12, 10
	rec.spec.Seed = 7
	rec.spec.MaxSec = 45
	rec.recordPath = dir + "/m.trace"
	rec.reportPath = dir + "/live.json"
	if err := run(rec); err != nil {
		t.Fatalf("record run: %v", err)
	}
	rep := options{replayPath: dir + "/m.trace", reportPath: dir + "/replay.json"}
	if err := run(rep); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	live, err := os.ReadFile(dir + "/live.json")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := os.ReadFile(dir + "/replay.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, replayed) {
		t.Errorf("replayed report differs from live report:\nlive:   %d bytes\nreplay: %d bytes", len(live), len(replayed))
	}
}

// TestRunRejectsBadInputs verifies run() fails on bad specs and flag
// combinations, and that every usage-class failure maps to exit code 2
// while runtime failures (missing files) stay at 1.
func TestRunRejectsBadInputs(t *testing.T) {
	for _, tt := range []struct {
		name     string
		mutate   func(*options)
		wantExit int
	}{
		{"unknown RV", func(o *options) { o.spec.RV = "NoSuchRV" }, 2},
		{"unknown defense", func(o *options) { o.spec.Defense = "wat" }, 2},
		{"unknown path", func(o *options) { o.spec.Path = "X9" }, 2},
		{"unknown sensor", func(o *options) { o.spec.Attack = "lidar" }, 2},
		{"unknown stealthy mode", func(o *options) { o.spec.Attack = "GPS"; o.spec.Stealthy = "loud" }, 2},
		{"record and replay together", func(o *options) { o.recordPath = "a"; o.replayPath = "b" }, 2},
		{"replay of missing file", func(o *options) { o.replayPath = "/nonexistent/x.trace" }, 1},
	} {
		o := testOptions()
		tt.mutate(&o)
		err := run(o)
		if err == nil {
			t.Errorf("%s: expected error", tt.name)
			continue
		}
		if got := exitCode(err); got != tt.wantExit {
			t.Errorf("%s: exitCode(%v) = %d, want %d", tt.name, err, got, tt.wantExit)
		}
	}
}

// TestUsageErrWraps verifies the usage-error helper preserves the wrapped
// cause for errors.Is/As while still classifying as exit code 2.
func TestUsageErrWraps(t *testing.T) {
	cause := errors.New("boom")
	err := usageErr{err: cause}
	if !errors.Is(err, cause) {
		t.Error("usageErr should unwrap to its cause")
	}
	if got := exitCode(usagef("bad flag %q", "-x")); got != 2 {
		t.Errorf("exitCode(usagef(...)) = %d, want 2", got)
	}
	if got := exitCode(errors.New("io failed")); got != 1 {
		t.Errorf("exitCode(runtime error) = %d, want 1", got)
	}
}
