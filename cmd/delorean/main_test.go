package main

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
)

func TestParseStrategy(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Strategy
		wantErr bool
	}{
		{give: "DeLorean", want: core.StrategyDeLorean},
		{give: "delorean", want: core.StrategyDeLorean},
		{give: "LQR-O", want: core.StrategyLQRO},
		{give: "lqro", want: core.StrategyLQRO},
		{give: "none", want: core.StrategyNone},
		{give: "SSR", want: core.StrategySSR},
		{give: "PID-Piper", want: core.StrategyPIDPiper},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseStrategy(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseStrategy(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParsePath(t *testing.T) {
	tests := []struct {
		give    string
		want    mission.PathKind
		wantErr bool
	}{
		{give: "S", want: mission.Straight},
		{give: "mw", want: mission.MultiWaypoint},
		{give: "C", want: mission.Circular},
		{give: "p1", want: mission.Polygon1},
		{give: "P2", want: mission.Polygon2},
		{give: "P3", want: mission.Polygon3},
		{give: "Z", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parsePath(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePath(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parsePath(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("GPS, gyro,accelerometer")
	if err != nil {
		t.Fatal(err)
	}
	want := sensors.NewTypeSet(sensors.GPS, sensors.Gyro, sensors.Accel)
	if !got.Equal(want) {
		t.Errorf("parseTargets = %v, want %v", got, want)
	}
	if _, err := parseTargets("lidar"); err == nil {
		t.Error("expected error for unknown sensor")
	}
}

// testOptions mirrors the flag defaults of main for direct run() tests.
func testOptions() options {
	return options{
		rv: "ArduCopter", defense: "DeLorean", path: "S",
		attackStart: 15, attackDur: 20, windMean: 1, maxSec: 300, seed: 1,
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full mission")
	}
	o := testOptions()
	o.attackList = "GPS"
	o.attackStart, o.attackDur = 12, 10
	o.seed = 3
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRecordReplayCLI exercises the full -record → -replay → -report
// loop: the replayed mission's report bytes must reproduce the recorded
// run's exactly.
func TestRecordReplayCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("two full missions")
	}
	dir := t.TempDir()
	rec := testOptions()
	rec.attackList = "GPS,gyroscope"
	rec.attackStart, rec.attackDur = 12, 10
	rec.seed = 7
	rec.maxSec = 45
	rec.recordPath = dir + "/m.trace"
	rec.reportPath = dir + "/live.json"
	if err := run(rec); err != nil {
		t.Fatalf("record run: %v", err)
	}
	rep := options{replayPath: dir + "/m.trace", reportPath: dir + "/replay.json"}
	if err := run(rep); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	live, err := os.ReadFile(dir + "/live.json")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := os.ReadFile(dir + "/replay.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, replayed) {
		t.Errorf("replayed report differs from live report:\nlive:   %d bytes\nreplay: %d bytes", len(live), len(replayed))
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, tt := range []struct {
		name   string
		mutate func(*options)
	}{
		{"unknown RV", func(o *options) { o.rv = "NoSuchRV" }},
		{"unknown defense", func(o *options) { o.defense = "wat" }},
		{"unknown path", func(o *options) { o.path = "X9" }},
		{"record and replay together", func(o *options) { o.recordPath = "a"; o.replayPath = "b" }},
		{"replay of missing file", func(o *options) { o.replayPath = "/nonexistent/x.trace" }},
	} {
		o := testOptions()
		tt.mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

func TestParseStealthyMode(t *testing.T) {
	tests := []struct {
		give    string
		want    attack.Mode
		wantErr bool
	}{
		{give: "random", want: attack.RandomBias},
		{give: "Gradual", want: attack.Gradual},
		{give: "intermittent", want: attack.Intermittent},
		{give: "persistent", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseStealthyMode(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseStealthyMode(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseStealthyMode(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}
