package main

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
)

func TestParseStrategy(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Strategy
		wantErr bool
	}{
		{give: "DeLorean", want: core.StrategyDeLorean},
		{give: "delorean", want: core.StrategyDeLorean},
		{give: "LQR-O", want: core.StrategyLQRO},
		{give: "lqro", want: core.StrategyLQRO},
		{give: "none", want: core.StrategyNone},
		{give: "SSR", want: core.StrategySSR},
		{give: "PID-Piper", want: core.StrategyPIDPiper},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseStrategy(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseStrategy(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseStrategy(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParsePath(t *testing.T) {
	tests := []struct {
		give    string
		want    mission.PathKind
		wantErr bool
	}{
		{give: "S", want: mission.Straight},
		{give: "mw", want: mission.MultiWaypoint},
		{give: "C", want: mission.Circular},
		{give: "p1", want: mission.Polygon1},
		{give: "P2", want: mission.Polygon2},
		{give: "P3", want: mission.Polygon3},
		{give: "Z", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parsePath(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePath(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parsePath(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("GPS, gyro,accelerometer")
	if err != nil {
		t.Fatal(err)
	}
	want := sensors.NewTypeSet(sensors.GPS, sensors.Gyro, sensors.Accel)
	if !got.Equal(want) {
		t.Errorf("parseTargets = %v, want %v", got, want)
	}
	if _, err := parseTargets("lidar"); err == nil {
		t.Error("expected error for unknown sensor")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full mission")
	}
	if err := run("ArduCopter", "DeLorean", "GPS", 12, 10, "", "S", 1, 3); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("NoSuchRV", "DeLorean", "", 0, 0, "", "S", 0, 1); err == nil {
		t.Error("expected error for unknown RV")
	}
	if err := run("ArduCopter", "wat", "", 0, 0, "", "S", 0, 1); err == nil {
		t.Error("expected error for unknown defense")
	}
	if err := run("ArduCopter", "DeLorean", "", 0, 0, "", "X9", 0, 1); err == nil {
		t.Error("expected error for unknown path")
	}
}

func TestParseStealthyMode(t *testing.T) {
	tests := []struct {
		give    string
		want    attack.Mode
		wantErr bool
	}{
		{give: "random", want: attack.RandomBias},
		{give: "Gradual", want: attack.Gradual},
		{give: "intermittent", want: attack.Intermittent},
		{give: "persistent", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseStealthyMode(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseStealthyMode(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseStealthyMode(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}
