// Command delorean flies one simulated mission with a chosen vehicle,
// defense strategy, and SDA, printing the mission trace and verdict. It
// is the interactive entry point for exploring the framework, and the
// record/replay tool for the sensor-trace regression corpus. The mission
// itself is built through internal/service's MissionSpec — the exact
// wiring the mission server uses — so a mission run here and the same
// mission submitted over HTTP produce byte-identical reports.
//
// Usage:
//
//	delorean -rv ArduCopter -defense DeLorean -attack GPS,accelerometer \
//	         -attack-start 15 -attack-dur 20 -wind 2 -seed 1
//
// Record the mission's sensor stream to a trace file, then replay it —
// the replayed mission (and its -report bytes) reproduce the recorded
// run exactly; all mission parameters are restored from the trace
// header, so -replay needs no other flags:
//
//	delorean -attack GPS -record mission.trace -report live.json
//	delorean -replay mission.trace -report replayed.json
//
// Exit codes are consistent: 2 for usage errors (bad flags, unknown
// names, conflicting modes), 1 for runtime failures (I/O, mission
// errors).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/trace"
)

// options carries the parsed command line: the mission spec plus the
// record/replay/report paths. In replay mode every mission parameter is
// restored from the trace header instead.
type options struct {
	spec                   service.MissionSpec
	recordPath, replayPath string
	reportPath             string
}

func main() {
	var o options
	flag.StringVar(&o.spec.RV, "rv", "ArduCopter", "vehicle profile (Pixhawk, Tarot, Sky-Viper, AionR1, ArduCopter, ArduRover)")
	flag.StringVar(&o.spec.Defense, "defense", "DeLorean", "defense: None, DeLorean, LQR-O, SSR, PID-Piper")
	flag.StringVar(&o.spec.Attack, "attack", "", "comma-separated sensors to attack (GPS, gyroscope, accelerometer, magnetometer, barometer); empty = no attack")
	flag.Float64Var(&o.spec.AttackStart, "attack-start", 15, "attack start time (s)")
	flag.Float64Var(&o.spec.AttackDur, "attack-dur", 20, "attack duration (s)")
	flag.StringVar(&o.spec.Stealthy, "stealthy", "", "stealthy mode: random, gradual, intermittent (empty = persistent full-bias SDA)")
	flag.StringVar(&o.spec.Path, "path", "S", "mission path kind: S, MW, C, P1, P2, P3")
	flag.Float64Var(&o.spec.Wind, "wind", 1, "mean wind (m/s)")
	flag.Int64Var(&o.spec.Seed, "seed", 1, "random seed")
	flag.Float64Var(&o.spec.MaxSec, "max-sec", 300, "mission time budget (simulated seconds)")
	flag.StringVar(&o.recordPath, "record", "", "record the sensor stream to this trace file")
	flag.StringVar(&o.replayPath, "replay", "", "replay a recorded trace (mission parameters come from its header; other flags are ignored)")
	flag.StringVar(&o.reportPath, "report", "", "write the versioned telemetry run report (JSON) to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "delorean:", err)
		os.Exit(exitCode(err))
	}
}

// usageErr marks a command-line usage mistake — as opposed to a runtime
// failure — so main can exit with the conventional usage code. Every
// flag-validation path routes through usagef; spec errors from
// internal/service and config errors from internal/sim are classified as
// usage by exitCode.
type usageErr struct{ err error }

func (e usageErr) Error() string { return e.err.Error() }
func (e usageErr) Unwrap() error { return e.err }

// usagef builds a usage error (exit code 2).
func usagef(format string, args ...any) error {
	return usageErr{err: fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit code: 2 for usage mistakes
// (explicit usagef, invalid spec fields, invalid mission configs), 1 for
// everything else.
func exitCode(err error) int {
	var ue usageErr
	var se *service.SpecError
	var ce *sim.ConfigError
	if errors.As(err, &ue) || errors.As(err, &se) || errors.As(err, &ce) {
		return 2
	}
	return 1
}

func run(o options) error {
	if o.replayPath != "" && o.recordPath != "" {
		return usagef("-record and -replay are mutually exclusive")
	}
	var tr *trace.Trace
	spec := o.spec
	if o.replayPath != "" {
		var err error
		tr, err = trace.ReadFile(o.replayPath)
		if err != nil {
			return err
		}
		// The header replaces every mission parameter; only the output
		// paths stay with the command line.
		spec, err = service.SpecFromHeader(tr.Header)
		if err != nil {
			return fmt.Errorf("%s: %w", o.replayPath, err)
		}
	}

	m, err := spec.Build()
	if err != nil {
		return err
	}
	spec = m.Spec // defaults applied

	// Wire the sensor source. Replay mode substitutes the recorded
	// stream (its injections are baked into the frames, so the live
	// schedule is discarded); record mode tees the simulator source onto
	// the trace format.
	var rec *source.Recorder
	switch {
	case tr != nil:
		m.UseReplay(tr)
		fmt.Printf("replaying %d recorded frames from %s\n", len(tr.Frames), o.replayPath)
	case o.recordPath != "":
		rec = m.Record()
	}
	if m.SDA != nil && tr == nil {
		fmt.Printf("SDA (%s) on %s from t=%.0fs to t=%.0fs\n",
			m.SDA.Mode, spec.Attack, spec.AttackStart, spec.AttackStart+spec.AttackDur)
	}

	res, err := sim.Run(m.Cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s mission (%s) on %s, defense %s, wind %.1f m/s\n\n",
		m.Kind, m.Cfg.Plan.Kind, m.Cfg.Profile.Name, m.Cfg.Strategy, spec.Wind)
	fmt.Println("   t       true position         believed position    state")
	for _, tp := range res.Trace {
		state := "cruise"
		if tp.Recovering {
			state = "RECOVERY"
		} else if tp.AlertActive {
			state = "alert"
		}
		if tp.AttackActive {
			state += " [under attack]"
		}
		fmt.Printf("%6.1fs  (%7.1f %7.1f %5.1f)  (%7.1f %7.1f %5.1f)  %s\n",
			tp.T, tp.Truth.X, tp.Truth.Y, tp.Truth.Z,
			tp.Believed.X, tp.Believed.Y, tp.Believed.Z, state)
	}
	fmt.Println()
	verdict := "SUCCESS"
	switch {
	case res.Crashed:
		verdict = fmt.Sprintf("CRASHED (%s at t=%.1fs)", res.CrashReason, res.CrashTime)
	case res.Stalled:
		verdict = "STALLED"
	case !res.Success:
		verdict = "FAILED (landed off target)"
	}
	fmt.Printf("verdict: %s — duration %.1fs, final distance from destination %.2fm\n",
		verdict, res.Duration, res.FinalDistance)
	if res.DiagnosisRanDuringAttack {
		fmt.Printf("diagnosis during attack: %v (%d recovery activation(s))\n",
			res.DiagnosedDuringAttack, res.RecoveryActivations)
	}

	if rec != nil {
		if err := trace.WriteFile(o.recordPath, rec.Trace(spec.HeaderMeta())); err != nil {
			return err
		}
		fmt.Printf("recorded %d frames to %s\n", res.Ticks, o.recordPath)
	}
	if o.reportPath != "" {
		if err := writeReport(o.reportPath, spec, res); err != nil {
			return err
		}
	}
	return nil
}

// writeReport renders the single-mission run report through the same
// service helper the mission server streams from, so the -report bytes
// of a recorded mission, its replay, and its HTTP submission all match.
func writeReport(path string, spec service.MissionSpec, res sim.Result) error {
	rep, err := service.MissionReport(spec, res.Telemetry)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the interesting one
		return err
	}
	return f.Close()
}
