// Command delorean flies one simulated mission with a chosen vehicle,
// defense strategy, and SDA, printing the mission trace and verdict. It
// is the interactive entry point for exploring the framework.
//
// Usage:
//
//	delorean -rv ArduCopter -defense DeLorean -attack GPS,accelerometer \
//	         -attack-start 15 -attack-dur 20 -wind 2 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func main() {
	rv := flag.String("rv", "ArduCopter", "vehicle profile (Pixhawk, Tarot, Sky-Viper, AionR1, ArduCopter, ArduRover)")
	defense := flag.String("defense", "DeLorean", "defense: None, DeLorean, LQR-O, SSR, PID-Piper")
	attackList := flag.String("attack", "", "comma-separated sensors to attack (GPS, gyroscope, accelerometer, magnetometer, barometer); empty = no attack")
	attackStart := flag.Float64("attack-start", 15, "attack start time (s)")
	attackDur := flag.Float64("attack-dur", 20, "attack duration (s)")
	stealthy := flag.String("stealthy", "", "stealthy mode: random, gradual, intermittent (empty = persistent full-bias SDA)")
	path := flag.String("path", "S", "mission path kind: S, MW, C, P1, P2, P3")
	windMean := flag.Float64("wind", 1, "mean wind (m/s)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*rv, *defense, *attackList, *attackStart, *attackDur, *stealthy, *path, *windMean, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "delorean:", err)
		os.Exit(1)
	}
}

func run(rv, defense, attackList string, attackStart, attackDur float64, stealthy, path string, windMean float64, seed int64) error {
	profile, err := vehicle.LookupProfile(vehicle.ProfileName(rv))
	if err != nil {
		return err
	}
	strategy, err := parseStrategy(defense)
	if err != nil {
		return err
	}
	kind, err := parsePath(path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	plan := mission.NewOfKind(kind, profile.CruiseAltitude, rng)

	cfg := sim.Config{
		Profile:    profile,
		Plan:       plan,
		Strategy:   strategy,
		WindowSec:  15,
		WindMean:   windMean,
		WindGust:   0.5,
		Seed:       rng.Int63(),
		MaxSec:     300,
		TraceEvery: 100,
	}
	if attackList != "" {
		targets, err := parseTargets(attackList)
		if err != nil {
			return err
		}
		var sda *attack.SDA
		if stealthy == "" {
			sda = attack.New(rng, attack.DefaultParams(), targets, attackStart, attackStart+attackDur)
		} else {
			mode, err := parseStealthyMode(stealthy)
			if err != nil {
				return err
			}
			// Stealthy attacks inject sub-threshold bias: a tenth of the
			// Table 2 magnitudes.
			base := attack.New(rng, attack.DefaultParams(), targets, attackStart, attackStart+attackDur)
			sda = attack.NewWithBias(rng, base.Base().Scale(0.1), attackStart, attackStart+attackDur, mode)
		}
		cfg.Attacks = attack.NewSchedule(sda)
		fmt.Printf("SDA (%s) on %v from t=%.0fs to t=%.0fs\n", sda.Mode, targets, attackStart, attackStart+attackDur)
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s mission (%s) on %s, defense %s, wind %.1f m/s\n\n",
		kind, plan.Kind, profile.Name, strategy, windMean)
	fmt.Println("   t       true position         believed position    state")
	for _, tp := range res.Trace {
		state := "cruise"
		if tp.Recovering {
			state = "RECOVERY"
		} else if tp.AlertActive {
			state = "alert"
		}
		if tp.AttackActive {
			state += " [under attack]"
		}
		fmt.Printf("%6.1fs  (%7.1f %7.1f %5.1f)  (%7.1f %7.1f %5.1f)  %s\n",
			tp.T, tp.Truth.X, tp.Truth.Y, tp.Truth.Z,
			tp.Believed.X, tp.Believed.Y, tp.Believed.Z, state)
	}
	fmt.Println()
	verdict := "SUCCESS"
	switch {
	case res.Crashed:
		verdict = fmt.Sprintf("CRASHED (%s at t=%.1fs)", res.CrashReason, res.CrashTime)
	case res.Stalled:
		verdict = "STALLED"
	case !res.Success:
		verdict = "FAILED (landed off target)"
	}
	fmt.Printf("verdict: %s — duration %.1fs, final distance from destination %.2fm\n",
		verdict, res.Duration, res.FinalDistance)
	if res.DiagnosisRanDuringAttack {
		fmt.Printf("diagnosis during attack: %v (%d recovery activation(s))\n",
			res.DiagnosedDuringAttack, res.RecoveryActivations)
	}
	return nil
}

func parseStrategy(s string) (core.Strategy, error) {
	strategy, ok := core.StrategyByName(s)
	if !ok {
		return 0, fmt.Errorf("unknown defense %q", s)
	}
	return strategy, nil
}

func parsePath(s string) (mission.PathKind, error) {
	switch strings.ToUpper(s) {
	case "S":
		return mission.Straight, nil
	case "MW":
		return mission.MultiWaypoint, nil
	case "C":
		return mission.Circular, nil
	case "P1":
		return mission.Polygon1, nil
	case "P2":
		return mission.Polygon2, nil
	case "P3":
		return mission.Polygon3, nil
	default:
		return 0, fmt.Errorf("unknown path kind %q", s)
	}
}

func parseStealthyMode(s string) (attack.Mode, error) {
	switch strings.ToLower(s) {
	case "random":
		return attack.RandomBias, nil
	case "gradual":
		return attack.Gradual, nil
	case "intermittent":
		return attack.Intermittent, nil
	default:
		return 0, fmt.Errorf("unknown stealthy mode %q", s)
	}
}

func parseTargets(s string) (sensors.TypeSet, error) {
	out := sensors.NewTypeSet()
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "gps":
			out.Add(sensors.GPS)
		case "gyro", "gyroscope":
			out.Add(sensors.Gyro)
		case "accel", "accelerometer":
			out.Add(sensors.Accel)
		case "mag", "magnetometer":
			out.Add(sensors.Mag)
		case "baro", "barometer":
			out.Add(sensors.Baro)
		default:
			return nil, fmt.Errorf("unknown sensor %q", name)
		}
	}
	return out, nil
}
