// Command delorean flies one simulated mission with a chosen vehicle,
// defense strategy, and SDA, printing the mission trace and verdict. It
// is the interactive entry point for exploring the framework, and the
// record/replay tool for the sensor-trace regression corpus.
//
// Usage:
//
//	delorean -rv ArduCopter -defense DeLorean -attack GPS,accelerometer \
//	         -attack-start 15 -attack-dur 20 -wind 2 -seed 1
//
// Record the mission's sensor stream to a trace file, then replay it —
// the replayed mission (and its -report bytes) reproduce the recorded
// run exactly; all mission parameters are restored from the trace
// header, so -replay needs no other flags:
//
//	delorean -attack GPS -record mission.trace -report live.json
//	delorean -replay mission.trace -report replayed.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

// options carries the parsed command line. In replay mode every mission
// parameter is restored from the trace header instead.
type options struct {
	rv, defense, path      string
	attackList, stealthy   string
	attackStart            float64
	attackDur              float64
	windMean               float64
	maxSec                 float64
	seed                   int64
	recordPath, replayPath string
	reportPath             string
}

func main() {
	var o options
	flag.StringVar(&o.rv, "rv", "ArduCopter", "vehicle profile (Pixhawk, Tarot, Sky-Viper, AionR1, ArduCopter, ArduRover)")
	flag.StringVar(&o.defense, "defense", "DeLorean", "defense: None, DeLorean, LQR-O, SSR, PID-Piper")
	flag.StringVar(&o.attackList, "attack", "", "comma-separated sensors to attack (GPS, gyroscope, accelerometer, magnetometer, barometer); empty = no attack")
	flag.Float64Var(&o.attackStart, "attack-start", 15, "attack start time (s)")
	flag.Float64Var(&o.attackDur, "attack-dur", 20, "attack duration (s)")
	flag.StringVar(&o.stealthy, "stealthy", "", "stealthy mode: random, gradual, intermittent (empty = persistent full-bias SDA)")
	flag.StringVar(&o.path, "path", "S", "mission path kind: S, MW, C, P1, P2, P3")
	flag.Float64Var(&o.windMean, "wind", 1, "mean wind (m/s)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed")
	flag.Float64Var(&o.maxSec, "max-sec", 300, "mission time budget (simulated seconds)")
	flag.StringVar(&o.recordPath, "record", "", "record the sensor stream to this trace file")
	flag.StringVar(&o.replayPath, "replay", "", "replay a recorded trace (mission parameters come from its header; other flags are ignored)")
	flag.StringVar(&o.reportPath, "report", "", "write the versioned telemetry run report (JSON) to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "delorean:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.replayPath != "" && o.recordPath != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive")
	}
	var tr *trace.Trace
	if o.replayPath != "" {
		var err error
		tr, err = trace.ReadFile(o.replayPath)
		if err != nil {
			return err
		}
		ho, err := optionsFromHeader(tr.Header)
		if err != nil {
			return fmt.Errorf("%s: %w", o.replayPath, err)
		}
		// The header replaces every mission parameter; only the output
		// paths stay with the command line.
		ho.replayPath, ho.reportPath = o.replayPath, o.reportPath
		o = ho
	}

	profile, err := vehicle.LookupProfile(vehicle.ProfileName(o.rv))
	if err != nil {
		return err
	}
	strategy, err := parseStrategy(o.defense)
	if err != nil {
		return err
	}
	kind, err := parsePath(o.path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(o.seed))
	plan := mission.NewOfKind(kind, profile.CruiseAltitude, rng)

	cfg := sim.Config{
		Profile:    profile,
		Plan:       plan,
		Strategy:   strategy,
		WindowSec:  15,
		WindMean:   o.windMean,
		WindGust:   0.5,
		Seed:       rng.Int63(),
		MaxSec:     o.maxSec,
		TraceEvery: 100,
	}
	var sched *attack.Schedule
	if o.attackList != "" {
		targets, err := parseTargets(o.attackList)
		if err != nil {
			return err
		}
		var sda *attack.SDA
		if o.stealthy == "" {
			sda = attack.New(rng, attack.DefaultParams(), targets, o.attackStart, o.attackStart+o.attackDur)
		} else {
			mode, err := parseStealthyMode(o.stealthy)
			if err != nil {
				return err
			}
			// Stealthy attacks inject sub-threshold bias: a tenth of the
			// Table 2 magnitudes.
			base := attack.New(rng, attack.DefaultParams(), targets, o.attackStart, o.attackStart+o.attackDur)
			sda = attack.NewWithBias(rng, base.Base().Scale(0.1), o.attackStart, o.attackStart+o.attackDur, mode)
		}
		sched = attack.NewSchedule(sda)
		if tr == nil {
			fmt.Printf("SDA (%s) on %v from t=%.0fs to t=%.0fs\n", sda.Mode, targets, o.attackStart, o.attackStart+o.attackDur)
		}
	}

	// Wire the sensor source. Replay mode substitutes the recorded
	// stream (its injections are baked into the frames, so the live
	// schedule is discarded); record mode tees the simulator source onto
	// the trace format.
	var rec *source.Recorder
	switch {
	case tr != nil:
		cfg.Source = source.NewReplay(tr)
		fmt.Printf("replaying %d recorded frames from %s\n", len(tr.Frames), o.replayPath)
	case o.recordPath != "":
		rec = source.NewRecorder(sim.NewSimSource(sim.SourceConfig{
			Profile: profile,
			Seed:    cfg.Seed,
			Attacks: sched,
		}))
		cfg.Source = rec
	default:
		cfg.Attacks = sched
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s mission (%s) on %s, defense %s, wind %.1f m/s\n\n",
		kind, plan.Kind, profile.Name, strategy, o.windMean)
	fmt.Println("   t       true position         believed position    state")
	for _, tp := range res.Trace {
		state := "cruise"
		if tp.Recovering {
			state = "RECOVERY"
		} else if tp.AlertActive {
			state = "alert"
		}
		if tp.AttackActive {
			state += " [under attack]"
		}
		fmt.Printf("%6.1fs  (%7.1f %7.1f %5.1f)  (%7.1f %7.1f %5.1f)  %s\n",
			tp.T, tp.Truth.X, tp.Truth.Y, tp.Truth.Z,
			tp.Believed.X, tp.Believed.Y, tp.Believed.Z, state)
	}
	fmt.Println()
	verdict := "SUCCESS"
	switch {
	case res.Crashed:
		verdict = fmt.Sprintf("CRASHED (%s at t=%.1fs)", res.CrashReason, res.CrashTime)
	case res.Stalled:
		verdict = "STALLED"
	case !res.Success:
		verdict = "FAILED (landed off target)"
	}
	fmt.Printf("verdict: %s — duration %.1fs, final distance from destination %.2fm\n",
		verdict, res.Duration, res.FinalDistance)
	if res.DiagnosisRanDuringAttack {
		fmt.Printf("diagnosis during attack: %v (%d recovery activation(s))\n",
			res.DiagnosedDuringAttack, res.RecoveryActivations)
	}

	if rec != nil {
		if err := trace.WriteFile(o.recordPath, rec.Trace(headerMeta(o))); err != nil {
			return err
		}
		fmt.Printf("recorded %d frames to %s\n", res.Ticks, o.recordPath)
	}
	if o.reportPath != "" {
		if err := writeReport(o, res.Telemetry); err != nil {
			return err
		}
	}
	return nil
}

// writeReport renders the single-mission run report. The bytes are a
// pure function of the mission telemetry and the (seed, wind) meta, so a
// replayed mission's report is byte-identical to the recording run's.
func writeReport(o options, m *telemetry.Mission) error {
	col := telemetry.NewCollector()
	col.Begin("delorean")
	col.Add(m)
	rep, err := col.Report(telemetry.Meta{Generator: "delorean", Missions: 1, Seed: o.seed, Wind: o.windMean})
	if err != nil {
		return err
	}
	f, err := os.Create(o.reportPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the interesting one
		return err
	}
	return f.Close()
}

// headerMeta stamps the full mission parameterization into the trace
// header (an ordered list, never a map) so -replay can reconstruct the
// run with no other flags.
func headerMeta(o options) []trace.MetaEntry {
	return []trace.MetaEntry{
		{Key: "generator", Value: "delorean"},
		{Key: "rv", Value: o.rv},
		{Key: "defense", Value: o.defense},
		{Key: "path", Value: o.path},
		{Key: "attack", Value: o.attackList},
		{Key: "attack-start", Value: formatFloat(o.attackStart)},
		{Key: "attack-dur", Value: formatFloat(o.attackDur)},
		{Key: "stealthy", Value: o.stealthy},
		{Key: "wind", Value: formatFloat(o.windMean)},
		{Key: "seed", Value: strconv.FormatInt(o.seed, 10)},
		{Key: "max-sec", Value: formatFloat(o.maxSec)},
	}
}

// optionsFromHeader reconstructs the recording run's options from the
// trace header. The attack fields ride along for provenance display, but
// the replayed mission never rebuilds the schedule — the injections are
// baked into the frames.
func optionsFromHeader(h trace.Header) (options, error) {
	var o options
	var err error
	str := func(key string) string {
		v, _ := h.MetaValue(key)
		return v
	}
	num := func(key string) float64 {
		v, ok := h.MetaValue(key)
		if !ok {
			return 0
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("trace header %s=%q: %w", key, v, perr)
		}
		return f
	}
	o.rv = str("rv")
	o.defense = str("defense")
	o.path = str("path")
	o.attackList = str("attack")
	o.stealthy = str("stealthy")
	o.attackStart = num("attack-start")
	o.attackDur = num("attack-dur")
	o.windMean = num("wind")
	o.maxSec = num("max-sec")
	if v, ok := h.MetaValue("seed"); ok {
		s, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("trace header seed=%q: %w", v, perr)
		}
		o.seed = s
	}
	if o.rv == "" || o.defense == "" || o.path == "" {
		return o, fmt.Errorf("trace header is missing the delorean mission parameters (rv/defense/path)")
	}
	return o, err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseStrategy(s string) (core.Strategy, error) {
	strategy, ok := core.StrategyByName(s)
	if !ok {
		return 0, fmt.Errorf("unknown defense %q", s)
	}
	return strategy, nil
}

func parsePath(s string) (mission.PathKind, error) {
	switch strings.ToUpper(s) {
	case "S":
		return mission.Straight, nil
	case "MW":
		return mission.MultiWaypoint, nil
	case "C":
		return mission.Circular, nil
	case "P1":
		return mission.Polygon1, nil
	case "P2":
		return mission.Polygon2, nil
	case "P3":
		return mission.Polygon3, nil
	default:
		return 0, fmt.Errorf("unknown path kind %q", s)
	}
}

func parseStealthyMode(s string) (attack.Mode, error) {
	switch strings.ToLower(s) {
	case "random":
		return attack.RandomBias, nil
	case "gradual":
		return attack.Gradual, nil
	case "intermittent":
		return attack.Intermittent, nil
	default:
		return 0, fmt.Errorf("unknown stealthy mode %q", s)
	}
}

func parseTargets(s string) (sensors.TypeSet, error) {
	out := sensors.NewTypeSet()
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "gps":
			out.Add(sensors.GPS)
		case "gyro", "gyroscope":
			out.Add(sensors.Gyro)
		case "accel", "accelerometer":
			out.Add(sensors.Accel)
		case "mag", "magnetometer":
			out.Add(sensors.Mag)
		case "baro", "barometer":
			out.Add(sensors.Baro)
		default:
			return nil, fmt.Errorf("unknown sensor %q", name)
		}
	}
	return out, nil
}
