package main

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// opts builds an options value as flag.Parse would have: each mutation
// marks its flag seen.
func opts(muts ...func(*options)) options {
	o := options{
		exp: "all", missions: 25, seed: 1, windCap: 3, shards: 1,
		flagsSeen: make(map[string]bool),
	}
	for _, m := range muts {
		m(&o)
	}
	return o
}

func seen(name string) func(*options) {
	return func(o *options) { o.flagsSeen[name] = true }
}

// TestValidateExitCodes drives every inter-flag rule and value check
// through validate and pins the process exit code each combination
// produces — 0 for accepted, 2 for usage errors.
func TestValidateExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		o        options
		wantExit int
		wantMsg  string
	}{
		{"defaults", opts(), 0, ""},
		{"fleet alone", opts(func(o *options) { o.fleet = true }, seen("fleet")), 0, ""},
		{"batch with fleet", opts(func(o *options) { o.fleet = true; o.batch = 64 }, seen("fleet"), seen("batch")), 0, ""},
		{"batch without fleet", opts(func(o *options) { o.batch = 64 }, seen("batch")), 2, "-batch requires -fleet"},
		{"batch with fleet=false", opts(func(o *options) { o.fleet = false; o.batch = 64 }, seen("fleet"), seen("batch")), 2, "-batch requires -fleet"},
		{"negative batch", opts(func(o *options) { o.fleet = true; o.batch = -1 }, seen("fleet"), seen("batch")), 2, "non-negative"},
		{"campaign alone", opts(func(o *options) { o.campaign = "spec.json" }, seen("campaign")), 0, ""},
		{"campaign with fleet", opts(func(o *options) { o.campaign = "spec.json"; o.fleet = true }, seen("campaign"), seen("fleet")), 0, ""},
		{"campaign with checkpoint and resume", opts(func(o *options) {
			o.campaign = "spec.json"
			o.checkpoint = "ckpt"
			o.resume = true
		}, seen("campaign"), seen("checkpoint"), seen("resume")), 0, ""},
		{"shards without campaign", opts(func(o *options) { o.shards = 4 }, seen("shards")), 2, "-shards requires -campaign"},
		{"checkpoint without campaign", opts(func(o *options) { o.checkpoint = "ckpt" }, seen("checkpoint")), 2, "-checkpoint requires -campaign"},
		{"resume without checkpoint", opts(func(o *options) {
			o.campaign = "spec.json"
			o.resume = true
		}, seen("campaign"), seen("resume")), 2, "-resume requires -checkpoint"},
		{"halt-after without checkpoint", opts(func(o *options) {
			o.campaign = "spec.json"
			o.haltAfter = 2
		}, seen("campaign"), seen("halt-after")), 2, "-halt-after requires -checkpoint"},
		{"campaign with exp", opts(func(o *options) { o.campaign = "spec.json"; o.exp = "table2" }, seen("campaign"), seen("exp")), 2, "-campaign conflicts with -exp"},
		{"campaign with missions", opts(func(o *options) { o.campaign = "spec.json"; o.missions = 100 }, seen("campaign"), seen("missions")), 2, "-campaign conflicts with -missions"},
		{"campaign with seed", opts(func(o *options) { o.campaign = "spec.json"; o.seed = 7 }, seen("campaign"), seen("seed")), 2, "-campaign conflicts with -seed"},
		{"campaign with report", opts(func(o *options) { o.campaign = "spec.json"; o.report = "r.json" }, seen("campaign"), seen("report")), 2, "-campaign conflicts with -report"},
		{"zero shards", opts(func(o *options) { o.campaign = "spec.json"; o.shards = 0 }, seen("campaign"), seen("shards")), 2, "at least 1"},
		{"zero halt-after", opts(func(o *options) {
			o.campaign = "spec.json"
			o.checkpoint = "ckpt"
			o.haltAfter = 0
		}, seen("campaign"), seen("checkpoint"), seen("halt-after")), 2, "at least 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.validate()
			if tc.wantExit == 0 {
				if err != nil {
					t.Fatalf("validate() = %v, want accepted", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted, want exit %d", tc.wantExit)
			}
			if got := exitCode(err); got != tc.wantExit {
				t.Errorf("exitCode(%v) = %d, want %d", err, got, tc.wantExit)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q missing %q", err, tc.wantMsg)
			}
		})
	}
}

// TestExitCodeHalted: a campaign stopped by -halt-after exits 3 so
// scripts can distinguish "checkpointed and paused" from failure.
func TestExitCodeHalted(t *testing.T) {
	if got := exitCode(campaign.ErrHalted); got != 3 {
		t.Errorf("exitCode(ErrHalted) = %d, want 3", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("exitCode(runtime error) = %d, want 1", got)
	}
}
