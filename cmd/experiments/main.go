// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Each experiment is selectable; "all" runs the full
// evaluation and emits the markdown recorded in EXPERIMENTS.md.
//
// Missions fan out across a deterministic parallel worker pool
// (internal/runner): -workers changes wall-clock time only, never the
// rendered output. -report additionally writes the versioned
// machine-readable run report (internal/telemetry): detection-latency
// distributions, diagnosis precision/recall inputs, recovery RMSD,
// per-stage cost-model totals, and one event trace per experiment —
// byte-identical at any -workers setting.
//
// -fleet swaps the per-goroutine runner for the batched fleet executor
// (internal/fleet): missions are partitioned into profile-homogeneous
// batches stepped in lockstep over shared per-(profile, dt) caches.
// Output stays byte-identical; missions/sec/core improves. -batch tunes
// the lockstep width and requires -fleet (usage errors exit 2).
//
// Usage:
//
//	experiments -exp all -missions 25 -seed 1 [-workers 0] [-fleet [-batch 64]] [-out EXPERIMENTS.md] [-report report.json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// options carries the parsed command line into run.
type options struct {
	exp       string
	missions  int
	seed      int64
	windCap   float64
	workers   int
	out       string
	report    string
	progress  bool
	fleet     bool
	batch     int
	flagsSeen map[string]bool
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, "+strings.Join(experiments.Names(), ", ")+", fig8a")
	missions := flag.Int("missions", 25, "missions per condition (paper: 100)")
	seed := flag.Int64("seed", 1, "master seed")
	windCap := flag.Float64("wind", 3, "mission wind cap in m/s")
	workers := flag.Int("workers", 0, "parallel mission workers (0 = all CPUs); output is identical at any setting")
	out := flag.String("out", "", "output file (default stdout)")
	report := flag.String("report", "", "write the machine-readable run report (JSON) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")
	progress := flag.Bool("progress", false, "report per-sweep mission completion on stderr")
	fleetFlag := flag.Bool("fleet", false, "execute missions on the batched fleet executor (lockstep batches over shared per-profile caches); output is identical, throughput is not")
	batch := flag.Int("batch", 0, "fleet lockstep batch size (0 = default); requires -fleet")
	flag.Parse()

	o := options{
		exp: *exp, missions: *missions, seed: *seed, windCap: *windCap,
		workers: *workers, out: *out, report: *report, progress: *progress,
		fleet: *fleetFlag, batch: *batch,
		flagsSeen: make(map[string]bool),
	}
	flag.Visit(func(f *flag.Flag) { o.flagsSeen[f.Name] = true })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(exitCode(err))
	}
}

// usageErr marks a command-line usage mistake — as opposed to a runtime
// failure — so main can exit with the conventional usage code, mirroring
// cmd/delorean's convention.
type usageErr struct{ err error }

func (e usageErr) Error() string { return e.err.Error() }
func (e usageErr) Unwrap() error { return e.err }

// usagef builds a usage error (exit code 2).
func usagef(format string, args ...any) error {
	return usageErr{err: fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit code: 2 for usage mistakes
// (explicit usagef, invalid mission configs), 1 for everything else.
func exitCode(err error) int {
	var ue usageErr
	var ce *sim.ConfigError
	if errors.As(err, &ue) || errors.As(err, &ce) {
		return 2
	}
	return 1
}

// validate rejects flag combinations the selected execution engine does
// not support.
func (o options) validate() error {
	if o.flagsSeen["batch"] && !o.fleet {
		return usagef("-batch only applies to the fleet executor; pass -fleet")
	}
	if o.batch < 0 {
		return usagef("-batch must be non-negative, got %d", o.batch)
	}
	return nil
}

// servePprof exposes the standard pprof endpoints for profiling a run.
// Diagnostics only — it never touches experiment output or the report.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
	}
}

func run(ctx context.Context, o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opt := experiments.Options{
		Missions: o.missions, Seed: o.seed, Wind: o.windCap, Workers: o.workers,
		Fleet: o.fleet, BatchSize: o.batch,
	}
	if o.progress {
		opt.Progress = func(completed, total int) {
			if completed == total || completed%10 == 0 {
				fmt.Fprintf(os.Stderr, "  sweep %d/%d\r", completed, total)
			}
		}
	}
	if o.report != "" {
		opt.Collector = telemetry.NewCollector()
	}

	runErr := runExperiments(ctx, o.exp, w, opt)
	if runErr != nil {
		return runErr
	}
	if o.report == "" {
		return nil
	}
	return writeReport(o.report, opt.Collector, telemetry.Meta{
		Generator: "cmd/experiments",
		Missions:  o.missions,
		Seed:      o.seed,
		Wind:      o.windCap,
	})
}

// runExperiments dispatches the selected experiment(s).
func runExperiments(ctx context.Context, exp string, w io.Writer, opt experiments.Options) error {
	if exp != "all" {
		e, ok := experiments.Get(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: all, %s)", exp, strings.Join(experiments.Names(), ", "))
		}
		return timed(ctx, e, w, opt)
	}
	for _, e := range experiments.All() {
		if err := timed(ctx, e, w, opt); err != nil {
			return err
		}
	}
	return nil
}

// writeReport assembles and writes the versioned run report.
func writeReport(path string, col *telemetry.Collector, meta telemetry.Meta) error {
	rep, err := col.Report(meta)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timed runs one experiment with a stderr progress line. The timing lines
// go to stderr precisely so the -out artifact stays byte-identical across
// runs and worker counts.
func timed(ctx context.Context, e experiments.Experiment, w io.Writer, opt experiments.Options) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %s (missions=%d seed=%d workers=%d)...\n", e.Name(), opt.Missions, opt.Seed, opt.Workers)
	if err := e.Run(ctx, w, opt); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s done in %s\n", e.Name(), time.Since(start).Round(time.Second))
	return nil
}
