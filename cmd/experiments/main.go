// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Each experiment is selectable; "all" runs the full
// evaluation and emits the markdown recorded in EXPERIMENTS.md.
//
// Missions fan out across a deterministic parallel worker pool
// (internal/runner): -workers changes wall-clock time only, never the
// rendered output. -report additionally writes the versioned
// machine-readable run report (internal/telemetry): detection-latency
// distributions, diagnosis precision/recall inputs, recovery RMSD,
// per-stage cost-model totals, and one event trace per experiment —
// byte-identical at any -workers setting.
//
// -fleet swaps the per-goroutine runner for the batched fleet executor
// (internal/fleet): missions are partitioned into profile-homogeneous
// batches stepped in lockstep over shared per-(profile, dt) caches.
// Output stays byte-identical; missions/sec/core improves. -batch tunes
// the lockstep width and requires -fleet (usage errors exit 2).
//
// -campaign runs a declarative Monte-Carlo study (internal/campaign)
// from a JSON spec file instead of the experiment registry: the sweep is
// partitioned into -shards deterministic shards, each finished shard's
// partial report is checkpointed atomically under -checkpoint, -resume
// skips already-checkpointed shards after an interruption (even kill
// -9), and the merged versioned study report goes to -out. The study's
// bytes are invariant to -workers, -shards, -fleet, and interruption
// history. -halt-after stops after N shards with exit 3 — the
// interrupt/resume replay hook used by CI.
//
// Usage:
//
//	experiments -exp all -missions 25 -seed 1 [-workers 0] [-fleet [-batch 64]] [-out EXPERIMENTS.md] [-report report.json]
//	experiments -campaign spec.json [-shards 16] [-checkpoint dir [-resume]] [-fleet] [-out study.json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// options carries the parsed command line into run.
type options struct {
	exp        string
	missions   int
	seed       int64
	windCap    float64
	workers    int
	out        string
	report     string
	progress   bool
	fleet      bool
	batch      int
	campaign   string
	shards     int
	checkpoint string
	resume     bool
	haltAfter  int
	flagsSeen  map[string]bool
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, "+strings.Join(experiments.Names(), ", ")+", fig8a")
	missions := flag.Int("missions", 25, "missions per condition (paper: 100)")
	seed := flag.Int64("seed", 1, "master seed")
	windCap := flag.Float64("wind", 3, "mission wind cap in m/s")
	workers := flag.Int("workers", 0, "parallel mission workers (0 = all CPUs); output is identical at any setting")
	out := flag.String("out", "", "output file (default stdout)")
	report := flag.String("report", "", "write the machine-readable run report (JSON) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default")
	progress := flag.Bool("progress", false, "report per-sweep mission completion on stderr")
	fleetFlag := flag.Bool("fleet", false, "execute missions on the batched fleet executor (lockstep batches over shared per-profile caches); output is identical, throughput is not")
	batch := flag.Int("batch", 0, "fleet lockstep batch size (0 = default); requires -fleet")
	campaignSpec := flag.String("campaign", "", "run a campaign study from this spec file (JSON) instead of the experiment registry; writes the versioned study report to -out")
	shards := flag.Int("shards", 1, "campaign shard count; more shards mean finer checkpoints, never different bytes")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint directory: each finished shard's partial report is persisted atomically")
	resume := flag.Bool("resume", false, "reuse valid checkpoints in -checkpoint, skipping completed shards")
	haltAfter := flag.Int("halt-after", 0, "stop (exit 3) after this many shards this run — the interrupt/resume replay hook; requires -checkpoint")
	flag.Parse()

	o := options{
		exp: *exp, missions: *missions, seed: *seed, windCap: *windCap,
		workers: *workers, out: *out, report: *report, progress: *progress,
		fleet: *fleetFlag, batch: *batch,
		campaign: *campaignSpec, shards: *shards, checkpoint: *checkpoint,
		resume: *resume, haltAfter: *haltAfter,
		flagsSeen: make(map[string]bool),
	}
	flag.Visit(func(f *flag.Flag) { o.flagsSeen[f.Name] = true })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(exitCode(err))
	}
}

// usageErr marks a command-line usage mistake — as opposed to a runtime
// failure — so main can exit with the conventional usage code, mirroring
// cmd/delorean's convention.
type usageErr struct{ err error }

func (e usageErr) Error() string { return e.err.Error() }
func (e usageErr) Unwrap() error { return e.err }

// usagef builds a usage error (exit code 2).
func usagef(format string, args ...any) error {
	return usageErr{err: fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit code: 2 for usage mistakes
// (explicit usagef, invalid mission configs), 3 for a campaign halted by
// -halt-after (checkpoints intact, resume to continue), 1 for everything
// else.
func exitCode(err error) int {
	var ue usageErr
	var ce *sim.ConfigError
	if errors.As(err, &ue) || errors.As(err, &ce) {
		return 2
	}
	if errors.Is(err, campaign.ErrHalted) {
		return 3
	}
	return 1
}

// flagRule declares one dependency or exclusion between flags. A rule
// fires only when its flag is enabled (see options.enabled); every
// required flag must then be enabled too, and no conflicting flag may
// be. All inter-flag constraints live in this one table — a new flag
// adds a row, not an ad-hoc check.
type flagRule struct {
	flag      string
	requires  []string
	conflicts []string
}

// flagRules are the command's inter-flag constraints.
var flagRules = []flagRule{
	{flag: "batch", requires: []string{"fleet"}},
	{flag: "shards", requires: []string{"campaign"}},
	{flag: "checkpoint", requires: []string{"campaign"}},
	{flag: "resume", requires: []string{"campaign", "checkpoint"}},
	{flag: "halt-after", requires: []string{"campaign", "checkpoint"}},
	// A campaign's sweep lives in its spec file; the registry-experiment
	// selection and scaling flags would silently not apply.
	{flag: "campaign", conflicts: []string{"exp", "missions", "seed", "wind", "report"}},
}

// enabled reports whether a flag is in effect: boolean and string flags
// by their value (so -fleet=false disables dependents), the rest by
// having been passed explicitly.
func (o options) enabled(name string) bool {
	switch name {
	case "fleet":
		return o.fleet
	case "resume":
		return o.resume
	case "campaign":
		return o.campaign != ""
	case "checkpoint":
		return o.checkpoint != ""
	default:
		return o.flagsSeen[name]
	}
}

// validate applies the flag-rule table, then the per-flag value checks.
func (o options) validate() error {
	for _, r := range flagRules {
		if !o.enabled(r.flag) {
			continue
		}
		for _, req := range r.requires {
			if !o.enabled(req) {
				return usagef("-%s requires -%s", r.flag, req)
			}
		}
		for _, c := range r.conflicts {
			if o.enabled(c) {
				return usagef("-%s conflicts with -%s", r.flag, c)
			}
		}
	}
	if o.batch < 0 {
		return usagef("-batch must be non-negative, got %d", o.batch)
	}
	if o.flagsSeen["shards"] && o.shards < 1 {
		return usagef("-shards must be at least 1, got %d", o.shards)
	}
	if o.flagsSeen["halt-after"] && o.haltAfter < 1 {
		return usagef("-halt-after must be at least 1, got %d", o.haltAfter)
	}
	return nil
}

// servePprof exposes the standard pprof endpoints for profiling a run.
// Diagnostics only — it never touches experiment output or the report.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
	}
}

func run(ctx context.Context, o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if o.campaign != "" {
		return runCampaign(ctx, o)
	}
	var w io.Writer = os.Stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opt := experiments.Options{
		Missions: o.missions, Seed: o.seed, Wind: o.windCap, Workers: o.workers,
		Fleet: o.fleet, BatchSize: o.batch,
	}
	if o.progress {
		opt.Progress = func(completed, total int) {
			if completed == total || completed%10 == 0 {
				fmt.Fprintf(os.Stderr, "  sweep %d/%d\r", completed, total)
			}
		}
	}
	if o.report != "" {
		opt.Collector = telemetry.NewCollector()
	}

	runErr := runExperiments(ctx, o.exp, w, opt)
	if runErr != nil {
		return runErr
	}
	if o.report == "" {
		return nil
	}
	return writeReport(o.report, opt.Collector, telemetry.Meta{
		Generator: "cmd/experiments",
		Missions:  o.missions,
		Seed:      o.seed,
		Wind:      o.windCap,
	})
}

// runCampaign runs one campaign study: load the spec, partition into
// shards, execute (or resume) with checkpoints, and write the merged
// versioned study report to -out (or stdout). The report's bytes are
// invariant to -workers, -shards, -fleet, and any interruption history.
func runCampaign(ctx context.Context, o options) error {
	f, err := os.Open(o.campaign)
	if err != nil {
		return fmt.Errorf("campaign spec: %w", err)
	}
	var spec campaign.Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	err = dec.Decode(&spec)
	f.Close()
	if err != nil {
		return fmt.Errorf("campaign spec %s: %w", o.campaign, err)
	}
	c, err := campaign.New(spec)
	if err != nil {
		return err
	}
	opt := campaign.Options{
		Workers:   o.workers,
		BatchSize: o.batch,
		Shards:    o.shards,
		Dir:       o.checkpoint,
		Resume:    o.resume,
		HaltAfter: o.haltAfter,
	}
	if o.fleet {
		opt.Engine = engine.Fleet()
	}
	if o.progress {
		opt.ShardDone = func(done, total int) {
			fmt.Fprintf(os.Stderr, "  shard %d/%d\n", done, total)
		}
	}
	study, err := c.Run(ctx, opt)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if o.out != "" {
		out, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer out.Close()
		w = out
	}
	return study.WriteJSON(w)
}

// runExperiments dispatches the selected experiment(s).
func runExperiments(ctx context.Context, exp string, w io.Writer, opt experiments.Options) error {
	if exp != "all" {
		e, ok := experiments.Get(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (have: all, %s)", exp, strings.Join(experiments.Names(), ", "))
		}
		return timed(ctx, e, w, opt)
	}
	for _, e := range experiments.All() {
		if err := timed(ctx, e, w, opt); err != nil {
			return err
		}
	}
	return nil
}

// writeReport assembles and writes the versioned run report.
func writeReport(path string, col *telemetry.Collector, meta telemetry.Meta) error {
	rep, err := col.Report(meta)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// timed runs one experiment with a stderr progress line. The timing lines
// go to stderr precisely so the -out artifact stays byte-identical across
// runs and worker counts.
func timed(ctx context.Context, e experiments.Experiment, w io.Writer, opt experiments.Options) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %s (missions=%d seed=%d workers=%d)...\n", e.Name(), opt.Missions, opt.Seed, opt.Workers)
	if err := e.Run(ctx, w, opt); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s done in %s\n", e.Name(), time.Since(start).Round(time.Second))
	return nil
}
