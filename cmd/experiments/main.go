// Command experiments regenerates the paper's tables and figures on the
// simulated substrate. Each experiment is selectable; "all" runs the full
// evaluation and emits the markdown recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments -exp all -missions 25 -seed 1 [-out EXPERIMENTS.md]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/vehicle"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table3, table4, table5, table6, table7, fig2, fig8a, fig8b, fig9, fig10")
	missions := flag.Int("missions", 25, "missions per condition (paper: 100)")
	seed := flag.Int64("seed", 1, "master seed")
	windCap := flag.Float64("wind", 3, "mission wind cap in m/s")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*exp, *missions, *seed, *windCap, *out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, missions int, seed int64, windCap float64, outPath string) error {
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opt := experiments.Options{Missions: missions, Seed: seed, Wind: windCap}

	type step struct {
		name string
		run  func(io.Writer, experiments.Options) error
	}
	steps := []step{
		{name: "table3", run: runTable3},
		{name: "table4", run: runTable4},
		{name: "table5", run: runTable5},
		{name: "table6", run: runTable6},
		{name: "table7", run: runTable7},
		{name: "fig2", run: runFig2},
		{name: "fig8b", run: runFig8b},
		{name: "fig9", run: runFig9},
		{name: "fig10", run: runFig10},
	}
	matched := false
	for _, s := range steps {
		if exp != "all" && exp != s.name && !(exp == "fig8a" && s.name == "table3") {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (missions=%d seed=%d)...\n", s.name, missions, seed)
		if err := s.run(w, opt); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", s.name, time.Since(start).Round(time.Second))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func runTable3(w io.Writer, opt experiments.Options) error {
	fmt.Fprintln(w, "## Table 3 / Fig. 8a — δ calibration, window sizing, overheads")
	fmt.Fprintln(w)
	calOpt := opt
	calOpt.Missions = clampMissions(opt.Missions, 8, 25)
	calOpt.Wind = 4.5
	var overheads []experiments.OverheadResult
	for _, name := range vehicle.AllRVs() {
		p := vehicle.MustProfile(name)
		cal := experiments.Calibrate(p, calOpt)
		if err := experiments.WriteCalibration(w, cal); err != nil {
			return err
		}
		sw := experiments.StealthyWindow(p, experiments.Options{Missions: clampMissions(opt.Missions, 6, 15), Seed: opt.Seed, Wind: opt.Wind})
		if err := experiments.WriteStealthyWindow(w, sw); err != nil {
			return err
		}
		if isReal(name) {
			ov := experiments.Overheads(p, cal.Delta, sw.WindowSec, experiments.Options{Missions: clampMissions(opt.Missions, 4, 10), Seed: opt.Seed, Wind: opt.Wind})
			overheads = append(overheads, ov)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Overheads (real-RV profiles, §6.6):")
	fmt.Fprintln(w)
	return experiments.WriteOverheads(w, overheads)
}

func runTable4(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTable4(w, experiments.Table4(opt))
}

func runTable5(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTable5(w, experiments.Table5(opt))
}

func runTable6(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTable6(w, experiments.Table6(opt))
}

func runTable7(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTable7(w, experiments.Table7(opt))
}

func runFig2(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTrace(w, "Fig. 2", experiments.Fig2(opt))
}

func runFig8b(w io.Writer, opt experiments.Options) error {
	fmt.Fprintln(w, "### Fig. 8b — stealthy-attack detection delay CDF")
	fmt.Fprintln(w)
	for _, name := range []vehicle.ProfileName{vehicle.Tarot, vehicle.AionR1} {
		sw := experiments.StealthyWindow(vehicle.MustProfile(name), opt)
		if err := experiments.WriteStealthyWindow(w, sw); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	return nil
}

func runFig9(w io.Writer, opt experiments.Options) error {
	return experiments.WriteTrace(w, "Fig. 9", experiments.Fig9(opt))
}

func runFig10(w io.Writer, opt experiments.Options) error {
	return experiments.WriteFig10(w, experiments.Fig10(opt))
}

func clampMissions(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

func isReal(name vehicle.ProfileName) bool {
	for _, r := range vehicle.RealRVs() {
		if r == name {
			return true
		}
	}
	return false
}
