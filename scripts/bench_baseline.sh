#!/usr/bin/env sh
# bench_baseline.sh — record the parallel runner's end-to-end speedup.
#
# Runs `cmd/experiments -exp all` twice at a reduced mission count — once
# with -workers 1 and once with -workers <NumCPU> — byte-compares the two
# rendered outputs (they must be identical: the runner's determinism
# contract), and writes the wall-clock numbers to BENCH_BASELINE.json.
#
# Usage: scripts/bench_baseline.sh [missions] [seed]
set -eu
cd "$(dirname "$0")/.." || exit 1

MISSIONS="${1:-4}"
SEED="${2:-1}"
NPROC="$(go env GOMAXPROCS 2>/dev/null || echo 1)"
case "$NPROC" in ''|*[!0-9]*) NPROC=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1) ;; esac

OUT1="$(mktemp)"
OUTN="$(mktemp)"
trap 'rm -f "$OUT1" "$OUTN"' EXIT

go build -o /tmp/experiments-bench ./cmd/experiments

echo "== -exp all, workers=1, missions=$MISSIONS seed=$SEED =="
T0=$(date +%s)
/tmp/experiments-bench -exp all -missions "$MISSIONS" -seed "$SEED" -workers 1 -out "$OUT1"
T1=$(date +%s)
SERIAL=$((T1 - T0))

echo "== -exp all, workers=$NPROC =="
T0=$(date +%s)
/tmp/experiments-bench -exp all -missions "$MISSIONS" -seed "$SEED" -workers "$NPROC" -out "$OUTN"
T1=$(date +%s)
PARALLEL=$((T1 - T0))

if ! cmp -s "$OUT1" "$OUTN"; then
    echo "FAIL: output differs between workers=1 and workers=$NPROC" >&2
    diff "$OUT1" "$OUTN" | head -20 >&2 || true
    exit 1
fi
echo "outputs byte-identical across worker counts"

SPEEDUP=$(awk "BEGIN { if ($PARALLEL > 0) printf \"%.2f\", $SERIAL / $PARALLEL; else print \"inf\" }")
cat > BENCH_BASELINE.json <<EOF
{
  "experiment": "all",
  "missions": $MISSIONS,
  "seed": $SEED,
  "cpus": $NPROC,
  "serial_seconds": $SERIAL,
  "parallel_seconds": $PARALLEL,
  "speedup": $SPEEDUP,
  "outputs_identical": true
}
EOF
echo "wrote BENCH_BASELINE.json: serial=${SERIAL}s parallel=${PARALLEL}s speedup=${SPEEDUP}x on $NPROC CPUs"
