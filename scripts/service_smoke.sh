#!/usr/bin/env bash
# service_smoke.sh — the mission-service smoke gate: boot delorean-server
# on a random port, submit the committed replay-corpus mission over real
# HTTP, and require the streamed run report to be byte-identical to the
# committed golden (internal/sim/testdata/attack_mission.report.golden.json).
#
# This extends the replay gate across the service boundary: decode the
# trace from a JSON request body, replay it on the mission pool, stream
# the report back as NDJSON — and the bytes still may not drift. The
# streamed line is compact JSON; cmd/jsonfmt re-indents it with Go's own
# byte-preserving json.Indent (never an external tool that might re-render
# numbers) before comparing against the indented golden. The gate also
# exercises /healthz, /statusz counters, and the SIGTERM drain path:
# the server must exit 0 on its own.
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE=internal/sim/testdata/attack_mission.trace
GOLD=internal/sim/testdata/attack_mission.report.golden.json

tmp="$(mktemp -d /tmp/service_smoke.XXXXXX)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/delorean-server" ./cmd/delorean-server
go build -o "$tmp/jsonfmt" ./cmd/jsonfmt

echo "== boot =="
"$tmp/delorean-server" -addr 127.0.0.1:0 -shards 4 > "$tmp/server.log" 2>&1 &
server_pid=$!

# The server prints "delorean-server listening on http://HOST:PORT" once
# bound; poll for it rather than racing the bind.
base_url=""
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "FAIL: server exited during boot" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    line="$(grep -m1 'listening on' "$tmp/server.log" || true)"
    if [ -n "$line" ]; then
        base_url="${line##*listening on }"
        break
    fi
    sleep 0.1
done
if [ -z "$base_url" ]; then
    echo "FAIL: server never printed its listen address" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
echo "server at $base_url"

echo "== healthz =="
curl -fsS "$base_url/healthz" | grep -qx ok

echo "== replay over HTTP =="
printf '{"trace_b64":"%s"}' "$(base64 < "$TRACE" | tr -d '\n')" > "$tmp/request.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$tmp/request.json" \
    "$base_url/v1/missions" > "$tmp/stream.ndjson"

tail -n 1 "$tmp/stream.ndjson" | "$tmp/jsonfmt" -indent > "$tmp/report.json"
if ! diff -u "$GOLD" "$tmp/report.json" > "$tmp/report.diff"; then
    echo "FAIL: HTTP-streamed report drifted from $GOLD" >&2
    head -40 "$tmp/report.diff" >&2
    echo "service smoke FAILED" >&2
    exit 1
fi
echo "streamed report byte-identical to the committed golden"

echo "== statusz =="
curl -fsS "$base_url/statusz" > "$tmp/statusz.json"
grep -q '"completed":1' "$tmp/statusz.json"
grep -q '"service":"delorean-server"' "$tmp/statusz.json"

echo "== graceful drain =="
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q 'drained, bye' "$tmp/server.log"
echo "ok: service smoke passed"
