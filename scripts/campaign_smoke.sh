#!/usr/bin/env bash
# campaign_smoke.sh — fast merge gate for the campaign engine: run the
# committed tiny grid (internal/campaign/testdata/smoke.json, 8 missions)
# end to end and pin the three campaign contracts at once:
#
#   1. Golden drift: the monolithic study must reproduce the committed
#      smoke_study.golden.json byte for byte. Any change to the spec
#      normalization, job drawing, execution, or merge shows up here.
#   2. Layout invariance: sharding the study (with checkpoints, on the
#      fleet engine, at workers=N) must emit the identical bytes.
#   3. Interrupt/resume replay: a run halted by -halt-after (exit 3,
#      partial checkpoints on disk) then resumed must also emit the
#      identical bytes — an interruption leaves no trace in the study.
#
# Regenerate the golden only deliberately, when study semantics change:
#   go run ./cmd/experiments -campaign internal/campaign/testdata/smoke.json \
#     -workers 1 -out internal/campaign/testdata/smoke_study.golden.json
# and commit the diff.
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=internal/campaign/testdata/smoke.json
GOLD=internal/campaign/testdata/smoke_study.golden.json

tmp="$(mktemp -d /tmp/campaign_smoke.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

# A real binary, not `go run`: the interrupt leg asserts on the halted
# exit code 3, which `go run` would collapse into its own exit 1.
go build -o "$tmp/experiments" ./cmd/experiments

echo "== campaign smoke: monolithic study vs committed golden =="
"$tmp/experiments" -campaign "$SPEC" -workers 1 -out "$tmp/mono.json"
if ! diff -u "$GOLD" "$tmp/mono.json" > "$tmp/mono.diff"; then
    echo "FAIL: monolithic study drifted from $GOLD" >&2
    head -40 "$tmp/mono.diff" >&2
    exit 1
fi

echo "== campaign smoke: sharded + checkpointed + fleet =="
"$tmp/experiments" -campaign "$SPEC" -shards 4 -fleet \
    -checkpoint "$tmp/ckpt_full" -out "$tmp/shard.json"
cmp "$GOLD" "$tmp/shard.json"

echo "== campaign smoke: interrupt after 2 of 4 shards, then resume =="
rc=0
"$tmp/experiments" -campaign "$SPEC" -shards 4 \
    -checkpoint "$tmp/ckpt" -halt-after 2 -out "$tmp/halted.json" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: -halt-after run exited $rc, want 3 (halted)" >&2
    exit 1
fi
if [ -s "$tmp/halted.json" ]; then
    echo "FAIL: halted run wrote a study report" >&2
    exit 1
fi
n="$(find "$tmp/ckpt" -name 'shard-*.json' | wc -l)"
if [ "$n" -ne 2 ]; then
    echo "FAIL: halted run left $n checkpoints, want 2" >&2
    exit 1
fi
"$tmp/experiments" -campaign "$SPEC" -shards 4 \
    -checkpoint "$tmp/ckpt" -resume -out "$tmp/resumed.json"
cmp "$GOLD" "$tmp/resumed.json"

echo "ok: study bytes identical across monolithic, sharded+fleet, and interrupt+resume"
