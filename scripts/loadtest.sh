#!/usr/bin/env bash
# loadtest.sh — bounded concurrent load against delorean-server with a
# byte-identity assertion: N identical experiment submissions race on the
# mission pool, and every response body must be byte-identical to the
# first. Any timestamp, worker id, completion-order leak, or cross-request
# state bleed shows up as a diff. The server must then drain cleanly.
#
# Knobs: LOADTEST_REQUESTS (default 16 concurrent submissions),
# LOADTEST_MISSIONS (default 4 missions per submission).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${LOADTEST_REQUESTS:-16}"
MISSIONS="${LOADTEST_MISSIONS:-4}"

tmp="$(mktemp -d /tmp/loadtest.XXXXXX)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/delorean-server" ./cmd/delorean-server

echo "== boot =="
# Queue deep enough that no submission is shed: this gate is about result
# bytes under concurrency, not backpressure (the unit tests cover 429s).
"$tmp/delorean-server" -addr 127.0.0.1:0 -queue 4096 > "$tmp/server.log" 2>&1 &
server_pid=$!

base_url=""
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "FAIL: server exited during boot" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    line="$(grep -m1 'listening on' "$tmp/server.log" || true)"
    if [ -n "$line" ]; then
        base_url="${line##*listening on }"
        break
    fi
    sleep 0.1
done
if [ -z "$base_url" ]; then
    echo "FAIL: server never printed its listen address" >&2
    exit 1
fi
echo "server at $base_url"

body="{\"attack\":\"GPS\",\"attack_start\":5,\"attack_dur\":5,\"seed\":11,\"max_sec\":30,\"missions\":$MISSIONS,\"name\":\"loadtest\"}"

echo "== $REQUESTS concurrent submissions × $MISSIONS missions =="
pids=()
for i in $(seq 1 "$REQUESTS"); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$body" "$base_url/v1/experiments" > "$tmp/resp.$i" &
    pids+=("$!")
done
fail=0
for pid in "${pids[@]}"; do
    wait "$pid" || fail=1
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: a submission errored" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi

echo "== byte-identity across responses =="
for i in $(seq 2 "$REQUESTS"); do
    if ! cmp -s "$tmp/resp.1" "$tmp/resp.$i"; then
        echo "FAIL: response $i differs from response 1 under load" >&2
        diff -u "$tmp/resp.1" "$tmp/resp.$i" > "$tmp/resp.diff" || true
        head -20 "$tmp/resp.diff" >&2
        exit 1
    fi
done
echo "all $REQUESTS responses byte-identical ($(wc -c < "$tmp/resp.1") bytes each)"

echo "== graceful drain =="
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q 'drained, bye' "$tmp/server.log"
echo "ok: load test passed"
