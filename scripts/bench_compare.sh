#!/usr/bin/env bash
# bench_compare.sh — before/after evidence for the hot path and the fleet
# executor.
#
# Checks out the comparison commit into a throwaway git worktree, copies
# the portable benchmark files in (they use only public API that exists in
# both trees; the allocation-budget tests do not and are NOT copied), runs
# the same benchmark set in both trees with -benchmem, and byte-compares a
# reduced `cmd/experiments` run between the trees — an optimization must
# not change a single output byte.
#
# On top of the cross-tree comparison, the script races the working tree's
# two execution engines against each other — the per-goroutine runner vs
# the batched fleet executor, reported as missions/sec/core — byte-compares
# their experiment output (folded into outputs_identical), and fails unless
# the fleet is at least MIN_FLEET_SPEEDUP faster. It also races the
# campaign layer against a bare engine run of the same job list and fails
# if sharding costs more than MIN_CAMPAIGN_RATIO of the direct throughput
# — campaign sharding must add no per-mission overhead. Results land in
# BENCH_PR10.json.
#
# Env knobs:
#   BEFORE_REF         git ref of the comparison tree (default: the PR-9
#                      fleet-executor tree, i.e. the newest committed
#                      bench baseline)
#   OUT                output JSON path (default: BENCH_PR10.json)
#   BENCHTIME          -benchtime passed to go test (default: 1s)
#   FLEET_BENCHTIME    -benchtime for the engine races (default: 2s — each
#                      iteration is a whole suite/study, so the races need
#                      a longer window for a stable ratio)
#   MIN_FLEET_SPEEDUP  minimum fleet/runner throughput ratio (default: 1.5)
#   MIN_CAMPAIGN_RATIO minimum campaign/direct throughput ratio
#                      (default: 0.85 — within run-to-run noise of 1.0)
#   ALLOW_STALE_BEFORE set to 1 to permit a BEFORE_REF older than the
#                      newest committed bench baseline (only for
#                      regenerating a historical BENCH_*.json on purpose)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BEFORE_REF="${BEFORE_REF:-d44d2e7}"
OUT="${OUT:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-1s}"
FLEET_BENCHTIME="${FLEET_BENCHTIME:-2s}"
MIN_FLEET_SPEEDUP="${MIN_FLEET_SPEEDUP:-1.5}"
MIN_CAMPAIGN_RATIO="${MIN_CAMPAIGN_RATIO:-0.85}"
BENCH='^(BenchmarkMissionShort|BenchmarkTick|BenchmarkEKFPredict|BenchmarkEKFPredictHybrid|BenchmarkEKFCorrect|BenchmarkFGMarginals|BenchmarkFGMarginalAllVars)$'
FLEETBENCH='^(BenchmarkRunner|BenchmarkFleet)$'
CAMPBENCH='^(BenchmarkCampaignSharded|BenchmarkEngineDirect)$'
PKGS=(./. ./internal/core/ ./internal/ekf/ ./internal/fg/)
PORTABLE=(bench_hotpath_test.go internal/ekf/bench_test.go internal/fg/bench_test.go internal/core/bench_test.go)

# Staleness guard: comparing against a ref older than the newest committed
# bench baseline re-litigates wins the repo has already banked — the
# "before" numbers would predate recorded optimizations and overstate the
# speedup. Fail loudly unless the regeneration is explicitly intentional.
newest_bench="$(git ls-files 'BENCH_*.json' | while read -r f; do
    printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
done | sort -rn | head -1 | cut -d' ' -f2-)"
if [ -n "$newest_bench" ]; then
    bench_commit="$(git log -1 --format=%H -- "$newest_bench")"
    if [ "$(git rev-parse "$BEFORE_REF^{commit}")" != "$bench_commit" ] &&
        git merge-base --is-ancestor "$BEFORE_REF" "$bench_commit"; then
        if [ "${ALLOW_STALE_BEFORE:-0}" != 1 ]; then
            echo "FAIL: BEFORE_REF=$BEFORE_REF predates $newest_bench (committed in ${bench_commit:0:7})." >&2
            echo "      Its numbers would not reflect the newest recorded baseline." >&2
            echo "      Pick a ref at or after ${bench_commit:0:7}, or set ALLOW_STALE_BEFORE=1" >&2
            echo "      to regenerate a historical baseline on purpose." >&2
            exit 1
        fi
        echo "WARN: BEFORE_REF=$BEFORE_REF predates $newest_bench (ALLOW_STALE_BEFORE=1)" >&2
    fi
fi

wt="$(mktemp -d /tmp/bench_before.XXXXXX)"
after_txt="$(mktemp /tmp/bench_after.XXXXXX)"
fleet_txt="$(mktemp /tmp/bench_fleet.XXXXXX)"
camp_txt="$(mktemp /tmp/bench_camp.XXXXXX)"
exp_after_md="$(mktemp /tmp/exp_after_md.XXXXXX)"
exp_after_js="$(mktemp /tmp/exp_after_js.XXXXXX)"
exp_fleet_md="$(mktemp /tmp/exp_fleet_md.XXXXXX)"
exp_fleet_js="$(mktemp /tmp/exp_fleet_js.XXXXXX)"
study_mono="$(mktemp /tmp/study_mono.XXXXXX)"
study_shard="$(mktemp /tmp/study_shard.XXXXXX)"
cleanup() {
    git worktree remove --force "$wt" >/dev/null 2>&1 || true
    rm -rf "$wt" "$after_txt" "$fleet_txt" "$camp_txt" \
        "$exp_after_md" "$exp_after_js" "$exp_fleet_md" "$exp_fleet_js" \
        "$study_mono" "$study_shard"
}
trap cleanup EXIT
rmdir "$wt"

echo "== before worktree: $BEFORE_REF =="
git worktree add --detach "$wt" "$BEFORE_REF" >/dev/null
for f in "${PORTABLE[@]}"; do
    cp "$f" "$wt/$f"
done

before_txt="$wt/bench_before.txt"
echo "== benchmarks: before ($BEFORE_REF) =="
(cd "$wt" && go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" "${PKGS[@]}") |
    grep '^Benchmark' | tee "$before_txt"
echo "== benchmarks: after (working tree) =="
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" "${PKGS[@]}" |
    grep '^Benchmark' | tee "$after_txt"
if [ ! -s "$before_txt" ] || [ ! -s "$after_txt" ]; then
    echo "FAIL: a benchmark run produced no results" >&2
    exit 1
fi

# The fleet package does not exist in pre-PR9 trees, so the engine race
# runs entirely in the working tree: BenchmarkRunner and BenchmarkFleet
# execute the same reduced suite, making runner_ns/fleet_ns a same-tree,
# same-workload ratio.
echo "== engine race: runner vs fleet (working tree) =="
go test -run '^$' -bench "$FLEETBENCH" -benchmem -benchtime "$FLEET_BENCHTIME" ./internal/fleet/ |
    grep '^Benchmark' | tee "$fleet_txt"
metric() { # metric <file> <bench-name> <unit>
    # $2 is the bench name, bare on GOMAXPROCS=1 machines and with a
    # -N suffix otherwise.
    awk -v name="$2" -v unit="$3" '$1 == name || $1 ~ "^"name"-" {
        for (i = 2; i < NF; i++) if ($(i + 1) == unit) { print $i; exit }
    }' "$1"
}
runner_ns="$(metric "$fleet_txt" BenchmarkRunner ns/op)"
fleet_ns="$(metric "$fleet_txt" BenchmarkFleet ns/op)"
runner_mpsc="$(metric "$fleet_txt" BenchmarkRunner missions/sec/core)"
fleet_mpsc="$(metric "$fleet_txt" BenchmarkFleet missions/sec/core)"
if [ -z "$runner_ns" ] || [ -z "$fleet_ns" ]; then
    echo "FAIL: the engine race produced no results" >&2
    exit 1
fi
fleet_speedup="$(awk -v r="$runner_ns" -v f="$fleet_ns" 'BEGIN { printf "%.2f", r / f }')"
echo "fleet_speedup: ${fleet_speedup}x (${runner_mpsc} -> ${fleet_mpsc} missions/sec/core)"

# Campaign overhead race: BenchmarkCampaignSharded runs a 4-shard study
# (shard → collect → checkpoint-free merge) over the same drawn job list
# that BenchmarkEngineDirect feeds straight to the fleet engine, so the
# throughput ratio is exactly the campaign layer's per-mission cost.
echo "== campaign race: sharded study vs direct engine (working tree) =="
go test -run '^$' -bench "$CAMPBENCH" -benchmem -benchtime "$FLEET_BENCHTIME" ./internal/campaign/ |
    grep '^Benchmark' | tee "$camp_txt"
camp_mpsc="$(metric "$camp_txt" BenchmarkCampaignSharded missions/sec/core)"
direct_mpsc="$(metric "$camp_txt" BenchmarkEngineDirect missions/sec/core)"
if [ -z "$camp_mpsc" ] || [ -z "$direct_mpsc" ]; then
    echo "FAIL: the campaign race produced no results" >&2
    exit 1
fi
campaign_ratio="$(awk -v c="$camp_mpsc" -v d="$direct_mpsc" 'BEGIN { printf "%.2f", c / d }')"
echo "campaign_ratio: ${campaign_ratio} (${direct_mpsc} direct -> ${camp_mpsc} sharded missions/sec/core)"

echo "== byte-identity: reduced experiment run, before vs after vs fleet =="
(cd "$wt" && go run ./cmd/experiments -exp all -missions 2 -seed 1 -workers 1 \
    -out "$wt/exp_before.md" -report "$wt/exp_before.json")
go run ./cmd/experiments -exp all -missions 2 -seed 1 -workers 1 \
    -out "$exp_after_md" -report "$exp_after_js"
go run ./cmd/experiments -exp all -missions 2 -seed 1 -workers 1 -fleet \
    -out "$exp_fleet_md" -report "$exp_fleet_js"
identical=true
cmp -s "$wt/exp_before.md" "$exp_after_md" || identical=false
cmp -s "$wt/exp_before.json" "$exp_after_js" || identical=false
cmp -s "$exp_after_md" "$exp_fleet_md" || identical=false
cmp -s "$exp_after_js" "$exp_fleet_js" || identical=false

# Campaign determinism is part of the same contract: a study rendered
# monolithically must be byte-identical to the same study sharded onto
# the fleet engine.
echo "== byte-identity: campaign monolithic vs sharded+fleet =="
go run ./cmd/experiments -campaign internal/campaign/testdata/smoke.json \
    -workers 1 -out "$study_mono"
go run ./cmd/experiments -campaign internal/campaign/testdata/smoke.json \
    -shards 4 -fleet -out "$study_shard"
cmp -s "$study_mono" "$study_shard" || identical=false
echo "outputs_identical: $identical"

awk -v before="$before_txt" -v after="$after_txt" \
    -v ident="$identical" -v bref="$BEFORE_REF" \
    -v aref="$(git describe --always --dirty)" -v benchtime="$BENCHTIME" \
    -v rns="$runner_ns" -v fns="$fleet_ns" \
    -v rmpsc="${runner_mpsc:-0}" -v fmpsc="${fleet_mpsc:-0}" \
    -v fsp="$fleet_speedup" -v fmin="$MIN_FLEET_SPEEDUP" \
    -v cmpsc="$camp_mpsc" -v dmpsc="$direct_mpsc" \
    -v cratio="$campaign_ratio" -v cmin="$MIN_CAMPAIGN_RATIO" '
function basename_bench(n) { sub(/-[0-9]+$/, "", n); return n }
function load(file, ns, bb, al,    line, f, n) {
    while ((getline line < file) > 0) {
        split(line, f, /[ \t]+/)
        n = basename_bench(f[1])
        ns[n] = f[3]; bb[n] = f[5]; al[n] = f[7]
        if (!(n in seen)) { seen[n] = 1; order[++cnt] = n }
    }
    close(file)
}
BEGIN {
    load(before, bns, bbb, bal)
    load(after, ans, abb, aal)
    printf "{\n"
    printf "  \"before_ref\": \"%s\",\n", bref
    printf "  \"after_ref\": \"%s\",\n", aref
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"outputs_identical\": %s,\n", ident
    printf "  \"fleet\": {\n"
    printf "    \"runner\": {\"ns_op\": %s, \"missions_per_sec_core\": %s},\n", rns, rmpsc
    printf "    \"fleet\": {\"ns_op\": %s, \"missions_per_sec_core\": %s},\n", fns, fmpsc
    printf "    \"speedup\": %s,\n", fsp
    printf "    \"min_speedup\": %s\n", fmin
    printf "  },\n"
    printf "  \"campaign\": {\n"
    printf "    \"sharded\": {\"missions_per_sec_core\": %s},\n", cmpsc
    printf "    \"direct\": {\"missions_per_sec_core\": %s},\n", dmpsc
    printf "    \"ratio\": %s,\n", cratio
    printf "    \"min_ratio\": %s\n", cmin
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        printf "    \"%s\": {\n", n
        printf "      \"before\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", bns[n], bbb[n], bal[n]
        printf "      \"after\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", ans[n], abb[n], aal[n]
        printf "      \"speedup\": %.2f\n", bns[n] / ans[n]
        printf "    }%s\n", (i < cnt ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' >"$OUT"

echo "== $OUT =="
cat "$OUT"
if [ "$identical" != true ]; then
    echo "FAIL: execution engines disagree on experiment output bytes" >&2
    exit 1
fi
if ! awk -v s="$fleet_speedup" -v m="$MIN_FLEET_SPEEDUP" 'BEGIN { exit !(s + 0 >= m + 0) }'; then
    echo "FAIL: fleet speedup ${fleet_speedup}x below required ${MIN_FLEET_SPEEDUP}x" >&2
    exit 1
fi
if ! awk -v r="$campaign_ratio" -v m="$MIN_CAMPAIGN_RATIO" 'BEGIN { exit !(r + 0 >= m + 0) }'; then
    echo "FAIL: campaign throughput ratio ${campaign_ratio} below required ${MIN_CAMPAIGN_RATIO}" >&2
    echo "      sharding a study must not cost per-mission throughput" >&2
    exit 1
fi
