#!/usr/bin/env bash
# bench_compare.sh — before/after evidence for the zero-allocation hot path.
#
# Checks out the last pre-optimization commit into a throwaway git worktree,
# copies the portable benchmark files in (they use only public API that
# exists in both trees; the allocation-budget tests do not and are NOT
# copied), runs the same benchmark set in both trees with -benchmem, and
# byte-compares a reduced `cmd/experiments` run between the trees — the
# optimization must not change a single output byte. Results land in
# BENCH_PR5.json: ns/op, B/op, allocs/op per benchmark for both trees, the
# speedup ratio, and the outputs_identical verdict.
#
# Env knobs:
#   BEFORE_REF  git ref of the comparison tree (default: the last commit
#               before the staged-pipeline refactor, i.e. the PR-4
#               zero-allocation tree — the refactor must hold its speed)
#   OUT         output JSON path (default: BENCH_PR5.json)
#   BENCHTIME   -benchtime passed to go test (default: 1s)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BEFORE_REF="${BEFORE_REF:-da6c9a4}"
OUT="${OUT:-BENCH_PR5.json}"
BENCHTIME="${BENCHTIME:-1s}"
BENCH='^(BenchmarkMissionShort|BenchmarkTick|BenchmarkEKFPredict|BenchmarkEKFPredictHybrid|BenchmarkEKFCorrect|BenchmarkFGMarginals|BenchmarkFGMarginalAllVars)$'
PKGS=(./. ./internal/core/ ./internal/ekf/ ./internal/fg/)
PORTABLE=(bench_hotpath_test.go internal/ekf/bench_test.go internal/fg/bench_test.go internal/core/bench_test.go)

wt="$(mktemp -d /tmp/bench_before.XXXXXX)"
after_txt="$(mktemp /tmp/bench_after.XXXXXX)"
exp_after_md="$(mktemp /tmp/exp_after_md.XXXXXX)"
exp_after_js="$(mktemp /tmp/exp_after_js.XXXXXX)"
cleanup() {
    git worktree remove --force "$wt" >/dev/null 2>&1 || true
    rm -rf "$wt" "$after_txt" "$exp_after_md" "$exp_after_js"
}
trap cleanup EXIT
rmdir "$wt"

echo "== before worktree: $BEFORE_REF =="
git worktree add --detach "$wt" "$BEFORE_REF" >/dev/null
for f in "${PORTABLE[@]}"; do
    cp "$f" "$wt/$f"
done

before_txt="$wt/bench_before.txt"
echo "== benchmarks: before ($BEFORE_REF) =="
(cd "$wt" && go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" "${PKGS[@]}") |
    grep '^Benchmark' | tee "$before_txt"
echo "== benchmarks: after (working tree) =="
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" "${PKGS[@]}" |
    grep '^Benchmark' | tee "$after_txt"
if [ ! -s "$before_txt" ] || [ ! -s "$after_txt" ]; then
    echo "FAIL: a benchmark run produced no results" >&2
    exit 1
fi

echo "== byte-identity: reduced experiment run in both trees =="
(cd "$wt" && go run ./cmd/experiments -exp all -missions 2 -seed 1 -workers 1 \
    -out "$wt/exp_before.md" -report "$wt/exp_before.json")
go run ./cmd/experiments -exp all -missions 2 -seed 1 -workers 1 \
    -out "$exp_after_md" -report "$exp_after_js"
identical=true
cmp -s "$wt/exp_before.md" "$exp_after_md" || identical=false
cmp -s "$wt/exp_before.json" "$exp_after_js" || identical=false
echo "outputs_identical: $identical"

awk -v before="$before_txt" -v after="$after_txt" \
    -v ident="$identical" -v bref="$BEFORE_REF" \
    -v aref="$(git describe --always --dirty)" -v benchtime="$BENCHTIME" '
function basename_bench(n) { sub(/-[0-9]+$/, "", n); return n }
function load(file, ns, bb, al,    line, f, n) {
    while ((getline line < file) > 0) {
        split(line, f, /[ \t]+/)
        n = basename_bench(f[1])
        ns[n] = f[3]; bb[n] = f[5]; al[n] = f[7]
        if (!(n in seen)) { seen[n] = 1; order[++cnt] = n }
    }
    close(file)
}
BEGIN {
    load(before, bns, bbb, bal)
    load(after, ans, abb, aal)
    printf "{\n"
    printf "  \"before_ref\": \"%s\",\n", bref
    printf "  \"after_ref\": \"%s\",\n", aref
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"outputs_identical\": %s,\n", ident
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        printf "    \"%s\": {\n", n
        printf "      \"before\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", bns[n], bbb[n], bal[n]
        printf "      \"after\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s},\n", ans[n], abb[n], aal[n]
        printf "      \"speedup\": %.2f\n", bns[n] / ans[n]
        printf "    }%s\n", (i < cnt ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' >"$OUT"

echo "== $OUT =="
cat "$OUT"
if [ "$identical" != true ]; then
    echo "FAIL: optimized tree changed experiment output bytes" >&2
    exit 1
fi
