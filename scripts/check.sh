#!/usr/bin/env sh
# check.sh — the tier-2 verification gate: build, vet, project lint
# (cmd/delint), the full test suite, and the race detector.
#
# The race pass runs with -short: the full experiment suite already takes
# ~2 minutes natively and the race detector multiplies that by ~20×, so
# the heavy mission sweeps (which honor testing.Short) are skipped there.
# They still run race-free in the plain `go test` pass, and a full
# `go test -race -timeout 60m ./...` remains available for release
# verification.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== vet =="
go vet ./...
echo "== delint =="
go run ./cmd/delint ./...
echo "== test =="
go test ./...
echo "== race (short) =="
go test -race -short ./...
echo "ok: all checks passed"
