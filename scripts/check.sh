#!/usr/bin/env sh
# check.sh — the tier-2 verification gate: build, vet, project lint
# (cmd/delint), the full test suite, and the race detector.
#
# The package-wide race pass runs with -short: the full experiment suite
# already takes ~2 minutes natively and the race detector multiplies that
# by ~20×, so the heavy mission sweeps (which honor testing.Short) are
# skipped there. The parallel runner and the batched fleet executor are
# the places where races would silently corrupt results, so they get
# dedicated un-short race passes: every internal/runner test, the fleet
# lockstep-vs-runner equivalence suite, and the workers=1-vs-8
# byte-identical determinism sweep in internal/experiments. A full
# `go test -race -timeout 60m ./...` remains available for release
# verification.
set -eu
cd "$(dirname "$0")/.." || exit 1

echo "== build =="
go build ./...
echo "== vet =="
go vet ./...
echo "== delint =="
go run ./cmd/delint ./...
echo "== test =="
go test ./...
echo "== race (short) =="
go test -race -short ./...
echo "== race (runner + parallel determinism) =="
go test -race -timeout 1800s ./internal/runner
go test -race -timeout 1800s -run 'TestParallelDeterminism|TestDeltaForSingleflight|TestReportDeterminism' ./internal/experiments
echo "== race (fleet lockstep vs runner equivalence) =="
go test -race -timeout 1800s -run 'TestFleet|TestSharedFor' ./internal/fleet
echo "== race (pipeline FSM + legacy equivalence) =="
go test -race -timeout 1800s -run 'TestPipelineEquivalence|TestLegalTransition|TestTransition|TestModeSides' ./internal/core
go test -race -timeout 1800s -run 'TestTraceTransitions' ./internal/sim
echo "== race (mission service: drain, backpressure, disconnect, determinism) =="
go test -race -timeout 1800s -run 'TestService' ./internal/service
if command -v shellcheck >/dev/null 2>&1; then
    echo "== shellcheck =="
    shellcheck scripts/*.sh
else
    echo "== shellcheck == (not installed; skipped — CI runs it)"
fi
echo "ok: all checks passed"
