#!/usr/bin/env sh
# replay_gate.sh — the replay-determinism gate: replaying the committed
# recorded mission (internal/sim/testdata/attack_mission.trace) must
# reproduce the committed golden run report byte for byte.
#
# This pins two contracts at once: the v1 trace format keeps decoding
# (a recorded mission stays replayable in CI forever), and the closed
# loop around the sensor seam — control, physics, wind, detection,
# diagnosis, recovery — stays bit-deterministic for a fixed sensor
# stream. Regenerate the corpus only deliberately, via
# scripts/record_corpus.sh (make record-corpus), and commit the diff.
set -eu
cd "$(dirname "$0")/.." || exit 1

TRACE=internal/sim/testdata/attack_mission.trace
GOLD=internal/sim/testdata/attack_mission.report.golden.json

tmp="$(mktemp -d /tmp/replay_gate.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/delorean -replay "$TRACE" -report "$tmp/report.json"

if ! cmp -s "$GOLD" "$tmp/report.json"; then
    echo "FAIL: replayed report drifted from $GOLD" >&2
    diff -u "$GOLD" "$tmp/report.json" | head -40 >&2 || true
    echo "replay gate FAILED" >&2
    exit 1
fi
echo "ok: replayed mission report byte-identical to the committed golden"
