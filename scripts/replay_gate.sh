#!/usr/bin/env bash
# replay_gate.sh — the replay-determinism gate: replaying the committed
# recorded mission (internal/sim/testdata/attack_mission.trace) must
# reproduce the committed golden run report byte for byte.
#
# This pins two contracts at once: the v1 trace format keeps decoding
# (a recorded mission stays replayable in CI forever), and the closed
# loop around the sensor seam — control, physics, wind, detection,
# diagnosis, recovery — stays bit-deterministic for a fixed sensor
# stream. Regenerate the corpus only deliberately, via
# scripts/record_corpus.sh (make record-corpus), and commit the diff.
#
# The script runs under pipefail, and the comparison is diff itself (to
# a file, not through a pipe), so the gate's exit status is exactly the
# comparison's verdict — no `|| true` masking, no SIGPIPE ambiguity.
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE=internal/sim/testdata/attack_mission.trace
GOLD=internal/sim/testdata/attack_mission.report.golden.json

tmp="$(mktemp -d /tmp/replay_gate.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

go run ./cmd/delorean -replay "$TRACE" -report "$tmp/report.json"

if ! diff -u "$GOLD" "$tmp/report.json" > "$tmp/report.diff"; then
    echo "FAIL: replayed report drifted from $GOLD" >&2
    head -40 "$tmp/report.diff" >&2
    echo "replay gate FAILED" >&2
    exit 1
fi
echo "ok: replayed mission report byte-identical to the committed golden"
