#!/usr/bin/env sh
# record_corpus.sh — regenerate the committed replay corpus: one recorded
# attack mission (internal/sim/testdata/attack_mission.trace) plus the
# golden run report its replay must reproduce byte for byte.
#
# The replay gate (scripts/replay_gate.sh, CI job replay-gate) replays
# the committed trace and diffs the report against the golden, so this
# corpus pins the trace format AND the closed-loop mission semantics.
# Regenerating it is a deliberate act (rerun this script and commit the
# diff), never a side effect. The mission parameters mirror
# TestRecordReplayCLI in cmd/delorean.
set -eu
cd "$(dirname "$0")/.." || exit 1

OUT_DIR=internal/sim/testdata
TRACE=$OUT_DIR/attack_mission.trace
GOLD=$OUT_DIR/attack_mission.report.golden.json

mkdir -p "$OUT_DIR"
go run ./cmd/delorean \
    -rv ArduCopter -defense DeLorean -path S \
    -attack GPS,gyroscope -attack-start 12 -attack-dur 10 \
    -wind 1 -seed 7 -max-sec 45 \
    -record "$TRACE" -report "$GOLD"

echo "recorded corpus:"
ls -l "$TRACE" "$GOLD"
