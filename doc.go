// Package repro is a from-scratch Go reproduction of "Diagnosis-guided
// Attack Recovery for Securing Robotic Vehicles from Sensor Deception
// Attacks" (the DeLorean framework): a staged defense pipeline — attack
// detection, factor-graph attack diagnosis, historic-states
// checkpointing, state reconstruction, targeted LQR attack recovery, and
// a recovery-exit monitor, wired by an explicit recovery-mode FSM — for
// simulated quadcopters and ground rovers. The paper's baselines (SSR,
// PID-Piper, LQR-O) are alternative stage compositions in the same
// pipeline, and a benchmark harness regenerates every table and figure
// of the paper's evaluation.
//
// See README.md for a map of the packages, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
