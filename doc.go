// Package repro is a from-scratch Go reproduction of "Diagnosis-guided
// Attack Recovery for Securing Robotic Vehicles from Sensor Deception
// Attacks" (the DeLorean framework): attack detection, factor-graph
// attack diagnosis, historic-states checkpointing, state reconstruction,
// and targeted LQR attack recovery for simulated quadcopters and ground
// rovers, together with the paper's baselines (SSR, PID-Piper, LQR-O) and
// a benchmark harness that regenerates every table and figure of the
// paper's evaluation.
//
// See README.md for a map of the packages, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
