// Package repro is a from-scratch Go reproduction of "Diagnosis-guided
// Attack Recovery for Securing Robotic Vehicles from Sensor Deception
// Attacks" (the DeLorean framework): a staged defense pipeline — attack
// detection, factor-graph attack diagnosis, historic-states
// checkpointing, state reconstruction, targeted LQR attack recovery, and
// a recovery-exit monitor, wired by an explicit recovery-mode FSM — for
// simulated quadcopters and ground rovers. The paper's baselines (SSR,
// PID-Piper, LQR-O) are alternative stage compositions in the same
// pipeline, and a benchmark harness regenerates every table and figure
// of the paper's evaluation.
//
// The mission harness (internal/sim) reads its measurements through the
// sensors.Source seam: the simulator suite (sim.SimSource), a recorded
// on-disk trace (internal/source with internal/trace's versioned
// format), or externally supplied multi-rate per-sensor streams
// time-aligned by source.Bus. Because the closed loop is a
// deterministic function of the measurement stream and the seed, a
// recorded mission replays bit-identically — CI replays a committed
// trace and diffs the run report byte for byte.
//
// The same evaluator runs as a long-lived service: cmd/delorean-server
// exposes missions and seed-sweep experiments over an HTTP JSON API
// (internal/service) with NDJSON result streaming, bounded queues with
// backpressure, per-tenant quotas, and graceful drain. Determinism
// survives the service boundary — the same request body streams
// byte-identical bytes at any pool size, and CI's service-smoke gate
// replays the committed trace over real HTTP against the same golden.
//
// Every execution path — experiment sweeps, the service pool, and the
// batched fleet executor — dispatches through one engine seam
// (internal/engine): pre-drawn seeded jobs in, submission-order results
// and telemetry out. On top of it, internal/campaign runs declarative
// Monte-Carlo studies (grid or random sweeps over profiles, strategies,
// attack widths, onset, wind, and δ-scale) partitioned into
// checkpointable shards: each finished shard's partial report persists
// atomically, an interrupted study resumes by skipping completed
// shards, and shard reports merge exactly — the study bytes are
// invariant to shard count, worker count, engine choice, and
// interruption history.
//
// See README.md for a map of the packages, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
