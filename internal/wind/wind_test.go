package wind

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCalmIsZero(t *testing.T) {
	m := Calm()
	for i := 0; i < 100; i++ {
		if w := m.Step(0.01); w.Speed() != 0 {
			t.Fatalf("calm wind produced %v", w)
		}
	}
}

func TestMeanFlowDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(5, 0, 0.1, rng) // heading +x
	var sx, sy float64
	n := 5000
	for i := 0; i < n; i++ {
		w := m.Step(0.01)
		sx += w.VX
		sy += w.VY
	}
	if mean := sx / float64(n); math.Abs(mean-5) > 0.5 {
		t.Errorf("mean x wind = %v, want ≈ 5", mean)
	}
	if mean := sy / float64(n); math.Abs(mean) > 0.5 {
		t.Errorf("mean y wind = %v, want ≈ 0", mean)
	}
}

func TestGustsVary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(3, 0, 1.0, rng)
	first := m.Step(0.01)
	var varied bool
	for i := 0; i < 100; i++ {
		if w := m.Step(0.01); w != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("gusty wind never varied")
	}
}

func TestGustTemporalCorrelation(t *testing.T) {
	// Consecutive samples of an OU process with τ=2 s at dt=0.01 must be
	// highly correlated: |w(t+dt) − w(t)| ≪ gust stdev.
	rng := rand.New(rand.NewSource(3))
	m := New(0, 0, 2.0, rng)
	prev := m.Step(0.01)
	var maxJump float64
	for i := 0; i < 2000; i++ {
		cur := m.Step(0.01)
		if d := math.Abs(cur.VX - prev.VX); d > maxJump {
			maxJump = d
		}
		prev = cur
	}
	if maxJump > 1.0 {
		t.Errorf("per-tick gust jump %v too large for a correlated process", maxJump)
	}
}

func TestNilRNGSafe(t *testing.T) {
	m := &Model{MeanSpeed: 5}
	if w := m.Step(0.01); w.Speed() != 0 {
		t.Errorf("nil-rng model should be calm, got %v", w)
	}
}

// Property: the gust process stays bounded (no blow-up) for any seed.
func TestPropertyGustsBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(2, 1, 1.5, rng)
		for i := 0; i < 500; i++ {
			if m.Step(0.01).Speed() > 2+1.5*8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: determinism — same seed, same sequence.
func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a := New(4, 1, 0.8, rand.New(rand.NewSource(seed)))
		b := New(4, 1, 0.8, rand.New(rand.NewSource(seed)))
		for i := 0; i < 50; i++ {
			if a.Step(0.01) != b.Step(0.01) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
