// Package wind models environmental wind as an Ornstein–Uhlenbeck gust
// process around a configurable mean flow. The paper's evaluation
// simulates wind between 0–10 m/s for the mission mix (§5) and a fixed
// ~15 km/h (≈4.2 m/s) condition to provoke detector false alarms for the
// diagnosis-FP experiment (§6.1).
package wind

import (
	"math"
	"math/rand"

	"repro/internal/floats"
	"repro/internal/vehicle"
)

// Model generates a temporally correlated wind field. The zero value is a
// dead calm.
type Model struct {
	// MeanSpeed is the average wind speed in m/s.
	MeanSpeed float64
	// Direction is the mean flow heading in radians (world frame).
	Direction float64
	// GustStdev is the standard deviation of the gust fluctuation, m/s.
	GustStdev float64
	// Tau is the gust correlation time constant in seconds.
	Tau float64

	rng   *rand.Rand
	gustX float64
	gustY float64
	gustZ float64
}

// New returns a wind model with mean speed (m/s), heading (rad), gust
// stdev (m/s), and deterministic source rng. Tau defaults to 2 s.
func New(meanSpeed, direction, gustStdev float64, rng *rand.Rand) *Model {
	return &Model{
		MeanSpeed: meanSpeed,
		Direction: direction,
		GustStdev: gustStdev,
		Tau:       2,
		rng:       rng,
	}
}

// Calm returns a zero-wind model.
func Calm() *Model {
	return &Model{rng: rand.New(rand.NewSource(0))}
}

// Step advances the gust process by dt seconds and returns the current
// wind vector.
func (m *Model) Step(dt float64) vehicle.Wind {
	if m.rng == nil || (floats.Zero(m.MeanSpeed) && floats.Zero(m.GustStdev)) {
		return vehicle.Wind{}
	}
	tau := m.Tau
	if tau <= 0 {
		tau = 2
	}
	// Exact OU discretization: x' = x·e^(−dt/τ) + σ·√(1−e^(−2dt/τ))·N(0,1).
	decay := math.Exp(-dt / tau)
	diff := m.GustStdev * math.Sqrt(1-decay*decay)
	m.gustX = m.gustX*decay + diff*m.rng.NormFloat64()
	m.gustY = m.gustY*decay + diff*m.rng.NormFloat64()
	m.gustZ = m.gustZ*decay + 0.3*diff*m.rng.NormFloat64()

	return vehicle.Wind{
		VX: m.MeanSpeed*math.Cos(m.Direction) + m.gustX,
		VY: m.MeanSpeed*math.Sin(m.Direction) + m.gustY,
		VZ: m.gustZ,
	}
}
