// Package clock is the sanctioned wall-clock seam for the deterministic
// packages (internal/sim, internal/experiments, internal/mission,
// internal/core). The determinism analyzer (internal/lint) forbids direct
// time.Now/time.Since there: overhead telemetry may read the wall clock,
// but only through this seam, so replay harnesses and tests can
// substitute a virtual clock and traces stay bit-for-bit reproducible.
package clock

import (
	"sync"
	"time"
)

var (
	mu    sync.RWMutex
	nowFn = time.Now
)

// Now returns the current time from the active clock source (the real
// wall clock unless a test has substituted one).
func Now() time.Time {
	mu.RLock()
	fn := nowFn
	mu.RUnlock()
	return fn()
}

// Since returns the elapsed time since t per the active clock source.
func Since(t time.Time) time.Duration {
	return Now().Sub(t)
}

// SetForTest substitutes the clock source and returns a restore
// function. Tests must call restore (typically via defer or t.Cleanup)
// before the next test runs.
func SetForTest(fn func() time.Time) (restore func()) {
	mu.Lock()
	prev := nowFn
	nowFn = fn
	mu.Unlock()
	return func() {
		mu.Lock()
		nowFn = prev
		mu.Unlock()
	}
}
