package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	a := Now()
	b := Now()
	if b.Before(a) {
		t.Errorf("Now went backwards: %v then %v", a, b)
	}
	if Since(a) < 0 {
		t.Errorf("Since(a) = %v, want >= 0", Since(a))
	}
}

func TestSetForTest(t *testing.T) {
	fixed := time.Date(2024, 7, 1, 12, 0, 0, 0, time.UTC)
	restore := SetForTest(func() time.Time { return fixed })
	if got := Now(); !got.Equal(fixed) {
		t.Errorf("Now() = %v under test clock, want %v", got, fixed)
	}
	if got := Since(fixed.Add(-time.Minute)); got != time.Minute {
		t.Errorf("Since = %v, want 1m", got)
	}
	restore()
	if Now().Equal(fixed) {
		t.Error("restore did not reinstate the real clock")
	}
}
