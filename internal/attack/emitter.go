package attack

import (
	"math"

	"repro/internal/sensors"
)

// Emitter models the physical signal source mounting the SDA (§2.3:
// "attackers can deploy signal emitters in locations of their choosing").
// The injection only reaches the vehicle while it is within Range of the
// emitter (§5.3 derives 200 m as the strongest plausible range, from the
// GPS spoofer; Table 2's "Max Range" column).
type Emitter struct {
	// X, Y is the emitter's ground position.
	X, Y float64
	// Range is the effective radius in metres.
	Range float64
}

// Covers reports whether the vehicle position (x, y) is within range.
func (e Emitter) Covers(x, y float64) bool {
	if e.Range <= 0 {
		return true // unset range = idealized full-mission coverage
	}
	dx, dy := x-e.X, y-e.Y
	return math.Hypot(dx, dy) <= e.Range
}

// WithEmitter attaches a physical emitter to the SDA: the bias reaches
// the sensors only while the attack window is open AND the vehicle is
// inside the emitter's range. It returns the SDA for chaining.
func (a *SDA) WithEmitter(e Emitter) *SDA {
	a.emitter = &e
	return a
}

// BiasAtPos returns the injected bias at time t for a vehicle at ground
// position (x, y), honouring the emitter's range if one is attached.
func (a *SDA) BiasAtPos(t, x, y float64) sensors.Bias {
	if a.emitter != nil && !a.emitter.Covers(x, y) {
		return sensors.Bias{}
	}
	return a.BiasAt(t)
}

// BiasAtPos returns the schedule's total injected bias at time t for a
// vehicle at (x, y).
func (s *Schedule) BiasAtPos(t, x, y float64) sensors.Bias {
	var total sensors.Bias
	for _, a := range s.Attacks {
		b := a.BiasAtPos(t, x, y)
		for i := 0; i < 3; i++ {
			total.GPSPos[i] += b.GPSPos[i]
			total.GPSVel[i] += b.GPSVel[i]
			total.Gyro[i] += b.Gyro[i]
			total.Accel[i] += b.Accel[i]
		}
		total.MagYaw += b.MagYaw
		total.Baro += b.Baro
	}
	return total
}

// InRangeAt reports whether any attack is active at t and physically
// reaches a vehicle at (x, y).
func (s *Schedule) InRangeAt(t, x, y float64) bool {
	for _, a := range s.Attacks {
		if a.ActiveAt(t) && (a.emitter == nil || a.emitter.Covers(x, y)) {
			return true
		}
	}
	return false
}
