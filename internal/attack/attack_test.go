package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sensors"
)

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.GPSBiasMin != 5 || p.GPSBiasMax != 50 {
		t.Errorf("GPS range = [%v, %v], want [5, 50]", p.GPSBiasMin, p.GPSBiasMax)
	}
	if p.GyroBiasMin != 0.5 || p.GyroBiasMax != 9.47 {
		t.Errorf("gyro range = [%v, %v]", p.GyroBiasMin, p.GyroBiasMax)
	}
	if p.AccelBiasMin != 0.5 || p.AccelBiasMax != 6.2 {
		t.Errorf("accel range = [%v, %v]", p.AccelBiasMin, p.AccelBiasMax)
	}
	if p.MagYaw != math.Pi {
		t.Errorf("mag yaw = %v, want π", p.MagYaw)
	}
	if p.RangeM != 200 {
		t.Errorf("range = %v, want 200", p.RangeM)
	}
}

func TestNewDrawsWithinRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := DefaultParams()
	for i := 0; i < 50; i++ {
		a := New(rng, p, sensors.NewTypeSet(sensors.GPS, sensors.Gyro, sensors.Accel), 0, 10)
		b := a.Base()
		for ax := 0; ax < 3; ax++ {
			if g := math.Abs(b.GPSPos[ax]); g < p.GPSBiasMin || g > p.GPSBiasMax {
				t.Fatalf("GPS bias %v out of range", g)
			}
			if g := math.Abs(b.Gyro[ax]); g < p.GyroBiasMin || g > p.GyroBiasMax {
				t.Fatalf("gyro bias %v out of range", g)
			}
			if g := math.Abs(b.Accel[ax]); g < p.AccelBiasMin || g > p.AccelBiasMax {
				t.Fatalf("accel bias %v out of range", g)
			}
		}
		if b.MagYaw != 0 || b.Baro != 0 {
			t.Fatalf("untargeted sensors got bias: %+v", b)
		}
	}
}

func TestActiveWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(rng, DefaultParams(), sensors.NewTypeSet(sensors.GPS), 5, 30)
	tests := []struct {
		give float64
		want bool
	}{
		{give: 0, want: false},
		{give: 4.99, want: false},
		{give: 5, want: true},
		{give: 29.99, want: true},
		{give: 30, want: false},
	}
	for _, tt := range tests {
		if got := a.ActiveAt(tt.give); got != tt.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", tt.give, got, tt.want)
		}
		if (a.BiasAt(tt.give).IsZero()) == tt.want {
			t.Errorf("BiasAt(%v) zero-ness inconsistent with window", tt.give)
		}
	}
}

func TestPersistentBiasConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(rng, DefaultParams(), sensors.NewTypeSet(sensors.Baro), 0, 10)
	if a.BiasAt(1) != a.BiasAt(9) {
		t.Error("persistent bias varied over time")
	}
}

func TestGradualRampsUp(t *testing.T) {
	bias := sensors.Bias{GPSPos: [3]float64{10, 0, 0}}
	a := NewWithBias(rand.New(rand.NewSource(3)), bias, 0, 20, Gradual)
	early := a.BiasAt(1).GPSPos[0]
	late := a.BiasAt(19).GPSPos[0]
	if early >= late {
		t.Errorf("gradual bias not increasing: %v then %v", early, late)
	}
	if math.Abs(late-10) > 1 {
		t.Errorf("gradual bias should approach base: %v", late)
	}
}

func TestGradualRampDurClamp(t *testing.T) {
	bias := sensors.Bias{Baro: 4}
	a := NewWithBias(rand.New(rand.NewSource(3)), bias, 0, 100, Gradual)
	a.RampDur = 10
	if got := a.BiasAt(50).Baro; got != 4 {
		t.Errorf("after ramp, bias = %v, want full 4", got)
	}
}

func TestIntermittentDutyCycle(t *testing.T) {
	bias := sensors.Bias{Baro: 4}
	a := NewWithBias(rand.New(rand.NewSource(3)), bias, 0, 100, Intermittent)
	a.OnDur, a.OffDur = 2, 3
	if a.BiasAt(1).Baro != 4 {
		t.Error("should be on during on-phase")
	}
	if a.BiasAt(3).Baro != 0 {
		t.Error("should be off during off-phase")
	}
	if a.BiasAt(6).Baro != 4 {
		t.Error("should be on again in the next period")
	}
}

func TestRandomBiasBounded(t *testing.T) {
	bias := sensors.Bias{GPSPos: [3]float64{10, 0, 0}}
	a := NewWithBias(rand.New(rand.NewSource(4)), bias, 0, 100, RandomBias)
	for i := 0; i < 100; i++ {
		v := a.BiasAt(float64(i)).GPSPos[0]
		if v < 0 || v > 10 {
			t.Fatalf("random bias %v outside [0, base]", v)
		}
	}
}

func TestScheduleSumsOverlapping(t *testing.T) {
	b1 := sensors.Bias{Baro: 4}
	b2 := sensors.Bias{Baro: 2, MagYaw: 1}
	s := NewSchedule(
		NewWithBias(nil, b1, 0, 10, Persistent),
		NewWithBias(nil, b2, 5, 15, Persistent),
	)
	if got := s.BiasAt(7).Baro; got != 6 {
		t.Errorf("overlapping baro = %v, want 6", got)
	}
	if got := s.BiasAt(2).Baro; got != 4 {
		t.Errorf("single baro = %v, want 4", got)
	}
	if !s.ActiveAt(12) || s.ActiveAt(20) {
		t.Error("ActiveAt wrong")
	}
	if got := s.TargetsAt(7); !got.Equal(sensors.NewTypeSet(sensors.Mag, sensors.Baro)) {
		t.Errorf("TargetsAt = %v", got)
	}
}

func TestCombinationsCounts(t *testing.T) {
	// C(5,k) = 5, 10, 10, 5, 1 for k = 1..5.
	wants := map[int]int{0: 1, 1: 5, 2: 10, 3: 10, 4: 5, 5: 1, 6: 0}
	for k, want := range wants {
		if got := len(Combinations(k)); got != want {
			t.Errorf("len(Combinations(%d)) = %d, want %d", k, got, want)
		}
	}
}

func TestCombinationsAreDistinctAndSizedK(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Combinations(2) {
		if c.Len() != 2 {
			t.Errorf("combo %v has size %d", c, c.Len())
		}
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate combo %v", c)
		}
		seen[key] = true
	}
}

func TestRandomTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for k := 1; k <= 5; k++ {
		got := RandomTargets(rng, k)
		if got.Len() != k {
			t.Errorf("RandomTargets(%d).Len() = %d", k, got.Len())
		}
	}
	if got := RandomTargets(rng, 9); got.Len() != 0 {
		t.Errorf("impossible k should give empty set, got %v", got)
	}
}

// Property: an SDA's reported targets always equal its base bias targets.
func TestPropertyTargetsConsistent(t *testing.T) {
	f := func(seed int64, k0 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(k0)%5
		targets := RandomTargets(rng, k)
		a := New(rng, DefaultParams(), targets, 0, 10)
		return a.Base().Targets().Equal(targets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: outside the window the bias is always exactly zero, for every
// mode.
func TestPropertyZeroOutsideWindow(t *testing.T) {
	f := func(seed int64, mode0 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := Mode(1 + int(mode0)%4)
		a := NewWithBias(rng, sensors.Bias{Baro: 5}, 10, 20, mode)
		return a.BiasAt(9.99).IsZero() && a.BiasAt(20.01).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if Persistent.String() != "persistent" || Intermittent.String() != "intermittent" {
		t.Error("Mode.String wrong")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should stringify")
	}
}

func TestEmitterCoverage(t *testing.T) {
	e := Emitter{X: 100, Y: 0, Range: 200}
	tests := []struct {
		x, y float64
		want bool
	}{
		{x: 100, y: 0, want: true},
		{x: 299, y: 0, want: true},
		{x: 301, y: 0, want: false},
		{x: 100, y: 200, want: true},
		{x: 100, y: 201, want: false},
	}
	for _, tt := range tests {
		if got := e.Covers(tt.x, tt.y); got != tt.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
	if !(Emitter{}).Covers(1e6, 1e6) {
		t.Error("zero-range emitter should cover everything (idealized)")
	}
}

func TestBiasAtPosHonoursRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(rng, DefaultParams(), sensors.NewTypeSet(sensors.GPS), 0, 100).
		WithEmitter(Emitter{X: 0, Y: 0, Range: 200})
	if a.BiasAtPos(10, 50, 0).IsZero() {
		t.Error("in-range vehicle should receive the bias")
	}
	if !a.BiasAtPos(10, 500, 0).IsZero() {
		t.Error("out-of-range vehicle should not receive the bias")
	}
	// Without an emitter the bias is position-independent.
	b := New(rng, DefaultParams(), sensors.NewTypeSet(sensors.GPS), 0, 100)
	if b.BiasAtPos(10, 1e6, 1e6).IsZero() {
		t.Error("emitterless SDA should reach everywhere")
	}
}

func TestScheduleInRangeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := New(rng, DefaultParams(), sensors.NewTypeSet(sensors.Baro), 5, 15).
		WithEmitter(Emitter{X: 0, Y: 0, Range: 100})
	s := NewSchedule(a)
	if s.InRangeAt(10, 50, 0) != true {
		t.Error("active + in range should report true")
	}
	if s.InRangeAt(10, 500, 0) != false {
		t.Error("active + out of range should report false")
	}
	if s.InRangeAt(20, 50, 0) != false {
		t.Error("inactive window should report false")
	}
	if got := s.BiasAtPos(10, 500, 0); !got.IsZero() {
		t.Errorf("out-of-range schedule bias = %+v", got)
	}
}
