// Package attack implements the Sensor Deception Attack (SDA) engine of
// §2.2/§5.3: software fault injection that adds bias to raw sensor
// measurements of any subset of the RV's sensor types, with the paper's
// Table 2 bias ranges, plus the stealthy attack modes of §6.5 (persistent,
// random, gradually increasing, and intermittent bias).
//
// The paper mounted its attacks exactly this way ("we emulated the attacks
// through targeted software modifications ... adding a bias to them"), so
// this package is a faithful reimplementation, not a substitution.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sensors"
)

// Params holds the per-sensor bias ranges and attack range of Table 2.
type Params struct {
	// GPSBiasMin/Max bound the GPS position bias, metres (5–50 m: the
	// receiver's maximum plausible hop per update).
	GPSBiasMin, GPSBiasMax float64
	// GyroBiasMin/Max bound the gyroscope rate bias, rad/s.
	GyroBiasMin, GyroBiasMax float64
	// AccelBiasMin/Max bound the accelerometer bias, m/s².
	AccelBiasMin, AccelBiasMax float64
	// MagYaw is the heading-rotation injection, radians (paper: 180°).
	MagYaw float64
	// BaroBias is the barometric altitude bias, metres (paper: 0.1 kPa,
	// ≈ 8.3 m of altitude at sea level).
	BaroBias float64
	// RangeM is the assumed emitter range, metres (paper: 200 m, the GPS
	// spoofer's reach, assumed for every sensor as a strong adversary).
	RangeM float64
}

// DefaultParams returns the Table 2 attack parameters.
func DefaultParams() Params {
	return Params{
		GPSBiasMin: 5, GPSBiasMax: 50,
		GyroBiasMin: 0.5, GyroBiasMax: 9.47,
		AccelBiasMin: 0.5, AccelBiasMax: 6.2,
		MagYaw:   math.Pi,
		BaroBias: 8.3,
		RangeM:   200,
	}
}

// Mode selects the temporal shape of the injected bias.
type Mode int

// Attack modes. Persistent is the standard SDA; the other three are the
// adaptive stealthy variants of §6.5.
const (
	Persistent   Mode = iota + 1
	RandomBias        // A1: random per-tick modulation of the bias
	Gradual           // A2: bias ramps up over the attack window
	Intermittent      // A3: bias toggles on/off with a duty cycle
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Persistent:
		return "persistent"
	case RandomBias:
		return "random"
	case Gradual:
		return "gradual"
	case Intermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SDA is one sensor deception attack instance: a target sensor set, a time
// window, a temporal mode, and the drawn base bias.
type SDA struct {
	Targets    sensors.TypeSet
	Start, End float64
	Mode       Mode

	base sensors.Bias
	rng  *rand.Rand

	// Intermittent duty cycle: on for OnDur, off for OffDur, repeating.
	OnDur, OffDur float64
	// RampDur is the Gradual mode's ramp duration; defaults to the full
	// attack window.
	RampDur float64

	// emitter optionally bounds the attack's physical reach (see
	// WithEmitter).
	emitter *Emitter
}

// New draws a persistent SDA against the given targets over [start, end)
// with bias magnitudes drawn uniformly from the Table 2 ranges (random
// sign per axis), using rng for all draws.
func New(rng *rand.Rand, p Params, targets sensors.TypeSet, start, end float64) *SDA {
	a := &SDA{
		Targets: targets.Clone(),
		Start:   start,
		End:     end,
		Mode:    Persistent,
		rng:     rng,
	}
	a.base = drawBias(rng, p, targets)
	return a
}

// NewWithBias builds an SDA with an explicit bias (used by stealthy
// attacks, which inject controlled sub-threshold bias) and mode.
func NewWithBias(rng *rand.Rand, bias sensors.Bias, start, end float64, mode Mode) *SDA {
	return &SDA{
		Targets: bias.Targets(),
		Start:   start,
		End:     end,
		Mode:    mode,
		base:    bias,
		rng:     rng,
		OnDur:   1.0,
		OffDur:  1.0,
	}
}

// Base returns the attack's base bias (the full injection at scale 1).
func (a *SDA) Base() sensors.Bias { return a.base }

// ActiveAt reports whether the attack window covers time t.
func (a *SDA) ActiveAt(t float64) bool {
	return t >= a.Start && t < a.End
}

// BiasAt returns the injected bias at time t; zero outside the window.
func (a *SDA) BiasAt(t float64) sensors.Bias {
	if !a.ActiveAt(t) {
		return sensors.Bias{}
	}
	switch a.Mode {
	case Persistent:
		return a.base
	case RandomBias:
		// A1: random fraction of the base each tick.
		return a.base.Scale(a.rng.Float64())
	case Gradual:
		// A2: linear ramp from 0 to the full bias over RampDur.
		ramp := a.RampDur
		if ramp <= 0 {
			ramp = a.End - a.Start
		}
		f := (t - a.Start) / ramp
		if f > 1 {
			f = 1
		}
		return a.base.Scale(f)
	case Intermittent:
		// A3: on/off duty cycle.
		period := a.OnDur + a.OffDur
		if period <= 0 {
			return a.base
		}
		phase := math.Mod(t-a.Start, period)
		if phase < a.OnDur {
			return a.base
		}
		return sensors.Bias{}
	default:
		return a.base
	}
}

func drawBias(rng *rand.Rand, p Params, targets sensors.TypeSet) sensors.Bias {
	var b sensors.Bias
	sign := func() float64 {
		if rng.Float64() < 0.5 {
			return -1
		}
		return 1
	}
	uniform := func(lo, hi float64) float64 {
		return lo + rng.Float64()*(hi-lo)
	}
	if targets.Has(sensors.GPS) {
		for i := 0; i < 3; i++ {
			b.GPSPos[i] = sign() * uniform(p.GPSBiasMin, p.GPSBiasMax)
		}
		// A hopping receiver also reports inconsistent velocity; keep the
		// induced velocity bias modest relative to the position hop.
		for i := 0; i < 3; i++ {
			b.GPSVel[i] = sign() * uniform(0.2, 2.0)
		}
	}
	if targets.Has(sensors.Gyro) {
		for i := 0; i < 3; i++ {
			b.Gyro[i] = sign() * uniform(p.GyroBiasMin, p.GyroBiasMax)
		}
	}
	if targets.Has(sensors.Accel) {
		for i := 0; i < 3; i++ {
			b.Accel[i] = sign() * uniform(p.AccelBiasMin, p.AccelBiasMax)
		}
	}
	if targets.Has(sensors.Mag) {
		b.MagYaw = sign() * p.MagYaw
	}
	if targets.Has(sensors.Baro) {
		b.Baro = sign() * p.BaroBias
	}
	return b
}

// Schedule composes multiple SDAs over a mission (e.g. Fig. 2's two attack
// instances). Overlapping attacks sum their biases channel-wise.
type Schedule struct {
	Attacks []*SDA
}

// NewSchedule builds a schedule from the given attacks.
func NewSchedule(attacks ...*SDA) *Schedule {
	return &Schedule{Attacks: attacks}
}

// BiasAt returns the total injected bias at time t.
func (s *Schedule) BiasAt(t float64) sensors.Bias {
	var total sensors.Bias
	for _, a := range s.Attacks {
		b := a.BiasAt(t)
		for i := 0; i < 3; i++ {
			total.GPSPos[i] += b.GPSPos[i]
			total.GPSVel[i] += b.GPSVel[i]
			total.Gyro[i] += b.Gyro[i]
			total.Accel[i] += b.Accel[i]
		}
		total.MagYaw += b.MagYaw
		total.Baro += b.Baro
	}
	return total
}

// ActiveAt reports whether any attack window covers t.
func (s *Schedule) ActiveAt(t float64) bool {
	for _, a := range s.Attacks {
		if a.ActiveAt(t) {
			return true
		}
	}
	return false
}

// TargetsAt returns the union of targets of attacks active at t.
func (s *Schedule) TargetsAt(t float64) sensors.TypeSet {
	out := sensors.NewTypeSet()
	for _, a := range s.Attacks {
		if a.ActiveAt(t) {
			for _, typ := range a.Targets.List() {
				out.Add(typ)
			}
		}
	}
	return out
}

// Combinations returns every k-subset of the five sensor types, in a
// deterministic order. The experiments iterate these to mount SDAs
// "targeting any combination of sensors" (§2.2).
func Combinations(k int) []sensors.TypeSet {
	types := sensors.AllTypes()
	var out []sensors.TypeSet
	var rec func(start int, cur []sensors.Type)
	rec = func(start int, cur []sensors.Type) {
		if len(cur) == k {
			out = append(out, sensors.NewTypeSet(cur...))
			return
		}
		for i := start; i < len(types); i++ {
			rec(i+1, append(cur, types[i]))
		}
	}
	if k >= 0 && k <= len(types) {
		rec(0, nil)
	}
	return out
}

// RandomTargets draws a uniformly random k-subset of sensor types.
func RandomTargets(rng *rand.Rand, k int) sensors.TypeSet {
	combos := Combinations(k)
	if len(combos) == 0 {
		return sensors.NewTypeSet()
	}
	return combos[rng.Intn(len(combos))].Clone()
}
