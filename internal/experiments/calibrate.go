package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/runner"
	"repro/internal/sensors"
	"repro/internal/stat"
	"repro/internal/vehicle"
)

// CalibrationResult is the §5.4 threshold-derivation output for one RV:
// the per-state δ table (one Table 3 row) and the Fig. 8a CDF evidence
// that k = 3 bounds the attack-free error.
type CalibrationResult struct {
	Profile vehicle.ProfileName
	Delta   diagnosis.Delta
	// FracUnderDelta is the fraction of attack-free error samples under δ
	// per state (Fig. 8a claims ≈ 1.0).
	FracUnderDelta [sensors.NumStates]float64
	// CDF is the empirical CDF of the z-position error (the Fig. 8a
	// example channel).
	CDF []stat.CDFPoint
	// Missions is the number of attack-free calibration missions flown.
	Missions int
}

// Calibrate runs attack-free missions for the profile (§5.4: "between
// 15–25 attack-free missions for each RV"), derives δ = median + k·stdev
// per physical state, and validates the thresholds on held-out missions.
// Calibration and validation missions are drawn up front and flown as one
// parallel sweep; the held-out block starts at index opt.Missions.
func Calibrate(ctx context.Context, p vehicle.Profile, opt Options) (CalibrationResult, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	out := CalibrationResult{Profile: p.Name, Missions: opt.Missions}

	heldMissions := opt.Missions/2 + 1
	var jobs []runner.Job
	for i := 0; i < opt.Missions+heldMissions; i++ {
		sc := drawScenario(p, rng, opt.Wind)
		cfg := sc.simConfig(p, core.StrategyNone, core.DefaultDelta(p), 15)
		cfg.CollectErrors = true
		jobs = append(jobs, runner.Job{
			Label: fmt.Sprintf("calibrate/%s/mission=%d/seed=%d", p.Name, i, sc.seed),
			Cfg:   cfg,
		})
	}
	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	var samples []sensors.PhysState
	for _, res := range results[:opt.Missions] {
		samples = append(samples, res.ErrorSamples...)
	}
	delta := core.CalibrateDelta(samples, 3)
	out.Delta = delta

	// Validation pass on held-out missions (§5.4: "we validated δ values
	// by running another 15 missions").
	var held []sensors.PhysState
	for _, res := range results[opt.Missions:] {
		held = append(held, res.ErrorSamples...)
	}
	zErrs := make([]float64, 0, len(held))
	for _, idx := range sensors.AllStates() {
		var under, total int
		for _, e := range held {
			total++
			if e[idx] <= delta[idx] {
				under++
			}
		}
		if total > 0 {
			out.FracUnderDelta[idx] = float64(under) / float64(total)
		}
	}
	for _, e := range held {
		zErrs = append(zErrs, e[sensors.SZ])
	}
	out.CDF = stat.EmpiricalCDF(zErrs)
	return out, nil
}

// StealthyWindowResult is the Fig. 8b / §5.4 window-sizing output: the
// distribution of times a stealthy GPS attack evades the CUSUM detector,
// and the derived checkpoint window size.
type StealthyWindowResult struct {
	Profile vehicle.ProfileName
	// DetectionDelays holds the per-mission time from stealthy-attack
	// onset to the detector alert (capped at the attack duration when
	// never detected).
	DetectionDelays []float64
	// WindowSec is the chosen window: the maximum observed delay plus a
	// 10% margin, ensuring ~100% detection within one window.
	WindowSec float64
	// DetectedAll reports whether every probe was detected.
	DetectedAll bool
}

// StealthyWindow probes how long a stealthy GPS attack (gradual
// sub-threshold bias ramp) can evade detection on the profile, and sizes
// the checkpoint window accordingly (§5.4: "stealthy attacks against GPS
// remain undetected for the maximum duration... we determine the window
// size for each RV to be larger").
func StealthyWindow(ctx context.Context, p vehicle.Profile, opt Options) (StealthyWindowResult, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	out := StealthyWindowResult{Profile: p.Name, DetectedAll: true}

	const attackDur = 30.0
	var jobs []runner.Job
	starts := make([]float64, 0, opt.Missions)
	for i := 0; i < opt.Missions; i++ {
		sc := drawScenario(p, rng, opt.Wind)
		start := sc.attackStart
		// Gradual ramp to a 12–25 m GPS offset over the full window: each
		// step stays under the instantaneous threshold, so only CUSUM can
		// catch it.
		mag := 12 + 13*rng.Float64()
		bias := sensors.Bias{GPSPos: [3]float64{mag, mag * 0.5, 0}}
		sda := attack.NewWithBias(rng, bias, start, start+attackDur, attack.Gradual)
		cfg := sc.simConfig(p, core.StrategyDeLorean, core.DefaultDelta(p), 60)
		cfg.Attacks = attack.NewSchedule(sda)
		cfg.TraceEvery = 5
		jobs = append(jobs, runner.Job{
			Label: fmt.Sprintf("fig8b/%s/mission=%d/seed=%d", p.Name, i, sc.seed),
			Cfg:   cfg,
		})
		starts = append(starts, start)
	}
	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	for i, res := range results {
		start := starts[i]
		delay := attackDur
		detected := false
		for _, tp := range res.Trace {
			if tp.T >= start && tp.AlertActive {
				delay = tp.T - start
				detected = true
				break
			}
		}
		if !detected {
			out.DetectedAll = false
		}
		out.DetectionDelays = append(out.DetectionDelays, delay)
	}
	_, maxDelay := minMax(out.DetectionDelays)
	out.WindowSec = 1.1 * maxDelay
	if out.WindowSec < 5 {
		out.WindowSec = 5
	}
	return out, nil
}

func minMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// OverheadResult is the Table 3 right-hand side for one real RV: CPU,
// battery, and memory overheads of running DeLorean.
type OverheadResult struct {
	Profile vehicle.ProfileName
	// CPUPercent is the defense modules' share of the control loop's
	// compute time, from the deterministic cost model (internal/core
	// costmodel.go) — identical on every run and at any worker count.
	CPUPercent float64
	// BatteryPercent is the extra motor-effort energy under attack
	// relative to the attack-free ground truth (recovery actions + delay).
	BatteryPercent float64
	// MemoryBytes is the peak checkpoint buffer footprint.
	MemoryBytes int
	// WindowSec is the checkpoint window used.
	WindowSec float64
}

// Overheads measures DeLorean's runtime overheads on the profile
// (Table 3, §6.6) by flying attacked missions and comparing against
// attack-free ground truth. Each mission submits an (attacked, ground
// truth) job pair.
func Overheads(ctx context.Context, p vehicle.Profile, delta diagnosis.Delta, window float64, opt Options) (OverheadResult, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 13))
	out := OverheadResult{Profile: p.Name, WindowSec: window}

	var jobs []runner.Job
	for i := 0; i < opt.Missions; i++ {
		sc := drawScenario(p, rng, opt.Wind)
		atk := sc.buildAttack(rng, 1+rng.Intn(2))
		cfg := sc.simConfig(p, core.StrategyDeLorean, delta, window)
		cfg.Attacks = atk
		jobs = append(jobs,
			runner.Job{
				Label: fmt.Sprintf("overheads/%s/mission=%d/seed=%d", p.Name, i, sc.seed),
				Cfg:   cfg,
			},
			runner.Job{
				Label: fmt.Sprintf("overheads/%s/gt/mission=%d/seed=%d", p.Name, i, sc.seed),
				Cfg:   sc.simConfig(p, core.StrategyDeLorean, delta, window),
			})
	}
	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	var defNS, totNS int64
	var energyAtk, energyGT float64
	for i := 0; i < opt.Missions; i++ {
		res, gt := results[2*i], results[2*i+1]
		defNS += res.DefenseNS
		totNS += res.TotalNS
		energyAtk += res.EnergyProxy
		if mb := res.MemoryBytes; mb > out.MemoryBytes {
			out.MemoryBytes = mb
		}
		energyGT += gt.EnergyProxy
	}
	if totNS > 0 {
		out.CPUPercent = 100 * float64(defNS) / float64(totNS)
	}
	if energyGT > 0 {
		out.BatteryPercent = 100 * (energyAtk - energyGT) / energyGT
	}
	return out, nil
}
