package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sensors"
)

// WriteTable4 renders Table 4 as markdown.
func WriteTable4(w io.Writer, r Table4Result) {
	fmt.Fprintf(w, "### Table 4 — Diagnosis TP/FP (%d missions per cell)\n\n", r.Missions)
	fmt.Fprintln(w, "| # sensors targeted | "+strings.Join(techniqueNames(r), " | ")+" |")
	fmt.Fprintln(w, "|---|"+strings.Repeat("---|", len(r.Rows)))
	for k := 0; k < 4; k++ {
		cells := make([]string, len(r.Rows))
		for i, row := range r.Rows {
			cells[i] = fmt.Sprintf("%.0f", row.TPByCount[k])
		}
		fmt.Fprintf(w, "| %d | %s |\n", k+1, strings.Join(cells, " | "))
	}
	avg := make([]string, len(r.Rows))
	fp := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		avg[i] = fmt.Sprintf("%.1f", row.AvgTP)
		fp[i] = fmt.Sprintf("%.0f", row.FP)
	}
	fmt.Fprintf(w, "| **Average TP** | %s |\n", strings.Join(avg, " | "))
	fmt.Fprintf(w, "| **FP (no attack)** | %s |\n", strings.Join(fp, " | "))
	gr := make([]string, len(r.GratuitousActivations))
	for i, g := range r.GratuitousActivations {
		gr[i] = fmt.Sprintf("%d", g)
	}
	fmt.Fprintf(w, "| **Gratuitous recovery activations** | %s |\n\n", strings.Join(gr, " | "))
}

func techniqueNames(r Table4Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Technique
	}
	return out
}

// WriteTable5 renders Table 5 as markdown.
func WriteTable5(w io.Writer, r Table5Result) {
	fmt.Fprintf(w, "### Table 5 — Recovery outcomes (%d missions per cell)\n\n", r.Missions)
	header := "| # sensors |"
	sep := "|---|"
	for _, t := range r.Techniques {
		header += fmt.Sprintf(" %s Crash | %s MS |", t, t)
		sep += "---|---|"
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, sep)
	for k := 0; k < 5; k++ {
		row := fmt.Sprintf("| %d |", k+1)
		for t := range r.Techniques {
			c := r.Cells[t][k]
			row += fmt.Sprintf(" %.0f | %.0f |", c.CrashRate, c.MissionSucc)
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)
}

// WriteTable6 renders Table 6 as markdown.
func WriteTable6(w io.Writer, r Table6Result) {
	fmt.Fprintf(w, "### Table 6 — DeLorean vs LQR-O (%d missions per cell)\n\n", r.Missions)
	fmt.Fprintln(w, "| # sensors | LQR-O RMSD | LQR-O MD%% | LQR-O Crash | LQR-O MS | DeLorean RMSD | DeLorean MD%% | DeLorean Crash | DeLorean MS |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|")
	for k := 0; k < 5; k++ {
		a, b := r.LQRO[k], r.DeLorean[k]
		fmt.Fprintf(w, "| %d | %.4f | %.2f | %.0f | %.0f | %.4f | %.2f | %.0f | %.0f |\n",
			k+1, a.RMSD, a.MissionDly, a.CrashRate, a.MissionSucc,
			b.RMSD, b.MissionDly, b.CrashRate, b.MissionSucc)
	}
	fmt.Fprintln(w)
}

// WriteTable7 renders Table 7 as markdown.
func WriteTable7(w io.Writer, r Table7Result) {
	fmt.Fprintf(w, "### Table 7 — Diagnosis & recovery on the real-RV profiles (%d missions per cell)\n\n", r.Missions)
	fmt.Fprintln(w, "| # sensors | Pixhawk TP | Pixhawk MS | Tarot TP | Tarot MS | Sky-Viper TP | Sky-Viper MS | AionR1 TP | AionR1 MS |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|")
	for k := 0; k < 5; k++ {
		row := fmt.Sprintf("| %d |", k+1)
		for _, rv := range r.Rows {
			row += fmt.Sprintf(" %.0f | %.0f |", rv.TPByCount[k], rv.MSByCount[k])
		}
		fmt.Fprintln(w, row)
	}
	row := "| **Average** |"
	for _, rv := range r.Rows {
		row += fmt.Sprintf(" %.1f | %.1f |", rv.AvgTP, rv.AvgMS)
	}
	fmt.Fprintln(w, row)
	row = "| **FP / crashes** |"
	for _, rv := range r.Rows {
		row += fmt.Sprintf(" %.0f%% | %d |", rv.FP, rv.Crashes)
	}
	fmt.Fprintln(w, row)
	fmt.Fprintln(w)
}

// WriteTrace renders a figure trace (Fig. 2 / Fig. 9) as a compact series
// plus summary statistics.
func WriteTrace(w io.Writer, title string, r TraceResult) {
	fmt.Fprintf(w, "### %s — %s recovery trace\n\n", title, r.Label)
	fmt.Fprintf(w, "RMSD %.4f rad, delay %.1f%%, final miss %.2f m, peak altitude overshoot %.2f m, success=%v, crashed=%v\n\n",
		r.RMSD, r.DelayPercent, r.FinalMiss, r.MaxDeviation, r.Success, r.Crashed)
	fmt.Fprintln(w, "| t (s) | true x | true z | believed z | recovering | attack |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for i, tp := range r.Trace {
		if i%4 != 0 {
			continue // decimate for readability
		}
		fmt.Fprintf(w, "| %.1f | %.1f | %.2f | %.2f | %v | %v |\n",
			tp.T, tp.Truth.X, tp.Truth.Z, tp.Believed.Z, tp.Recovering, tp.AttackActive)
	}
	fmt.Fprintln(w)
}

// WriteFig10 renders the stealthy-attack episodes.
func WriteFig10(w io.Writer, rs []Fig10Result) {
	fmt.Fprintln(w, "### Fig. 10 — Recovery under adaptive stealthy attacks")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| attack | detected within window | detection delay (s) | HS corruption (m) | landing offset (m) | mission success | crashed |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, r := range rs {
		fmt.Fprintf(w, "| %s | %v | %.2f | %.2f | %.2f | %v | %v |\n",
			r.Attack, r.DetectedWithinWindow, r.DetectionDelay, r.HSCorruption, r.FinalMiss, r.Success, r.Crashed)
	}
	fmt.Fprintln(w)
}

// WriteCalibration renders one Table 3 δ row plus the Fig. 8a evidence:
// the per-state thresholds with their held-out validation fractions and
// the decile CDF of the z-position error (the Fig. 8a example channel).
func WriteCalibration(w io.Writer, r CalibrationResult) {
	fmt.Fprintf(w, "#### %s (δ from %d attack-free missions, k = 3)\n\n", r.Profile, r.Missions)
	fmt.Fprintln(w, "| state | δ | fraction of held-out errors ≤ δ |")
	fmt.Fprintln(w, "|---|---|---|")
	for _, idx := range sensors.AllStates() {
		if r.Delta[idx] <= 0 {
			continue
		}
		fmt.Fprintf(w, "| %s | %.3f | %.3f |\n", idx, r.Delta[idx], r.FracUnderDelta[idx])
	}
	fmt.Fprintln(w)
	if n := len(r.CDF); n > 0 {
		fmt.Fprint(w, "Fig. 8a CDF of the attack-free z error (deciles): ")
		for d := 1; d <= 10; d++ {
			i := d*n/10 - 1
			if i < 0 {
				i = 0
			}
			fmt.Fprintf(w, "p%d=%.2f ", d*10, r.CDF[i].Value)
		}
		fmt.Fprintf(w, "— δ_z = %.2f\n\n", r.Delta[sensors.SZ])
	}
}

// WriteStealthyWindow renders the Fig. 8b window-sizing outcome.
func WriteStealthyWindow(w io.Writer, r StealthyWindowResult) {
	lo, hi := minMax(r.DetectionDelays)
	fmt.Fprintf(w, "- **%s**: stealthy-GPS detection delay %.1f–%.1f s over %d probes (all detected: %v) → window **%.1f s**\n",
		r.Profile, lo, hi, len(r.DetectionDelays), r.DetectedAll, r.WindowSec)
}

// WriteOverheads renders the Table 3 overhead columns.
func WriteOverheads(w io.Writer, rs []OverheadResult) {
	fmt.Fprintln(w, "| RV | CPU overhead | battery overhead | checkpoint memory | window |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range rs {
		fmt.Fprintf(w, "| %s | %.1f%% | %.1f%% | %.2f MB | %.1f s |\n",
			r.Profile, r.CPUPercent, r.BatteryPercent, float64(r.MemoryBytes)/1e6, r.WindowSec)
	}
	fmt.Fprintln(w)
}
