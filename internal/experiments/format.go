package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sensors"
)

// WriteTable4 renders Table 4 as markdown.
func WriteTable4(w io.Writer, r Table4Result) error {
	tw := &tableWriter{w: w}
	tw.printf("### Table 4 — Diagnosis TP/FP (%d missions per cell)\n\n", r.Missions)
	tw.println("| # sensors targeted | " + strings.Join(techniqueNames(r), " | ") + " |")
	tw.println("|---|" + strings.Repeat("---|", len(r.Rows)))
	for k := 0; k < 4; k++ {
		cells := make([]string, len(r.Rows))
		for i, row := range r.Rows {
			cells[i] = fmt.Sprintf("%.0f", row.TPByCount[k])
		}
		tw.printf("| %d | %s |\n", k+1, strings.Join(cells, " | "))
	}
	avg := make([]string, len(r.Rows))
	fp := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		avg[i] = fmt.Sprintf("%.1f", row.AvgTP)
		fp[i] = fmt.Sprintf("%.0f", row.FP)
	}
	tw.printf("| **Average TP** | %s |\n", strings.Join(avg, " | "))
	tw.printf("| **FP (no attack)** | %s |\n", strings.Join(fp, " | "))
	gr := make([]string, len(r.GratuitousActivations))
	for i, g := range r.GratuitousActivations {
		gr[i] = fmt.Sprintf("%d", g)
	}
	tw.printf("| **Gratuitous recovery activations** | %s |\n\n", strings.Join(gr, " | "))
	return tw.err
}

func techniqueNames(r Table4Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Technique
	}
	return out
}

// WriteTable5 renders Table 5 as markdown.
func WriteTable5(w io.Writer, r Table5Result) error {
	tw := &tableWriter{w: w}
	tw.printf("### Table 5 — Recovery outcomes (%d missions per cell)\n\n", r.Missions)
	header := "| # sensors |"
	sep := "|---|"
	for _, t := range r.Techniques {
		header += fmt.Sprintf(" %s Crash | %s MS |", t, t)
		sep += "---|---|"
	}
	tw.println(header)
	tw.println(sep)
	for k := 0; k < 5; k++ {
		row := fmt.Sprintf("| %d |", k+1)
		for t := range r.Techniques {
			c := r.Cells[t][k]
			row += fmt.Sprintf(" %.0f | %.0f |", c.CrashRate, c.MissionSucc)
		}
		tw.println(row)
	}
	tw.println()
	return tw.err
}

// WriteTable6 renders Table 6 as markdown.
func WriteTable6(w io.Writer, r Table6Result) error {
	tw := &tableWriter{w: w}
	tw.printf("### Table 6 — DeLorean vs LQR-O (%d missions per cell)\n\n", r.Missions)
	tw.println("| # sensors | LQR-O RMSD | LQR-O MD%% | LQR-O Crash | LQR-O MS | DeLorean RMSD | DeLorean MD%% | DeLorean Crash | DeLorean MS |")
	tw.println("|---|---|---|---|---|---|---|---|---|")
	for k := 0; k < 5; k++ {
		a, b := r.LQRO[k], r.DeLorean[k]
		tw.printf("| %d | %.4f | %.2f | %.0f | %.0f | %.4f | %.2f | %.0f | %.0f |\n",
			k+1, a.RMSD, a.MissionDly, a.CrashRate, a.MissionSucc,
			b.RMSD, b.MissionDly, b.CrashRate, b.MissionSucc)
	}
	tw.println()
	return tw.err
}

// WriteTable7 renders Table 7 as markdown.
func WriteTable7(w io.Writer, r Table7Result) error {
	tw := &tableWriter{w: w}
	tw.printf("### Table 7 — Diagnosis & recovery on the real-RV profiles (%d missions per cell)\n\n", r.Missions)
	tw.println("| # sensors | Pixhawk TP | Pixhawk MS | Tarot TP | Tarot MS | Sky-Viper TP | Sky-Viper MS | AionR1 TP | AionR1 MS |")
	tw.println("|---|---|---|---|---|---|---|---|---|")
	for k := 0; k < 5; k++ {
		row := fmt.Sprintf("| %d |", k+1)
		for _, rv := range r.Rows {
			row += fmt.Sprintf(" %.0f | %.0f |", rv.TPByCount[k], rv.MSByCount[k])
		}
		tw.println(row)
	}
	row := "| **Average** |"
	for _, rv := range r.Rows {
		row += fmt.Sprintf(" %.1f | %.1f |", rv.AvgTP, rv.AvgMS)
	}
	tw.println(row)
	row = "| **FP / crashes** |"
	for _, rv := range r.Rows {
		row += fmt.Sprintf(" %.0f%% | %d |", rv.FP, rv.Crashes)
	}
	tw.println(row)
	tw.println()
	return tw.err
}

// WriteTrace renders a figure trace (Fig. 2 / Fig. 9) as a compact series
// plus summary statistics.
func WriteTrace(w io.Writer, title string, r TraceResult) error {
	tw := &tableWriter{w: w}
	tw.printf("### %s — %s recovery trace\n\n", title, r.Label)
	tw.printf("RMSD %.4f rad, delay %.1f%%, final miss %.2f m, peak altitude overshoot %.2f m, success=%v, crashed=%v\n\n",
		r.RMSD, r.DelayPercent, r.FinalMiss, r.MaxDeviation, r.Success, r.Crashed)
	tw.println("| t (s) | true x | true z | believed z | recovering | attack |")
	tw.println("|---|---|---|---|---|---|")
	for i, tp := range r.Trace {
		if i%4 != 0 {
			continue // decimate for readability
		}
		tw.printf("| %.1f | %.1f | %.2f | %.2f | %v | %v |\n",
			tp.T, tp.Truth.X, tp.Truth.Z, tp.Believed.Z, tp.Recovering, tp.AttackActive)
	}
	tw.println()
	return tw.err
}

// WriteFig10 renders the stealthy-attack episodes.
func WriteFig10(w io.Writer, rs []Fig10Result) error {
	tw := &tableWriter{w: w}
	tw.println("### Fig. 10 — Recovery under adaptive stealthy attacks")
	tw.println()
	tw.println("| attack | detected within window | detection delay (s) | HS corruption (m) | landing offset (m) | mission success | crashed |")
	tw.println("|---|---|---|---|---|---|---|")
	for _, r := range rs {
		tw.printf("| %s | %v | %.2f | %.2f | %.2f | %v | %v |\n",
			r.Attack, r.DetectedWithinWindow, r.DetectionDelay, r.HSCorruption, r.FinalMiss, r.Success, r.Crashed)
	}
	tw.println()
	return tw.err
}

// WriteCalibration renders one Table 3 δ row plus the Fig. 8a evidence:
// the per-state thresholds with their held-out validation fractions and
// the decile CDF of the z-position error (the Fig. 8a example channel).
func WriteCalibration(w io.Writer, r CalibrationResult) error {
	tw := &tableWriter{w: w}
	tw.printf("#### %s (δ from %d attack-free missions, k = 3)\n\n", r.Profile, r.Missions)
	tw.println("| state | δ | fraction of held-out errors ≤ δ |")
	tw.println("|---|---|---|")
	for _, idx := range sensors.AllStates() {
		if r.Delta[idx] <= 0 {
			continue
		}
		tw.printf("| %s | %.3f | %.3f |\n", idx, r.Delta[idx], r.FracUnderDelta[idx])
	}
	tw.println()
	if n := len(r.CDF); n > 0 {
		tw.print("Fig. 8a CDF of the attack-free z error (deciles): ")
		for d := 1; d <= 10; d++ {
			i := d*n/10 - 1
			if i < 0 {
				i = 0
			}
			tw.printf("p%d=%.2f ", d*10, r.CDF[i].Value)
		}
		tw.printf("— δ_z = %.2f\n\n", r.Delta[sensors.SZ])
	}
	return tw.err
}

// WriteStealthyWindow renders the Fig. 8b window-sizing outcome.
func WriteStealthyWindow(w io.Writer, r StealthyWindowResult) error {
	tw := &tableWriter{w: w}
	lo, hi := minMax(r.DetectionDelays)
	tw.printf("- **%s**: stealthy-GPS detection delay %.1f–%.1f s over %d probes (all detected: %v) → window **%.1f s**\n",
		r.Profile, lo, hi, len(r.DetectionDelays), r.DetectedAll, r.WindowSec)
	return tw.err
}

// WriteOverheads renders the Table 3 overhead columns.
func WriteOverheads(w io.Writer, rs []OverheadResult) error {
	tw := &tableWriter{w: w}
	tw.println("| RV | CPU overhead | battery overhead | checkpoint memory | window |")
	tw.println("|---|---|---|---|---|")
	for _, r := range rs {
		tw.printf("| %s | %.1f%% | %.1f%% | %.2f MB | %.1f s |\n",
			r.Profile, r.CPUPercent, r.BatteryPercent, float64(r.MemoryBytes)/1e6, r.WindowSec)
	}
	tw.println()
	return tw.err
}

// tableWriter is an error-latching writer: the first write error is
// retained and later writes become no-ops, so the table-rendering code
// stays linear while the error still reaches the caller (the errdrop
// analyzer forbids silently discarded fmt.Fprintf results).
type tableWriter struct {
	w   io.Writer
	err error
}

func (t *tableWriter) printf(format string, args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, format, args...)
	}
}

func (t *tableWriter) println(args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintln(t.w, args...)
	}
}

func (t *tableWriter) print(args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprint(t.w, args...)
	}
}
