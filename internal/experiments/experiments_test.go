package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// Experiment tests run at very small scale (a few missions per cell) and
// assert the *orderings* the paper reports, not absolute percentages —
// the same contract EXPERIMENTS.md documents.

func tinyOpt() Options { return Options{Missions: 4, Seed: 7, Wind: 2} }

func TestTable4ShapeDeLoreanBeatsRA(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission experiment")
	}
	r, err := Table4(context.Background(), tinyOpt())
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 techniques", len(r.Rows))
	}
	var dl, bestRA float64
	for _, row := range r.Rows {
		if row.Technique == "DeLorean" {
			dl = row.AvgTP
		} else if row.AvgTP > bestRA {
			bestRA = row.AvgTP
		}
	}
	if dl < bestRA {
		t.Errorf("DeLorean avg TP %.1f below best RA %.1f — paper ordering violated", dl, bestRA)
	}
	if dl < 60 {
		t.Errorf("DeLorean avg TP %.1f unexpectedly low", dl)
	}
}

func TestTable5ShapeDeLoreanBestMS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission experiment")
	}
	r, err := Table5(context.Background(), tinyOpt())
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(r.Techniques) != 4 {
		t.Fatalf("techniques = %v", r.Techniques)
	}
	// DeLorean's mean mission success across sensor counts must be the
	// highest (ties allowed).
	means := make([]float64, len(r.Techniques))
	for i := range r.Techniques {
		for k := 0; k < 5; k++ {
			means[i] += r.Cells[i][k].MissionSucc / 5
		}
	}
	dlIdx := -1
	for i, name := range r.Techniques {
		if name == "DeLorean" {
			dlIdx = i
		}
	}
	if dlIdx < 0 {
		t.Fatal("DeLorean missing from techniques")
	}
	// At this 4-missions-per-cell scale a single mission flips a cell by
	// 25 points and the 5-count mean by 5; tolerate one mission of noise.
	// The recorded 12-mission run (EXPERIMENTS_DATA.md) shows the strict
	// ordering.
	const slack = 6.5
	for i, m := range means {
		if i != dlIdx && means[dlIdx] < m-slack {
			t.Errorf("%s mean MS %.1f beats DeLorean %.1f by more than sampling noise",
				r.Techniques[i], m, means[dlIdx])
		}
	}
}

func TestFig10StealthyRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission experiment")
	}
	rs, err := Fig10(context.Background(), Options{Seed: 23, Missions: 1})
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("episodes = %d, want 3", len(rs))
	}
	for _, r := range rs {
		if r.Crashed {
			t.Errorf("%s crashed", r.Attack)
		}
		if !r.DetectedWithinWindow {
			t.Errorf("%s evaded the sized window", r.Attack)
		}
		if !r.Success {
			t.Errorf("%s failed the mission (paper: 100%% success under stealthy attacks)", r.Attack)
		}
	}
}

func TestCalibrateProducesPositiveDeltas(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission experiment")
	}
	p := vehicle.MustProfile(vehicle.ArduCopter)
	cal, err := Calibrate(context.Background(), p, Options{Missions: 3, Seed: 3, Wind: 3})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	for _, idx := range sensors.AllStates() {
		if cal.Delta[idx] <= 0 {
			t.Errorf("delta[%v] = %v", idx, cal.Delta[idx])
		}
	}
	// The held-out validation must show the δ rule bounding the bulk of
	// attack-free errors (Fig. 8a).
	var worst float64 = 1
	for _, idx := range sensors.AllStates() {
		if f := cal.FracUnderDelta[idx]; f < worst {
			worst = f
		}
	}
	if worst < 0.95 {
		t.Errorf("held-out fraction under δ = %.3f, want ≥ 0.95", worst)
	}
}

func TestStealthyWindowDetectsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission experiment")
	}
	sw, err := StealthyWindow(context.Background(), vehicle.MustProfile(vehicle.Tarot), Options{Missions: 3, Seed: 5, Wind: 1})
	if err != nil {
		t.Fatalf("StealthyWindow: %v", err)
	}
	if !sw.DetectedAll {
		t.Error("stealthy probes evaded the CUSUM detector entirely")
	}
	if sw.WindowSec <= 0 {
		t.Errorf("window = %v", sw.WindowSec)
	}
}

func TestWriteFormattersProduceTables(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable4(&sb, Table4Result{
		Rows:                  []Table4Row{{Technique: "X", AvgTP: 50}},
		GratuitousActivations: []int{0},
		Missions:              1,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 4") {
		t.Error("WriteTable4 missing header")
	}
	sb.Reset()
	if err := WriteTable6(&sb, Table6Result{Missions: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 6") {
		t.Error("WriteTable6 missing header")
	}
	sb.Reset()
	if err := WriteFig10(&sb, []Fig10Result{{Attack: "A1"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A1") {
		t.Error("WriteFig10 missing row")
	}
}

func TestDrawScenarioDeterministic(t *testing.T) {
	p := vehicle.MustProfile(vehicle.ArduCopter)
	a := drawScenario(p, newSeededRand(9), 3)
	b := drawScenario(p, newSeededRand(9), 3)
	if a.seed != b.seed || a.attackStart != b.attackStart || a.windMean != b.windMean {
		t.Error("scenario draw not deterministic")
	}
}

func TestRegistryAllAndGet(t *testing.T) {
	names := Names()
	want := []string{"table3", "table4", "table5", "table6", "table7", "fig2", "fig8b", "fig9", "fig10"}
	if len(names) != len(want) {
		t.Fatalf("registry names = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("registry order[%d] = %q, want %q", i, names[i], n)
		}
		e, ok := Get(n)
		if !ok || e.Name() != n {
			t.Errorf("Get(%q) = %v, %v", n, e, ok)
		}
	}
	// fig8a is an alias for the table3 calibration block.
	if e, ok := Get("fig8a"); !ok || e.Name() != "table3" {
		t.Errorf("Get(fig8a) should resolve to table3, got %v, %v", e, ok)
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) should fail")
	}
}

func TestDeltaForSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration pass")
	}
	p := vehicle.MustProfile(vehicle.ArduCopter)
	// Reset the cache entry so this test observes its own calibration.
	deltaCache.Delete(p.Name)
	before := calibrationPasses.Load()

	const callers = 8
	deltas := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := DeltaFor(context.Background(), p, Options{})
			if err != nil {
				t.Errorf("DeltaFor: %v", err)
				return
			}
			deltas[i] = d[sensors.SX]
		}(i)
	}
	wg.Wait()

	if got := calibrationPasses.Load() - before; got != 1 {
		t.Errorf("calibration passes = %d, want 1 (singleflight)", got)
	}
	for i := 1; i < callers; i++ {
		if deltas[i] != deltas[0] {
			t.Errorf("caller %d saw a different delta", i)
		}
	}
}

func TestDeltaForEvictsFailedEntry(t *testing.T) {
	p := vehicle.MustProfile(vehicle.ArduRover)
	deltaCache.Delete(p.Name)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DeltaFor(ctx, p, Options{}); err == nil {
		t.Fatal("cancelled calibration should fail")
	}
	// The failed entry must not poison the cache.
	if _, ok := deltaCache.Load(p.Name); ok {
		t.Error("failed calibration entry not evicted")
	}
}
