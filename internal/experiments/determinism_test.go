package experiments

import (
	"bytes"
	"context"
	"testing"
)

// TestParallelDeterminism is the PR's headline acceptance check at test
// scale: rendering the same experiment at 1 worker and at 8 workers must
// produce byte-identical markdown. It exercises the full pre-draw →
// parallel sweep → ordered reduce path, including the singleflight
// calibration cache (table5) and the derived per-episode rngs (fig10).
//
// It is skipped under -short; the race gate (scripts/check.sh) runs it
// explicitly un-short with -race.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mission determinism sweep")
	}
	opt := Options{Missions: 1, Seed: 11, Wind: 2}
	for _, name := range []string{"table5", "table4", "fig10"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := Get(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			render := func(workers int) string {
				var buf bytes.Buffer
				o := opt
				o.Workers = workers
				if err := e.Run(context.Background(), &buf, o); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return buf.String()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Errorf("output differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
			}
			if len(serial) == 0 {
				t.Error("experiment rendered no output")
			}
		})
	}
}
