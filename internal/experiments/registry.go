package experiments

import (
	"context"
	"fmt"
	"io"
)

// Experiment is one runnable table or figure of the paper's evaluation.
// Run regenerates the experiment at the given scale and renders its
// markdown to w. Implementations draw all randomness from opt.Seed before
// fanning missions out to the parallel runner, so output is byte-identical
// at any opt.Workers setting.
type Experiment interface {
	Name() string
	Run(ctx context.Context, w io.Writer, opt Options) error
}

// expFunc adapts a function to the Experiment interface.
type expFunc struct {
	name string
	run  func(ctx context.Context, w io.Writer, opt Options) error
}

func (e expFunc) Name() string { return e.name }

func (e expFunc) Run(ctx context.Context, w io.Writer, opt Options) error {
	// Attribute all telemetry the experiment's sweeps produce to its
	// report group.
	opt.Collector.Begin(e.name)
	if err := e.run(ctx, w, opt); err != nil {
		return fmt.Errorf("%s: %w", e.name, err)
	}
	return nil
}

// All returns every registered experiment in report order — the order
// `-exp all` renders and EXPERIMENTS_DATA.md records.
func All() []Experiment {
	return []Experiment{
		expFunc{"table3", runTable3},
		expFunc{"table4", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Table4(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTable4(w, r)
		}},
		expFunc{"table5", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Table5(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTable5(w, r)
		}},
		expFunc{"table6", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Table6(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTable6(w, r)
		}},
		expFunc{"table7", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Table7(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTable7(w, r)
		}},
		expFunc{"fig2", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Fig2(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTrace(w, "Fig. 2", r)
		}},
		expFunc{"fig8b", runFig8b},
		expFunc{"fig9", func(ctx context.Context, w io.Writer, opt Options) error {
			r, err := Fig9(ctx, opt)
			if err != nil {
				return err
			}
			return WriteTrace(w, "Fig. 9", r)
		}},
		expFunc{"fig10", func(ctx context.Context, w io.Writer, opt Options) error {
			rs, err := Fig10(ctx, opt)
			if err != nil {
				return err
			}
			return WriteFig10(w, rs)
		}},
	}
}

// aliases maps alternate experiment names to their canonical entry
// (fig8a is rendered as part of the table3 calibration block).
var aliases = map[string]string{
	"fig8a": "table3",
}

// Get returns the named experiment, resolving aliases.
func Get(name string) (Experiment, bool) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	for _, e := range All() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Names returns the canonical experiment names in report order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name()
	}
	return out
}
