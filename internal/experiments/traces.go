package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mission"
	"repro/internal/runner"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// TraceResult is a figure-style trace: the mission time series plus the
// summary statistics the paper quotes alongside the figure.
type TraceResult struct {
	Label string
	Trace []sim.TracePoint
	// RMSD is the attitude RMSD vs the attack-free ground truth (Fig. 9
	// quotes 4.21 for DeLorean vs 20.66 for LQR-O in their units).
	RMSD float64
	// DelayPercent is the mission delay vs ground truth.
	DelayPercent float64
	// FinalMiss is the landing distance from the destination.
	FinalMiss float64
	// MaxDeviation is the peak altitude deviation from the 10 m cruise
	// during the first attack (Fig. 2's 18 m overshoot).
	MaxDeviation float64
	Success      bool
	Crashed      bool
}

// fig2Scenario is the §3.2 motivating scenario: a Pixhawk drone on a
// straight mission at 10 m altitude; SDAs on GPS+accelerometer during
// takeoff and during landing. The attacked run and its attack-free ground
// truth are submitted as one job pair.
func fig2Scenario(ctx context.Context, strategy core.Strategy, opt Options) (TraceResult, error) {
	opt = opt.withDefaults()
	p := vehicle.MustProfile(vehicle.Pixhawk)
	plan := mission.NewStraight(70*p.CruiseSpeed/5, 10)
	rng := rand.New(rand.NewSource(opt.Seed))

	targets := sensors.NewTypeSet(sensors.GPS, sensors.Accel)
	first := attack.New(rng, attack.DefaultParams(), targets, 5, 30)
	// The second instance strikes during the landing phase; its absolute
	// timing depends on mission progress, so place it late in the mission.
	second := attack.New(rng, attack.DefaultParams(), targets, 65, 85)

	cfg := sim.Config{
		Profile:    p,
		Plan:       plan,
		Strategy:   strategy,
		Delta:      core.DefaultDelta(p),
		WindowSec:  15,
		Attacks:    attack.NewSchedule(first, second),
		WindMean:   2.2,
		WindGust:   0.9,
		Seed:       opt.Seed,
		MaxSec:     300,
		TraceEvery: 25,
	}
	gtCfg := cfg
	gtCfg.Attacks = nil
	gtCfg.TraceEvery = 0

	results, err := sweep(ctx, []runner.Job{
		{Label: fmt.Sprintf("fig2/%s/attacked", strategy), Cfg: cfg},
		{Label: fmt.Sprintf("fig2/%s/gt", strategy), Cfg: gtCfg},
	}, opt)
	if err != nil {
		return TraceResult{}, err
	}
	res, gt := results[0], results[1]

	rmsd := metrics.AttitudeRMSD(res.AttitudeSeries, gt.AttitudeSeries)
	opt.Collector.ObserveRMSD(rmsd)
	out := TraceResult{
		Label:        strategy.String(),
		Trace:        res.Trace,
		RMSD:         rmsd,
		DelayPercent: metrics.PercentMissionDelay(res.Duration, gt.Duration, gt.Duration),
		FinalMiss:    res.FinalDistance,
		Success:      res.Success,
		Crashed:      res.Crashed,
	}
	for _, tp := range res.Trace {
		if tp.T > 5 && tp.T < 35 {
			if d := tp.Truth.Z - 10; d > out.MaxDeviation {
				out.MaxDeviation = d
			}
		}
	}
	return out, nil
}

// Fig2 reproduces the motivating LQR-O worst-case recovery trace (§3.2):
// overly aggressive takeoff recovery and overly conservative landing.
func Fig2(ctx context.Context, opt Options) (TraceResult, error) {
	return fig2Scenario(ctx, core.StrategyLQRO, opt)
}

// Fig9 reproduces DeLorean's targeted recovery on the same scenario
// (§6.4): minimal deviation and an on-target landing.
func Fig9(ctx context.Context, opt Options) (TraceResult, error) {
	return fig2Scenario(ctx, core.StrategyDeLorean, opt)
}

// Fig10Result is one stealthy-attack episode of §6.5.
type Fig10Result struct {
	Attack string
	// FinalMiss is the landing offset from the destination.
	FinalMiss float64
	// DetectedWithinWindow reports whether the CUSUM alert fired within
	// one checkpoint window of onset.
	DetectedWithinWindow bool
	// DetectionDelay is onset→alert in seconds (capped at the attack
	// duration).
	DetectionDelay float64
	// HSCorruption is the drone's true deviation from the ground-truth
	// path accumulated while the attack ran undetected (the paper's
	// "corruption in recorded states", ≤ 3.28 m for A2).
	HSCorruption float64
	Success      bool
	Crashed      bool
}

// Fig10 runs the three adaptive stealthy attacks of §6.5 on ArduCopter:
// A1 random bias (all sensors), A2 gradually increasing bias, A3
// intermittent bias. Each episode submits an (attacked, ground-truth)
// job pair; A1's SDA redraws its bias per tick at runtime, so every
// episode gets its own rng derived from the master stream — jobs stay
// independent under parallel execution.
func Fig10(ctx context.Context, opt Options) ([]Fig10Result, error) {
	opt = opt.withDefaults()
	p := vehicle.MustProfile(vehicle.ArduCopter)
	rng := rand.New(rand.NewSource(opt.Seed))

	type episode struct {
		name  string
		mount func(rng *rand.Rand, start, end float64) *attack.SDA
	}
	// Sub-threshold bias magnitudes: individually below the instantaneous
	// detector thresholds, caught only by CUSUM accumulation.
	// The paper's A1 causes 0–5 m trajectory deviations; the per-sensor
	// biases are far below the instantaneous thresholds (a gyro bias this
	// small integrates to an attitude error the complementary filter
	// bounds well under δ). The accelerometer channel carries no bias:
	// a sub-threshold accelerometer bias during a GPS isolation is
	// physically unobservable (it integrates quadratically into a
	// position drift nothing onboard can see), so any recovery scheme —
	// the paper's included — can only meet the 0–5 m deviation bound if
	// the accelerometer component stays in the noise (see EXPERIMENTS.md
	// "known deviations").
	stealthBias := sensors.Bias{
		GPSPos: [3]float64{3.8, 3.2, 0},
		Gyro:   [3]float64{0.04, 0.04, 0.02},
		MagYaw: 0.1,
		Baro:   2.2,
	}
	episodes := []episode{
		{name: "A1-random", mount: func(rng *rand.Rand, s, e float64) *attack.SDA {
			return attack.NewWithBias(rng, stealthBias, s, e, attack.RandomBias)
		}},
		{name: "A2-gradual", mount: func(rng *rand.Rand, s, e float64) *attack.SDA {
			return attack.NewWithBias(rng, sensors.Bias{GPSPos: [3]float64{5.5, 0, 0}}, s, e, attack.Gradual)
		}},
		{name: "A3-intermittent", mount: func(rng *rand.Rand, s, e float64) *attack.SDA {
			a := attack.NewWithBias(rng, sensors.Bias{GPSPos: [3]float64{3.6, 0, 0}}, s, e, attack.Intermittent)
			a.OnDur, a.OffDur = 1.5, 1.5
			return a
		}},
	}

	const start, dur = 10.0, 25.0
	var jobs []runner.Job
	for _, ep := range episodes {
		// Derived per-episode rng: the master stream advances by exactly
		// one Int63 per episode regardless of how many draws the SDA
		// consumes at runtime (A1 redraws every tick).
		epRng := rand.New(rand.NewSource(rng.Int63()))
		plan := mission.NewStraight(100, 20)
		cfg := sim.Config{
			Profile:    p,
			Plan:       plan,
			Strategy:   core.StrategyDeLorean,
			Delta:      core.DefaultDelta(p),
			WindowSec:  30, // sized per the Fig. 8b stealthy probe
			Attacks:    attack.NewSchedule(ep.mount(epRng, start, start+dur)),
			Seed:       opt.Seed,
			MaxSec:     300,
			TraceEvery: 5,
		}
		gtCfg := cfg
		gtCfg.Attacks = nil
		gtCfg.TraceEvery = 5
		jobs = append(jobs,
			runner.Job{Label: fmt.Sprintf("fig10/%s/attacked", ep.name), Cfg: cfg},
			runner.Job{Label: fmt.Sprintf("fig10/%s/gt", ep.name), Cfg: gtCfg})
	}

	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return nil, err
	}

	var out []Fig10Result
	for i, ep := range episodes {
		res, gt := results[2*i], results[2*i+1]
		r := Fig10Result{Attack: ep.name, Success: res.Success, Crashed: res.Crashed, DetectionDelay: dur, FinalMiss: res.FinalDistance}
		var detectedAt float64 = -1
		for _, tp := range res.Trace {
			if tp.T >= start && tp.AlertActive {
				detectedAt = tp.T
				break
			}
		}
		if detectedAt >= 0 {
			r.DetectionDelay = detectedAt - start
			r.DetectedWithinWindow = r.DetectionDelay <= 30
		}
		// HS corruption: peak truth-vs-ground-truth deviation while the
		// attack ran undetected.
		horizon := detectedAt
		if horizon < 0 {
			horizon = start + dur
		}
		for i := 0; i < len(res.Trace) && i < len(gt.Trace); i++ {
			tp := res.Trace[i]
			if tp.T < start || tp.T > horizon {
				continue
			}
			d := tp.Truth.HorizontalDistanceTo(gt.Trace[i].Truth.X, gt.Trace[i].Truth.Y)
			if d > r.HSCorruption {
				r.HSCorruption = d
			}
		}
		out = append(out, r)
	}
	return out, nil
}
