// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (§6): the workload generators,
// parameter sweeps, baselines, and aggregation that regenerate each
// reported result on the simulated substrate. cmd/experiments drives them
// and renders the outputs recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/mission"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Options scales an experiment run.
type Options struct {
	// Missions is the number of missions per condition (the paper uses
	// 100 for the simulated-RV experiments; benches scale this down).
	Missions int
	// Seed is the master seed; every mission derives its own seed from
	// it, so runs are exactly reproducible.
	Seed int64
	// Wind is the mean mission wind in m/s. The paper simulates 0–10 m/s;
	// with this substrate's drag model, worst-case (sensor-blind)
	// recovery drifts with the wind at full speed, so the evaluation core
	// uses a 0–3 m/s draw to keep the LQR-O baseline within its
	// paper-reported operating regime (see DESIGN.md substitution notes).
	Wind float64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Missions <= 0 {
		o.Missions = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Wind < 0 {
		o.Wind = 0
	}
	return o
}

// scenario is one mission draw: plan, wind, timing, and seed.
type scenario struct {
	plan     mission.Plan
	windMean float64
	windGust float64
	windDir  float64
	seed     int64
	// attackStart/attackDur position the SDA inside the cruise segment.
	attackStart float64
	attackDur   float64
}

// drawScenario samples a mission scenario for the profile.
func drawScenario(p vehicle.Profile, rng *rand.Rand, windCap float64) scenario {
	kinds := []mission.PathKind{
		mission.Straight, mission.MultiWaypoint, mission.Circular,
		mission.Polygon1, mission.Polygon2, mission.Polygon3,
	}
	kind := kinds[rng.Intn(len(kinds))]
	return scenario{
		plan:        mission.NewOfKind(kind, p.CruiseAltitude, rng),
		windMean:    rng.Float64() * windCap,
		windGust:    0.3 + 0.5*rng.Float64(),
		windDir:     rng.Float64() * 6.28318,
		seed:        rng.Int63(),
		attackStart: 10 + rng.Float64()*10,
		attackDur:   15 + rng.Float64()*10,
	}
}

// simConfig assembles a sim.Config for a scenario.
func (sc scenario) simConfig(p vehicle.Profile, strategy core.Strategy, delta diagnosis.Delta, window float64) sim.Config {
	return sim.Config{
		Profile:   p,
		Plan:      sc.plan,
		Strategy:  strategy,
		Delta:     delta,
		WindowSec: window,
		WindMean:  sc.windMean,
		WindGust:  sc.windGust,
		WindDir:   sc.windDir,
		Seed:      sc.seed,
		MaxSec:    300,
	}
}

// buildAttack mounts a persistent SDA on a random k-subset of sensors in
// the scenario's attack window.
func (sc scenario) buildAttack(rng *rand.Rand, k int) *attack.Schedule {
	targets := attack.RandomTargets(rng, k)
	sda := attack.New(rng, attack.DefaultParams(), targets, sc.attackStart, sc.attackStart+sc.attackDur)
	return attack.NewSchedule(sda)
}

// mustRun runs a mission and panics on configuration errors (experiment
// configs are produced by this package and must be valid).
func mustRun(cfg sim.Config) sim.Result {
	res, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// deltaCache memoizes per-profile calibrated thresholds so the table
// experiments share one calibration pass per RV (as the paper derives
// Table 3 once and reuses it).
var deltaCache sync.Map // vehicle.ProfileName -> diagnosis.Delta

// DeltaFor returns calibrated δ thresholds for the profile, calibrating
// on first use with attack-free missions whose wind envelope (0–4.5 m/s)
// covers both the mission wind and the 15 km/h FP condition.
func DeltaFor(p vehicle.Profile) diagnosis.Delta {
	if v, ok := deltaCache.Load(p.Name); ok {
		return v.(diagnosis.Delta)
	}
	res := Calibrate(p, Options{Missions: 8, Seed: 1000 + int64(len(p.Name)), Wind: 4.5})
	deltaCache.Store(p.Name, res.Delta)
	return res.Delta
}

// newSeededRand returns a deterministic source for tests.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
