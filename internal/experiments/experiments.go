// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (§6): the workload generators,
// parameter sweeps, baselines, and aggregation that regenerate each
// reported result on the simulated substrate.
//
// Every experiment follows the same two-phase shape: it first draws its
// complete scenario list from the master seed — consuming the rng exactly
// as a serial sweep would — and then submits the resulting jobs through
// the unified execution seam (internal/engine), reducing the results in
// submission order. Randomness is therefore fixed before fan-out and the
// rendered tables are byte-identical at any worker count and under any
// engine (per-goroutine runner, batched fleet, service pool).
//
// The registry (registry.go) exposes each experiment behind the
// Experiment interface; cmd/experiments drives them and renders the
// outputs recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/engine"
	"repro/internal/mission"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Options scales an experiment run.
type Options struct {
	// Missions is the number of missions per condition (the paper uses
	// 100 for the simulated-RV experiments; benches scale this down).
	Missions int
	// Seed is the master seed; every mission derives its own seed from
	// it, so runs are exactly reproducible.
	Seed int64
	// Wind is the mean mission wind in m/s. The paper simulates 0–10 m/s;
	// with this substrate's drag model, worst-case (sensor-blind)
	// recovery drifts with the wind at full speed, so the evaluation core
	// uses a 0–3 m/s draw to keep the LQR-O baseline within its
	// paper-reported operating regime (see DESIGN.md substitution notes).
	Wind float64
	// Workers sizes the parallel mission runner's pool; <= 0 uses all
	// CPUs. Worker count affects wall-clock time only — experiment
	// output is byte-identical at any setting.
	Workers int
	// Progress, when non-nil, receives mission-completion counts from
	// each sweep an experiment submits (the count restarts at every
	// sweep). Calls are serialized by the runner.
	Progress func(completed, total int)
	// Collector, when non-nil, aggregates every mission's telemetry into
	// the run report. Experiments run sequentially and the runner feeds
	// the collector in submission order, so the report is byte-identical
	// at any Workers setting. The δ-calibration sweeps behind DeltaFor are
	// excluded: they are memoized across experiments, so attributing them
	// to whichever experiment happened to trigger them would make report
	// content depend on experiment selection.
	Collector *telemetry.Collector
	// Engine selects the execution engine every sweep dispatches through.
	// Nil selects the per-goroutine runner, or the batched fleet executor
	// when Fleet is set. All engines are byte-identical (the seam's
	// contract, pinned by internal/engine's equivalence suite); the choice
	// changes throughput only.
	Engine engine.Engine
	// Fleet selects the batched fleet executor when Engine is nil:
	// missions are partitioned into profile-homogeneous batches stepped in
	// lockstep over shared per-(profile, dt) caches. Output is
	// byte-identical to the runner's; only throughput changes.
	Fleet bool
	// BatchSize caps the fleet executor's lockstep width; <= 0 selects
	// the fleet default. Other engines ignore it.
	BatchSize int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Missions <= 0 {
		o.Missions = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Wind < 0 {
		o.Wind = 0
	}
	return o
}

// engine resolves the execution engine: an explicit Options.Engine wins,
// then the Fleet shorthand, then the runner default.
func (o Options) engine() engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	if o.Fleet {
		return engine.Fleet()
	}
	return engine.Runner()
}

// engineOptions extracts the execution knobs for the engine seam.
func (o Options) engineOptions() engine.Options {
	return engine.Options{Workers: o.Workers, BatchSize: o.BatchSize, Progress: o.Progress, Telemetry: o.Collector}
}

// sweep executes pre-drawn jobs on the selected execution engine,
// returning results in submission order. Engines are interchangeable
// byte for byte; every experiment funnels through here, so the engine
// choice covers the whole evaluation.
func sweep(ctx context.Context, jobs []runner.Job, opt Options) ([]sim.Result, error) {
	return opt.engine().Run(ctx, jobs, opt.engineOptions())
}

// scenario is one mission draw: plan, wind, timing, and seed.
type scenario struct {
	plan     mission.Plan
	windMean float64
	windGust float64
	windDir  float64
	seed     int64
	// attackStart/attackDur position the SDA inside the cruise segment.
	attackStart float64
	attackDur   float64
}

// drawScenario samples a mission scenario for the profile.
func drawScenario(p vehicle.Profile, rng *rand.Rand, windCap float64) scenario {
	kinds := []mission.PathKind{
		mission.Straight, mission.MultiWaypoint, mission.Circular,
		mission.Polygon1, mission.Polygon2, mission.Polygon3,
	}
	kind := kinds[rng.Intn(len(kinds))]
	return scenario{
		plan:        mission.NewOfKind(kind, p.CruiseAltitude, rng),
		windMean:    rng.Float64() * windCap,
		windGust:    0.3 + 0.5*rng.Float64(),
		windDir:     rng.Float64() * 6.28318,
		seed:        rng.Int63(),
		attackStart: 10 + rng.Float64()*10,
		attackDur:   15 + rng.Float64()*10,
	}
}

// simConfig assembles a sim.Config for a scenario.
func (sc scenario) simConfig(p vehicle.Profile, strategy core.Strategy, delta diagnosis.Delta, window float64) sim.Config {
	return sim.Config{
		Profile:   p,
		Plan:      sc.plan,
		Strategy:  strategy,
		Delta:     delta,
		WindowSec: window,
		WindMean:  sc.windMean,
		WindGust:  sc.windGust,
		WindDir:   sc.windDir,
		Seed:      sc.seed,
		MaxSec:    300,
	}
}

// buildAttack mounts a persistent SDA on a random k-subset of sensors in
// the scenario's attack window.
func (sc scenario) buildAttack(rng *rand.Rand, k int) *attack.Schedule {
	targets := attack.RandomTargets(rng, k)
	sda := attack.New(rng, attack.DefaultParams(), targets, sc.attackStart, sc.attackStart+sc.attackDur)
	return attack.NewSchedule(sda)
}

// deltaEntry is one memoized calibration outcome; the sync.Once gives the
// cache singleflight semantics (concurrent first callers block on one
// calibration pass instead of racing duplicates).
type deltaEntry struct {
	once  sync.Once
	delta diagnosis.Delta
	err   error
}

// deltaCache memoizes per-profile calibrated thresholds so the table
// experiments share one calibration pass per RV (as the paper derives
// Table 3 once and reuses it).
var deltaCache sync.Map // vehicle.ProfileName -> *deltaEntry

// calibrationPasses counts completed calibration passes, for the
// singleflight test.
var calibrationPasses atomic.Int64

// DeltaFor returns calibrated δ thresholds for the profile, calibrating
// on first use with attack-free missions whose wind envelope (0–4.5 m/s)
// covers both the mission wind and the 15 km/h FP condition. The
// calibration draw (missions, seed, wind) is fixed so every caller shares
// one cache entry; opt contributes only the execution knobs (Workers).
// Concurrent callers for the same profile share a single calibration pass.
func DeltaFor(ctx context.Context, p vehicle.Profile, opt Options) (diagnosis.Delta, error) {
	e, _ := deltaCache.LoadOrStore(p.Name, &deltaEntry{})
	entry := e.(*deltaEntry)
	entry.once.Do(func() {
		res, err := Calibrate(ctx, p, Options{
			Missions: 8,
			Seed:     1000 + int64(len(p.Name)),
			Wind:     4.5,
			Workers:  opt.Workers,
		})
		if err != nil {
			entry.err = err
			return
		}
		entry.delta = res.Delta
		calibrationPasses.Add(1)
	})
	if entry.err != nil {
		// Evict the failed entry so a transient failure (a cancelled
		// context, say) does not poison the cache for later callers.
		deltaCache.Delete(p.Name)
		return diagnosis.Delta{}, entry.err
	}
	return entry.delta, nil
}

// newSeededRand returns a deterministic source for tests.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
