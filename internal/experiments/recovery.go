package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// Table5Cell is one (technique, sensor-count) outcome of Table 5.
type Table5Cell struct {
	CrashRate   float64
	MissionSucc float64
}

// Table5Result reproduces Table 5: recovery outcomes of SSR, PID-Piper,
// LQR-O, and DeLorean as a function of the number of sensors attacked
// (1–5) on the simulated RVs.
type Table5Result struct {
	Techniques []string
	// Cells[t][k-1] is technique t under k attacked sensors.
	Cells    [][5]Table5Cell
	Missions int
}

// table5Strategies lists the §6.2 comparison order.
func table5Strategies() []core.Strategy {
	return []core.Strategy{core.StrategySSR, core.StrategyPIDPiper, core.StrategyLQRO, core.StrategyDeLorean}
}

// simProfiles returns the two simulated-RV profiles of §6.1–6.3.
func simProfiles() []vehicle.Profile {
	return []vehicle.Profile{
		vehicle.MustProfile(vehicle.ArduCopter),
		vehicle.MustProfile(vehicle.ArduRover),
	}
}

// Table5 runs the §6.2 recovery experiment: identical SDAs mounted for
// all four techniques, varying the number of sensor types targeted from 1
// to 5. All scenarios are drawn up front (the same draws per technique:
// each technique re-seeds with the master seed) and flown in parallel.
func Table5(ctx context.Context, opt Options) (Table5Result, error) {
	opt = opt.withDefaults()
	out := Table5Result{Missions: opt.Missions}
	profiles := simProfiles()
	strategies := table5Strategies()

	var jobs []runner.Job
	for _, strat := range strategies {
		out.Techniques = append(out.Techniques, strat.String())
		rng := rand.New(rand.NewSource(opt.Seed)) // same draws per technique
		for k := 1; k <= 5; k++ {
			for i := 0; i < opt.Missions; i++ {
				p := profiles[i%len(profiles)]
				sc := drawScenario(p, rng, opt.Wind)
				atk := sc.buildAttack(rng, k)
				delta, err := DeltaFor(ctx, p, opt)
				if err != nil {
					return out, err
				}
				cfg := sc.simConfig(p, strat, delta, 15)
				cfg.Attacks = atk
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("table5/%s/k=%d/mission=%d/seed=%d", strat, k, i, sc.seed),
					Cfg:   cfg,
				})
			}
		}
	}

	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	j := 0
	for range strategies {
		var cells [5]Table5Cell
		for k := 1; k <= 5; k++ {
			var crashes, succ int
			for i := 0; i < opt.Missions; i++ {
				res := results[j]
				j++
				if res.Crashed {
					crashes++
				}
				if res.Success {
					succ++
				}
			}
			cells[k-1] = Table5Cell{
				CrashRate:   metrics.Rate(crashes, opt.Missions),
				MissionSucc: metrics.Rate(succ, opt.Missions),
			}
		}
		out.Cells = append(out.Cells, cells)
	}
	return out, nil
}

// Table6Cell is one (technique, sensor-count) outcome of Table 6.
type Table6Cell struct {
	RMSD        float64 // normalized attitude RMSD (Eq. 13)
	MissionDly  float64 // percentage mission delay (Eq. 6)
	CrashRate   float64
	MissionSucc float64
}

// Table6Result reproduces Table 6: DeLorean vs LQR-O with stability and
// delay metrics.
type Table6Result struct {
	// LQRO[k-1] and DeLorean[k-1] index by number of sensors attacked.
	LQRO     [5]Table6Cell
	DeLorean [5]Table6Cell
	Missions int
}

// t6sample is one mission's raw Table 6 measurement.
type t6sample struct {
	rmsd  float64
	delay float64
	crash bool
	succ  bool
}

// Table6 runs the §6.3 need-for-diagnosis experiment: DeLorean vs LQR-O
// under identical SDAs, with RMSD and mission-delay accounting against
// per-scenario attack-free ground-truth runs. Each scenario submits an
// (attacked, ground-truth) job pair; both strategies redraw the same
// scenarios from the master seed.
func Table6(ctx context.Context, opt Options) (Table6Result, error) {
	opt = opt.withDefaults()
	out := Table6Result{Missions: opt.Missions}
	profiles := simProfiles()
	strategies := []core.Strategy{core.StrategyLQRO, core.StrategyDeLorean}

	var jobs []runner.Job
	for _, strat := range strategies {
		rng := rand.New(rand.NewSource(opt.Seed))
		for k := 1; k <= 5; k++ {
			for i := 0; i < opt.Missions; i++ {
				p := profiles[i%len(profiles)]
				sc := drawScenario(p, rng, opt.Wind)
				atk := sc.buildAttack(rng, k)
				delta, err := DeltaFor(ctx, p, opt)
				if err != nil {
					return out, err
				}
				cfg := sc.simConfig(p, strat, delta, 15)
				cfg.Attacks = atk
				jobs = append(jobs,
					runner.Job{
						Label: fmt.Sprintf("table6/%s/k=%d/mission=%d/seed=%d", strat, k, i, sc.seed),
						Cfg:   cfg,
					},
					runner.Job{
						Label: fmt.Sprintf("table6/gt/k=%d/mission=%d/seed=%d", k, i, sc.seed),
						Cfg:   sc.simConfig(p, core.StrategyNone, delta, 15),
					})
			}
		}
	}

	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	collect := func(offset int) [5][]t6sample {
		var samples [5][]t6sample
		j := offset
		for k := 1; k <= 5; k++ {
			for i := 0; i < opt.Missions; i++ {
				res, gt := results[j], results[j+1]
				j += 2
				rmsd := metrics.AttitudeRMSD(res.AttitudeSeries, gt.AttitudeSeries)
				opt.Collector.ObserveRMSD(rmsd)
				samples[k-1] = append(samples[k-1], t6sample{
					rmsd:  rmsd,
					delay: metrics.PercentMissionDelay(res.Duration, gt.Duration, gt.Duration),
					crash: res.Crashed,
					succ:  res.Success,
				})
			}
		}
		return samples
	}
	perStrategy := 2 * 5 * opt.Missions
	lqro := collect(0)
	dl := collect(perStrategy)

	// Normalize RMSD across ALL recovery-activated missions (Eq. 13 uses
	// the min/max among recovery-activated missions).
	var all []float64
	for k := 0; k < 5; k++ {
		for _, s := range lqro[k] {
			all = append(all, s.rmsd)
		}
		for _, s := range dl[k] {
			all = append(all, s.rmsd)
		}
	}
	lo, hi := metrics.MinMax(all)

	summarize := func(samples [5][]t6sample) [5]Table6Cell {
		var cells [5]Table6Cell
		for k := 0; k < 5; k++ {
			var rmsdSum, delaySum float64
			var crash, succ int
			for _, s := range samples[k] {
				rmsdSum += metrics.NormalizeRMSD(s.rmsd, lo, hi)
				delaySum += s.delay
				if s.crash {
					crash++
				}
				if s.succ {
					succ++
				}
			}
			n := len(samples[k])
			if n == 0 {
				continue
			}
			cells[k] = Table6Cell{
				RMSD:        rmsdSum / float64(n),
				MissionDly:  delaySum / float64(n),
				CrashRate:   metrics.Rate(crash, n),
				MissionSucc: metrics.Rate(succ, n),
			}
		}
		return cells
	}
	out.LQRO = summarize(lqro)
	out.DeLorean = summarize(dl)
	return out, nil
}

// Table7Row is one real-RV row of Table 7.
type Table7Row struct {
	Profile vehicle.ProfileName
	// TPByCount / MSByCount index by number of sensors attacked (1–5).
	TPByCount [5]float64
	MSByCount [5]float64
	AvgTP     float64
	AvgMS     float64
	// FP is the diagnosis false-positive rate in no-attack missions
	// (reported in-text as 2–6% across RVs).
	FP float64
	// Crashes counts physical crashes across all missions (the paper
	// reports none on real RVs).
	Crashes int
}

// Table7Result reproduces Table 7: DeLorean on the four real-RV profiles.
type Table7Result struct {
	Rows     []Table7Row
	Missions int
}

// Table7 runs the §6.4 real-RV experiment on the four profiles standing
// in for the paper's physical vehicles. All profiles' scenarios go into
// one sweep; the reduce walks them back in submission order.
func Table7(ctx context.Context, opt Options) (Table7Result, error) {
	opt = opt.withDefaults()
	out := Table7Result{Missions: opt.Missions}
	fpMissions := opt.Missions / 2
	if fpMissions < 4 {
		fpMissions = 4
	}

	var jobs []runner.Job
	// wantTargets[j] holds, for attacked job j, the mounted target set
	// for exact-identification scoring (empty for FP-probe jobs).
	var wantTargets []sensors.TypeSet
	for _, name := range vehicle.RealRVs() {
		p := vehicle.MustProfile(name)
		delta, err := DeltaFor(ctx, p, opt)
		if err != nil {
			return out, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		for k := 1; k <= 5; k++ {
			for i := 0; i < opt.Missions; i++ {
				sc := drawScenario(p, rng, opt.Wind)
				atk := sc.buildAttack(rng, k)
				cfg := sc.simConfig(p, core.StrategyDeLorean, delta, 15)
				cfg.Attacks = atk
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("table7/%s/k=%d/mission=%d/seed=%d", name, k, i, sc.seed),
					Cfg:   cfg,
				})
				wantTargets = append(wantTargets, atk.Attacks[0].Targets)
			}
		}
		// FP probe: attack-free windy missions; any recovery activation is
		// a diagnosis FP.
		for i := 0; i < fpMissions; i++ {
			sc := drawScenario(p, rng, opt.Wind)
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("table7/%s/fp/mission=%d/seed=%d", name, i, sc.seed),
				Cfg:   sc.simConfig(p, core.StrategyDeLorean, delta, 15),
			})
			wantTargets = append(wantTargets, sensors.NewTypeSet())
		}
	}

	results, err := sweep(ctx, jobs, opt)
	if err != nil {
		return out, err
	}

	j := 0
	for _, name := range vehicle.RealRVs() {
		row := Table7Row{Profile: name}
		for k := 1; k <= 5; k++ {
			var tp, ms int
			for i := 0; i < opt.Missions; i++ {
				res := results[j]
				want := wantTargets[j]
				j++
				if res.DiagnosisRanDuringAttack && res.DiagnosedDuringAttack.Equal(want) {
					tp++
				}
				if res.Success {
					ms++
				}
				if res.Crashed {
					row.Crashes++
				}
			}
			row.TPByCount[k-1] = metrics.Rate(tp, opt.Missions)
			row.MSByCount[k-1] = metrics.Rate(ms, opt.Missions)
		}
		for k := 0; k < 5; k++ {
			row.AvgTP += row.TPByCount[k] / 5
			row.AvgMS += row.MSByCount[k] / 5
		}
		var fp int
		for i := 0; i < fpMissions; i++ {
			if results[j].RecoveryActivations > 0 {
				fp++
			}
			j++
		}
		row.FP = metrics.Rate(fp, fpMissions)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
