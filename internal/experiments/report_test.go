package experiments

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/telemetry"
)

// TestReportDeterminism is the telemetry PR's headline acceptance check
// at test scale: the machine-readable run report must be byte-identical
// at 1 worker and at 8 workers. The report aggregates per-mission
// telemetry (event traces, latency histograms, float RMSD sums), so this
// exercises the submission-order collector reduce end to end.
//
// Skipped under -short; the race gate (scripts/check.sh) runs it
// explicitly un-short with -race.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mission report sweep")
	}
	render := func(workers int) []byte {
		col := telemetry.NewCollector()
		opt := Options{Missions: 1, Seed: 7, Wind: 2, Workers: workers, Collector: col}
		var md bytes.Buffer
		for _, name := range []string{"table4", "fig10"} {
			e, ok := Get(name)
			if !ok {
				t.Fatalf("experiment %q not registered", name)
			}
			if err := e.Run(context.Background(), &md, opt); err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
		}
		rep, err := col.Report(telemetry.Meta{Generator: "test", Missions: 1, Seed: 7, Wind: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var out bytes.Buffer
		if err := rep.WriteJSON(&out); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("report differs between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
	// The report must be substantive, not an empty shell.
	for _, marker := range []string{`"name": "table4"`, `"name": "fig10"`, `"first_attacked_trace"`, `"recovery_engaged"`} {
		if !bytes.Contains(serial, []byte(marker)) {
			t.Errorf("report missing %s", marker)
		}
	}
}
