package experiments

import (
	"context"
	"io"

	"repro/internal/vehicle"
)

// runTable3 renders the Table 3 / Fig. 8a block: per-RV δ calibration with
// the Fig. 8a CDF, Fig. 8b-style window sizing, and the §6.6 overheads for
// the real-RV profiles. The calibration/window/overhead sub-runs keep
// their own mission clamps (the paper flies 15–25 calibration missions
// regardless of the evaluation scale) but inherit the execution knobs.
func runTable3(ctx context.Context, w io.Writer, opt Options) error {
	tw := &tableWriter{w: w}
	tw.println("## Table 3 / Fig. 8a — δ calibration, window sizing, overheads")
	tw.println()
	if tw.err != nil {
		return tw.err
	}
	calOpt := opt
	calOpt.Missions = clampMissions(opt.Missions, 8, 25)
	calOpt.Wind = 4.5
	var overheads []OverheadResult
	for _, name := range vehicle.AllRVs() {
		p := vehicle.MustProfile(name)
		cal, err := Calibrate(ctx, p, calOpt)
		if err != nil {
			return err
		}
		if err := WriteCalibration(w, cal); err != nil {
			return err
		}
		swOpt := opt
		swOpt.Missions = clampMissions(opt.Missions, 6, 15)
		sw, err := StealthyWindow(ctx, p, swOpt)
		if err != nil {
			return err
		}
		if err := WriteStealthyWindow(w, sw); err != nil {
			return err
		}
		if isReal(name) {
			ovOpt := opt
			ovOpt.Missions = clampMissions(opt.Missions, 4, 10)
			ov, err := Overheads(ctx, p, cal.Delta, sw.WindowSec, ovOpt)
			if err != nil {
				return err
			}
			overheads = append(overheads, ov)
		}
	}
	tw.println()
	tw.println("Overheads (real-RV profiles, §6.6):")
	tw.println()
	if tw.err != nil {
		return tw.err
	}
	return WriteOverheads(w, overheads)
}

// runFig8b renders the stealthy-attack detection-delay block for the two
// profiles the paper plots in Fig. 8b.
func runFig8b(ctx context.Context, w io.Writer, opt Options) error {
	tw := &tableWriter{w: w}
	tw.println("### Fig. 8b — stealthy-attack detection delay CDF")
	tw.println()
	if tw.err != nil {
		return tw.err
	}
	for _, name := range []vehicle.ProfileName{vehicle.Tarot, vehicle.AionR1} {
		sw, err := StealthyWindow(ctx, vehicle.MustProfile(name), opt)
		if err != nil {
			return err
		}
		if err := WriteStealthyWindow(w, sw); err != nil {
			return err
		}
	}
	tw.println()
	return tw.err
}

func clampMissions(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

func isReal(name vehicle.ProfileName) bool {
	for _, r := range vehicle.RealRVs() {
		if r == name {
			return true
		}
	}
	return false
}
