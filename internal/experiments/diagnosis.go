package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/diagnosis"
	"repro/internal/floats"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sensors"
)

// Table4Row is one diagnosis technique's row of Table 4.
type Table4Row struct {
	Technique string
	// TPByCount is the exact-identification rate per number of sensors
	// targeted (index 0 ⇒ 1 sensor … index 3 ⇒ 4 sensors, i.e. up to
	// n−1 as in the paper).
	TPByCount [4]float64
	// AvgTP is the mean over the four counts.
	AvgTP float64
	// FP is the fraction of no-attack missions (with induced detector
	// false alarms under wind) in which the technique flagged at least
	// one sensor.
	FP float64
}

// Table4Result reproduces Table 4: DeLorean's FG diagnosis vs the three
// RA baselines, on the simulated RVs.
type Table4Result struct {
	Rows []Table4Row
	// GratuitousActivations counts recovery activations caused by FP
	// diagnosis per technique (the §6.1 "4X reduction" claim), aligned
	// with Rows.
	GratuitousActivations []int
	Missions              int
}

// diagnoserFactory builds a fresh diagnoser per mission (diagnosers are
// stateful, so every job gets its own instance).
type diagnoserFactory struct {
	name  string
	build func(d diagnosis.Delta) diagnosis.Diagnoser
}

func diagnoserFactories() []diagnoserFactory {
	return []diagnoserFactory{
		{name: "Savior-RA", build: func(d diagnosis.Delta) diagnosis.Diagnoser { return diagnosis.NewRA(diagnosis.SaviorRA, d) }},
		{name: "PID-Piper-RA", build: func(d diagnosis.Delta) diagnosis.Diagnoser { return diagnosis.NewRA(diagnosis.PIDPiperRA, d) }},
		{name: "EKF-RA", build: func(d diagnosis.Delta) diagnosis.Diagnoser { return diagnosis.NewRA(diagnosis.EKFRA, d) }},
		{name: "DeLorean", build: func(d diagnosis.Delta) diagnosis.Diagnoser { return diagnosis.NewDeLorean(d) }},
	}
}

// Table4 runs the §6.1 diagnosis experiment: SDAs targeting 1..4 sensors
// on the simulated RVs (TP), plus no-attack missions under ~15 km/h wind
// with forced detector alarms (FP). Every technique's full mission list —
// TP sweeps and FP probes — is drawn first, then flown in one parallel
// sweep per technique.
func Table4(ctx context.Context, opt Options) (Table4Result, error) {
	opt = opt.withDefaults()
	out := Table4Result{Missions: opt.Missions}
	profiles := simProfiles()
	fpMissions := opt.Missions / 2
	if fpMissions < 4 {
		fpMissions = 4
	}

	for _, fac := range diagnoserFactories() {
		var jobs []runner.Job
		var wantTargets []sensors.TypeSet
		// Identical attack draws across techniques: re-seed per technique
		// with the same master seed (§6.1: "We launched the same attacks
		// for all the diagnosis techniques").
		rng := rand.New(rand.NewSource(opt.Seed))
		for k := 1; k <= 4; k++ {
			for i := 0; i < opt.Missions; i++ {
				p := profiles[i%len(profiles)]
				delta, err := DeltaFor(ctx, p, opt)
				if err != nil {
					return out, err
				}
				sc := drawScenario(p, rng, opt.Wind)
				targets := attack.RandomTargets(rng, k)
				sda := attack.New(rng, attack.DefaultParams(), targets, sc.attackStart, sc.attackStart+sc.attackDur)

				cfg := sc.simConfig(p, core.StrategyDeLorean, delta, 15)
				cfg.Diagnoser = fac.build(delta)
				cfg.Attacks = attack.NewSchedule(sda)
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("table4/%s/k=%d/mission=%d/seed=%d", fac.name, k, i, sc.seed),
					Cfg:   cfg,
				})
				wantTargets = append(wantTargets, targets)
			}
		}

		// FP runs: no attack, ~15 km/h (4.2 m/s) wind, forced detector
		// alarms mid-mission.
		fpRng := rand.New(rand.NewSource(opt.Seed + 1))
		for i := 0; i < fpMissions; i++ {
			p := profiles[i%len(profiles)]
			delta, err := DeltaFor(ctx, p, opt)
			if err != nil {
				return out, err
			}
			sc := drawScenario(p, fpRng, 0)
			// The paper's FP condition is a "modest wind speed of 15 km/h"
			// (≈ 4.2 m/s mean); gusts stay within the calibration envelope.
			sc.windMean = 4.2
			sc.windGust = 0.8

			cfg := sc.simConfig(p, core.StrategyDeLorean, delta, 15)
			cfg.Diagnoser = fac.build(delta)
			cfg.Detector = &windowedForcedAlert{windows: [][2]float64{
				{sc.attackStart, sc.attackStart + 2},
				{sc.attackStart + 8, sc.attackStart + 10},
			}}
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("table4/%s/fp/mission=%d/seed=%d", fac.name, i, sc.seed),
				Cfg:   cfg,
			})
		}

		results, err := sweep(ctx, jobs, opt)
		if err != nil {
			return out, err
		}

		var row Table4Row
		row.Technique = fac.name
		j := 0
		for k := 1; k <= 4; k++ {
			var hits int
			for i := 0; i < opt.Missions; i++ {
				res := results[j]
				if res.DiagnosisRanDuringAttack && res.DiagnosedDuringAttack.Equal(wantTargets[j]) {
					hits++
				}
				j++
			}
			row.TPByCount[k-1] = metrics.Rate(hits, opt.Missions)
		}
		row.AvgTP = (row.TPByCount[0] + row.TPByCount[1] + row.TPByCount[2] + row.TPByCount[3]) / 4

		var fps, gratuitous int
		for i := 0; i < fpMissions; i++ {
			if res := results[j]; res.RecoveryActivations > 0 {
				fps++
				gratuitous += res.RecoveryActivations
			}
			j++
		}
		row.FP = metrics.Rate(fps, fpMissions)
		out.Rows = append(out.Rows, row)
		out.GratuitousActivations = append(out.GratuitousActivations, gratuitous)
	}
	return out, nil
}

// windowedForcedAlert forces detector alarms during fixed time windows —
// the §6.1 mechanism for inducing false alarms ("we induce false alarms
// in attack detectors by simulating wind conditions"). It tracks mission
// time via Update calls.
type windowedForcedAlert struct {
	windows [][2]float64
	ticks   int
	dt      float64
}

var _ detect.Detector = (*windowedForcedAlert)(nil)

func (d *windowedForcedAlert) Update(_, _ sensors.PhysState) bool {
	d.ticks++
	return d.Alert()
}

func (d *windowedForcedAlert) Alert() bool {
	dt := d.dt
	if floats.Zero(dt) {
		dt = 0.01
	}
	t := float64(d.ticks) * dt
	for _, w := range d.windows {
		if t >= w[0] && t < w[1] {
			return true
		}
	}
	return false
}

func (d *windowedForcedAlert) Reset() {}
