package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllAndReleasesInOrder(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()
	const n = 32
	var results [n]int
	tk, err := p.Submit(context.Background(), n, func(_ context.Context, i int) error {
		results[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for idx := range tk.Ready() {
		if idx != want {
			t.Fatalf("Ready released %d, want %d (submission order)", idx, want)
		}
		if err := tk.Err(idx); err != nil {
			t.Fatalf("index %d: %v", idx, err)
		}
		want++
	}
	if want != n {
		t.Fatalf("released %d indices, want %d", want, n)
	}
	for i, v := range results {
		if v != i*i {
			t.Errorf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
	st := p.Stats()
	if st.Completed != n || st.Failed != 0 || st.Queued != 0 || st.Active != 0 {
		t.Errorf("stats after batch = %+v", st)
	}
}

// TestPoolQueueFull: submissions are all-or-nothing against the queue
// bound — a batch larger than the free depth is rejected whole, with no
// partial enqueue, even on an idle pool.
func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	_, err := p.Submit(context.Background(), 2, func(context.Context, int) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit(2) on depth-1 pool: err = %v, want ErrQueueFull", err)
	}
	st := p.Stats()
	if st.Rejected != 1 || st.Submitted != 0 || st.Queued != 0 {
		t.Errorf("stats after rejection = %+v", st)
	}
	// The queue is untouched: a fitting submission still goes through.
	tk, err := p.Submit(context.Background(), 1, func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDrainWaitsForInflight: BeginDrain rejects new submissions
// immediately while the accepted mission keeps running; Drain blocks
// until it completes.
func TestPoolDrainWaitsForInflight(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var finished atomic.Bool
	tk, err := p.Submit(context.Background(), 1, func(context.Context, int) error {
		close(started)
		<-release
		finished.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	p.BeginDrain()
	if _, err := p.Submit(context.Background(), 1, func(context.Context, int) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit on draining pool: err = %v, want ErrDraining", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with work still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !finished.Load() {
		t.Error("Drain returned before the in-flight item finished")
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDrainTimeout: a Drain whose ctx expires returns the ctx error
// with work still in flight.
func TestPoolDrainTimeout(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	_, err := p.Submit(context.Background(), 1, func(context.Context, int) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestTicketWaitReportsLowestFailure mirrors Do's error contract: Wait
// returns the lowest-indexed failure regardless of completion order, and
// a panic inside fn is converted to an error rather than killing a shard.
func TestTicketWaitReportsLowestFailure(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()
	tk, err := p.Submit(context.Background(), 8, func(_ context.Context, i int) error {
		switch i {
		case 2:
			return fmt.Errorf("boom %d", i)
		case 5:
			panic("shard must survive this")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := tk.Wait()
	if werr == nil || werr.Error() != "job 2: boom 2" {
		t.Fatalf("Wait = %v, want the lowest-indexed failure (job 2)", werr)
	}
	st := p.Stats()
	if st.Failed != 2 || st.Completed != 6 {
		t.Errorf("stats = %+v, want 2 failed / 6 completed", st)
	}
	// The pool is still serviceable after a panic.
	tk2, err := p.Submit(context.Background(), 1, func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSubmissionCtxCancelSkipsQueued: cancelling a submission's ctx
// marks its unstarted items failed with the ctx error instead of running
// them.
func TestPoolSubmissionCtxCancelSkipsQueued(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, err := p.Submit(context.Background(), 1, func(context.Context, int) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := p.Submit(ctx, 3, func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	werr := tk.Wait()
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", werr)
	}
}

func TestPoolRejectsEmptySubmission(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	if _, err := p.Submit(context.Background(), 0, func(context.Context, int) error { return nil }); err == nil {
		t.Error("Submit(0) should fail")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 4)
	p.Close()
	p.Close()
	if _, err := p.Submit(context.Background(), 1, func(context.Context, int) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Close: err = %v, want ErrDraining", err)
	}
}
