package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Pool is the long-lived, sharded variant of Do for the mission service:
// a fixed set of executor shards pulling from one bounded queue that
// outlives any single sweep. Where Do is born and dies with one batch,
// the Pool accepts batches (tickets) for as long as the service runs,
// enforces backpressure by rejecting submissions that do not fit the
// queue, and drains gracefully — in-flight work finishes, new work is
// refused.
//
// Determinism survives the pool the same way it survives Do: a ticket's
// indices are released to the consumer strictly in submission order
// (Ticket.Ready), never completion order, so the bytes a consumer
// derives from a batch are identical at any shard count.
var (
	// ErrQueueFull rejects a submission that does not fit the bounded
	// queue; the caller should shed load (HTTP 429) and retry later.
	ErrQueueFull = errors.New("runner: pool queue full")
	// ErrDraining rejects a submission to a draining pool; the caller
	// should fail over (HTTP 503).
	ErrDraining = errors.New("runner: pool draining")
)

// PoolStats is a point-in-time snapshot of the pool for /statusz.
type PoolStats struct {
	// Shards is the number of executor goroutines.
	Shards int `json:"shards"`
	// QueueDepth is the bound on queued (not yet executing) items.
	QueueDepth int `json:"queue_depth"`
	// Queued and Active are the current occupancy.
	Queued int `json:"queued"`
	Active int `json:"active"`
	// Draining reports whether the pool has stopped accepting work.
	Draining bool `json:"draining"`
	// Lifetime item counters. Rejected counts whole submissions (not
	// items) refused for queue-full or draining.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
}

// Pool is safe for concurrent use. Create with NewPool; stop with Close.
type Pool struct {
	shards int
	depth  int
	tasks  chan poolTask
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signals queued+active transitions for Drain
	queued   int
	active   int
	draining bool
	closed   bool
	stats    PoolStats
}

type poolTask struct {
	t *Ticket
	i int
}

// NewPool starts a pool with the given shard count (<= 0 means
// runtime.GOMAXPROCS(0)) and queue depth (<= 0 means 64).
func NewPool(shards, depth int) *Pool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 64
	}
	p := &Pool{
		shards: shards,
		depth:  depth,
		// Capacity depth keeps every reserved send non-blocking: Submit
		// only enqueues after reserving queue slots under mu.
		tasks: make(chan poolTask, depth),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < shards; i++ {
		p.wg.Add(1)
		go p.shard()
	}
	return p
}

// Submit reserves n queue slots all-or-nothing and enqueues fn(ctx, i)
// for every i in [0, n). It never blocks: if the queue cannot hold all n
// items the whole submission is rejected with ErrQueueFull, and a
// draining pool rejects with ErrDraining. fn runs on the pool's shards
// with the submission's ctx; each call should write only into its own
// index of whatever the caller is collecting (the per-index-slot idiom
// the sharedwrite analyzer enforces). Cancelling ctx skips queued items
// and interrupts running ones; they are recorded as failed with ctx's
// error. Consume results via the returned Ticket.
func (p *Pool) Submit(ctx context.Context, n int, fn func(ctx context.Context, i int) error) (*Ticket, error) {
	if n <= 0 {
		return nil, fmt.Errorf("runner: pool submission of %d items", n)
	}
	t := &Ticket{
		ctx:   ctx,
		fn:    fn,
		n:     n,
		errs:  make([]error, n),
		done:  make([]bool, n),
		ready: make(chan int, n),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		p.stats.Rejected++
		return nil, ErrDraining
	}
	if p.queued+n > p.depth {
		p.stats.Rejected++
		return nil, ErrQueueFull
	}
	p.queued += n
	p.stats.Submitted += int64(n)
	// Enqueue under mu: the reservation guarantees capacity, so these
	// sends cannot block, and holding mu excludes a concurrent Close.
	for i := 0; i < n; i++ {
		p.tasks <- poolTask{t: t, i: i}
	}
	return t, nil
}

// shard is one executor goroutine: it pulls queued items until the pool
// closes, running each through its ticket.
func (p *Pool) shard() {
	defer p.wg.Done()
	for tk := range p.tasks {
		p.mu.Lock()
		p.queued--
		p.active++
		p.mu.Unlock()

		err := tk.t.run(tk.i)

		p.mu.Lock()
		p.active--
		if err != nil {
			p.stats.Failed++
		} else {
			p.stats.Completed++
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// BeginDrain flips the pool into draining mode — every new Submit is
// rejected with ErrDraining — without waiting for in-flight work.
func (p *Pool) BeginDrain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Drain flips the pool into draining mode — every new Submit is rejected
// with ErrDraining — and blocks until all queued and active items have
// finished, or ctx expires (returning ctx.Err() with work still in
// flight). Drain does not stop the shards; call Close afterwards to
// reclaim them.
func (p *Pool) Drain(ctx context.Context) error {
	p.BeginDrain()
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.queued+p.active > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.cond.Wait()
	}
	return nil
}

// Close marks the pool draining, closes the queue, and waits for the
// shards to finish whatever is already queued. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.draining = true
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a consistent snapshot of the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Shards = p.shards
	s.QueueDepth = p.depth
	s.Queued = p.queued
	s.Active = p.active
	s.Draining = p.draining
	return s
}

// Ticket is the handle to one submitted batch. Results are released in
// submission order: Ready yields 0, 1, 2, … as soon as every index up to
// and including that one has finished, and is closed after the last. The
// in-order release is what carries the runner's determinism contract
// across the service boundary — a consumer streaming records as indices
// arrive emits identical bytes at any shard count.
type Ticket struct {
	ctx context.Context
	fn  func(context.Context, int) error
	n   int

	mu    sync.Mutex
	errs  []error
	done  []bool
	next  int
	ready chan int
}

// run executes index i (or skips it when the submission's ctx is already
// done), records the outcome, and releases any newly contiguous prefix.
func (t *Ticket) run(i int) error {
	err := t.ctx.Err()
	if err == nil {
		err = runOne(t.ctx, i, t.fn)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs[i] = err
	t.done[i] = true
	for t.next < t.n && t.done[t.next] {
		// Never blocks: ready is buffered to the batch size.
		t.ready <- t.next
		t.next++
	}
	if t.next == t.n {
		close(t.ready)
	}
	return err
}

// Ready yields finished indices in submission order and is closed after
// index n-1 is released.
func (t *Ticket) Ready() <-chan int { return t.ready }

// Err returns the outcome of a released index (nil on success). Only
// valid for indices already received from Ready.
func (t *Ticket) Err(i int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errs[i]
}

// Wait blocks until every index has finished (draining Ready) and
// returns the lowest-indexed failure, mirroring Do's error contract.
func (t *Ticket) Wait() error {
	for range t.ready {
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, err := range t.errs {
		if err != nil {
			return &doError{index: i, err: err}
		}
	}
	return nil
}
