package runner

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// TestParallelReplayDeterminism: a sweep of replayed missions — each job
// holding its own Replay cursor over the shared decoded trace — produces
// a byte-identical aggregated report at any worker count, same as live
// sweeps do.
func TestParallelReplayDeterminism(t *testing.T) {
	p := vehicle.MustProfile(vehicle.ArduCopter)
	base := sim.Config{
		Profile:   p,
		Plan:      mission.NewStraight(5, 10),
		Strategy:  core.StrategyDeLorean,
		Delta:     core.DefaultDelta(p),
		WindowSec: 5,
		Seed:      42,
		MaxSec:    2,
	}
	rec := source.NewRecorder(sim.NewSimSource(sim.SourceConfig{Profile: p, Seed: base.Seed}))
	live := base
	live.Source = rec
	if _, err := sim.Run(live); err != nil {
		t.Fatalf("record run: %v", err)
	}
	tr := rec.Trace(nil)

	replayJobs := func() []Job {
		jobs := make([]Job, 6)
		for i := range jobs {
			cfg := base
			// A Replay is a single-mission cursor: every job gets a fresh
			// one (the underlying decoded trace is read-only and shared).
			cfg.Source = source.NewReplay(tr)
			jobs[i] = Job{Label: fmt.Sprintf("replay/%d", i), Cfg: cfg}
		}
		return jobs
	}

	report := func(workers int) []byte {
		col := telemetry.NewCollector()
		col.Begin("replay-sweep")
		if _, err := Run(context.Background(), replayJobs(), Options{Workers: workers, Telemetry: col}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		rep, err := col.Report(telemetry.Meta{Generator: "replay-sweep", Missions: 6, Seed: base.Seed})
		if err != nil {
			t.Fatalf("Report: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}

	serial := report(1)
	parallel := report(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("replay sweep report depends on worker count (%d vs %d bytes)", len(serial), len(parallel))
	}
}
