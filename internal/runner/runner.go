// Package runner is the deterministic parallel mission-execution engine.
// The paper's evaluation is embarrassingly parallel — hundreds of
// independent seeded missions per table — so every experiment pre-draws
// its full scenario list (consuming its master-seeded rng exactly as a
// serial sweep would), then submits the resulting jobs here. The pool
// executes them on Workers goroutines and the results are reduced in
// submission order, so experiment output is byte-identical at any worker
// count: randomness is fixed before fan-out, and aggregation never
// observes completion order.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Job is one pre-drawn mission: a fully specified sim.Config carrying its
// own derived seed and its own stateful collaborators (diagnoser,
// detector, attack schedule, sensor source) so the job shares no mutable
// state with its neighbors. In particular a Config.Source is a
// single-mission cursor — give every job a fresh one (e.g. one
// source.Replay per job over a shared decoded trace). Label names the job
// in errors (it should include the seed).
type Job struct {
	Label string
	Cfg   sim.Config
}

// Options configure one parallel sweep.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialized, and
	// completed is strictly increasing, but which job finished is
	// unspecified (completion order is scheduling-dependent — only the
	// reduce order is deterministic).
	Progress func(completed, total int)
	// Telemetry, when non-nil, receives every job's mission telemetry
	// after the sweep completes — fed in submission order, never
	// completion order, so the aggregated run report is byte-identical at
	// any worker count.
	Telemetry *telemetry.Collector
}

// workers resolves the effective pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes the jobs on a worker pool and returns their results
// indexed by submission order. A worker panic is converted to an error
// naming the job. On error the lowest-indexed failure is returned (so the
// reported error does not depend on scheduling); the successful entries
// of the result slice are still valid. Cancelling ctx stops dispatching
// new jobs and interrupts in-flight missions; Run then returns ctx.Err().
func Run(ctx context.Context, jobs []Job, opt Options) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	err := Do(ctx, len(jobs), opt, func(ctx context.Context, i int) error {
		res, err := sim.RunContext(ctx, jobs[i].Cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	var de *doError
	if errors.As(err, &de) {
		return results, fmt.Errorf("runner: job %d (%s): %w", de.index, jobs[de.index].Label, de.err)
	}
	if err == nil && opt.Telemetry != nil {
		reduceTelemetry(results, opt.Telemetry)
	}
	return results, err
}

// reduceTelemetry is the deterministic reduce: per-job telemetry is
// collected strictly in submission order, never completion order, so the
// aggregated run report is byte-identical at any worker count. It is a
// declared root of the puretick proof — everything it reaches must stay
// free of nondeterminism sources.
func reduceTelemetry(results []sim.Result, c *telemetry.Collector) {
	for i := range results {
		c.Add(results[i].Telemetry)
	}
}

// doError carries the job index of a failure out of Do so Run can attach
// the job label.
type doError struct {
	index int
	err   error
}

func (e *doError) Error() string { return fmt.Sprintf("job %d: %v", e.index, e.err) }
func (e *doError) Unwrap() error { return e.err }

// Do is the generic pool primitive under Run: it invokes fn(ctx, i) for
// every i in [0, n) on a worker pool. Each fn call writes into its own
// index of whatever the caller is collecting, so no synchronization is
// needed on the caller side. Panics inside fn are recovered and reported
// as errors. When any fn fails, Do still drains the remaining dispatched
// work and returns the lowest-indexed error (wrapped in a *doError);
// when ctx is cancelled first, it returns ctx.Err().
func Do(ctx context.Context, n int, opt Options, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *doError
		done     int
	)
	idx := make(chan int)
	for w := opt.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				err := runOne(ctx, i, fn)
				mu.Lock()
				if err != nil && (firstErr == nil || i < firstErr.index) {
					firstErr = &doError{index: i, err: err}
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	return nil
}

// runOne invokes fn for one index, converting a panic to an error.
func runOne(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(ctx, i)
}
