package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// tinyJobs builds n short real missions with distinct derived seeds.
func tinyJobs(n int) []Job {
	p := vehicle.MustProfile(vehicle.ArduCopter)
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Label: fmt.Sprintf("tiny/%d", i),
			Cfg: sim.Config{
				Profile:   p,
				Plan:      mission.NewStraight(5, 10),
				Strategy:  core.StrategyDeLorean,
				Delta:     core.DefaultDelta(p),
				WindowSec: 5,
				Seed:      int64(100 + i),
				MaxSec:    2,
			},
		}
	}
	return jobs
}

// resultKey projects the fields the experiments reduce over; two runs of
// the same job must agree on all of them.
func resultKey(r sim.Result) string {
	return fmt.Sprintf("%v|%v|%d|%d|%d|%v|%d",
		r.FinalDistance, r.Duration, r.Ticks, r.DefenseNS, r.TotalNS, r.EnergyProxy, len(r.AttitudeSeries))
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	jobs := tinyJobs(6)
	serial, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths = %d, %d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs {
		if resultKey(serial[i]) != resultKey(parallel[i]) {
			t.Errorf("job %d: parallel result diverged from serial:\n  serial   %s\n  parallel %s",
				i, resultKey(serial[i]), resultKey(parallel[i]))
		}
	}
	// The seeds differ, so distinct jobs must not alias each other's slot.
	if resultKey(serial[0]) == resultKey(serial[1]) {
		t.Error("distinct seeds produced identical results — jobs may be aliased")
	}
}

// panicDetector panics on the first Update call, simulating a worker
// crash deep inside a mission.
type panicDetector struct{}

func (panicDetector) Update(_, _ sensors.PhysState) bool { panic("detector exploded") }
func (panicDetector) Alert() bool                        { return false }
func (panicDetector) Reset()                             {}

func TestRunConvertsWorkerPanicToLabeledError(t *testing.T) {
	jobs := tinyJobs(4)
	jobs[2].Label = "tiny/poisoned"
	jobs[2].Cfg.Detector = panicDetector{}
	_, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil {
		t.Fatal("panicking job did not surface an error")
	}
	for _, want := range []string{"job 2", "tiny/poisoned", "panic", "detector exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Do(context.Background(), 10, Options{Workers: 4}, func(_ context.Context, i int) error {
		if i >= 2 {
			return fmt.Errorf("i=%d: %w", i, sentinel)
		}
		return nil
	})
	var de *doError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *doError", err)
	}
	if de.index != 2 {
		t.Errorf("error index = %d, want 2 (lowest failure regardless of scheduling)", de.index)
	}
	if !errors.Is(err, sentinel) {
		t.Error("doError does not unwrap to the original error")
	}
}

func TestDoCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	const n = 50
	err := Do(ctx, n, Options{Workers: 2}, func(ctx context.Context, i int) error {
		executed.Add(1)
		if i == 0 {
			cancel()
			return nil
		}
		// Later jobs block until the cancellation propagates, pinning the
		// workers so the dispatcher must observe ctx.Done.
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got >= n {
		t.Errorf("all %d jobs executed despite mid-sweep cancellation", got)
	}
}

func TestRunCancelledContextInterruptsMissions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, tinyJobs(3), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoProgressMonotonicAndComplete(t *testing.T) {
	var calls [][2]int
	opt := Options{Workers: 3, Progress: func(completed, total int) {
		calls = append(calls, [2]int{completed, total}) // serialized by the runner
	}}
	if err := Do(context.Background(), 7, opt, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 7 {
		t.Fatalf("progress calls = %d, want 7", len(calls))
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != 7 {
			t.Errorf("call %d = %v, want {%d 7}", i, c, i+1)
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(context.Background(), 0, Options{}, func(context.Context, int) error {
		t.Error("fn called for empty sweep")
		return nil
	}); err != nil {
		t.Errorf("err = %v", err)
	}
}

func TestWorkersDefaultsAndCaps(t *testing.T) {
	if got := (Options{}).workers(4); got < 1 || got > 4 {
		t.Errorf("default workers = %d, want within [1, 4]", got)
	}
	if got := (Options{Workers: 8}).workers(3); got != 3 {
		t.Errorf("workers capped = %d, want 3", got)
	}
	if got := (Options{Workers: 2}).workers(100); got != 2 {
		t.Errorf("workers = %d, want 2", got)
	}
}
