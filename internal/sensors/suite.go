package sensors

import (
	"math"
	"math/rand"

	"repro/internal/floats"
	"repro/internal/vehicle"
)

// EarthField is the world-frame geomagnetic reference field in gauss
// (roughly mid-latitude: north component plus downward component).
var EarthField = [3]float64{0.22, 0.0, -0.42}

// Bias is the false data an SDA injects into the raw measurements of each
// sensor type (paper §5.3: "our attack code interfaces with the sensor
// libraries in the RV, and manipulates sensor measurements by adding a
// bias to them"). A zero Bias means no attack.
type Bias struct {
	// GPSPos offsets the reported position, metres per axis.
	GPSPos [3]float64
	// GPSVel offsets the reported velocity, m/s per axis.
	GPSVel [3]float64
	// Gyro offsets the reported angular rates, rad/s per axis. Because the
	// attitude estimate integrates gyro rates, a rate bias also corrupts
	// the Euler-angle states (Table 1).
	Gyro [3]float64
	// Accel offsets the reported acceleration, m/s² per axis.
	Accel [3]float64
	// MagYaw rotates the measured magnetic field about the vertical axis,
	// radians (the paper's 180° heading-flip attack).
	MagYaw float64
	// Baro offsets the reported barometric altitude, metres.
	Baro float64
}

// IsZero reports whether the bias injects nothing.
func (b Bias) IsZero() bool {
	return b == Bias{}
}

// Targets returns the sensor types that carry a non-zero injection.
func (b Bias) Targets() TypeSet {
	s := make(TypeSet, NumTypes)
	if b.GPSPos != [3]float64{} || b.GPSVel != [3]float64{} {
		s.Add(GPS)
	}
	if b.Gyro != [3]float64{} {
		s.Add(Gyro)
	}
	if b.Accel != [3]float64{} {
		s.Add(Accel)
	}
	if !floats.Zero(b.MagYaw) {
		s.Add(Mag)
	}
	if !floats.Zero(b.Baro) {
		s.Add(Baro)
	}
	return s
}

// Scale returns the bias multiplied by f on every channel. Used by
// stealthy attacks that ramp or modulate their injection.
func (b Bias) Scale(f float64) Bias {
	var out Bias
	for i := 0; i < 3; i++ {
		out.GPSPos[i] = f * b.GPSPos[i]
		out.GPSVel[i] = f * b.GPSVel[i]
		out.Gyro[i] = f * b.Gyro[i]
		out.Accel[i] = f * b.Accel[i]
	}
	out.MagYaw = f * b.MagYaw
	out.Baro = f * b.Baro
	return out
}

// Suite simulates the RV's onboard sensor stack: each sensor type samples
// at its profile rate, holds its last value between samples, carries
// Gaussian measurement noise, and is subject to SDA bias injection. The
// gyroscope's Euler-angle states are produced by integrating the (possibly
// biased) rate measurements, as onboard attitude estimation does.
type Suite struct {
	profile vehicle.Profile
	rng     *rand.Rand

	initialized bool
	est         PhysState

	lastGPS, lastGyro, lastAccel, lastMag, lastBaro float64

	// Gyro-integrated attitude (drifts with noise; corrupted by rate bias).
	attRoll, attPitch, attYaw float64

	// dropout marks failed sensors: they stop refreshing and hold their
	// last value (failure injection for robustness tests).
	dropout TypeSet
}

// NewSuite returns a sensor suite for the given vehicle profile, drawing
// measurement noise from rng.
func NewSuite(p vehicle.Profile, rng *rand.Rand) *Suite {
	return &Suite{profile: p, rng: rng}
}

// Profile returns the suite's vehicle profile.
func (s *Suite) Profile() vehicle.Profile { return s.profile }

// SetDropout marks the given sensor types as failed: from now on they
// hold their last value instead of refreshing. Pass an empty set to
// restore all sensors.
func (s *Suite) SetDropout(failed TypeSet) {
	s.dropout = failed.Clone()
}

// due reports whether a sensor with the given rate should refresh at time
// t given its last refresh time.
func due(t, last, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return t-last >= 1/rate-1e-9
}

// Sample advances the suite to time t: due sensors take fresh (noisy,
// possibly biased) measurements of the true vehicle state; others hold.
// dt is the elapsed time since the previous call (used for gyro attitude
// integration). It returns the current sensor-derived PS estimate.
func (s *Suite) Sample(t, dt float64, truth vehicle.State, trueAccel [3]float64, bias Bias) PhysState {
	p := &s.profile
	if !s.initialized {
		// Prime every channel at mission start (assumed attack-free zone).
		s.est = TruePhysState(truth, trueAccel, bodyField(truth.Yaw, 0))
		s.attRoll, s.attPitch, s.attYaw = truth.Roll, truth.Pitch, truth.Yaw
		s.lastGPS, s.lastGyro, s.lastAccel, s.lastMag, s.lastBaro = t, t, t, t, t
		s.initialized = true
		return s.est
	}

	if due(t, s.lastGPS, p.Rates.GPS) && !s.dropout.Has(GPS) {
		s.lastGPS = t
		s.est[SX] = truth.X + bias.GPSPos[0] + s.noise(p.Noise.GPSPos)
		s.est[SY] = truth.Y + bias.GPSPos[1] + s.noise(p.Noise.GPSPos)
		s.est[SZ] = truth.Z + bias.GPSPos[2] + s.noise(p.Noise.GPSPos)
		s.est[SVX] = truth.VX + bias.GPSVel[0] + s.noise(p.Noise.GPSVel)
		s.est[SVY] = truth.VY + bias.GPSVel[1] + s.noise(p.Noise.GPSVel)
		s.est[SVZ] = truth.VZ + bias.GPSVel[2] + s.noise(p.Noise.GPSVel)
	}
	if due(t, s.lastGyro, p.Rates.Gyro) && !s.dropout.Has(Gyro) {
		s.lastGyro = t
		wr := truth.WRoll + bias.Gyro[0] + s.noise(p.Noise.Gyro)
		wp := truth.WPitch + bias.Gyro[1] + s.noise(p.Noise.Gyro)
		wy := truth.WYaw + bias.Gyro[2] + s.noise(p.Noise.Gyro)
		s.est[SWRoll], s.est[SWPitch], s.est[SWYaw] = wr, wp, wy
		// Attitude from rate integration with a complementary pull toward
		// the true attitude, standing in for the accelerometer
		// gravity-vector correction real autopilots apply (time constant
		// 2 s). A rate bias of the Table 2 magnitudes (≥ 0.5 rad/s)
		// overwhelms the pull and corrupts the angle states (the Table 1
		// attribution diagnosis depends on), while after the attack ends
		// the attitude re-converges within seconds, as real attitude
		// estimators do.
		const leak = 0.5
		s.attRoll = vehicle.WrapAngle(s.attRoll + wr*dt - leak*dt*vehicle.WrapAngle(s.attRoll-truth.Roll))
		s.attPitch = vehicle.WrapAngle(s.attPitch + wp*dt - leak*dt*vehicle.WrapAngle(s.attPitch-truth.Pitch))
		s.attYaw = vehicle.WrapAngle(s.attYaw + wy*dt - leak*dt*vehicle.WrapAngle(s.attYaw-truth.Yaw))
		s.est[SRoll], s.est[SPitch], s.est[SYaw] = s.attRoll, s.attPitch, s.attYaw
	}
	if due(t, s.lastAccel, p.Rates.Accel) && !s.dropout.Has(Accel) {
		s.lastAccel = t
		s.est[SAX] = trueAccel[0] + bias.Accel[0] + s.noise(p.Noise.Accel)
		s.est[SAY] = trueAccel[1] + bias.Accel[1] + s.noise(p.Noise.Accel)
		s.est[SAZ] = trueAccel[2] + bias.Accel[2] + s.noise(p.Noise.Accel)
	}
	if due(t, s.lastMag, p.Rates.Mag) && !s.dropout.Has(Mag) {
		s.lastMag = t
		f := bodyField(truth.Yaw, bias.MagYaw)
		s.est[SMagX] = f[0] + s.noise(p.Noise.Mag)
		s.est[SMagY] = f[1] + s.noise(p.Noise.Mag)
		s.est[SMagZ] = f[2] + s.noise(p.Noise.Mag)
	}
	if due(t, s.lastBaro, p.Rates.Baro) && !s.dropout.Has(Baro) {
		s.lastBaro = t
		s.est[SBaroAlt] = truth.Z + bias.Baro + s.noise(p.Noise.Baro)
	}
	return s.est
}

// Estimate returns the current held PS estimate without advancing time.
func (s *Suite) Estimate() PhysState { return s.est }

func (s *Suite) noise(sigma float64) float64 {
	if floats.Zero(sigma) || s.rng == nil {
		return 0
	}
	return sigma * s.rng.NormFloat64()
}

// bodyField rotates the world geomagnetic field into the body frame for a
// vehicle at the given yaw (tilt compensation elided), applying the SDA's
// heading rotation attack if any.
func bodyField(yaw, attackYaw float64) [3]float64 {
	a := yaw + attackYaw
	c, sn := math.Cos(a), math.Sin(a)
	return [3]float64{
		c*EarthField[0] + sn*EarthField[1],
		-sn*EarthField[0] + c*EarthField[1],
		EarthField[2],
	}
}

// BodyField exposes the magnetometer observation model for tests and the
// EKF measurement function.
func BodyField(yaw float64) [3]float64 { return bodyField(yaw, 0) }
