package sensors

import (
	"repro/internal/floats"
	"repro/internal/vehicle"
)

// TypeMask is an allocation-free set of sensor types: one bit per Type.
// It is the trace-format and hot-path counterpart of TypeSet (which is a
// map and therefore allocates). The zero mask is empty.
type TypeMask uint8

// MaskOf builds a mask from the listed types.
func MaskOf(types ...Type) TypeMask {
	var m TypeMask
	for _, t := range types {
		m = m.With(t)
	}
	return m
}

// With returns the mask with t added.
func (m TypeMask) With(t Type) TypeMask {
	if t < GPS || t > Baro {
		return m
	}
	return m | 1<<(uint(t)-1)
}

// Has reports membership.
func (m TypeMask) Has(t Type) bool {
	if t < GPS || t > Baro {
		return false
	}
	return m&(1<<(uint(t)-1)) != 0
}

// IsEmpty reports whether no type is set.
func (m TypeMask) IsEmpty() bool { return m == 0 }

// Set expands the mask into a TypeSet (allocates; not for the hot path).
func (m TypeMask) Set() TypeSet {
	s := make(TypeSet, NumTypes)
	for _, t := range AllTypes() {
		if m.Has(t) {
			s.Add(t)
		}
	}
	return s
}

// Mask compresses the set into a TypeMask.
func (s TypeSet) Mask() TypeMask {
	var m TypeMask
	for _, t := range AllTypes() {
		if s.Has(t) {
			m = m.With(t)
		}
	}
	return m
}

// String renders the mask like TypeSet.String, e.g. "{GPS, gyroscope}".
func (m TypeMask) String() string { return m.Set().String() }

// TargetMask returns the sensor types carrying a non-zero injection as a
// mask. It is the allocation-free counterpart of Targets, used on the
// per-tick recording path.
func (b Bias) TargetMask() TypeMask {
	var m TypeMask
	if b.GPSPos != [3]float64{} || b.GPSVel != [3]float64{} {
		m = m.With(GPS)
	}
	if b.Gyro != [3]float64{} {
		m = m.With(Gyro)
	}
	if b.Accel != [3]float64{} {
		m = m.With(Accel)
	}
	if !floats.Zero(b.MagYaw) {
		m = m.With(Mag)
	}
	if !floats.Zero(b.Baro) {
		m = m.With(Baro)
	}
	return m
}

// Tick is the per-tick context the mission loop offers a Source. Sources
// that synthesize measurements from simulated physics (the simulator
// suite) consume the ground-truth fields; sources that replay recorded or
// external streams use only the timestamps. T advances on the fixed
// control-period grid (t += DT from 0), so a replayed mission observes
// bit-identical timestamps to the recording run.
type Tick struct {
	// T is the mission time of this control period; DT its length.
	T, DT float64
	// Truth is the simulator's ground-truth vehicle state.
	Truth vehicle.State
	// TruthAccel is the true translational acceleration (what a perfect
	// accelerometer would measure).
	TruthAccel [3]float64
}

// Reading is one time-aligned sensor frame: the held multi-rate PS
// estimate plus the attack annotations the mission loop and the trace
// format carry alongside it.
type Reading struct {
	// State is the sensor-derived PS estimate: each sensor type refreshes
	// at its own rate and holds its last value between refreshes, so the
	// frame is always aligned to the control-period grid.
	State PhysState
	// AttackActive reports whether an injection is physically reaching the
	// sensors this tick (TP/FP and detection-latency accounting).
	AttackActive bool
	// AttackTargets annotates which sensor types carry an injection this
	// tick (may be empty while AttackActive if the injection is in an
	// off-phase of an intermittent attack).
	AttackTargets TypeMask
}

// Source is the sensor-ingestion seam: the mission loop pulls one Reading
// per control period instead of synthesizing measurements inline. A
// Source is stateful (rate counters, replay cursors, noise rngs) and is
// owned by exactly one mission — parallel campaigns construct one Source
// per job. Implementations: the simulator synthesizer (internal/sim's
// SimSource), recorded-trace replay and record tees (internal/source),
// and the time-aligned multi-stream bus a live feed plugs into
// (internal/source's Bus).
type Source interface {
	// Sample advances the source to tick.T and returns the frame. An
	// error (replay exhaustion, trace desync) abandons the mission.
	Sample(tick Tick) (Reading, error)
	// AttackMounted reports whether the mission carries a sensor-deception
	// attack at all — recorded in the trace header and used for the
	// run report's attacked/benign outcome classification.
	AttackMounted() bool
}
