// Package sensors models the RV's five heterogeneous sensor types (GPS,
// gyroscope, accelerometer, magnetometer, barometer), the physical-state
// vector PS of Eq. 1, and the Table 1 state→sensor mapping that attack
// diagnosis relies on to attribute anomalous physical states to
// compromised sensors.
package sensors

import "fmt"

// Type identifies one of the five sensor types of Table 1.
type Type int

// The five sensor types.
const (
	GPS Type = iota + 1
	Gyro
	Accel
	Mag
	Baro
)

// NumTypes is the number of sensor types.
const NumTypes = 5

// AllTypes returns every sensor type in canonical order.
func AllTypes() []Type {
	return []Type{GPS, Gyro, Accel, Mag, Baro}
}

// String returns the sensor-type name.
func (t Type) String() string {
	switch t {
	case GPS:
		return "GPS"
	case Gyro:
		return "gyroscope"
	case Accel:
		return "accelerometer"
	case Mag:
		return "magnetometer"
	case Baro:
		return "barometer"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// StateIndex indexes the physical-state vector PS (Eq. 1 of the paper),
// extended with a dedicated barometric-altitude channel so the barometer's
// altitude estimate is attributable separately from the GPS z estimate
// (Table 3 lists a distinct δ for "Alt").
type StateIndex int

// Physical states. Order matters: it is the canonical PS layout used by
// checkpointing and reconstruction.
const (
	SX       StateIndex = iota // x position (GPS)
	SY                         // y position (GPS)
	SZ                         // z position (GPS)
	SVX                        // ẋ velocity (GPS)
	SVY                        // ẏ velocity (GPS)
	SVZ                        // ż velocity (GPS)
	SAX                        // ẍ acceleration (accelerometer)
	SAY                        // ÿ acceleration (accelerometer)
	SAZ                        // z̈ acceleration (accelerometer)
	SRoll                      // φ roll (gyroscope)
	SPitch                     // θ pitch (gyroscope)
	SYaw                       // ψ yaw (gyroscope)
	SWRoll                     // ωφ roll rate (gyroscope)
	SWPitch                    // ωθ pitch rate (gyroscope)
	SWYaw                      // ωψ yaw rate (gyroscope)
	SMagX                      // x_m magnetic field (magnetometer)
	SMagY                      // y_m magnetic field (magnetometer)
	SMagZ                      // z_m magnetic field (magnetometer)
	SBaroAlt                   // barometric altitude (barometer)

	// NumStates is the length of the PS vector.
	NumStates
)

var stateNames = [NumStates]string{
	"x", "y", "z", "vx", "vy", "vz", "ax", "ay", "az",
	"roll", "pitch", "yaw", "wroll", "wpitch", "wyaw",
	"mx", "my", "mz", "alt",
}

// String returns the short state name used in tables and traces.
func (i StateIndex) String() string {
	if i < 0 || i >= NumStates {
		return fmt.Sprintf("StateIndex(%d)", int(i))
	}
	return stateNames[i]
}

// AllStates returns every state index in canonical PS order.
func AllStates() []StateIndex {
	out := make([]StateIndex, NumStates)
	for i := range out {
		out[i] = StateIndex(i)
	}
	return out
}

// StatesOf returns the physical states derived from sensor type t — the
// Table 1 mapping.
func StatesOf(t Type) []StateIndex {
	switch t {
	case GPS:
		return []StateIndex{SX, SY, SZ, SVX, SVY, SVZ}
	case Gyro:
		return []StateIndex{SRoll, SPitch, SYaw, SWRoll, SWPitch, SWYaw}
	case Accel:
		return []StateIndex{SAX, SAY, SAZ}
	case Mag:
		return []StateIndex{SMagX, SMagY, SMagZ}
	case Baro:
		return []StateIndex{SBaroAlt}
	default:
		return nil
	}
}

// SensorOf returns the sensor type that sources state i (the inverse of
// the Table 1 mapping).
func SensorOf(i StateIndex) Type {
	switch {
	case i >= SX && i <= SVZ:
		return GPS
	case i >= SAX && i <= SAZ:
		return Accel
	case i >= SRoll && i <= SWYaw:
		return Gyro
	case i >= SMagX && i <= SMagZ:
		return Mag
	case i == SBaroAlt:
		return Baro
	default:
		return 0
	}
}

// TypeSet is a set of sensor types, used to describe which sensors an SDA
// targets or which a diagnosis flags.
type TypeSet map[Type]bool

// NewTypeSet builds a set from the listed types.
func NewTypeSet(types ...Type) TypeSet {
	s := make(TypeSet, len(types))
	for _, t := range types {
		s[t] = true
	}
	return s
}

// Clone returns a copy of the set.
func (s TypeSet) Clone() TypeSet {
	out := make(TypeSet, len(s))
	for t, v := range s {
		if v {
			out[t] = true
		}
	}
	return out
}

// Has reports membership.
func (s TypeSet) Has(t Type) bool { return s[t] }

// Add inserts t.
func (s TypeSet) Add(t Type) { s[t] = true }

// Len returns the number of members.
func (s TypeSet) Len() int {
	var n int
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

// List returns the members in canonical order.
func (s TypeSet) List() []Type {
	out := make([]Type, 0, len(s))
	for _, t := range AllTypes() {
		if s[t] {
			out = append(out, t)
		}
	}
	return out
}

// Equal reports whether two sets have identical membership.
func (s TypeSet) Equal(o TypeSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for _, t := range AllTypes() {
		if s[t] != o[t] {
			return false
		}
	}
	return true
}

// String renders the set for traces, e.g. "{GPS, gyroscope}".
func (s TypeSet) String() string {
	list := s.List()
	out := "{"
	for i, t := range list {
		if i > 0 {
			out += ", "
		}
		out += t.String()
	}
	return out + "}"
}
