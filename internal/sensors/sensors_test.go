package sensors

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vehicle"
)

func TestTable1Mapping(t *testing.T) {
	tests := []struct {
		give Type
		want []StateIndex
	}{
		{give: GPS, want: []StateIndex{SX, SY, SZ, SVX, SVY, SVZ}},
		{give: Gyro, want: []StateIndex{SRoll, SPitch, SYaw, SWRoll, SWPitch, SWYaw}},
		{give: Accel, want: []StateIndex{SAX, SAY, SAZ}},
		{give: Mag, want: []StateIndex{SMagX, SMagY, SMagZ}},
		{give: Baro, want: []StateIndex{SBaroAlt}},
	}
	for _, tt := range tests {
		t.Run(tt.give.String(), func(t *testing.T) {
			got := StatesOf(tt.give)
			if len(got) != len(tt.want) {
				t.Fatalf("StatesOf = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("StatesOf[%d] = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSensorOfIsInverseOfStatesOf(t *testing.T) {
	for _, typ := range AllTypes() {
		for _, idx := range StatesOf(typ) {
			if got := SensorOf(idx); got != typ {
				t.Errorf("SensorOf(%v) = %v, want %v", idx, got, typ)
			}
		}
	}
}

func TestEveryStateHasASensor(t *testing.T) {
	for _, idx := range AllStates() {
		if SensorOf(idx) == 0 {
			t.Errorf("state %v has no sensor", idx)
		}
	}
}

func TestStatesOfUnknownType(t *testing.T) {
	if got := StatesOf(Type(42)); got != nil {
		t.Errorf("StatesOf(42) = %v, want nil", got)
	}
}

func TestTypeSetBasics(t *testing.T) {
	s := NewTypeSet(GPS, Baro)
	if !s.Has(GPS) || !s.Has(Baro) || s.Has(Gyro) {
		t.Errorf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Add(Gyro)
	if !s.Has(Gyro) {
		t.Error("Add failed")
	}
	list := s.List()
	if len(list) != 3 || list[0] != GPS || list[1] != Gyro || list[2] != Baro {
		t.Errorf("List = %v", list)
	}
}

func TestTypeSetEqualAndClone(t *testing.T) {
	a := NewTypeSet(GPS, Mag)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Add(Baro)
	if a.Equal(b) {
		t.Error("sets with different members compare equal")
	}
	if a.Has(Baro) {
		t.Error("Clone shares storage")
	}
}

func TestTypeSetString(t *testing.T) {
	if got := NewTypeSet(GPS).String(); got != "{GPS}" {
		t.Errorf("String = %q", got)
	}
	if got := NewTypeSet().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestBiasTargets(t *testing.T) {
	tests := []struct {
		name string
		give Bias
		want TypeSet
	}{
		{name: "zero", give: Bias{}, want: NewTypeSet()},
		{name: "gps", give: Bias{GPSPos: [3]float64{5, 0, 0}}, want: NewTypeSet(GPS)},
		{name: "gyro", give: Bias{Gyro: [3]float64{0, 1, 0}}, want: NewTypeSet(Gyro)},
		{name: "accel", give: Bias{Accel: [3]float64{0, 0, 2}}, want: NewTypeSet(Accel)},
		{name: "mag", give: Bias{MagYaw: math.Pi}, want: NewTypeSet(Mag)},
		{name: "baro", give: Bias{Baro: 8}, want: NewTypeSet(Baro)},
		{
			name: "multi",
			give: Bias{GPSPos: [3]float64{5, 0, 0}, Baro: 8, MagYaw: 1},
			want: NewTypeSet(GPS, Mag, Baro),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Targets(); !got.Equal(tt.want) {
				t.Errorf("Targets = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBiasScale(t *testing.T) {
	b := Bias{GPSPos: [3]float64{10, 0, 0}, Baro: 4, MagYaw: 2}
	half := b.Scale(0.5)
	if half.GPSPos[0] != 5 || half.Baro != 2 || half.MagYaw != 1 {
		t.Errorf("Scale = %+v", half)
	}
	if !b.Scale(0).IsZero() {
		t.Error("Scale(0) should be zero bias")
	}
}

func TestMergeStates(t *testing.T) {
	var base, src PhysState
	for i := range base {
		base[i] = 1
		src[i] = 2
	}
	got := MergeStates(base, src, NewTypeSet(GPS))
	for _, idx := range StatesOf(GPS) {
		if got[idx] != 2 {
			t.Errorf("GPS state %v = %v, want 2", idx, got[idx])
		}
	}
	for _, idx := range StatesOf(Gyro) {
		if got[idx] != 1 {
			t.Errorf("gyro state %v = %v, want 1", idx, got[idx])
		}
	}
}

func TestPhysStateAbsDiffWrapsAngles(t *testing.T) {
	var a, b PhysState
	a[SYaw] = math.Pi - 0.01
	b[SYaw] = -math.Pi + 0.01
	d := a.AbsDiff(b)
	if d[SYaw] > 0.05 {
		t.Errorf("yaw diff across wrap = %v, want ≈0.02", d[SYaw])
	}
}

func TestPhysStateVehicleStateRoundTrip(t *testing.T) {
	s := vehicle.State{X: 1, Y: 2, Z: 3, VX: 4, VY: 5, VZ: 6, Roll: 0.1, Pitch: 0.2, Yaw: 0.3, WRoll: 0.4, WPitch: 0.5, WYaw: 0.6}
	p := TruePhysState(s, [3]float64{7, 8, 9}, [3]float64{0.1, 0.2, 0.3})
	if got := p.VehicleState(); got != s {
		t.Errorf("round trip: got %+v, want %+v", got, s)
	}
	if p[SAX] != 7 || p[SMagZ] != 0.3 || p[SBaroAlt] != 3 {
		t.Errorf("aux channels wrong: %+v", p)
	}
}

func noiselessProfile() vehicle.Profile {
	p := vehicle.MustProfile(vehicle.Pixhawk)
	p.Noise = vehicle.NoiseFloor{}
	return p
}

func TestSuiteNoiselessTracksTruth(t *testing.T) {
	s := NewSuite(noiselessProfile(), rand.New(rand.NewSource(1)))
	truth := vehicle.State{X: 3, Y: -2, Z: 10, VX: 1}
	dt := 0.01
	var est PhysState
	for i := 0; i < 200; i++ {
		est = s.Sample(float64(i)*dt, dt, truth, [3]float64{0, 0, 0}, Bias{})
	}
	if math.Abs(est[SX]-3) > 1e-9 || math.Abs(est[SZ]-10) > 1e-9 {
		t.Errorf("position estimate off: %v %v", est[SX], est[SZ])
	}
	if math.Abs(est[SBaroAlt]-10) > 1e-9 {
		t.Errorf("baro off: %v", est[SBaroAlt])
	}
}

func TestSuiteGPSBiasShiftsOnlyGPSStates(t *testing.T) {
	s := NewSuite(noiselessProfile(), rand.New(rand.NewSource(1)))
	truth := vehicle.State{Z: 10}
	dt := 0.01
	bias := Bias{GPSPos: [3]float64{20, 0, 0}}
	var est PhysState
	for i := 0; i < 100; i++ {
		est = s.Sample(float64(i)*dt, dt, truth, [3]float64{}, bias)
	}
	if math.Abs(est[SX]-20) > 1e-9 {
		t.Errorf("GPS x = %v, want 20", est[SX])
	}
	if math.Abs(est[SBaroAlt]-10) > 1e-9 {
		t.Errorf("baro should be unaffected: %v", est[SBaroAlt])
	}
	if est[SAX] != 0 {
		t.Errorf("accel should be unaffected: %v", est[SAX])
	}
}

func TestSuiteGyroBiasCorruptsAttitude(t *testing.T) {
	s := NewSuite(noiselessProfile(), rand.New(rand.NewSource(1)))
	truth := vehicle.State{Z: 10}
	dt := 0.01
	bias := Bias{Gyro: [3]float64{0.5, 0, 0}}
	var est PhysState
	for i := 0; i < 200; i++ {
		est = s.Sample(float64(i)*dt, dt, truth, [3]float64{}, bias)
	}
	// 0.5 rad/s over ~2 s ≈ 1 rad of roll error.
	if est[SRoll] < 0.5 {
		t.Errorf("gyro rate bias did not corrupt roll: %v", est[SRoll])
	}
	if math.Abs(est[SWRoll]-0.5) > 1e-9 {
		t.Errorf("rate state = %v, want 0.5", est[SWRoll])
	}
}

func TestSuiteMagYawAttackRotatesField(t *testing.T) {
	s := NewSuite(noiselessProfile(), rand.New(rand.NewSource(1)))
	truth := vehicle.State{Z: 10}
	dt := 0.01
	var clean, attacked PhysState
	for i := 0; i < 50; i++ {
		clean = s.Sample(float64(i)*dt, dt, truth, [3]float64{}, Bias{})
	}
	s2 := NewSuite(noiselessProfile(), rand.New(rand.NewSource(1)))
	for i := 0; i < 50; i++ {
		attacked = s2.Sample(float64(i)*dt, dt, truth, [3]float64{}, Bias{MagYaw: math.Pi})
	}
	// 180° flip negates the horizontal field components.
	if math.Abs(attacked[SMagX]+clean[SMagX]) > 1e-9 {
		t.Errorf("mag x: clean %v attacked %v", clean[SMagX], attacked[SMagX])
	}
	if math.Abs(attacked[SMagZ]-clean[SMagZ]) > 1e-9 {
		t.Errorf("vertical field should be invariant: %v vs %v", clean[SMagZ], attacked[SMagZ])
	}
}

func TestSuiteSampleRatesHold(t *testing.T) {
	// GPS at 10 Hz must hold between 100 Hz ticks.
	p := noiselessProfile()
	s := NewSuite(p, rand.New(rand.NewSource(1)))
	dt := 0.01
	truth := vehicle.State{X: 0}
	s.Sample(0, dt, truth, [3]float64{}, Bias{})
	// Move the vehicle; GPS should not see it until its next sample slot.
	truth.X = 100
	est := s.Sample(dt, dt, truth, [3]float64{}, Bias{})
	if est[SX] != 0 {
		t.Errorf("GPS updated too soon: %v", est[SX])
	}
	est = s.Sample(0.1, dt, truth, [3]float64{}, Bias{})
	if est[SX] != 100 {
		t.Errorf("GPS did not update at its slot: %v", est[SX])
	}
}

func TestBodyFieldYawZero(t *testing.T) {
	f := BodyField(0)
	if f != EarthField {
		t.Errorf("BodyField(0) = %v, want %v", f, EarthField)
	}
}

// Property: merging with the empty set is the identity; merging with all
// types replaces everything.
func TestPropertyMergeExtremes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var base, src PhysState
		for i := range base {
			base[i] = r.NormFloat64()
			src[i] = r.NormFloat64()
		}
		if MergeStates(base, src, NewTypeSet()) != base {
			return false
		}
		return MergeStates(base, src, NewTypeSet(AllTypes()...)) == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Targets of a scaled (non-zero-factor) bias equals Targets of
// the original.
func TestPropertyScalePreservesTargets(t *testing.T) {
	f := func(gx, gy, gz, ax float64, baro float64) bool {
		b := Bias{GPSPos: [3]float64{gx, gy, gz}, Accel: [3]float64{ax, 0, 0}, Baro: baro}
		return b.Scale(0.5).Targets().Equal(b.Targets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if GPS.String() != "GPS" || Baro.String() != "barometer" {
		t.Error("Type.String wrong")
	}
	if Type(42).String() == "" {
		t.Error("unknown type should stringify")
	}
}

func TestStateIndexString(t *testing.T) {
	if SX.String() != "x" || SBaroAlt.String() != "alt" {
		t.Error("StateIndex.String wrong")
	}
	if StateIndex(-1).String() == "" {
		t.Error("out-of-range index should stringify")
	}
}
