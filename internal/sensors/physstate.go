package sensors

import (
	"math"
	"strconv"

	"repro/internal/vehicle"
)

// PhysState is the physical-state vector PS of Eq. 1 (plus the barometric
// altitude channel). It is the unit of checkpointing, diagnosis, and
// reconstruction.
type PhysState [NumStates]float64

// At returns the state value at index i.
func (p PhysState) At(i StateIndex) float64 { return p[i] }

// Set assigns the state value at index i (a value receiver would mutate
// a copy, so this is a pointer method).
func (p *PhysState) Set(i StateIndex, v float64) { p[i] = v }

// String renders the vector as "name=value" pairs in canonical PS order,
// for debugging and trace dumps. It formats with strconv rather than fmt
// so nothing here can drag fmt's boxing into the hotalloc set.
func (p PhysState) String() string {
	buf := make([]byte, 0, 16*int(NumStates))
	buf = append(buf, '[')
	for i := range p {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, stateNames[i]...)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, p[i], 'g', 6, 64)
	}
	buf = append(buf, ']')
	return string(buf)
}

// Sub returns the element-wise difference p − q.
func (p PhysState) Sub(q PhysState) PhysState {
	var out PhysState
	for i := range p {
		out[i] = p[i] - q[i]
	}
	return out
}

// AbsDiff returns |p − q| element-wise, with angular channels compared on
// the circle so a wraparound from +π to −π does not register as a 2π jump.
func (p PhysState) AbsDiff(q PhysState) PhysState {
	var out PhysState
	for i := range p {
		idx := StateIndex(i)
		d := p[i] - q[i]
		if isAngular(idx) {
			d = vehicle.WrapAngle(d)
		}
		out[i] = math.Abs(d)
	}
	return out
}

// IsFinite reports whether every channel is finite.
func (p PhysState) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func isAngular(i StateIndex) bool {
	return i == SRoll || i == SPitch || i == SYaw
}

// TruePhysState derives the ground-truth PS vector from the simulator's
// true vehicle state, true acceleration, and the true magnetic field
// observation. It is what an oracle with perfect sensors would report, and
// anchors TP/FP accounting in the experiments.
func TruePhysState(s vehicle.State, accel [3]float64, field [3]float64) PhysState {
	var p PhysState
	p[SX], p[SY], p[SZ] = s.X, s.Y, s.Z
	p[SVX], p[SVY], p[SVZ] = s.VX, s.VY, s.VZ
	p[SAX], p[SAY], p[SAZ] = accel[0], accel[1], accel[2]
	p[SRoll], p[SPitch], p[SYaw] = s.Roll, s.Pitch, s.Yaw
	p[SWRoll], p[SWPitch], p[SWYaw] = s.WRoll, s.WPitch, s.WYaw
	p[SMagX], p[SMagY], p[SMagZ] = field[0], field[1], field[2]
	p[SBaroAlt] = s.Z
	return p
}

// VehicleState projects the PS vector back onto the 12-dimensional
// rigid-body state used by controllers (acceleration, magnetometer, and
// barometer channels are not part of the rigid-body state).
func (p PhysState) VehicleState() vehicle.State {
	return vehicle.State{
		X: p[SX], Y: p[SY], Z: p[SZ],
		VX: p[SVX], VY: p[SVY], VZ: p[SVZ],
		Roll: p[SRoll], Pitch: p[SPitch], Yaw: p[SYaw],
		WRoll: p[SWRoll], WPitch: p[SWPitch], WYaw: p[SWYaw],
	}
}

// MergeStates returns a PS vector that takes the channels belonging to
// sensors in replace from src, and all other channels from base. It is the
// selective-combination primitive of state reconstruction (§4.3):
// X'(t_a) = [x_c(t_a), x_r(t_a)].
func MergeStates(base, src PhysState, replace TypeSet) PhysState {
	out := base
	for _, t := range AllTypes() {
		if !replace.Has(t) {
			continue
		}
		for _, idx := range StatesOf(t) {
			out[idx] = src[idx]
		}
	}
	return out
}
