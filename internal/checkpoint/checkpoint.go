// Package checkpoint implements Historic States Checkpointing (§4.2):
// while the attack detector is quiet, the RV's physical states and control
// inputs are recorded in a sliding window w_i; when a window completes
// without an alert it becomes the trusted window and recording proceeds in
// w_{i+1}; when an alert fires, the current (possibly corrupted) window is
// discarded and the previous attack-free window supplies the trustworthy
// historic states HS for state reconstruction and recovery (Fig. 6).
//
// The window length is chosen large enough that a stealthy attack is
// detected within a single window (§4.2/§5.4), so a window that completed
// quietly cannot hide an undetected stealthy attack.
package checkpoint

import (
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// Record is one checkpoint sample: the sensor-derived physical states, the
// fused state estimate (the recovery anchor), and the control input issued
// at that tick (needed to roll the dynamics forward from the anchor).
type Record struct {
	T     float64
	PS    sensors.PhysState
	Est   vehicle.State
	Input vehicle.Input
	// InputOnly marks a record captured after an alert: only the control
	// input is trustworthy; the PS/Est fields are zero and must not be
	// used as measurements.
	InputOnly bool
}

// recordBytes approximates the in-memory footprint of one Record for the
// Table 3 memory-overhead accounting.
const recordBytes = 8 + int(sensors.NumStates)*8 + 12*8 + 4*8

// Recorder is the sliding-window historic-states recorder.
type Recorder struct {
	window float64

	cur      []Record
	prev     []Record
	curStart float64
	started  bool
	stopped  bool
}

// NewRecorder returns a recorder with the given window length in seconds
// (Table 3's WS column; derived per-RV from the stealthy-attack probe,
// §5.4).
func NewRecorder(windowSec float64) *Recorder {
	return &Recorder{window: windowSec}
}

// Window returns the configured window length.
func (r *Recorder) Window() float64 { return r.window }

// Record appends one sample. It is a no-op while recording is stopped
// (attack in progress). Completed quiet windows rotate into the trusted
// slot (Fig. 6a).
func (r *Recorder) Record(rec Record) {
	if r.stopped {
		return
	}
	if !r.started {
		r.curStart = rec.T
		r.started = true
	}
	if rec.T-r.curStart >= r.window && len(r.cur) > 0 {
		// Window w_i completed with no alert: it becomes the trusted
		// window; w_{i−1} is discarded (Fig. 6a). The discarded window's
		// buffer is recycled as the new current window, so steady-state
		// recording stops allocating once both buffers have grown to the
		// window length.
		r.prev, r.cur = r.cur, r.prev[:0]
		r.curStart = rec.T
	}
	r.cur = append(r.cur, rec)
}

// OnAlert stops recording and invalidates the current window's states,
// which may be corrupted by the attack (Fig. 6b). The previously
// completed window remains available as the trusted HS. The current
// window's control *inputs* are retained — inputs are produced by the
// controller, not by sensors, and the reconstruction roll-forward needs
// them to bridge the gap between the trusted anchor and the recovery
// activation time. If no window has completed yet (attack within the
// first window of an attack-free launch zone, §2.3), the current window
// up to the alert is promoted instead — the detector was quiet for all
// of it.
func (r *Recorder) OnAlert() {
	if r.stopped {
		return
	}
	if len(r.prev) == 0 && len(r.cur) > 0 {
		r.prev, r.cur = r.cur, r.prev[:0]
	}
	r.stopped = true
}

// Resume restarts recording after the attack subsides; a fresh current
// window begins at time t. The tainted gap records are dropped, and the
// old trusted window is retained until a new quiet window replaces it.
func (r *Recorder) Resume(t float64) {
	r.stopped = false
	r.cur = r.cur[:0]
	r.curStart = t
	r.started = true
}

// RecordInput appends an input-only record while recording is stopped, so
// the reconstruction roll-forward can bridge the full detection gap. The
// record's states are never served as trusted data.
func (r *Recorder) RecordInput(t float64, u vehicle.Input) {
	if !r.stopped {
		return
	}
	r.cur = append(r.cur, Record{T: t, Input: u, InputOnly: true})
}

// RecordsSince returns the records strictly after time t, in order,
// spanning the trusted and current windows. Post-alert records are
// input-only; their measurement fields are zero and flagged InputOnly.
func (r *Recorder) RecordsSince(t float64) []Record {
	var out []Record
	for _, rec := range r.prev {
		if rec.T > t {
			out = append(out, rec)
		}
	}
	for _, rec := range r.cur {
		if rec.T > t {
			out = append(out, rec)
		}
	}
	return out
}

// Stopped reports whether recording is currently halted.
func (r *Recorder) Stopped() bool { return r.stopped }

// Trusted returns the attack-free historic states HS (the last completed
// quiet window), or an empty slice if none exists yet. The returned slice
// is shared and recycled at the next window rotation; callers must not
// mutate it or retain it across Record calls.
func (r *Recorder) Trusted() []Record { return r.prev }

// LatestTrusted returns the most recent trustworthy record x_{t_s}
// (§4.3), and false if no trusted window exists.
func (r *Recorder) LatestTrusted() (Record, bool) {
	if len(r.prev) == 0 {
		return Record{}, false
	}
	return r.prev[len(r.prev)-1], true
}

// InputsSince returns the recorded control inputs strictly after time t,
// in order, spanning both the trusted and the current window. Control
// inputs are produced by the controller, not by sensors, so they remain
// usable from the discarded window for rolling the dynamics forward
// across the detection gap [t_s, t_a].
func (r *Recorder) InputsSince(t float64) []vehicle.Input {
	var out []vehicle.Input
	for _, rec := range r.prev {
		if rec.T > t {
			out = append(out, rec.Input)
		}
	}
	for _, rec := range r.cur {
		if rec.T > t {
			out = append(out, rec.Input)
		}
	}
	return out
}

// MemoryBytes reports the recorder's approximate buffer footprint for the
// Table 3 memory-overhead row.
func (r *Recorder) MemoryBytes() int {
	return (len(r.cur) + len(r.prev)) * recordBytes
}

// Len returns the number of samples currently buffered across both
// windows.
func (r *Recorder) Len() int { return len(r.cur) + len(r.prev) }
