package checkpoint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sensors"
	"repro/internal/vehicle"
)

func rec(t float64) Record {
	var ps sensors.PhysState
	ps[sensors.SX] = t // encode time in the state for identification
	return Record{T: t, PS: ps, Est: vehicle.State{X: t}, Input: vehicle.Input{Thrust: t}}
}

func TestWindowRotation(t *testing.T) {
	r := NewRecorder(1.0)
	for i := 0; i < 25; i++ {
		r.Record(rec(float64(i) * 0.1)) // 2.5 s of samples, 1 s windows
	}
	trusted := r.Trusted()
	if trusted == nil {
		t.Fatal("no trusted window after multiple rotations")
	}
	last, ok := r.LatestTrusted()
	if !ok {
		t.Fatal("LatestTrusted failed")
	}
	// The trusted window should be the one before the current; its last
	// record is at the most recent rotation boundary minus one sample.
	if last.T < 1.0 || last.T >= 2.5 {
		t.Errorf("latest trusted at t=%v, want within a completed window", last.T)
	}
	if got := trusted[len(trusted)-1]; got != last {
		t.Error("LatestTrusted disagrees with Trusted()")
	}
}

func TestAlertDiscardsCurrentWindow(t *testing.T) {
	r := NewRecorder(1.0)
	for i := 0; i < 15; i++ {
		r.Record(rec(float64(i) * 0.1))
	}
	// At t=1.4 the current window (started at 1.0) may be corrupted.
	r.OnAlert()
	last, ok := r.LatestTrusted()
	if !ok {
		t.Fatal("trusted window lost on alert")
	}
	if last.T >= 1.0 {
		t.Errorf("latest trusted t=%v should predate the corrupted window", last.T)
	}
}

func TestAlertStopsRecording(t *testing.T) {
	r := NewRecorder(1.0)
	for i := 0; i < 15; i++ {
		r.Record(rec(float64(i) * 0.1))
	}
	r.OnAlert()
	if !r.Stopped() {
		t.Error("recorder should be stopped after alert")
	}
	n := r.Len()
	r.Record(rec(2.0))
	if r.Len() != n {
		t.Error("record accepted while stopped")
	}
}

func TestAlertInFirstWindowPromotesPrefix(t *testing.T) {
	// Attack-free start assumption: if the alert fires before the first
	// rotation, the quiet prefix becomes the trusted window.
	r := NewRecorder(10.0)
	for i := 0; i < 5; i++ {
		r.Record(rec(float64(i) * 0.1))
	}
	r.OnAlert()
	last, ok := r.LatestTrusted()
	if !ok {
		t.Fatal("first-window alert should promote the quiet prefix")
	}
	if last.T != 0.4 {
		t.Errorf("latest trusted t=%v, want 0.4", last.T)
	}
}

func TestResumeRestartsRecording(t *testing.T) {
	r := NewRecorder(1.0)
	for i := 0; i < 15; i++ {
		r.Record(rec(float64(i) * 0.1))
	}
	r.OnAlert()
	oldTrusted, _ := r.LatestTrusted()
	r.Resume(3.0)
	if r.Stopped() {
		t.Error("recorder should run after Resume")
	}
	// Old trusted window survives until a fresh window completes.
	cur, _ := r.LatestTrusted()
	if cur != oldTrusted {
		t.Error("trusted window should survive resume until replaced")
	}
	for i := 0; i < 25; i++ {
		r.Record(rec(3.0 + float64(i)*0.1))
	}
	fresh, _ := r.LatestTrusted()
	if fresh.T <= oldTrusted.T {
		t.Errorf("trusted window not refreshed after resume: %v", fresh.T)
	}
}

func TestInputsSinceSpansWindows(t *testing.T) {
	r := NewRecorder(1.0)
	for i := 0; i < 25; i++ {
		r.Record(rec(float64(i) * 0.1))
	}
	anchor, _ := r.LatestTrusted()
	inputs := r.InputsSince(anchor.T)
	if len(inputs) == 0 {
		t.Fatal("no inputs since anchor")
	}
	// First input must be the one immediately after the anchor.
	if inputs[0].Thrust <= anchor.T {
		t.Errorf("first input at %v, want after anchor %v", inputs[0].Thrust, anchor.T)
	}
	// Inputs must be in time order (thrust encodes t).
	for i := 1; i < len(inputs); i++ {
		if inputs[i].Thrust <= inputs[i-1].Thrust {
			t.Fatal("inputs out of order")
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	r := NewRecorder(1.0)
	if r.MemoryBytes() != 0 {
		t.Error("empty recorder should report zero memory")
	}
	r.Record(rec(0))
	if r.MemoryBytes() <= 0 {
		t.Error("memory should grow with records")
	}
}

// Property: the trusted window never contains a record at or after the
// alert time, no matter the record/alert interleaving.
func TestPropertyTrustedPredatesAlert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder(0.5 + rng.Float64())
		tm := 0.0
		var alertAt float64 = -1
		for i := 0; i < 200; i++ {
			tm += 0.02 + rng.Float64()*0.05
			r.Record(rec(tm))
			if alertAt < 0 && i > 20 && rng.Float64() < 0.02 {
				alertAt = tm
				r.OnAlert()
				break
			}
		}
		if alertAt < 0 {
			return true
		}
		for _, record := range r.Trusted() {
			if record.T > alertAt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a completed quiet window is always available once enough time
// has passed, and memory is bounded by two windows of samples.
func TestPropertyMemoryBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		window := 0.5 + rng.Float64()
		r := NewRecorder(window)
		dt := 0.01
		n := 500 + rng.Intn(500)
		for i := 0; i < n; i++ {
			r.Record(rec(float64(i) * dt))
		}
		maxPerWindow := int(window/dt) + 2
		return r.Len() <= 2*maxPerWindow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlignStreamsDuplicatesLast(t *testing.T) {
	streams := map[string][]Sample{
		"gyro": {{T: 0, V: 1}, {T: 0.1, V: 2}, {T: 0.2, V: 3}, {T: 0.3, V: 4}},
		"gps":  {{T: 0, V: 10}, {T: 0.25, V: 20}},
	}
	ts, aligned := AlignStreams(streams)
	if len(ts) != 4 {
		t.Fatalf("target grid = %v, want 4 points (gyro)", ts)
	}
	wantGPS := []float64{10, 10, 10, 20}
	for i, v := range aligned["gps"] {
		if v != wantGPS[i] {
			t.Errorf("gps[%d] = %v, want %v", i, v, wantGPS[i])
		}
	}
	// The fast stream aligns to itself unchanged.
	wantGyro := []float64{1, 2, 3, 4}
	for i, v := range aligned["gyro"] {
		if v != wantGyro[i] {
			t.Errorf("gyro[%d] = %v, want %v", i, v, wantGyro[i])
		}
	}
}

func TestAlignStreamsBeforeFirstSample(t *testing.T) {
	streams := map[string][]Sample{
		"fast": {{T: 0, V: 1}, {T: 1, V: 2}, {T: 2, V: 3}},
		"late": {{T: 1.5, V: 42}},
	}
	_, aligned := AlignStreams(streams)
	want := []float64{42, 42, 42}
	for i, v := range aligned["late"] {
		if v != want[i] {
			t.Errorf("late[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestAlignStreamsEmpty(t *testing.T) {
	ts, aligned := AlignStreams(nil)
	if ts != nil || aligned != nil {
		t.Error("empty input should return nils")
	}
}

// Property: aligned streams always have exactly the target grid length,
// and values come from the source stream.
func TestPropertyAlignmentShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		streams := make(map[string][]Sample)
		names := []string{"a", "b", "c"}
		for _, name := range names {
			n := 1 + rng.Intn(20)
			s := make([]Sample, n)
			tm := 0.0
			for i := range s {
				tm += 0.01 + rng.Float64()*0.1
				s[i] = Sample{T: tm, V: rng.NormFloat64()}
			}
			streams[name] = s
		}
		ts, aligned := AlignStreams(streams)
		for _, name := range names {
			if len(aligned[name]) != len(ts) {
				return false
			}
			src := make(map[float64]bool, len(streams[name]))
			for _, s := range streams[name] {
				src[s.V] = true
			}
			for _, v := range aligned[name] {
				if !src[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
