package checkpoint

import "sort"

// Sample is one timestamped reading from a single sensor stream.
type Sample struct {
	T float64
	V float64
}

// AlignStreams implements the paper's multi-rate alignment (§4.2):
// "we select a single target frequency for recording the HS, which is the
// highest sampling rate of all the sensors. We then align the low
// frequency streams with the high frequency streams by inserting
// additional data points in the low frequency stream ... we duplicate the
// last data point in the low frequency streams based on the ranges of the
// sample points of the high frequency streams."
//
// streams maps a stream name to its samples (each sorted by time). The
// result maps each name to a slice aligned to the timestamps of the
// fastest stream (the one with the most samples): for every target
// timestamp, the aligned value is the latest sample at or before it
// (duplicate-last upsampling); target timestamps before a stream's first
// sample take that first sample.
//
// The returned timestamps slice holds the target grid. Alignment of an
// empty input returns nil maps.
func AlignStreams(streams map[string][]Sample) (timestamps []float64, aligned map[string][]float64) {
	if len(streams) == 0 {
		return nil, nil
	}
	// Pick the densest stream as the target grid; break ties by name for
	// determinism.
	var fastName string
	for name, s := range streams {
		if fastName == "" || len(s) > len(streams[fastName]) ||
			(len(s) == len(streams[fastName]) && name < fastName) {
			fastName = name
		}
	}
	fast := streams[fastName]
	if len(fast) == 0 {
		return nil, nil
	}
	timestamps = make([]float64, len(fast))
	for i, s := range fast {
		timestamps[i] = s.T
	}

	aligned = make(map[string][]float64, len(streams))
	for name, s := range streams {
		vals := make([]float64, len(timestamps))
		for i, ts := range timestamps {
			vals[i] = sampleAtOrBefore(s, ts)
		}
		aligned[name] = vals
	}
	return timestamps, aligned
}

// sampleAtOrBefore returns the value of the latest sample with T ≤ ts,
// or the first sample's value when ts precedes the stream.
func sampleAtOrBefore(s []Sample, ts float64) float64 {
	if len(s) == 0 {
		return 0
	}
	// Index of first sample with T > ts.
	i := sort.Search(len(s), func(i int) bool { return s[i].T > ts })
	if i == 0 {
		return s[0].V
	}
	return s[i-1].V
}
