// Package mission defines autonomous navigation plans — a start point,
// intermediate waypoints, and a destination — with the path shapes of the
// paper's Table 8 mission mix (straight, multi-waypoint, circular, and
// three polygonal shapes), plus the phase tracking (takeoff, cruise,
// landing) the Fig. 2 / Fig. 9 experiments attack.
package mission

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/floats"
)

// Waypoint is a target position in the world frame. Z is zero for rovers.
type Waypoint struct {
	X, Y, Z float64
}

// DistanceTo returns the 3-D distance between two waypoints.
func (w Waypoint) DistanceTo(o Waypoint) float64 {
	dx, dy, dz := w.X-o.X, w.Y-o.Y, w.Z-o.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// PathKind names the Table 8 path families.
type PathKind int

// Table 8 path families.
const (
	Straight PathKind = iota + 1
	MultiWaypoint
	Circular
	Polygon1
	Polygon2
	Polygon3
)

// String returns the Table 8 shorthand for the path kind.
func (k PathKind) String() string {
	switch k {
	case Straight:
		return "S"
	case MultiWaypoint:
		return "MW"
	case Circular:
		return "C"
	case Polygon1:
		return "P1"
	case Polygon2:
		return "P2"
	case Polygon3:
		return "P3"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Plan is one autonomous mission: takeoff (drones), the waypoint chain,
// then landing at the final waypoint.
type Plan struct {
	Kind PathKind
	// Altitude is the cruise altitude for drones; 0 for rovers.
	Altitude float64
	// Waypoints is the ordered chain; the last one is the destination.
	Waypoints []Waypoint
}

// Destination returns the final waypoint.
func (p Plan) Destination() Waypoint {
	if len(p.Waypoints) == 0 {
		return Waypoint{}
	}
	return p.Waypoints[len(p.Waypoints)-1]
}

// TotalDistance returns the path length through all waypoints from the
// origin.
func (p Plan) TotalDistance() float64 {
	var d float64
	prev := Waypoint{Z: p.Altitude}
	for _, w := range p.Waypoints {
		d += prev.DistanceTo(w)
		prev = w
	}
	return d
}

// NewStraight returns a straight-line plan of the given length along +x
// (the last-mile delivery shape).
func NewStraight(length, altitude float64) Plan {
	return Plan{
		Kind:     Straight,
		Altitude: altitude,
		Waypoints: []Waypoint{
			{X: length, Y: 0, Z: altitude},
		},
	}
}

// NewMultiWaypoint returns a dog-leg plan through n segments of the given
// leg length, alternating heading (the generic delivery shape).
func NewMultiWaypoint(n int, leg, altitude float64) Plan {
	wps := make([]Waypoint, 0, n)
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x += leg
		} else {
			y += leg * 0.6
		}
		wps = append(wps, Waypoint{X: x, Y: y, Z: altitude})
	}
	return Plan{Kind: MultiWaypoint, Altitude: altitude, Waypoints: wps}
}

// NewCircular returns a plan approximating a circle of the given radius
// with segments waypoints (the surveillance/agriculture shape). The plan
// starts and ends at the circle's east point.
func NewCircular(radius float64, segments int, altitude float64) Plan {
	if segments < 3 {
		segments = 3
	}
	wps := make([]Waypoint, 0, segments+1)
	for i := 1; i <= segments; i++ {
		a := 2 * math.Pi * float64(i) / float64(segments)
		wps = append(wps, Waypoint{
			X: radius * math.Cos(a),
			Y: radius * math.Sin(a),
			Z: altitude,
		})
	}
	return Plan{Kind: Circular, Altitude: altitude, Waypoints: wps}
}

// NewPolygon returns a closed polygonal patrol of the given side count and
// side length (the warehouse-rover shape), tagged as kind (Polygon1–3).
func NewPolygon(kind PathKind, sides int, side, altitude float64) Plan {
	if sides < 3 {
		sides = 3
	}
	wps := make([]Waypoint, 0, sides)
	x, y := 0.0, 0.0
	heading := 0.0
	turn := 2 * math.Pi / float64(sides)
	for i := 0; i < sides; i++ {
		x += side * math.Cos(heading)
		y += side * math.Sin(heading)
		heading += turn
		wps = append(wps, Waypoint{X: x, Y: y, Z: altitude})
	}
	return Plan{Kind: kind, Altitude: altitude, Waypoints: wps}
}

// NewOfKind builds a plan of the given kind with scale-appropriate
// dimensions drawn from rng, at the given altitude (0 for rovers).
func NewOfKind(kind PathKind, altitude float64, rng *rand.Rand) Plan {
	scale := 0.8 + 0.4*rng.Float64()
	switch kind {
	case Straight:
		return NewStraight(60*scale, altitude)
	case MultiWaypoint:
		return NewMultiWaypoint(3+rng.Intn(3), 30*scale, altitude)
	case Circular:
		return NewCircular(30*scale, 8, altitude)
	case Polygon1:
		return NewPolygon(Polygon1, 3, 40*scale, altitude)
	case Polygon2:
		return NewPolygon(Polygon2, 4, 35*scale, altitude)
	case Polygon3:
		return NewPolygon(Polygon3, 5, 30*scale, altitude)
	default:
		return NewStraight(60*scale, altitude)
	}
}

// PaperMix returns the Table 8 mission mix: 70 S, 70 MW, 50 C, and 50 of
// each polygonal path — 340 plans total — with sizes drawn from rng.
func PaperMix(altitude float64, rng *rand.Rand) []Plan {
	counts := []struct {
		kind PathKind
		n    int
	}{
		{kind: Straight, n: 70},
		{kind: MultiWaypoint, n: 70},
		{kind: Circular, n: 50},
		{kind: Polygon1, n: 50},
		{kind: Polygon2, n: 50},
		{kind: Polygon3, n: 50},
	}
	var out []Plan
	for _, c := range counts {
		for i := 0; i < c.n; i++ {
			out = append(out, NewOfKind(c.kind, altitude, rng))
		}
	}
	return out
}

// Phase is the mission phase; the Fig. 2 and Fig. 9 attacks specifically
// target takeoff and landing.
type Phase int

// Mission phases.
const (
	PhaseTakeoff Phase = iota + 1
	PhaseCruise
	PhaseLanding
	PhaseComplete
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseTakeoff:
		return "takeoff"
	case PhaseCruise:
		return "cruise"
	case PhaseLanding:
		return "landing"
	case PhaseComplete:
		return "complete"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Tracker walks a vehicle through a plan: takeoff to altitude, visit each
// waypoint within the acceptance radius, then descend at the destination.
type Tracker struct {
	plan   Plan
	accept float64
	index  int
	phase  Phase
}

// NewTracker returns a tracker for plan with the given waypoint acceptance
// radius in metres. Rover plans (zero altitude) skip the takeoff phase.
func NewTracker(plan Plan, acceptRadius float64) *Tracker {
	phase := PhaseTakeoff
	if floats.Zero(plan.Altitude) {
		phase = PhaseCruise
	}
	return &Tracker{plan: plan, accept: acceptRadius, phase: phase}
}

// Plan returns the tracked plan.
func (tr *Tracker) Plan() Plan { return tr.plan }

// Phase returns the current mission phase.
func (tr *Tracker) Phase() Phase { return tr.phase }

// Target returns the current navigation target for a vehicle at (x, y, z):
// the climb point during takeoff, the active waypoint during cruise, and
// the ground point under the destination during landing.
func (tr *Tracker) Target() Waypoint {
	switch tr.phase {
	case PhaseTakeoff:
		return Waypoint{X: 0, Y: 0, Z: tr.plan.Altitude}
	case PhaseLanding, PhaseComplete:
		d := tr.plan.Destination()
		return Waypoint{X: d.X, Y: d.Y, Z: 0}
	default:
		if tr.index < len(tr.plan.Waypoints) {
			return tr.plan.Waypoints[tr.index]
		}
		return tr.plan.Destination()
	}
}

// Advance updates the phase machine from the vehicle's believed position
// and returns the (possibly new) phase. The believed position is whatever
// state estimate the autopilot is flying on — under attack it may be
// wrong, exactly as onboard.
func (tr *Tracker) Advance(x, y, z float64) Phase {
	switch tr.phase {
	case PhaseTakeoff:
		if math.Abs(z-tr.plan.Altitude) < tr.accept {
			tr.phase = PhaseCruise
		}
	case PhaseCruise:
		if tr.index < len(tr.plan.Waypoints) {
			wp := tr.plan.Waypoints[tr.index]
			dx, dy := x-wp.X, y-wp.Y
			if math.Sqrt(dx*dx+dy*dy) < tr.accept {
				tr.index++
			}
		}
		if tr.index >= len(tr.plan.Waypoints) {
			if tr.plan.Altitude > 0 {
				tr.phase = PhaseLanding
			} else {
				tr.phase = PhaseComplete
			}
		}
	case PhaseLanding:
		if z < 0.3 {
			tr.phase = PhaseComplete
		}
	case PhaseComplete:
		// Terminal: the mission stays complete.
	}
	return tr.phase
}

// Done reports whether the mission has completed (by the tracker's own
// belief).
func (tr *Tracker) Done() bool { return tr.phase == PhaseComplete }
