package mission

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaypointDistance(t *testing.T) {
	a := Waypoint{X: 0, Y: 0, Z: 0}
	b := Waypoint{X: 3, Y: 4, Z: 0}
	if got := a.DistanceTo(b); got != 5 {
		t.Errorf("DistanceTo = %v, want 5", got)
	}
}

func TestNewStraight(t *testing.T) {
	p := NewStraight(60, 10)
	if len(p.Waypoints) != 1 {
		t.Fatalf("waypoints = %d", len(p.Waypoints))
	}
	if p.Destination() != (Waypoint{X: 60, Z: 10}) {
		t.Errorf("destination = %+v", p.Destination())
	}
	if p.Kind != Straight {
		t.Errorf("kind = %v", p.Kind)
	}
}

func TestNewCircularClosesLoop(t *testing.T) {
	p := NewCircular(30, 8, 10)
	if len(p.Waypoints) != 8 {
		t.Fatalf("waypoints = %d", len(p.Waypoints))
	}
	// All waypoints on the circle.
	for _, w := range p.Waypoints {
		r := math.Hypot(w.X, w.Y)
		if math.Abs(r-30) > 1e-9 {
			t.Errorf("waypoint %+v off circle: r = %v", w, r)
		}
	}
	// Ends back at the east point.
	d := p.Destination()
	if math.Abs(d.X-30) > 1e-9 || math.Abs(d.Y) > 1e-9 {
		t.Errorf("destination = %+v, want (30, 0)", d)
	}
}

func TestNewPolygonCloses(t *testing.T) {
	p := NewPolygon(Polygon2, 4, 40, 0)
	if len(p.Waypoints) != 4 {
		t.Fatalf("waypoints = %d", len(p.Waypoints))
	}
	d := p.Destination()
	if math.Abs(d.X) > 1e-9 || math.Abs(d.Y) > 1e-9 {
		t.Errorf("square should return to origin, got %+v", d)
	}
}

func TestPaperMixTable8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	plans := PaperMix(10, rng)
	if len(plans) != 340 {
		t.Fatalf("total = %d, want 340 (Table 8)", len(plans))
	}
	counts := make(map[PathKind]int)
	for _, p := range plans {
		counts[p.Kind]++
	}
	wants := map[PathKind]int{
		Straight: 70, MultiWaypoint: 70, Circular: 50,
		Polygon1: 50, Polygon2: 50, Polygon3: 50,
	}
	for kind, want := range wants {
		if counts[kind] != want {
			t.Errorf("%v count = %d, want %d", kind, counts[kind], want)
		}
	}
}

func TestTrackerDronePhases(t *testing.T) {
	tr := NewTracker(NewStraight(50, 10), 2)
	if tr.Phase() != PhaseTakeoff {
		t.Fatalf("initial phase = %v", tr.Phase())
	}
	// Target during takeoff is the climb point.
	if got := tr.Target(); got.Z != 10 || got.X != 0 {
		t.Errorf("takeoff target = %+v", got)
	}
	tr.Advance(0, 0, 9.5)
	if tr.Phase() != PhaseCruise {
		t.Fatalf("phase after reaching altitude = %v", tr.Phase())
	}
	if got := tr.Target(); got.X != 50 {
		t.Errorf("cruise target = %+v", got)
	}
	tr.Advance(49.5, 0, 10)
	if tr.Phase() != PhaseLanding {
		t.Fatalf("phase after final waypoint = %v", tr.Phase())
	}
	if got := tr.Target(); got.Z != 0 {
		t.Errorf("landing target = %+v", got)
	}
	tr.Advance(50, 0, 0.1)
	if !tr.Done() {
		t.Error("mission should be complete on touchdown")
	}
}

func TestTrackerRoverSkipsTakeoff(t *testing.T) {
	tr := NewTracker(NewPolygon(Polygon1, 3, 20, 0), 1.5)
	if tr.Phase() != PhaseCruise {
		t.Fatalf("rover initial phase = %v", tr.Phase())
	}
	// Visit all three corners.
	for _, w := range tr.Plan().Waypoints {
		tr.Advance(w.X, w.Y, 0)
	}
	if !tr.Done() {
		t.Errorf("rover mission should complete, phase = %v", tr.Phase())
	}
}

func TestTrackerMultiWaypointOrder(t *testing.T) {
	plan := NewMultiWaypoint(4, 20, 10)
	tr := NewTracker(plan, 2)
	tr.Advance(0, 0, 10) // finish takeoff
	first := tr.Target()
	if first != plan.Waypoints[0] {
		t.Errorf("first target = %+v, want %+v", first, plan.Waypoints[0])
	}
	tr.Advance(first.X, first.Y, 10)
	if got := tr.Target(); got != plan.Waypoints[1] {
		t.Errorf("second target = %+v, want %+v", got, plan.Waypoints[1])
	}
}

func TestTotalDistancePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []PathKind{Straight, MultiWaypoint, Circular, Polygon1, Polygon2, Polygon3} {
		p := NewOfKind(kind, 10, rng)
		if p.TotalDistance() <= 0 {
			t.Errorf("%v: non-positive distance", kind)
		}
	}
}

func TestEmptyPlanDestination(t *testing.T) {
	var p Plan
	if p.Destination() != (Waypoint{}) {
		t.Error("empty plan destination should be origin")
	}
}

// Property: a tracker never regresses phases and always terminates when
// driven along its own targets.
func TestPropertyTrackerProgress(t *testing.T) {
	f := func(seed int64, kind0 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kind := PathKind(1 + int(kind0)%6)
		plan := NewOfKind(kind, 10, rng)
		tr := NewTracker(plan, 2)
		prev := tr.Phase()
		for i := 0; i < 10000 && !tr.Done(); i++ {
			tgt := tr.Target()
			ph := tr.Advance(tgt.X, tgt.Y, tgt.Z)
			if ph < prev {
				return false
			}
			prev = ph
		}
		return tr.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPathKindString(t *testing.T) {
	if Straight.String() != "S" || Polygon3.String() != "P3" {
		t.Error("PathKind.String wrong")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseTakeoff.String() != "takeoff" || PhaseComplete.String() != "complete" {
		t.Error("Phase.String wrong")
	}
}
