package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{7}, want: 7},
		{name: "mixed", give: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", give: []float64{-2, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestStdev(t *testing.T) {
	if got := Stdev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.1380899) > 1e-6 {
		t.Errorf("Stdev = %v", got)
	}
	if got := Stdev([]float64{5}); got != 0 {
		t.Errorf("Stdev of single sample = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "odd", give: []float64{3, 1, 2}, want: 2},
		{name: "even", give: []float64{4, 1, 3, 2}, want: 2.5},
		{name: "empty", give: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.give); got != tt.want {
				t.Errorf("Median(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 0},
		{q: 0.25, want: 1},
		{q: 0.5, want: 2},
		{q: 1, want: 4},
		{q: -0.5, want: 0},
		{q: 2, want: 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v", got)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{2, 1, 3})
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].Value != 1 || cdf[2].Value != 3 {
		t.Errorf("CDF not sorted: %v", cdf)
	}
	if cdf[2].Prob != 1 {
		t.Errorf("final prob = %v, want 1", cdf[2].Prob)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt(nil) = %v", got)
	}
}

func TestOutlierThreshold(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1}
	// Zero spread: δ = median.
	if got := OutlierThreshold(xs, 3); got != 1 {
		t.Errorf("OutlierThreshold = %v, want 1", got)
	}
}

// Property: the δ rule with k=3 bounds the bulk of a Gaussian sample —
// at most a small fraction of attack-free samples exceed δ.
func TestPropertyDeltaBoundsGaussianBulk(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = math.Abs(r.NormFloat64())
		}
		delta := OutlierThreshold(xs, 3)
		var exceed int
		for _, x := range xs {
			if x > delta {
				exceed++
			}
		}
		return float64(exceed)/float64(len(xs)) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the empirical CDF is non-decreasing and ends at probability 1.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(100))
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		cdf := EmpiricalCDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Prob < cdf[i-1].Prob || cdf[i].Value < cdf[i-1].Value {
				return false
			}
		}
		return cdf[len(cdf)-1].Prob == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
