// Package stat provides the small set of descriptive statistics used for
// δ-threshold calibration (median + k·stdev outlier rule, per Reimann et
// al. as cited by the paper) and for the CDF-style figures (Fig. 8a/8b).
package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stdev returns the sample standard deviation of xs (n−1 denominator),
// or 0 when fewer than two samples are given.
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs, or 0 for an empty slice.
// xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMS returns the root mean square of xs, or 0 for an empty slice.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CDFPoint is one (value, cumulative probability) sample of an empirical
// cumulative distribution function.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// EmpiricalCDF returns the empirical CDF of xs as a sorted series of
// points. xs is not modified.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Prob: float64(i+1) / n}
	}
	return out
}

// CDFAt returns the empirical probability P(X ≤ v) for the sample xs.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var count int
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// OutlierThreshold implements the paper's δ rule:
//
//	δ = median(e) + k·stdev(e)
//
// with k = 3 by default (§5.4). Values above δ are treated as
// attack-induced outliers.
func OutlierThreshold(xs []float64, k float64) float64 {
	return Median(xs) + k*Stdev(xs)
}
