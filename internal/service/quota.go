package service

import (
	"math"
	"sync"
	"time"

	"repro/internal/clock"
)

// maxTenants bounds the bucket map; when exceeded, buckets that have
// refilled to burst (indistinguishable from fresh ones) are pruned.
const maxTenants = 1024

// quota is a per-tenant token bucket: each tenant accrues rate tokens
// per second up to burst, and a submission of n missions costs n tokens.
// Time flows through the internal/clock seam, so the determinism fence
// holds and tests can drive refill with a fake clock. A nil *quota
// admits everything (quotas disabled).
type quota struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuota builds a quota, or nil (unlimited) when rate is not positive.
// A non-positive burst defaults to 16 tokens.
func newQuota(rate, burst float64) *quota {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	if burst <= 0 || math.IsNaN(burst) {
		burst = 16
	}
	return &quota{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow charges cost tokens to the tenant's bucket. When the bucket
// cannot cover the cost it is left untouched and allow reports how long
// the tenant must wait for the charge to succeed (the HTTP layer turns
// this into 429 + Retry-After). A cost beyond burst is charged as a full
// burst — an oversized request is throttled to the bucket's refill
// cadence instead of being unsatisfiable forever.
func (q *quota) allow(tenant string, cost float64) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	if cost > q.burst {
		cost = q.burst
	}
	now := clock.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		q.prune()
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	wait := (cost - b.tokens) / q.rate
	return false, time.Duration(wait * float64(time.Second))
}

// prune drops buckets that have refilled to burst; they behave exactly
// like fresh buckets, so forgetting them is invisible to tenants.
// Callers hold mu.
func (q *quota) prune() {
	if len(q.buckets) < maxTenants {
		return
	}
	now := clock.Now()
	for tenant, b := range q.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*q.rate >= q.burst {
			delete(q.buckets, tenant)
		}
	}
}

// QuotaStatus is the quota block of /statusz.
type QuotaStatus struct {
	Enabled bool    `json:"enabled"`
	Rate    float64 `json:"rate,omitempty"`
	Burst   float64 `json:"burst,omitempty"`
	Tenants int     `json:"tenants"`
}

// status snapshots the quota for /statusz.
func (q *quota) status() QuotaStatus {
	if q == nil {
		return QuotaStatus{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return QuotaStatus{Enabled: true, Rate: q.rate, Burst: q.burst, Tenants: len(q.buckets)}
}
