package service

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// fakeClock drives quota refill deterministically through the clock seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func installClock(t *testing.T) *fakeClock {
	t.Helper()
	c := &fakeClock{t: time.Unix(1000, 0)}
	t.Cleanup(clock.SetForTest(c.now))
	return c
}

func TestQuotaDisabled(t *testing.T) {
	if q := newQuota(0, 10); q != nil {
		t.Fatal("rate 0 should disable quotas")
	}
	var q *quota
	if ok, _ := q.allow("anyone", 1e9); !ok {
		t.Error("nil quota must admit everything")
	}
	if st := q.status(); st.Enabled {
		t.Error("nil quota reports enabled")
	}
}

func TestQuotaBurstThenRefill(t *testing.T) {
	ck := installClock(t)
	q := newQuota(2, 4) // 2 tokens/s, burst 4
	for i := 0; i < 4; i++ {
		if ok, _ := q.allow("a", 1); !ok {
			t.Fatalf("charge %d within burst rejected", i)
		}
	}
	ok, wait := q.allow("a", 1)
	if ok {
		t.Fatal("empty bucket admitted a charge")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("retry hint = %v, want (0, 500ms] scale", wait)
	}
	ck.advance(time.Second) // refills 2 tokens
	if ok, _ := q.allow("a", 2); !ok {
		t.Error("refilled tokens not granted")
	}
	if ok, _ := q.allow("a", 1); ok {
		t.Error("bucket should be empty again")
	}
}

func TestQuotaOversizedCostIsThrottledNotStarved(t *testing.T) {
	installClock(t)
	q := newQuota(1, 2)
	// A cost beyond burst charges a full burst instead of being
	// unsatisfiable forever.
	if ok, _ := q.allow("a", 100); !ok {
		t.Fatal("oversized first charge should drain the full bucket and pass")
	}
	if ok, _ := q.allow("a", 1); ok {
		t.Error("bucket should be drained after the oversized charge")
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	installClock(t)
	q := newQuota(1, 1)
	if ok, _ := q.allow("a", 1); !ok {
		t.Fatal("tenant a first charge rejected")
	}
	if ok, _ := q.allow("b", 1); !ok {
		t.Error("tenant b shares tenant a's bucket")
	}
	if st := q.status(); st.Tenants != 2 {
		t.Errorf("tenants = %d, want 2", st.Tenants)
	}
}

func TestQuotaPruneBoundsTenantMap(t *testing.T) {
	ck := installClock(t)
	q := newQuota(1000, 1)
	for i := 0; i < maxTenants; i++ {
		_, _ = q.allow(string(rune('a'))+time.Duration(i).String(), 1)
	}
	// Everyone refills; the next new tenant triggers a prune.
	ck.advance(time.Hour)
	_, _ = q.allow("fresh", 1)
	if n := q.status().Tenants; n > 2 {
		t.Errorf("tenant map not pruned: %d entries", n)
	}
}
