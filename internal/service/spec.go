// Package service is the mission-service layer: it turns DeLorean from a
// batch evaluator into a long-running server. The package has two halves.
// The spec half (this file) is the transport-neutral mission
// parameterization — MissionSpec — shared by the delorean CLI and the
// HTTP API, so a mission submitted over the wire is built through exactly
// the same wiring (and the same master-rng draw order) as one launched
// from the command line, and the two produce byte-identical run reports.
// The server half (service.go, handlers.go) exposes the spec over an HTTP
// JSON API with NDJSON result streaming, bounded queues with
// backpressure, per-tenant quotas, and graceful drain.
package service

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

// MissionSpec is one mission's full parameterization, in the vocabulary
// of the delorean CLI flags. The zero value of every optional field
// selects the documented default (see Build), so a minimal JSON request
// like {"attack":"GPS","seed":3} is a complete mission. The spec is a
// pure value: building it never mutates it, and the same spec always
// builds the same mission.
type MissionSpec struct {
	// RV is the vehicle profile name (default ArduCopter).
	RV string `json:"rv,omitempty"`
	// Defense is the strategy name (default DeLorean).
	Defense string `json:"defense,omitempty"`
	// Path is the mission path kind: S, MW, C, P1, P2, P3 (default S).
	Path string `json:"path,omitempty"`
	// Attack is the comma-separated sensor list under SDA; empty = no
	// attack.
	Attack string `json:"attack,omitempty"`
	// AttackStart/AttackDur bound the attack window in mission seconds
	// (start 0 = from mission start).
	AttackStart float64 `json:"attack_start,omitempty"`
	AttackDur   float64 `json:"attack_dur,omitempty"`
	// Stealthy selects a sub-threshold attack mode: random, gradual,
	// intermittent; empty = persistent full-bias SDA.
	Stealthy string `json:"stealthy,omitempty"`
	// Wind is the mean wind in m/s (0 = calm).
	Wind float64 `json:"wind,omitempty"`
	// Seed drives every stochastic component of the mission.
	Seed int64 `json:"seed"`
	// MaxSec is the mission time budget (default 300 simulated seconds).
	MaxSec float64 `json:"max_sec,omitempty"`
}

// SpecError reports one invalid MissionSpec field. It is a usage error:
// the CLI maps it to exit code 2 and the HTTP API to status 400.
type SpecError struct {
	// Field is the MissionSpec field name, e.g. "Defense".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *SpecError) Error() string {
	return "service: invalid MissionSpec." + e.Field + ": " + e.Reason
}

// Mission is a built, validated mission: the sim.Config ready to run plus
// the collaborators the CLI's human-readable output wants to describe.
type Mission struct {
	// Spec is the normalized spec the mission was built from (defaults
	// applied).
	Spec MissionSpec
	// Cfg is the runnable mission configuration (Validate already passed).
	Cfg sim.Config
	// SDA is the attack the schedule carries, nil when attack-free.
	SDA *attack.SDA
	// Kind is the parsed path kind.
	Kind mission.PathKind
}

// withDefaults resolves the zero-value fields to the documented defaults.
func (s MissionSpec) withDefaults() MissionSpec {
	if s.RV == "" {
		s.RV = "ArduCopter"
	}
	if s.Defense == "" {
		s.Defense = "DeLorean"
	}
	if s.Path == "" {
		s.Path = "S"
	}
	if s.MaxSec <= 0 {
		s.MaxSec = 300
	}
	return s
}

// Build wires the spec into a runnable mission, replicating the delorean
// CLI's construction order exactly — profile, strategy, path, then a
// master rng seeded with Seed that draws the plan, the mission seed, and
// the attack schedule in that order. The draw order is part of the
// byte-identity contract: a spec restored from a trace header rebuilds
// the recording run bit for bit. The built config has passed
// sim.Config.Validate.
func (s MissionSpec) Build() (*Mission, error) {
	s = s.withDefaults()
	profile, err := vehicle.LookupProfile(vehicle.ProfileName(s.RV))
	if err != nil {
		return nil, &SpecError{Field: "RV", Reason: err.Error()}
	}
	strategy, err := ParseStrategy(s.Defense)
	if err != nil {
		return nil, err
	}
	kind, err := ParsePath(s.Path)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	plan := mission.NewOfKind(kind, profile.CruiseAltitude, rng)

	cfg := sim.Config{
		Profile:    profile,
		Plan:       plan,
		Strategy:   strategy,
		WindowSec:  15,
		WindMean:   s.Wind,
		WindGust:   0.5,
		Seed:       rng.Int63(),
		MaxSec:     s.MaxSec,
		TraceEvery: 100,
	}
	m := &Mission{Spec: s, Kind: kind}
	if s.Attack != "" {
		targets, err := ParseTargets(s.Attack)
		if err != nil {
			return nil, err
		}
		if s.Stealthy == "" {
			m.SDA = attack.New(rng, attack.DefaultParams(), targets, s.AttackStart, s.AttackStart+s.AttackDur)
		} else {
			mode, err := ParseStealthyMode(s.Stealthy)
			if err != nil {
				return nil, err
			}
			// Stealthy attacks inject sub-threshold bias: a tenth of the
			// Table 2 magnitudes.
			base := attack.New(rng, attack.DefaultParams(), targets, s.AttackStart, s.AttackStart+s.AttackDur)
			m.SDA = attack.NewWithBias(rng, base.Base().Scale(0.1), s.AttackStart, s.AttackStart+s.AttackDur, mode)
		}
		cfg.Attacks = attack.NewSchedule(m.SDA)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m.Cfg = cfg
	return m, nil
}

// UseReplay substitutes the recorded sensor stream for the simulator
// source. The trace's frames already carry every injection, so the live
// attack schedule is discarded (Validate forbids carrying both). The
// replay cursor is stateful: give every mission its own Replay over the
// shared decoded trace.
func (m *Mission) UseReplay(tr *trace.Trace) {
	m.Cfg.Source = source.NewReplay(tr)
	m.Cfg.Attacks = nil
}

// Record tees the simulator source through a trace recorder and returns
// it; after the mission runs, Recorder.Trace carries the recorded stream.
func (m *Mission) Record() *source.Recorder {
	rec := source.NewRecorder(sim.NewSimSource(sim.SourceConfig{
		Profile: m.Cfg.Profile,
		Seed:    m.Cfg.Seed,
		Attacks: m.Cfg.Attacks,
	}))
	m.Cfg.Source = rec
	m.Cfg.Attacks = nil
	return rec
}

// HeaderMeta stamps the full mission parameterization into a trace header
// (an ordered list, never a map) so SpecFromHeader can reconstruct the
// run with no other inputs.
func (s MissionSpec) HeaderMeta() []trace.MetaEntry {
	s = s.withDefaults()
	return []trace.MetaEntry{
		{Key: "generator", Value: "delorean"},
		{Key: "rv", Value: s.RV},
		{Key: "defense", Value: s.Defense},
		{Key: "path", Value: s.Path},
		{Key: "attack", Value: s.Attack},
		{Key: "attack-start", Value: formatFloat(s.AttackStart)},
		{Key: "attack-dur", Value: formatFloat(s.AttackDur)},
		{Key: "stealthy", Value: s.Stealthy},
		{Key: "wind", Value: formatFloat(s.Wind)},
		{Key: "seed", Value: strconv.FormatInt(s.Seed, 10)},
		{Key: "max-sec", Value: formatFloat(s.MaxSec)},
	}
}

// SpecFromHeader reconstructs the recording run's spec from a trace
// header. The attack fields ride along for provenance display, but a
// replayed mission never rebuilds the schedule — the injections are baked
// into the frames.
func SpecFromHeader(h trace.Header) (MissionSpec, error) {
	var s MissionSpec
	var err error
	str := func(key string) string {
		v, _ := h.MetaValue(key)
		return v
	}
	num := func(key string) float64 {
		v, ok := h.MetaValue(key)
		if !ok {
			return 0
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("trace header %s=%q: %w", key, v, perr)
		}
		return f
	}
	s.RV = str("rv")
	s.Defense = str("defense")
	s.Path = str("path")
	s.Attack = str("attack")
	s.Stealthy = str("stealthy")
	s.AttackStart = num("attack-start")
	s.AttackDur = num("attack-dur")
	s.Wind = num("wind")
	s.MaxSec = num("max-sec")
	if v, ok := h.MetaValue("seed"); ok {
		sd, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("trace header seed=%q: %w", v, perr)
		}
		s.Seed = sd
	}
	if s.RV == "" || s.Defense == "" || s.Path == "" {
		return s, fmt.Errorf("trace header is missing the delorean mission parameters (rv/defense/path)")
	}
	return s, err
}

// ReportMeta is the run-report meta block for n missions built from this
// spec. Generator stays "delorean" for single missions so a mission
// served over HTTP reports byte-identically to one run from the CLI.
func (s MissionSpec) ReportMeta(n int) telemetry.Meta {
	gen := "delorean"
	if n != 1 {
		gen = "delorean-server"
	}
	return telemetry.Meta{Generator: gen, Missions: n, Seed: s.Seed, Wind: s.Wind}
}

// BatchReport folds mission telemetries — in submission order — into one
// versioned run report under the named experiment group. The bytes are a
// pure function of (name, meta, telemetries), independent of how many
// workers produced them.
func BatchReport(name string, meta telemetry.Meta, tels []*telemetry.Mission) (*telemetry.Report, error) {
	col := telemetry.NewCollector()
	col.Begin(name)
	for _, m := range tels {
		col.Add(m)
	}
	return col.Report(meta)
}

// MissionReport is the single-mission run report the CLI writes for
// -report and the service streams as the final NDJSON line: group
// "delorean", meta from the spec.
func MissionReport(spec MissionSpec, tel *telemetry.Mission) (*telemetry.Report, error) {
	return BatchReport("delorean", spec.withDefaults().ReportMeta(1), []*telemetry.Mission{tel})
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseStrategy resolves a defense-strategy name (case-insensitive, with
// the registry's aliases).
func ParseStrategy(s string) (core.Strategy, error) {
	strategy, ok := core.StrategyByName(s)
	if !ok {
		return 0, &SpecError{Field: "Defense", Reason: fmt.Sprintf("unknown defense %q", s)}
	}
	return strategy, nil
}

// ParsePath resolves a mission path kind name.
func ParsePath(s string) (mission.PathKind, error) {
	switch strings.ToUpper(s) {
	case "S":
		return mission.Straight, nil
	case "MW":
		return mission.MultiWaypoint, nil
	case "C":
		return mission.Circular, nil
	case "P1":
		return mission.Polygon1, nil
	case "P2":
		return mission.Polygon2, nil
	case "P3":
		return mission.Polygon3, nil
	default:
		return 0, &SpecError{Field: "Path", Reason: fmt.Sprintf("unknown path kind %q", s)}
	}
}

// ParseStealthyMode resolves a stealthy attack mode name.
func ParseStealthyMode(s string) (attack.Mode, error) {
	switch strings.ToLower(s) {
	case "random":
		return attack.RandomBias, nil
	case "gradual":
		return attack.Gradual, nil
	case "intermittent":
		return attack.Intermittent, nil
	default:
		return 0, &SpecError{Field: "Stealthy", Reason: fmt.Sprintf("unknown stealthy mode %q", s)}
	}
}

// ParseTargets resolves a comma-separated sensor list.
func ParseTargets(s string) (sensors.TypeSet, error) {
	out := sensors.NewTypeSet()
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "gps":
			out.Add(sensors.GPS)
		case "gyro", "gyroscope":
			out.Add(sensors.Gyro)
		case "accel", "accelerometer":
			out.Add(sensors.Accel)
		case "mag", "magnetometer":
			out.Add(sensors.Mag)
		case "baro", "barometer":
			out.Add(sensors.Baro)
		default:
			return nil, &SpecError{Field: "Attack", Reason: fmt.Sprintf("unknown sensor %q", name)}
		}
	}
	return out, nil
}
