package service

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/trace"
)

func TestParseStrategy(t *testing.T) {
	tests := []struct {
		give    string
		want    core.Strategy
		wantErr bool
	}{
		{give: "DeLorean", want: core.StrategyDeLorean},
		{give: "delorean", want: core.StrategyDeLorean},
		{give: "LQR-O", want: core.StrategyLQRO},
		{give: "lqro", want: core.StrategyLQRO},
		{give: "none", want: core.StrategyNone},
		{give: "SSR", want: core.StrategySSR},
		{give: "PID-Piper", want: core.StrategyPIDPiper},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseStrategy(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseStrategy(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseStrategy(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParsePath(t *testing.T) {
	tests := []struct {
		give    string
		want    mission.PathKind
		wantErr bool
	}{
		{give: "S", want: mission.Straight},
		{give: "mw", want: mission.MultiWaypoint},
		{give: "C", want: mission.Circular},
		{give: "p1", want: mission.Polygon1},
		{give: "P2", want: mission.Polygon2},
		{give: "P3", want: mission.Polygon3},
		{give: "Z", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParsePath(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePath(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParsePath(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestParseTargets(t *testing.T) {
	got, err := ParseTargets("GPS, gyro,accelerometer")
	if err != nil {
		t.Fatal(err)
	}
	want := sensors.NewTypeSet(sensors.GPS, sensors.Gyro, sensors.Accel)
	if !got.Equal(want) {
		t.Errorf("ParseTargets = %v, want %v", got, want)
	}
	if _, err := ParseTargets("lidar"); err == nil {
		t.Error("expected error for unknown sensor")
	}
}

func TestParseStealthyMode(t *testing.T) {
	tests := []struct {
		give    string
		want    attack.Mode
		wantErr bool
	}{
		{give: "random", want: attack.RandomBias},
		{give: "Gradual", want: attack.Gradual},
		{give: "intermittent", want: attack.Intermittent},
		{give: "persistent", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseStealthyMode(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseStealthyMode(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseStealthyMode(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

// TestSpecBuildDefaults: a minimal spec resolves the documented defaults
// and yields a validated config with the CLI's fixed wiring constants.
func TestSpecBuildDefaults(t *testing.T) {
	m, err := MissionSpec{Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec.RV != "ArduCopter" || m.Spec.Defense != "DeLorean" || m.Spec.Path != "S" {
		t.Errorf("defaults not applied: %+v", m.Spec)
	}
	if m.Spec.MaxSec <= 299 || m.Spec.MaxSec >= 301 {
		t.Errorf("MaxSec default = %v, want 300", m.Spec.MaxSec)
	}
	if m.Cfg.WindowSec != 15 || m.Cfg.TraceEvery != 100 {
		t.Errorf("wiring constants wrong: WindowSec=%v TraceEvery=%v", m.Cfg.WindowSec, m.Cfg.TraceEvery)
	}
	if m.SDA != nil || m.Cfg.Attacks != nil {
		t.Error("attack-free spec built an attack schedule")
	}
}

// TestSpecBuildDeterministic: the same spec builds the same mission seed
// (the master-rng draw order is fixed), and specs with attacks mount a
// schedule.
func TestSpecBuildDeterministic(t *testing.T) {
	spec := MissionSpec{Attack: "GPS,gyroscope", AttackStart: 12, AttackDur: 10, Seed: 7, MaxSec: 45}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cfg.Seed != b.Cfg.Seed {
		t.Errorf("mission seed differs across builds: %d vs %d", a.Cfg.Seed, b.Cfg.Seed)
	}
	if a.SDA == nil || a.Cfg.Attacks == nil {
		t.Error("attack spec built no schedule")
	}
}

// TestHeaderRoundTrip: a spec stamped into a trace header reconstructs
// identically (the record→replay identity contract).
func TestHeaderRoundTrip(t *testing.T) {
	spec := MissionSpec{
		RV: "Tarot", Defense: "SSR", Path: "P2",
		Attack: "GPS", AttackStart: 12, AttackDur: 10,
		Stealthy: "gradual", Wind: 2.5, Seed: 99, MaxSec: 45,
	}
	h := trace.Header{Meta: spec.HeaderMeta()}
	got, err := SpecFromHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("header round trip:\n got %+v\nwant %+v", got, spec)
	}
}

func TestSpecFromHeaderRejectsIncomplete(t *testing.T) {
	if _, err := SpecFromHeader(trace.Header{}); err == nil {
		t.Error("expected error for header without mission parameters")
	}
}
