package service

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/runner"
)

// Config sizes one mission server.
type Config struct {
	// Shards is the mission pool's executor count; <= 0 means
	// runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds queued (not yet executing) missions across all
	// requests; <= 0 means 64. Submissions that do not fit are rejected
	// whole with 429.
	QueueDepth int
	// QuotaRate/QuotaBurst configure the per-tenant token bucket in
	// missions per second and missions of burst. Rate <= 0 disables
	// quotas.
	QuotaRate  float64
	QuotaBurst float64
	// MaxMissions caps one experiment request; <= 0 means 256.
	MaxMissions int
	// MaxBodyBytes caps a request body; <= 0 means 8 MiB (a replay
	// submission carries its base64 trace inline).
	MaxBodyBytes int64
}

// RunCounters are the lifetime request counters of /statusz.
type RunCounters struct {
	// Accepted counts submissions that reached the pool.
	Accepted int64 `json:"accepted"`
	// Completed/Failed count accepted submissions by final outcome (a
	// submission with any failed mission counts as failed).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Rejection counters by cause.
	RejectedQueue    int64 `json:"rejected_queue"`
	RejectedQuota    int64 `json:"rejected_quota"`
	RejectedDraining int64 `json:"rejected_draining"`
	// Invalid counts malformed or unbuildable requests (HTTP 400).
	Invalid int64 `json:"invalid"`
}

// Status is the /statusz body.
type Status struct {
	Service  string           `json:"service"`
	Draining bool             `json:"draining"`
	Pool     runner.PoolStats `json:"pool"`
	Quota    QuotaStatus      `json:"quota"`
	Runs     RunCounters      `json:"runs"`
}

// Server is the mission service: an HTTP JSON API over the pool engine
// (a sharded runner.Pool behind the internal/engine seam). Create with
// New, expose via Handler, stop with BeginDrain/Drain (SIGTERM path)
// and Close.
type Server struct {
	cfg      Config
	pool     *runner.Pool
	eng      *engine.Pool
	quota    *quota
	draining atomic.Bool
	mux      *http.ServeMux

	mu   sync.Mutex
	runs RunCounters
}

// New builds a server and starts its mission pool.
func New(cfg Config) *Server {
	if cfg.MaxMissions <= 0 {
		cfg.MaxMissions = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	pool := runner.NewPool(cfg.Shards, cfg.QueueDepth)
	s := &Server{
		cfg:   cfg,
		pool:  pool,
		eng:   engine.NewPool(pool),
		quota: newQuota(cfg.QuotaRate, cfg.QuotaBurst),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/missions", s.handleMissions)
	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: /healthz turns 503 (so
// load balancers stop routing here) and new submissions are rejected
// with 503, while missions already accepted keep running and their
// response streams complete normally.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	// The pool's own draining flag closes the race where a submission
	// passed the server check just before the flip: Submit re-checks.
	s.pool.BeginDrain()
}

// Drain is the SIGTERM path: BeginDrain, then block until every accepted
// mission has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.Drain(ctx)
}

// Draining reports whether BeginDrain/Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the pool's shards after the queue empties. Call after
// Drain (or directly in tests).
func (s *Server) Close() { s.pool.Close() }

// Stats snapshots the server for /statusz and tests.
func (s *Server) Stats() Status {
	s.mu.Lock()
	runs := s.runs
	s.mu.Unlock()
	return Status{
		Service:  "delorean-server",
		Draining: s.draining.Load(),
		Pool:     s.pool.Stats(),
		Quota:    s.quota.status(),
		Runs:     runs,
	}
}

// count applies one counter update under the lock.
func (s *Server) count(f func(*RunCounters)) {
	s.mu.Lock()
	f(&s.runs)
	s.mu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(s.Stats())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(b, '\n'))
}
