package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// newTestServer boots a service over httptest and tears it down with the
// test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestServiceDeterminismAcrossPoolSizes is the service-boundary
// determinism property: the same request body must yield byte-identical
// NDJSON at pool sizes 1 and 8, live-simulated.
func TestServiceDeterminismAcrossPoolSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight full missions")
	}
	const body = `{"attack":"GPS","attack_start":5,"attack_dur":5,"seed":11,"max_sec":30,"missions":4,"name":"det"}`
	var bodies [][]byte
	for _, shards := range []int{1, 8} {
		_, ts := newTestServer(t, Config{Shards: shards})
		resp, b := post(t, ts.URL+"/v1/experiments", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: status %d: %s", shards, resp.StatusCode, b)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("shards=%d: Content-Type = %q", shards, ct)
		}
		bodies = append(bodies, b)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("response bytes differ between pool sizes 1 and 8:\npool1: %d bytes\npool8: %d bytes", len(bodies[0]), len(bodies[1]))
	}
	// The stream shape: accepted, one mission per index in order, report.
	lines := bytes.Split(bytes.TrimSuffix(bodies[0], []byte("\n")), []byte("\n"))
	if len(lines) != 6 {
		t.Fatalf("stream has %d lines, want 6 (accepted + 4 missions + report)", len(lines))
	}
	var first struct {
		Type     string `json:"type"`
		Missions int    `json:"missions"`
	}
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Type != "accepted" || first.Missions != 4 {
		t.Errorf("first line = %s (err %v)", lines[0], err)
	}
	for i, ln := range lines[1:5] {
		var mr struct {
			Type  string `json:"type"`
			Index int    `json:"index"`
		}
		if err := json.Unmarshal(ln, &mr); err != nil || mr.Type != "mission" || mr.Index != i {
			t.Errorf("line %d = %s (err %v), want mission index %d", i+1, ln, err, i)
		}
	}
	var rep struct {
		Version int `json:"version"`
		Meta    struct {
			Generator string `json:"generator"`
			Missions  int    `json:"missions"`
		} `json:"meta"`
	}
	if err := json.Unmarshal(lines[5], &rep); err != nil || rep.Version != 1 || rep.Meta.Generator != "delorean-server" || rep.Meta.Missions != 4 {
		t.Errorf("final line is not the run report: %.120s (err %v)", lines[5], err)
	}
}

// TestServiceReplayMatchesGolden is the cross-boundary identity check the
// CI service-smoke job replicates over a real socket: replaying the
// committed corpus trace through the HTTP API must stream a final report
// whose bytes are exactly the committed golden (modulo NDJSON
// compaction), at any pool size.
func TestServiceReplayMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the corpus mission twice")
	}
	raw, err := os.ReadFile("../sim/testdata/attack_mission.trace")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../sim/testdata/attack_mission.report.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.Compact(&want, golden); err != nil {
		t.Fatal(err)
	}
	want.WriteByte('\n')

	body, err := json.Marshal(map[string]string{"trace_b64": base64.StdEncoding.EncodeToString(raw)})
	if err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	for _, shards := range []int{1, 8} {
		_, ts := newTestServer(t, Config{Shards: shards})
		resp, b := post(t, ts.URL+"/v1/missions", string(body), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: status %d: %s", shards, resp.StatusCode, b)
		}
		bodies = append(bodies, b)
		idx := bytes.LastIndexByte(bytes.TrimSuffix(b, []byte("\n")), '\n')
		last := b[idx+1:]
		if !bytes.Equal(last, want.Bytes()) {
			t.Errorf("shards=%d: streamed report differs from golden:\ngot  %.160s\nwant %.160s", shards, last, want.Bytes())
		}
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("replay response bytes differ between pool sizes 1 and 8")
	}
}

// TestServiceDrainLetsInflightFinish: once a mission stream has started,
// BeginDrain flips /healthz to 503 and rejects new submissions, but the
// accepted batch keeps running and its stream still ends with the full
// run report.
func TestServiceDrainLetsInflightFinish(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full missions")
	}
	srv, ts := newTestServer(t, Config{Shards: 1})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/experiments",
		strings.NewReader(`{"seed":5,"max_sec":30,"missions":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	rd := bufio.NewReader(resp.Body)
	accepted, err := rd.ReadString('\n')
	if err != nil || !strings.Contains(accepted, `"accepted"`) {
		t.Fatalf("first stream line = %q (err %v)", accepted, err)
	}

	// The batch is in flight; start draining.
	srv.BeginDrain()
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", hresp.StatusCode)
	}
	rresp, rbody := post(t, ts.URL+"/v1/missions", `{"seed":1}`, nil)
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: status = %d (%s), want 503", rresp.StatusCode, rbody)
	}

	rest, err := io.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rest), `"version":1`) {
		t.Errorf("in-flight stream did not finish with the run report during drain:\n%.300s", rest)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := srv.Stats()
	if st.Runs.RejectedDraining != 1 || st.Runs.Completed != 1 {
		t.Errorf("run counters after drain = %+v", st.Runs)
	}
}

// TestServiceQueueFull429: a submission that cannot fit the bounded
// queue whole is shed with 429 and a Retry-After hint — deterministically
// provoked with a depth-1 queue and a 2-mission batch.
func TestServiceQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 1})
	resp, body := post(t, ts.URL+"/v1/experiments", `{"seed":1,"max_sec":5,"missions":2}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("body = %s", body)
	}
}

// TestServiceQuota429: a tenant over its token bucket is shed with 429 +
// Retry-After while other tenants are unaffected.
func TestServiceQuota429(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full missions")
	}
	_, ts := newTestServer(t, Config{Shards: 1, QuotaRate: 0.001, QuotaBurst: 1})
	hdr := map[string]string{"X-Tenant": "acme"}
	resp, body := post(t, ts.URL+"/v1/missions", `{"seed":2,"max_sec":20}`, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submission: status %d (%s)", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/missions", `{"seed":2,"max_sec":20}`, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota 429 is missing Retry-After")
	}
	// A different tenant has its own bucket.
	resp, body = post(t, ts.URL+"/v1/missions", `{"seed":2,"max_sec":20}`, map[string]string{"X-Tenant": "other"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d (%s)", resp.StatusCode, body)
	}
}

// TestServiceClientDisconnectCancels: closing the request mid-stream
// cancels the batch's context — queued missions are skipped, the pool
// returns to idle, and the batch is accounted as failed.
func TestServiceClientDisconnectCancels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full missions")
	}
	srv, ts := newTestServer(t, Config{Shards: 1, QueueDepth: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/experiments",
		strings.NewReader(`{"seed":9,"max_sec":300,"missions":64}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(resp.Body)
	if _, err := rd.ReadString('\n'); err != nil {
		t.Fatalf("reading accepted line: %v", err)
	}
	cancel()
	_ = resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.Stats()
		if st.Pool.Queued+st.Pool.Active == 0 {
			if st.Pool.Failed == 0 {
				t.Errorf("disconnect cancelled nothing: pool stats %+v", st.Pool)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not return to idle after disconnect: %+v", st.Pool)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceRejectsMalformedRequests covers the 400 surface: bad JSON,
// unknown fields, spec conflicts, and out-of-range sweeps.
func TestServiceRejectsMalformedRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxMissions: 4})
	for _, tt := range []struct {
		name, path, body string
	}{
		{"bad json", "/v1/missions", `{"seed":`},
		{"unknown field", "/v1/missions", `{"sead":1}`},
		{"bad defense", "/v1/missions", `{"defense":"wat","seed":1}`},
		{"trace plus inline spec", "/v1/missions", `{"trace_b64":"aGk=","attack":"GPS"}`},
		{"bad trace bytes", "/v1/missions", `{"trace_b64":"aGk="}`},
		{"zero missions", "/v1/experiments", `{"seed":1}`},
		{"oversized sweep", "/v1/experiments", `{"seed":1,"missions":5}`},
	} {
		resp, body := post(t, ts.URL+tt.path, tt.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tt.name, resp.StatusCode, body)
		}
	}
	if got := srv.Stats().Runs.Invalid; got != 7 {
		t.Errorf("Invalid counter = %d, want 7", got)
	}
}

// TestServiceStatusz: the introspection endpoint serves well-formed JSON
// naming the service and its pool shape.
func TestServiceStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 3, QueueDepth: 7, QuotaRate: 2})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "delorean-server" || st.Pool.Shards != 3 || st.Pool.QueueDepth != 7 || !st.Quota.Enabled {
		t.Errorf("statusz = %+v", st)
	}
}

// TestServiceHealthz: ok when serving.
func TestServiceHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, b)
	}
}
