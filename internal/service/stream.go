package service

import (
	"encoding/json"
	"net/http"

	"repro/internal/telemetry"
)

// The NDJSON record vocabulary of a result stream. Every record is one
// compact JSON object on one line; nothing in a record depends on
// wall-clock time, worker identity, or completion order, so the whole
// stream is byte-identical for a given request at any pool size. The
// final line of a fully successful batch is the bare versioned
// telemetry.Report (distinguished by its leading "version" field).
type acceptedRecord struct {
	Type     string `json:"type"` // "accepted"
	Name     string `json:"name"`
	Missions int    `json:"missions"`
}

type missionRecord struct {
	Type                string  `json:"type"` // "mission"
	Index               int     `json:"index"`
	Label               string  `json:"label,omitempty"`
	Success             bool    `json:"success"`
	Crashed             bool    `json:"crashed"`
	Stalled             bool    `json:"stalled"`
	DurationSec         float64 `json:"duration_sec"`
	FinalDistanceM      float64 `json:"final_distance_m"`
	Ticks               int     `json:"ticks"`
	RecoveryActivations int     `json:"recovery_activations"`
}

type errorRecord struct {
	Type  string `json:"type"` // "error"
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	Error string `json:"error"`
}

type failedRecord struct {
	Type     string `json:"type"` // "failed"
	Failed   int    `json:"failed"`
	Missions int    `json:"missions"`
}

// stream writes NDJSON records to an HTTP response, flushing after each
// line so clients see progress live. The first write commits the 200
// status. After a write error (client gone) it becomes a no-op; the
// request context's cancellation — not the stream — is what stops the
// batch.
type stream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
	err     error
}

func newStream(w http.ResponseWriter) *stream {
	f, _ := w.(http.Flusher)
	return &stream{w: w, flusher: f}
}

// start commits the response headers once.
func (s *stream) start() {
	if s.started {
		return
	}
	s.started = true
	s.w.Header().Set("Content-Type", "application/x-ndjson")
	s.w.WriteHeader(http.StatusOK)
}

// record marshals one record onto its own line.
func (s *stream) record(v any) {
	if s.err != nil {
		return
	}
	s.start()
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	s.write(append(b, '\n'))
}

// reportLine streams the final run report as one compact line.
func (s *stream) reportLine(rep *telemetry.Report) {
	if s.err != nil {
		return
	}
	s.start()
	if err := rep.WriteNDJSON(s.w); err != nil {
		s.err = err
		return
	}
	s.flush()
}

func (s *stream) write(b []byte) {
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return
	}
	s.flush()
}

func (s *stream) flush() {
	if s.flusher != nil {
		s.flusher.Flush()
	}
}
