package service

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// MissionRequest is the POST /v1/missions body: either an inline
// MissionSpec (a live simulator-driven mission) or a recorded trace to
// replay, never both — a trace already carries its full mission
// parameterization in its header.
type MissionRequest struct {
	MissionSpec
	// TraceB64 is a base64 (standard encoding) DLRNTRC trace; when set,
	// the mission replays the recorded sensor stream and every spec field
	// must be left unset.
	TraceB64 string `json:"trace_b64,omitempty"`
}

// ExperimentRequest is the POST /v1/experiments body: Missions seeded
// variants of one spec. Per-mission seeds are pre-drawn from a master
// rng seeded with Seed — the experiments package's idiom — so the sweep
// is deterministic at any pool size.
type ExperimentRequest struct {
	MissionSpec
	// Name labels the report's experiment group (default "experiment").
	Name string `json:"name,omitempty"`
	// Missions is the sweep size, 1..Config.MaxMissions.
	Missions int `json:"missions"`
}

// batch is one accepted submission ready to stream: the pre-drawn jobs
// plus the report identity.
type batch struct {
	name string
	meta telemetry.Meta
	jobs []engine.Job
}

func (s *Server) handleMissions(w http.ResponseWriter, r *http.Request) {
	var req MissionRequest
	if !s.decode(w, r, &req) {
		return
	}
	var m *Mission
	if req.TraceB64 != "" {
		if req.MissionSpec != (MissionSpec{}) {
			s.invalid(w, errors.New("trace_b64 conflicts with inline mission parameters: a trace carries its own in its header"))
			return
		}
		raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
		if err != nil {
			s.invalid(w, fmt.Errorf("trace_b64: %w", err))
			return
		}
		tr, err := trace.Decode(bytes.NewReader(raw))
		if err != nil {
			s.invalid(w, fmt.Errorf("trace_b64: %w", err))
			return
		}
		spec, err := SpecFromHeader(tr.Header)
		if err != nil {
			s.invalid(w, err)
			return
		}
		if m, err = spec.Build(); err != nil {
			s.invalid(w, err)
			return
		}
		m.UseReplay(tr)
		// Re-validate with the source attached: replay-sourced missions
		// must not carry simulator-side injection settings.
		if err := m.Cfg.Validate(); err != nil {
			s.invalid(w, err)
			return
		}
	} else {
		var err error
		if m, err = req.MissionSpec.Build(); err != nil {
			s.invalid(w, err)
			return
		}
	}
	s.runBatch(w, r, batch{
		name: "delorean",
		meta: m.Spec.ReportMeta(1),
		jobs: []engine.Job{{
			Label: fmt.Sprintf("mission (seed %d)", m.Spec.Seed),
			Cfg:   m.Cfg,
		}},
	})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Missions <= 0 || req.Missions > s.cfg.MaxMissions {
		s.invalid(w, fmt.Errorf("missions must be in 1..%d, got %d", s.cfg.MaxMissions, req.Missions))
		return
	}
	name := req.Name
	if name == "" {
		name = "experiment"
	}
	// Pre-draw every mission's seed before any fan-out, exactly like the
	// experiments registry: randomness is fixed at submission, so the
	// sweep's bytes are a function of the request alone.
	master := rand.New(rand.NewSource(req.Seed))
	b := batch{
		name: name,
		meta: telemetry.Meta{Generator: "delorean-server", Missions: req.Missions, Seed: req.Seed, Wind: req.Wind},
		jobs: make([]engine.Job, req.Missions),
	}
	for i := 0; i < req.Missions; i++ {
		spec := req.MissionSpec
		spec.Seed = master.Int63()
		m, err := spec.Build()
		if err != nil {
			s.invalid(w, fmt.Errorf("mission %d: %w", i, err))
			return
		}
		b.jobs[i] = engine.Job{
			Label: fmt.Sprintf("%s/%04d (seed %d)", name, i, spec.Seed),
			Cfg:   m.Cfg,
		}
	}
	s.runBatch(w, r, b)
}

// runBatch applies admission control (drain, quota, queue backpressure),
// runs the batch through the pool engine, and streams NDJSON: one
// "accepted" record, one "mission" record per mission in submission
// order, and — when every mission succeeded — the versioned run report
// as the final line. The stream's bytes are a pure function of the
// request body: the engine seam releases results in submission order
// regardless of shard count, and no record carries a timestamp, worker
// id, or completion order.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request, b batch) {
	n := len(b.jobs)
	if s.draining.Load() {
		s.count(func(c *RunCounters) { c.RejectedDraining++ })
		s.reject(w, http.StatusServiceUnavailable, 0, "draining: submissions are rejected while the server drains")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if ok, wait := s.quota.allow(tenant, float64(n)); !ok {
		s.count(func(c *RunCounters) { c.RejectedQuota++ })
		s.reject(w, http.StatusTooManyRequests, retrySeconds(wait),
			fmt.Sprintf("tenant %q over quota", tenant))
		return
	}
	stream, err := s.eng.Submit(r.Context(), b.jobs)
	if err != nil {
		switch {
		case errors.Is(err, runner.ErrDraining):
			s.count(func(c *RunCounters) { c.RejectedDraining++ })
			s.reject(w, http.StatusServiceUnavailable, 0, err.Error())
		case errors.Is(err, runner.ErrQueueFull):
			s.count(func(c *RunCounters) { c.RejectedQueue++ })
			st := s.pool.Stats()
			// Coarse hint: one queue's worth of missions per shard round.
			retry := 1 + st.Queued/maxInt(1, st.Shards)
			s.reject(w, http.StatusTooManyRequests, retry, err.Error())
		default:
			s.count(func(c *RunCounters) { c.Invalid++ })
			s.reject(w, http.StatusBadRequest, 0, err.Error())
		}
		return
	}
	s.count(func(c *RunCounters) { c.Accepted++ })

	out := newStream(w)
	out.record(acceptedRecord{Type: "accepted", Name: b.name, Missions: n})
	failed := 0
	for idx := range stream.Ready() {
		if err := stream.Err(idx); err != nil {
			failed++
			out.record(errorRecord{Type: "error", Index: idx, Label: b.jobs[idx].Label, Error: err.Error()})
			continue
		}
		res := stream.Result(idx)
		out.record(missionRecord{
			Type:                "mission",
			Index:               idx,
			Label:               b.jobs[idx].Label,
			Success:             res.Success,
			Crashed:             res.Crashed,
			Stalled:             res.Stalled,
			DurationSec:         res.Duration,
			FinalDistanceM:      res.FinalDistance,
			Ticks:               res.Ticks,
			RecoveryActivations: res.RecoveryActivations,
		})
	}
	if failed > 0 {
		out.record(failedRecord{Type: "failed", Failed: failed, Missions: n})
		s.count(func(c *RunCounters) { c.Failed++ })
		return
	}
	// The deterministic reduce: telemetry folds in submission order,
	// never completion order, so the report is byte-identical at any
	// shard count.
	tels := make([]*telemetry.Mission, n)
	for i := 0; i < n; i++ {
		tels[i] = stream.Result(i).Telemetry
	}
	rep, err := BatchReport(b.name, b.meta, tels)
	if err != nil {
		out.record(errorRecord{Type: "error", Index: -1, Error: err.Error()})
		s.count(func(c *RunCounters) { c.Failed++ })
		return
	}
	out.reportLine(rep)
	s.count(func(c *RunCounters) { c.Completed++ })
}

// decode parses a JSON request body strictly (unknown fields are
// rejected — they are almost always a misspelled knob).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.invalid(w, fmt.Errorf("request body: %w", err))
		return false
	}
	return true
}

// invalid rejects a request the client can fix (HTTP 400).
func (s *Server) invalid(w http.ResponseWriter, err error) {
	s.count(func(c *RunCounters) { c.Invalid++ })
	s.reject(w, http.StatusBadRequest, 0, err.Error())
}

// reject writes a JSON error response; retryAfter > 0 adds the
// Retry-After hint (whole seconds) for 429/503 shedding.
func (s *Server) reject(w http.ResponseWriter, status, retryAfter int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(status)
	b, err := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	if err != nil {
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

// retrySeconds rounds a wait up to whole seconds, minimum 1.
func retrySeconds(wait time.Duration) int {
	sec := int(math.Ceil(wait.Seconds()))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
