package lint

import "repro/internal/sensors"

// Module-specific analyzer configuration. The suite is tuned to this
// repository: the canonical physical-state vocabulary lives in
// internal/sensors, deterministic replay covers the sim/experiment/
// mission/core pipeline, and error discipline is enforced across all of
// internal/.
const (
	modulePath    = "repro"
	sensorsPath   = modulePath + "/internal/sensors"
	clockPath     = modulePath + "/internal/clock"
	telemetryPath = modulePath + "/internal/telemetry"
)

// DefaultAnalyzers returns the project's full analyzer suite, tuned to
// DeLorean's invariants.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmp(),
		StateIndex(StateIndexConfig{
			SensorsPath: sensorsPath,
			NumStates:   int(sensors.NumStates),
		}),
		Exhaustive(ExhaustiveConfig{
			TypePrefix: modulePath + "/",
			Exclude: map[string][]string{
				// NumStates is the PS length sentinel, not a state.
				sensorsPath + ".StateIndex": {"NumStates"},
				// NumStages is the stage-count sentinel, not a pipeline
				// stage; core.Mode (the pipeline FSM) and telemetry.Kind
				// stay fully covered.
				telemetryPath + ".Stage": {"NumStages"},
			},
		}),
		ErrDrop(modulePath + "/internal/"),
		Hotalloc(defaultHotalloc()),
		Determinism(DeterminismConfig{
			Restricted: []string{
				modulePath + "/internal/sim",
				modulePath + "/internal/experiments",
				modulePath + "/internal/mission",
				modulePath + "/internal/core",
				modulePath + "/internal/runner",
				modulePath + "/internal/telemetry",
			},
			ClockPath: clockPath,
		}),
	}
}

// defaultHotalloc declares the repository's zero-allocation hot set: the
// per-tick EKF cycle, the factor-graph inference cache, and the
// checkpoint recording path. Cold one-time growth lives in helpers kept
// off this list (ekf.refreshDT, fg.growScratch).
func defaultHotalloc() HotallocConfig {
	return HotallocConfig{
		MatPath: modulePath + "/internal/mat",
		Hot: map[string][]string{
			modulePath + "/internal/ekf": {
				"Predict", "PredictHybrid", "Correct", "propagateCovariance",
			},
			modulePath + "/internal/fg": {
				"score", "compute", "Marginal", "MarginalsInto", "MLE",
			},
			modulePath + "/internal/checkpoint": {
				"Record", "RecordInput",
			},
			// The staged defense pipeline's per-tick path: the tick engine,
			// the shadow/reference kernels, the cost-model charge path, and
			// the recovery-stage Update methods that fly every recovery
			// tick. Episodic entry/exit work (triage, revalidateSensors,
			// exitRecovery) is deliberately off this list — it runs per
			// episode, not per tick, and owns the pipeline's cold
			// allocations.
			modulePath + "/internal/core": {
				"Tick", "defenseTick", "active", "charge", "chargeTick",
				"chargeRecoveryTick", "stepShadowStrapdown", "anchorShadow",
				"referencePS", "estimatePS", "modelAccel", "Update",
			},
		},
	}
}

// AnalyzerByName returns the named analyzer from the default suite, or
// nil when unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, az := range DefaultAnalyzers() {
		if az.Name == name {
			return az
		}
	}
	return nil
}
