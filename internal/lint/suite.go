package lint

import "repro/internal/sensors"

// Module-specific analyzer configuration. The suite is tuned to this
// repository: the canonical physical-state vocabulary lives in
// internal/sensors, deterministic replay covers the sim/experiment/
// mission/core pipeline, and error discipline is enforced across all of
// internal/.
const (
	modulePath    = "repro"
	sensorsPath   = modulePath + "/internal/sensors"
	clockPath     = modulePath + "/internal/clock"
	telemetryPath = modulePath + "/internal/telemetry"
	corePath      = modulePath + "/internal/core"
	runnerPath    = modulePath + "/internal/runner"
	fleetPath     = modulePath + "/internal/fleet"
	enginePath    = modulePath + "/internal/engine"
	campaignPath  = modulePath + "/internal/campaign"
	simPath       = modulePath + "/internal/sim"
	ekfPath       = modulePath + "/internal/ekf"
	fgPath        = modulePath + "/internal/fg"
	tracePath     = modulePath + "/internal/trace"
	sourcePath    = modulePath + "/internal/source"
	servicePath   = modulePath + "/internal/service"
)

// DefaultAnalyzers returns the project's full analyzer suite, tuned to
// DeLorean's invariants. The per-package analyzers (floatcmp, stateindex,
// exhaustive, errdrop, determinism, mapiter, sharedwrite) run on each
// package independently; the whole-program analyzers (hotalloc, puretick)
// run once over the call graph of everything loaded. Determinism and
// puretick deliberately overlap: determinism is a package-scoped fence
// around the replay-sensitive directories (it also covers code that is
// not yet wired into the tick path), while puretick is a reachability
// proof with no allowlist — code moved out of the fenced packages stays
// covered as long as the tick path calls it.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmp(),
		StateIndex(StateIndexConfig{
			SensorsPath: sensorsPath,
			NumStates:   int(sensors.NumStates),
		}),
		Exhaustive(ExhaustiveConfig{
			TypePrefix: modulePath + "/",
			Exclude: map[string][]string{
				// NumStates is the PS length sentinel, not a state.
				sensorsPath + ".StateIndex": {"NumStates"},
				// NumStages is the stage-count sentinel, not a pipeline
				// stage; core.Mode (the pipeline FSM) and telemetry.Kind
				// stay fully covered.
				telemetryPath + ".Stage": {"NumStages"},
			},
		}),
		ErrDrop(modulePath + "/internal/"),
		Hotalloc(defaultHotalloc()),
		Determinism(DeterminismConfig{
			Restricted: []string{
				simPath,
				modulePath + "/internal/experiments",
				modulePath + "/internal/mission",
				corePath,
				runnerPath,
				// The fleet executor reorganizes mission execution into
				// lockstep batches; its partition/step/reduce path is part
				// of the same byte-identity surface as the runner's.
				fleetPath,
				telemetryPath,
				// The trace codec and the replay/bus sources are part of
				// the byte-identity surface: a recorded mission must decode
				// and replay to the same bytes forever.
				tracePath,
				sourcePath,
				// The mission service streams result bytes that must be
				// identical at any pool size: wall-clock reads go through
				// the clock seam (quota refill) and randomness through
				// explicitly seeded rngs (experiment seed pre-draw).
				servicePath,
				// The engine seam fans any engine's results back into
				// submission order; the campaign layer draws its job list
				// from the spec seed and merges shard reports byte-exactly.
				// Neither may consult the wall clock or unseeded rand, or
				// shard layout would leak into study bytes.
				enginePath,
				campaignPath,
			},
			ClockPath: clockPath,
		}),
		Puretick(PuretickConfig{
			Roots: []FuncRef{
				corePath + ":Pipeline.Tick",
				runnerPath + ":reduceTelemetry",
				// The fleet's lockstep loop covers the whole in-mission
				// step path (sim.Mission.Step and everything it reaches),
				// which the runner only exercised through RunContext: no
				// select (cancellation is polled via ctx.Err), no clock,
				// no global rand anywhere a batch round can reach.
				fleetPath + ":stepLanes",
				fleetPath + ":reduceTelemetry",
				// The engine seam's in-order reduce is the one place every
				// engine's results flow through on their way into a report.
				enginePath + ":reduceTelemetry",
			},
			ClockPath: clockPath,
			Sinks:     defaultSinks(),
		}),
		MapIter(MapIterConfig{Sinks: defaultSinks()}),
		SharedWrite(SharedWriteConfig{
			Runners: []FuncRef{
				runnerPath + ":Do",
				// Pool.Submit's callback runs on the service pool's
				// shards; its writes are held to the same per-index-slot
				// confinement as Do's.
				runnerPath + ":Pool.Submit",
			},
		}),
	}
}

// defaultSinks are the order-sensitive output package prefixes: anything
// formatted (fmt), recorded in the run report (telemetry), serialized
// into an on-disk trace (trace), streamed over the mission service's
// NDJSON responses (service), or persisted into a study checkpoint
// (campaign) must not observe map iteration order.
func defaultSinks() []string {
	return []string{"fmt", telemetryPath, tracePath, servicePath, campaignPath}
}

// defaultHotalloc declares the roots and cold cut points of the module's
// zero-allocation hot set. The hot set itself is derived by call-graph
// reachability — the per-tick defense pipeline entry plus the
// factor-graph inference kernels, minus the sanctioned episodic/lazy
// paths below. There is no hand-maintained function list: extract a
// helper from Tick's callees and it is hot automatically.
func defaultHotalloc() HotallocConfig {
	return HotallocConfig{
		MatPath: modulePath + "/internal/mat",
		Roots: []FuncRef{
			corePath + ":Pipeline.Tick",
			fgPath + ":Graph.Marginal",
			fgPath + ":Graph.MarginalsInto",
			fgPath + ":Graph.MLE",
			// The fleet's lockstep round loop: one batch round must not
			// allocate, or per-tick garbage scales with the lane count.
			fleetPath + ":stepLanes",
		},
		// Episodic or one-time paths sanctioned to allocate. Each runs per
		// alert episode or per configuration change, never per tick, and
		// owns the pipeline's cold allocations (triage snapshots, widened
		// diagnosis graphs, lazy workspace growth, gain refresh on
		// operating-point drift).
		Cold: []FuncRef{
			corePath + ":Pipeline.triage",
			corePath + ":Pipeline.widenDiagnosis",
			corePath + ":Pipeline.revalidateSensors",
			corePath + ":Pipeline.exitRecovery",
			corePath + ":Pipeline.triggerDetail",
			ekfPath + ":Filter.refreshDT",
			modulePath + "/internal/mat:LU.grow",
			fgPath + ":Graph.growScratch",
			modulePath + "/internal/recovery:LQR.refreshRoverGain",
			// Shared-schedule cold paths: extending the covariance
			// schedule clones each new step once per (profile, dt, cycle)
			// process-wide, and falling off the shared path reconstructs
			// covariance once per mission at most.
			ekfPath + ":Schedule.extendTo",
			ekfPath + ":Schedule.seedPost",
			ekfPath + ":Filter.detachShared",
			// Per-mission epilogue, episodic telemetry captures, and
			// terminal error paths of the fleet's lockstep loop: each runs
			// once per mission or only inside an attack/recovery episode,
			// never on the nominal per-round path.
			simPath + ":Mission.Finish",
			simPath + ":Mission.noteDiagnosis",
			simPath + ":srcErr",
			sourcePath + ":exhaustedErr",
			sourcePath + ":desyncErr",
			fleetPath + ":progress.bump",
			// Failure injection trips at most once per mission: the
			// armed flag flips off after the first SetDropout.
			sensorsPath + ":Suite.SetDropout",
		},
	}
}

// AnalyzerByName returns the named analyzer from the default suite, or
// nil when unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, az := range DefaultAnalyzers() {
		if az.Name == name {
			return az
		}
	}
	return nil
}
