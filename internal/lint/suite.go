package lint

import "repro/internal/sensors"

// Module-specific analyzer configuration. The suite is tuned to this
// repository: the canonical physical-state vocabulary lives in
// internal/sensors, deterministic replay covers the sim/experiment/
// mission/core pipeline, and error discipline is enforced across all of
// internal/.
const (
	modulePath  = "repro"
	sensorsPath = modulePath + "/internal/sensors"
	clockPath   = modulePath + "/internal/clock"
)

// DefaultAnalyzers returns the project's full analyzer suite, tuned to
// DeLorean's invariants.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		FloatCmp(),
		StateIndex(StateIndexConfig{
			SensorsPath: sensorsPath,
			NumStates:   int(sensors.NumStates),
		}),
		Exhaustive(ExhaustiveConfig{
			TypePrefix: modulePath + "/",
			Exclude: map[string][]string{
				// NumStates is the PS length sentinel, not a state.
				sensorsPath + ".StateIndex": {"NumStates"},
			},
		}),
		ErrDrop(modulePath + "/internal/"),
		Hotalloc(defaultHotalloc()),
		Determinism(DeterminismConfig{
			Restricted: []string{
				modulePath + "/internal/sim",
				modulePath + "/internal/experiments",
				modulePath + "/internal/mission",
				modulePath + "/internal/core",
				modulePath + "/internal/runner",
				modulePath + "/internal/telemetry",
			},
			ClockPath: clockPath,
		}),
	}
}

// defaultHotalloc declares the repository's zero-allocation hot set: the
// per-tick EKF cycle, the factor-graph inference cache, and the
// checkpoint recording path. Cold one-time growth lives in helpers kept
// off this list (ekf.refreshDT, fg.growScratch).
func defaultHotalloc() HotallocConfig {
	return HotallocConfig{
		MatPath: modulePath + "/internal/mat",
		Hot: map[string][]string{
			modulePath + "/internal/ekf": {
				"Predict", "PredictHybrid", "Correct", "propagateCovariance",
			},
			modulePath + "/internal/fg": {
				"score", "compute", "Marginal", "MarginalsInto", "MLE",
			},
			modulePath + "/internal/checkpoint": {
				"Record", "RecordInput",
			},
		},
	}
}

// AnalyzerByName returns the named analyzer from the default suite, or
// nil when unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, az := range DefaultAnalyzers() {
		if az.Name == name {
			return az
		}
	}
	return nil
}
