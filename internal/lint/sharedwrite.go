package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedWriteConfig scopes the sharedwrite analyzer.
type SharedWriteConfig struct {
	// Runners are FuncRefs of pool primitives whose func-typed arguments
	// execute on worker goroutines (e.g. the runner package's Do), so the
	// closures passed to them are held to the same confinement rules as
	// go-statement bodies.
	Runners []FuncRef
}

// SharedWrite returns the sharedwrite analyzer: a closure that runs on a
// worker goroutine — the body of a go statement, or a function literal
// passed to a configured pool primitive — must not write captured state
// in a scheduling-dependent way. A write is sanctioned when it is
// confined (the target is indexed by a variable declared inside the
// closure, the per-index-slot idiom) or serialized (the write happens
// between Lock and Unlock calls on a sync.Mutex/RWMutex). Everything
// else races completion order into the result and must instead be
// reduced in submission order after the pool drains.
func SharedWrite(cfg SharedWriteConfig) *Analyzer {
	return &Analyzer{
		Name: "sharedwrite",
		Doc: "forbid unconfined writes to captured variables from worker " +
			"goroutines; confine to per-index slots, guard with a mutex, or " +
			"reduce in submission order",
		Run: func(pass *Pass) { runSharedWrite(pass, cfg) },
	}
}

func runSharedWrite(pass *Pass, cfg SharedWriteConfig) {
	runners := make(map[string]bool, len(cfg.Runners))
	for _, r := range cfg.Runners {
		runners[r] = true
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
					checkWorkerLit(pass, lit, "go statement")
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Pkg.Info, e)
				if fn == nil || !runners[funcRefOf(fn)] {
					return true
				}
				for _, arg := range e.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkWorkerLit(pass, lit, "worker callback passed to "+fn.Name())
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's target function object, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcRefOf renders a function object's FuncRef.
func funcRefOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := recvTypeName(sig.Recv().Type()); rn != "" {
			name = rn + "." + name
		}
	}
	return fn.Pkg().Path() + ":" + name
}

// checkWorkerLit flags unconfined, unguarded writes to captured state
// inside one worker-goroutine literal.
func checkWorkerLit(pass *Pass, lit *ast.FuncLit, context string) {
	info := pass.Pkg.Info
	locks := collectLockSpans(info, lit)
	declaredInside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	reportWrite := func(target ast.Expr, pos token.Pos, desc string) {
		if locks.heldAt(pos) {
			return
		}
		pass.Reportf(pos,
			"unconfined write to captured %s from a %s; confine it to a per-index slot, guard it with the mutex, or reduce in submission order after the pool drains",
			desc, context)
	}
	checkTarget := func(target ast.Expr, pos token.Pos) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if obj := objOf(info, t); obj != nil && !declaredInside(obj) {
				if _, ok := obj.(*types.Var); ok {
					reportWrite(t, pos, "variable "+t.Name)
				}
			}
		case *ast.IndexExpr:
			base := baseIdent(t.X)
			if base == nil {
				return
			}
			obj := objOf(info, base)
			if obj == nil || declaredInside(obj) {
				return
			}
			// The per-index-slot idiom: element writes keyed by an index
			// declared inside the literal touch disjoint memory per
			// worker item and need no synchronization.
			if indexConfined(info, t.Index, declaredInside) {
				return
			}
			reportWrite(t, pos, "element of "+base.Name+" through an outside index")
		case *ast.SelectorExpr:
			if base := baseIdent(t); base != nil {
				if obj := objOf(info, base); obj != nil && !declaredInside(obj) {
					reportWrite(t, pos, "field "+base.Name+"."+t.Sel.Name)
				}
			}
		case *ast.StarExpr:
			if base := baseIdent(t.X); base != nil {
				if obj := objOf(info, base); obj != nil && !declaredInside(obj) {
					reportWrite(t, pos, "pointee of "+base.Name)
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if e.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range e.Lhs {
				checkTarget(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkTarget(e.X, e.X.Pos())
		}
		return true
	})
}

// baseIdent returns the leftmost identifier of a selector/index chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// indexConfined reports whether every identifier in an index expression
// is declared inside the worker literal.
func indexConfined(info *types.Info, idx ast.Expr, declaredInside func(types.Object) bool) bool {
	confined := true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !confined {
			return confined
		}
		if obj := objOf(info, id); obj != nil {
			if v, isVar := obj.(*types.Var); isVar && !v.IsField() && !declaredInside(obj) {
				confined = false
			}
		}
		return confined
	})
	return confined
}

// lockSpans approximates mutex-held regions inside one literal by source
// order: Lock raises the held count from its position on, Unlock lowers
// it, and deferred Unlocks are ignored (they keep the region held to the
// end). The approximation is linear in source order, which matches the
// straight-line Lock…Unlock critical sections the rule sanctions.
type lockSpans struct {
	events []lockEvent
}

type lockEvent struct {
	pos   token.Pos
	delta int
}

func collectLockSpans(info *types.Info, lit *ast.FuncLit) lockSpans {
	var spans lockSpans
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if isMutexCall(info, d.Call, "Unlock", "RUnlock") {
				return false // deferred unlock keeps the span held
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isMutexCall(info, call, "Lock", "RLock"):
			spans.events = append(spans.events, lockEvent{pos: call.Pos(), delta: 1})
		case isMutexCall(info, call, "Unlock", "RUnlock"):
			spans.events = append(spans.events, lockEvent{pos: call.Pos(), delta: -1})
		}
		return true
	})
	sort.Slice(spans.events, func(i, j int) bool { return spans.events[i].pos < spans.events[j].pos })
	return spans
}

// heldAt reports whether a mutex is held at pos under the source-order
// approximation.
func (s lockSpans) heldAt(pos token.Pos) bool {
	held := 0
	for _, e := range s.events {
		if e.pos >= pos {
			break
		}
		held += e.delta
	}
	return held > 0
}

// isMutexCall reports whether call invokes one of the named methods on a
// sync.Mutex or sync.RWMutex receiver.
func isMutexCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, name := range names {
		if sel.Sel.Name == name {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch recvTypeName(sig.Recv().Type()) {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}
