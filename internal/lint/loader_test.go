package lint

import (
	"runtime"
	"strings"
	"testing"
)

// TestLoaderResolvesTestdataModule covers import-path derivation: a
// loader rooted inside the module tree resolves the enclosing go.mod and
// derives package paths relative to the module root, testdata included.
func TestLoaderResolvesTestdataModule(t *testing.T) {
	loader, err := NewLoader("testdata/loader/tagged")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != modulePath {
		t.Errorf("ModulePath = %q, want %q", loader.ModulePath, modulePath)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	want := modulePath + "/internal/lint/testdata/loader/tagged"
	if pkgs[0].Path != want {
		t.Errorf("package path = %q, want %q", pkgs[0].Path, want)
	}
}

// TestLoaderBuildConstraints covers both constraint forms: a //go:build
// tag that is never satisfied, and an implicit _GOOS filename suffix for
// a foreign platform. Including either file would produce a duplicate
// declaration or a platform mismatch; excluding them leaves a clean
// single-file package.
func TestLoaderBuildConstraints(t *testing.T) {
	loader, err := NewLoader("testdata/loader/tagged")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("type error (an excluded file was loaded): %v", terr)
	}
	wantFiles := 1
	if runtime.GOOS == "windows" {
		wantFiles = 2 // tagged_windows.go joins the package there
	}
	if len(pkg.Files) != wantFiles {
		t.Errorf("loaded %d files, want %d", len(pkg.Files), wantFiles)
	}
	scope := pkg.Types.Scope()
	if scope.Lookup("InEveryBuild") == nil {
		t.Error("InEveryBuild missing from package scope")
	}
	if got := scope.Lookup("OnWindows") != nil; got != (runtime.GOOS == "windows") {
		t.Errorf("OnWindows present = %v on %s", got, runtime.GOOS)
	}
}

// TestLoaderPartialFailure covers the partial-load contract: a package
// that fails type-checking is still returned with its TypeErrors
// populated, so analyzers run and the driver decides how to surface the
// breakage.
func TestLoaderPartialFailure(t *testing.T) {
	loader, err := NewLoader("testdata/loader/typeerr")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("expected type errors, got none")
	}
	found := false
	for _, terr := range pkg.TypeErrors {
		if strings.Contains(terr.Error(), "undefinedIdentifier") {
			found = true
		}
	}
	if !found {
		t.Errorf("type errors %v do not mention undefinedIdentifier", pkg.TypeErrors)
	}
	if pkg.Types == nil || len(pkg.Files) != 1 {
		t.Error("partially checked package should still carry its AST and types")
	}
}

// TestLoaderMissingDir covers the hard-failure path: a pattern that
// names no directory is an error, not an empty result.
func TestLoaderMissingDir(t *testing.T) {
	loader, err := NewLoader("testdata/loader")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("./no-such-dir"); err == nil {
		t.Error("loading a missing directory should fail")
	}
}

// TestBuildTagHelpers pins the tag-resolution rules the loader applies.
func TestBuildTagHelpers(t *testing.T) {
	for tag, want := range map[string]bool{
		runtime.GOOS:     true,
		runtime.GOARCH:   true,
		"gc":             true,
		"go1.22":         true,
		"lintneverbuild": false,
		"cgo":            false,
	} {
		if got := buildTagSatisfied(tag); got != want {
			t.Errorf("buildTagSatisfied(%q) = %v, want %v", tag, got, want)
		}
	}
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	for name, want := range map[string]bool{
		"plain.go":                       true,
		"x_" + runtime.GOOS + ".go":      true,
		"x_" + otherOS + ".go":           false,
		"x_" + otherOS + "_amd64.go":     false,
		"x_notaplatform.go":              true,
		"x_" + runtime.GOOS + "_wasm.go": runtime.GOARCH == "wasm",
	} {
		if got := fileSuffixOK(name); got != want {
			t.Errorf("fileSuffixOK(%q) = %v, want %v", name, got, want)
		}
	}
}
