package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
)

// StateIndexConfig points the stateindex analyzer at the canonical
// physical-state vocabulary.
type StateIndexConfig struct {
	// SensorsPath is the import path of the package declaring PhysState,
	// StateIndex, and NumStates.
	SensorsPath string
	// NumStates is the length of the PS vector (the value of the
	// package's NumStates constant).
	NumStates int
}

// StateIndex returns the stateindex analyzer: every one of the physical
// states of Eq. 1 must be addressed through the canonical
// sensors.StateIndex constants (SX…SBaroAlt) and the Table-1 state→sensor
// map. Indexing a PhysState (or any [sensors.NumStates]float64 array)
// with a raw integer literal, writing the PS length as a magic literal,
// or materializing a StateIndex from a bare literal all silently break
// when the PS layout evolves.
func StateIndex(cfg StateIndexConfig) *Analyzer {
	return &Analyzer{
		Name: "stateindex",
		Doc: "forbid raw integer literals where sensors.StateIndex " +
			"constants or sensors.NumStates are meant",
		Run: func(pass *Pass) { runStateIndex(pass, cfg) },
	}
}

func runStateIndex(pass *Pass, cfg StateIndexConfig) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				checkPhysStateIndex(pass, cfg, n)
			case *ast.ArrayType:
				checkArrayLen(pass, cfg, n)
			case *ast.BasicLit:
				// A literal whose contextual type is StateIndex (e.g.
				// StateIndex(3), or `idx < 19` against a StateIndex
				// operand) bypasses the canonical constants. Zero is
				// exempt: `i < 0` bounds checks do not move when the PS
				// layout evolves.
				if tv, ok := info.Types[ast.Expr(n)]; ok &&
					isNamedFrom(tv.Type, cfg.SensorsPath, "StateIndex") &&
					!(tv.Value != nil && constant.Sign(tv.Value) == 0) {
					pass.Reportf(n.Pos(),
						"raw literal %s of type sensors.StateIndex; use the S… state constants or sensors.NumStates",
						n.Value)
				}
			}
			return true
		})
	}
}

// checkPhysStateIndex flags constant non-StateIndex indices into a
// PhysState-shaped array.
func checkPhysStateIndex(pass *Pass, cfg StateIndexConfig, n *ast.IndexExpr) {
	base := pass.TypeOf(n.X)
	if base == nil {
		return
	}
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	if !isPhysStateShaped(base, cfg) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[n.Index]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return // loop variables and computed indices are fine
	}
	if isNamedFrom(tv.Type, cfg.SensorsPath, "StateIndex") {
		return // SX…SBaroAlt constants (or expressions over them)
	}
	pass.Reportf(n.Index.Pos(),
		"physical-state vector indexed with raw constant %s; use the sensors.StateIndex constants (SX…SBaroAlt)",
		tv.Value)
}

// checkArrayLen flags array types whose length is the PS length written
// as a bare literal instead of sensors.NumStates.
func checkArrayLen(pass *Pass, cfg StateIndexConfig, n *ast.ArrayType) {
	lit, ok := n.Len.(*ast.BasicLit)
	if !ok {
		return
	}
	v, err := strconv.Atoi(lit.Value)
	if err != nil || v != cfg.NumStates {
		return
	}
	if elem := pass.TypeOf(n.Elt); elem == nil || !isFloat(elem) {
		return
	}
	pass.Reportf(lit.Pos(),
		"PS-length float array declared with magic literal %d; use [sensors.NumStates]float64 or sensors.PhysState",
		v)
}

// isPhysStateShaped reports whether t is sensors.PhysState or any array
// of NumStates floats (the PS layout under another name).
func isPhysStateShaped(t types.Type, cfg StateIndexConfig) bool {
	if isNamedFrom(t, cfg.SensorsPath, "PhysState") {
		return true
	}
	arr, ok := t.Underlying().(*types.Array)
	return ok && int(arr.Len()) == cfg.NumStates && isFloat(arr.Elem())
}

// isNamedFrom reports whether t (after unaliasing) is the named type
// pkgPath.name.
func isNamedFrom(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
