package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp returns the floatcmp analyzer: diagnosis and recovery math
// must never compare floating-point operands with == or != — rounding in
// the EKF, reconstruction roll-forward, and δ-threshold paths makes exact
// equality silently flaky. The sanctioned forms are the tolerance helpers
// in internal/floats (floats.Zero for exact zero-sentinel tests,
// floats.Near for tolerance comparison) or an explicit
// //lint:ignore floatcmp directive where bit-exact comparison is the
// point.
func FloatCmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc: "forbid == and != between floating-point operands; " +
			"use the internal/floats tolerance helpers",
		Run: runFloatCmp,
	}
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			// A fully constant comparison folds at compile time and is
			// exact by construction.
			if tv, ok := pass.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use floats.Near/floats.Zero (internal/floats) instead",
				be.Op)
			return true
		})
	}
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
