package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismConfig scopes the determinism analyzer.
type DeterminismConfig struct {
	// Restricted lists import paths (each covering its subtree) whose
	// code must stay bit-for-bit reproducible: same seed, same trace.
	Restricted []string
	// ClockPath is the sanctioned wall-clock seam; diagnostics point
	// offenders at it.
	ClockPath string
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators — the sanctioned pattern — rather than
// touching the global unseeded source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// Determinism returns the determinism analyzer: the simulation,
// experiment, and mission pipelines must replay bit-for-bit from a seed
// so the Figures 2/9 traces reproduce exactly. Inside the restricted
// packages, wall-clock reads (time.Now/Since) must route through the
// injectable clock seam, and the global unseeded math/rand source is
// forbidden — randomness must flow from an explicitly seeded *rand.Rand.
// cmd/ binaries are outside the restricted set and may read the wall
// clock freely.
func Determinism(cfg DeterminismConfig) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbid time.Now/time.Since and the global math/rand source " +
			"in the deterministic sim/experiment/mission packages",
		Run: func(pass *Pass) { runDeterminism(pass, cfg) },
	}
}

func runDeterminism(pass *Pass, cfg DeterminismConfig) {
	restricted := false
	for _, p := range cfg.Restricted {
		if pass.Pkg.Path == p || strings.HasPrefix(pass.Pkg.Path, p+"/") {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch pkgPath := fn.Pkg().Path(); {
			case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				pass.Reportf(sel.Pos(),
					"wall-clock read time.%s in deterministic package; route it through %s",
					fn.Name(), cfg.ClockPath)
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"global math/rand source (rand.%s) in deterministic package; draw from an explicitly seeded *rand.Rand",
					fn.Name())
			}
			return true
		})
	}
}
