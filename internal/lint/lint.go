// Package lint is DeLorean's project-specific static-analysis framework.
// It parses and type-checks the module's packages with go/parser and
// go/types (stdlib only, no external analysis driver) and runs a suite of
// analyzers that enforce invariants the Go compiler cannot see: canonical
// physical-state indexing, tolerance-based float comparison, exhaustive
// enum switches, no silently dropped errors, and deterministic
// simulation/experiment pipelines.
//
// A finding can be suppressed with an ignore directive on the same line or
// the line directly above the offending code:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos is the resolved file:line:column position.
	Pos token.Position
	// Message describes the invariant violation and the sanctioned fix.
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one invariant checker. Run inspects the pass's package and
// reports findings through the pass.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one type-checked package.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) execution and collects its
// diagnostics.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset resolves token positions.
	Fset *token.FileSet

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzer  string
	hasReason bool
	pos       token.Pos
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectIgnores parses the package's ignore directives.
func collectIgnores(fset *token.FileSet, pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				out = append(out, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzer:  m[1],
					hasReason: strings.TrimSpace(m[2]) != "",
					pos:       c.Slash,
				})
			}
		}
	}
	return out
}

// Run executes every analyzer over every package, applies ignore
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg)
		suppressed := func(d Diagnostic) bool {
			for _, ig := range ignores {
				if ig.analyzer != d.Analyzer || ig.file != d.Pos.Filename {
					continue
				}
				if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
					return true
				}
			}
			return false
		}
		for _, az := range analyzers {
			pass := &Pass{Pkg: pkg, Fset: pkg.Fset, analyzer: az}
			az.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
		// A directive without a reason defeats the audit trail: report it.
		for _, ig := range ignores {
			if !ig.hasReason {
				diags = append(diags, Diagnostic{
					Analyzer: "lintdirective",
					Pos:      pkg.Fset.Position(ig.pos),
					Message:  fmt.Sprintf("//lint:ignore %s directive is missing a reason", ig.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
