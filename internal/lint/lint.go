// Package lint is DeLorean's project-specific static-analysis framework.
// It parses and type-checks the module's packages with go/parser and
// go/types (stdlib only, no external analysis driver) and runs a suite of
// analyzers that enforce invariants the Go compiler cannot see: canonical
// physical-state indexing, tolerance-based float comparison, exhaustive
// enum switches, no silently dropped errors, and deterministic
// simulation/experiment pipelines.
//
// A finding can be suppressed with an ignore directive on the same line or
// the line directly above the offending code:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos is the resolved file:line:column position.
	Pos token.Position
	// Message describes the invariant violation and the sanctioned fix.
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one invariant checker. Per-package analyzers set Run;
// whole-program analyzers (which need the cross-package call graph) set
// RunProgram instead. Exactly one of the two must be non-nil.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one type-checked package.
	Run func(*Pass)
	// RunProgram executes the analyzer once over the whole program.
	RunProgram func(*ProgramPass)
}

// Pass carries one (analyzer, package) execution and collects its
// diagnostics.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// Fset resolves token positions.
	Fset *token.FileSet

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Program is the whole-program view shared by RunProgram analyzers: every
// loaded package plus the call graph over them. It is built once per Run
// invocation, lazily, only when the analyzer list contains a program
// analyzer.
type Program struct {
	// Pkgs are the loaded packages in import-path order.
	Pkgs []*Package
	// Fset resolves positions across all packages.
	Fset *token.FileSet
	// Graph is the module call graph.
	Graph *CallGraph
}

// ProgramPass carries one (analyzer, program) execution and collects its
// diagnostics.
type ProgramPass struct {
	// Prog is the program under analysis.
	Prog *Program

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzer  string
	hasReason bool
	position  token.Position
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectIgnores parses the package's ignore directives.
func collectIgnores(fset *token.FileSet, pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				out = append(out, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzer:  m[1],
					hasReason: strings.TrimSpace(m[2]) != "",
					position:  pos,
				})
			}
		}
	}
	return out
}

// Run executes every analyzer over every package — per-package analyzers
// on each package, program analyzers once over the whole set with the
// call graph — applies ignore directives, and returns the surviving
// diagnostics sorted by position. Ignore directives are collected across
// all packages before filtering, so a program analyzer's finding is
// suppressible at its position regardless of which package's reachability
// produced it.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var ignores []ignoreDirective
	for _, pkg := range pkgs {
		ignores = append(ignores, collectIgnores(pkg.Fset, pkg)...)
	}
	suppressed := func(d Diagnostic) bool {
		for _, ig := range ignores {
			if ig.analyzer != d.Analyzer || ig.file != d.Pos.Filename {
				continue
			}
			if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	report := func(ds []Diagnostic) {
		for _, d := range ds {
			if !suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			if az.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, Fset: pkg.Fset, analyzer: az}
			az.Run(pass)
			report(pass.diags)
		}
	}
	var prog *Program
	for _, az := range analyzers {
		if az.RunProgram == nil {
			continue
		}
		if prog == nil && len(pkgs) > 0 {
			prog = &Program{Pkgs: pkgs, Fset: pkgs[0].Fset, Graph: BuildCallGraph(pkgs)}
		}
		if prog == nil {
			continue
		}
		pass := &ProgramPass{Prog: prog, analyzer: az}
		az.RunProgram(pass)
		report(pass.diags)
	}
	// A directive without a reason defeats the audit trail: report it.
	for _, ig := range ignores {
		if !ig.hasReason {
			diags = append(diags, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      ig.position,
				Message:  fmt.Sprintf("//lint:ignore %s directive is missing a reason", ig.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
