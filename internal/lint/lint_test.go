package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/sensors"
)

// Golden-file harness: each testdata/<analyzer> directory is a real Go
// package annotated with `// want "regex"` (or `/* want "regex" */`)
// comments on the lines where a diagnostic is expected. The harness loads
// the package through the real loader, runs the analyzer under test, and
// asserts an exact two-way match: every diagnostic must be wanted, and
// every want must be hit.

var (
	wantRE   = regexp.MustCompile(`(?://|/\*)\s*want\s+((?:"[^"]*"\s*)+)`)
	quotedRE = regexp.MustCompile(`"([^"]*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans the package's Go files for want annotations.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, q[1], err)
				}
				out = append(out, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return out
}

// runGolden loads testdata/<name> and checks the analyzers' diagnostics
// against the package's want annotations.
func runGolden(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	for _, terr := range pkgs[0].TypeErrors {
		t.Errorf("type error in %s: %v", dir, terr)
	}
	diags := Run(pkgs, analyzers)
	wants := parseWants(t, dir)
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestFloatCmpGolden(t *testing.T) {
	runGolden(t, "floatcmp", FloatCmp())
}

func TestStateIndexGolden(t *testing.T) {
	runGolden(t, "stateindex", StateIndex(StateIndexConfig{
		SensorsPath: sensorsPath,
		NumStates:   int(sensors.NumStates),
	}))
}

func TestExhaustiveGolden(t *testing.T) {
	runGolden(t, "exhaustive", Exhaustive(ExhaustiveConfig{
		TypePrefix: modulePath + "/",
		Exclude: map[string][]string{
			// Mirrors the suite's sentinel exclusions (telemetry.Stage
			// NumStages, sensors.StateIndex NumStates).
			modulePath + "/internal/lint/testdata/exhaustive.Stage": {"NumStages"},
		},
	}))
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, "errdrop", ErrDrop(modulePath+"/internal/"))
}

func TestHotallocGolden(t *testing.T) {
	runGolden(t, "hotalloc", Hotalloc(HotallocConfig{
		MatPath: modulePath + "/internal/mat",
		Roots:   []FuncRef{modulePath + "/internal/lint/testdata/hotalloc:filter.tick"},
		Cold:    []FuncRef{modulePath + "/internal/lint/testdata/hotalloc:filter.cold"},
	}))
}

func TestPuretickGolden(t *testing.T) {
	runGolden(t, "puretick", Puretick(PuretickConfig{
		Roots:     []FuncRef{modulePath + "/internal/lint/testdata/puretick:tick"},
		ClockPath: clockPath,
		Sinks:     []string{"fmt"},
	}))
}

func TestMapIterGolden(t *testing.T) {
	runGolden(t, "mapiter", MapIter(MapIterConfig{Sinks: []string{"fmt"}}))
}

func TestSharedWriteGolden(t *testing.T) {
	runGolden(t, "sharedwrite", SharedWrite(SharedWriteConfig{
		Runners: []FuncRef{modulePath + "/internal/lint/testdata/sharedwrite:pool"},
	}))
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "determinism", Determinism(DeterminismConfig{
		Restricted: []string{modulePath + "/internal/lint/testdata/determinism"},
		ClockPath:  clockPath,
	}))
}

// TestIgnoreDirectives covers the suppression machinery: a directive with
// a reason silences the finding; a bare directive silences it too but is
// itself reported, so no suppression escapes the audit trail.
func TestIgnoreDirectives(t *testing.T) {
	runGolden(t, "ignore", FloatCmp())
}

func TestDefaultAnalyzers(t *testing.T) {
	want := []string{
		"floatcmp", "stateindex", "exhaustive", "errdrop", "hotalloc",
		"determinism", "puretick", "mapiter", "sharedwrite",
	}
	azs := DefaultAnalyzers()
	if len(azs) != len(want) {
		t.Fatalf("DefaultAnalyzers returned %d analyzers, want %d", len(azs), len(want))
	}
	for i, az := range azs {
		if az.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, az.Name, want[i])
		}
		if az.Doc == "" {
			t.Errorf("analyzer %q has no Doc", az.Name)
		}
		if got := AnalyzerByName(az.Name); got == nil || got.Name != az.Name {
			t.Errorf("AnalyzerByName(%q) = %v", az.Name, got)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName of unknown name should return nil")
	}
}

// TestRepoClean runs the full default suite over the whole module — the
// same invariant cmd/delint enforces in CI, kept here so a plain
// `go test ./...` catches regressions too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	for _, d := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("finding: %s", d)
	}
}
