package lint

import (
	"go/ast"
	"go/types"
)

// PuretickConfig scopes the puretick analyzer.
type PuretickConfig struct {
	// Roots are the FuncRefs whose transitive callees must be free of
	// nondeterminism sources: the per-tick defense pipeline entry and the
	// runner's deterministic reduce path.
	Roots []FuncRef
	// ClockPath is the sanctioned wall-clock seam named in diagnostics.
	ClockPath string
	// Sinks are the order-sensitive output package prefixes for the
	// map-iteration rule (shared with mapiter).
	Sinks []string
}

// Puretick returns the puretick analyzer: a whole-program reachability
// proof that the tick path stays deterministic. Every function, method,
// and closure transitively reachable from the configured roots — across
// package boundaries, through interface dispatch (CHA) and func values —
// must not read the wall clock (time.Now/Since), draw from the global
// math/rand source, spawn a goroutine, select (scheduling-order
// dependent), or let map iteration order reach an order-sensitive sink.
// Unlike the package-scoped determinism analyzer, there is no allowlist
// to maintain: moving code between packages cannot silently exempt it,
// because the proof follows calls, not directories.
func Puretick(cfg PuretickConfig) *Analyzer {
	return &Analyzer{
		Name: "puretick",
		Doc: "prove by call-graph reachability that the tick and reduce " +
			"paths never reach a nondeterminism source (wall clock, global " +
			"math/rand, goroutine spawn, select, order-sensitive map iteration)",
		RunProgram: func(pass *ProgramPass) { runPuretick(pass, cfg) },
	}
}

func runPuretick(pass *ProgramPass, cfg PuretickConfig) {
	graph := pass.Prog.Graph
	var roots []*CGNode
	for _, ref := range cfg.Roots {
		n := graph.Node(ref)
		if n == nil {
			// A stale root is itself a finding: the proof would silently
			// cover nothing.
			pass.Reportf(pass.Prog.Pkgs[0].Files[0].Pos(),
				"puretick root %q does not resolve to a module function; update the analyzer configuration", ref)
			continue
		}
		roots = append(roots, n)
	}
	reach, order := graph.Reachable(roots, nil)
	for _, n := range order {
		checkPureNode(pass, cfg, reach, n)
	}
}

// checkPureNode scans one reachable node's body (nested literals are
// their own reachable nodes) for nondeterminism sources.
func checkPureNode(pass *ProgramPass, cfg PuretickConfig, reach map[*CGNode]ReachEntry, n *CGNode) {
	info := n.Pkg.Info
	walkShallow(n.Body(), func(node ast.Node) {
		switch e := node.(type) {
		case *ast.GoStmt:
			pass.Reportf(e.Pos(),
				"goroutine spawn on the deterministic tick path (%s); completion order would race the trace",
				Chain(reach, n))
		case *ast.SelectStmt:
			pass.Reportf(e.Pos(),
				"select on the deterministic tick path (%s); case choice depends on scheduling",
				Chain(reach, n))
		case *ast.SelectorExpr:
			fn, ok := info.Uses[e.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch pkgPath := fn.Pkg().Path(); {
			case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				pass.Reportf(e.Pos(),
					"wall-clock read time.%s on the deterministic tick path (%s); route it through %s",
					fn.Name(), Chain(reach, n), cfg.ClockPath)
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn.Name()]:
				pass.Reportf(e.Pos(),
					"global math/rand source (rand.%s) on the deterministic tick path (%s); draw from an explicitly seeded *rand.Rand",
					fn.Name(), Chain(reach, n))
			}
		case *ast.RangeStmt:
			if sink, sensitive := orderSensitiveMapRange(info, e, cfg.Sinks); sensitive {
				if !sortedAfter(info, n.Body(), e.End()) {
					pass.Reportf(e.Pos(),
						"map iteration order leaks into %s on the deterministic tick path (%s); iterate a canonically ordered key slice",
						sink, Chain(reach, n))
				}
			}
		}
	})
}
