package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the program-level
// analyzers (puretick, hotalloc) run reachability proofs over. It is an
// over-approximating graph on the loaded module packages only: calls into
// the standard library are leaf edges (not traversed), and dynamic calls
// are resolved conservatively:
//
//   - direct function and method calls resolve to their declaration;
//   - interface method calls resolve by class-hierarchy analysis (CHA) to
//     the same-named method of every module type implementing the
//     interface;
//   - calls through func-typed variables, fields, and parameters resolve
//     to every address-taken module function and every escaping function
//     literal with an identical signature;
//   - a local variable bound exactly once to a function literal resolves
//     precisely to that literal.
//
// Function literals are graph nodes of their own (named parent$n in
// source order) with a containment edge from the enclosing function, so
// defining a literal on a hot path conservatively implies it may run
// there.

// FuncRef is the textual reference format analyzers use to name graph
// nodes in configuration: "<import-path>:<Func>" for package-level
// functions, "<import-path>:<Recv.Method>" for methods (no pointer star),
// with "$<n>" suffixes for the n-th nested function literal.
type FuncRef = string

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

// Edge kinds.
const (
	// EdgeCall is a statically resolved call to a declared function,
	// method, or directly invoked literal.
	EdgeCall EdgeKind = iota + 1
	// EdgeInterface is a CHA-resolved interface method dispatch.
	EdgeInterface
	// EdgeDynamic is a signature-matched call through a func value.
	EdgeDynamic
	// EdgeContains links a function to a literal defined inside it.
	EdgeContains
)

// CGEdge is one resolved call edge.
type CGEdge struct {
	Callee *CGNode
	// Site is the call (or literal definition) position in the caller.
	Site token.Pos
	Kind EdgeKind
}

// CGNode is one module function, method, or function literal.
type CGNode struct {
	// Ref is the node's canonical FuncRef.
	Ref string
	// Pkg is the package the node's body lives in.
	Pkg *Package
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the function literal; nil for declarations.
	Lit *ast.FuncLit
	// Escapes marks a literal that may be invoked from outside its
	// lexical scope (returned, passed as an argument, or stored) — such a
	// closure allocates at creation. Always false for declarations,
	// immediately invoked literals, and literals bound once to a local
	// variable.
	Escapes bool
	// Edges are the node's outgoing call edges in source order, deduped
	// by callee.
	Edges []CGEdge

	name string
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the node's body block.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name returns the node's name within its package: "Func", "Recv.Method",
// or "Recv.Method$1" for literals.
func (n *CGNode) Name() string { return n.name }

// DisplayName names the node in diagnostics: the innermost enclosing
// declared function, qualified by package basename (literals attribute to
// their parent declaration, which is where the reader must look).
func (n *CGNode) DisplayName() string {
	name := n.name
	if i := strings.IndexByte(name, '$'); i >= 0 {
		name = name[:i]
	}
	base := n.Pkg.Path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + "." + name
}

// CallGraph is the module's call graph.
type CallGraph struct {
	nodes map[string]*CGNode
	byFn  map[*types.Func]*CGNode
	order []*CGNode
}

// Node resolves a FuncRef, or nil when the module declares no such
// function.
func (g *CallGraph) Node(ref string) *CGNode { return g.nodes[ref] }

// Nodes returns every node in deterministic (package path, source) order.
func (g *CallGraph) Nodes() []*CGNode { return g.order }

// ReachEntry records how a node was first reached during BFS.
type ReachEntry struct {
	// From is the parent node; nil for roots.
	From *CGNode
	// Site is the call site in From that reached the node.
	Site token.Pos
}

// Reachable runs a breadth-first traversal from roots and returns the
// reached set with parent pointers plus the deterministic visit order.
// Nodes for which cut returns true are not visited and not traversed
// through (the analyzers' cold-path cut points).
func (g *CallGraph) Reachable(roots []*CGNode, cut func(*CGNode) bool) (map[*CGNode]ReachEntry, []*CGNode) {
	reach := make(map[*CGNode]ReachEntry)
	var order, queue []*CGNode
	for _, r := range roots {
		if r == nil || (cut != nil && cut(r)) {
			continue
		}
		if _, ok := reach[r]; ok {
			continue
		}
		reach[r] = ReachEntry{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.Edges {
			if _, ok := reach[e.Callee]; ok {
				continue
			}
			if cut != nil && cut(e.Callee) {
				continue
			}
			reach[e.Callee] = ReachEntry{From: n, Site: e.Site}
			queue = append(queue, e.Callee)
		}
	}
	return reach, order
}

// Chain renders the call path from a root to n recorded in reach, e.g.
// "core.Pipeline.Tick → core.Pipeline.defenseTick → ekf.Filter.Correct".
// Long chains keep the root and the last hops.
func Chain(reach map[*CGNode]ReachEntry, n *CGNode) string {
	var hops []string
	for cur := n; cur != nil; {
		hops = append(hops, cur.DisplayName())
		cur = reach[cur].From
	}
	// Reverse into root-first order, collapsing consecutive duplicates
	// (a literal shares its parent's display name).
	var path []string
	for i := len(hops) - 1; i >= 0; i-- {
		if len(path) == 0 || path[len(path)-1] != hops[i] {
			path = append(path, hops[i])
		}
	}
	const maxHops = 6
	if len(path) > maxHops {
		head := path[:2]
		tail := path[len(path)-(maxHops-2):]
		path = append(append(append([]string{}, head...), "…"), tail...)
	}
	return strings.Join(path, " → ")
}

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &cgBuilder{
		graph: &CallGraph{
			nodes: make(map[string]*CGNode),
			byFn:  make(map[*types.Func]*CGNode),
		},
		litNodes:  make(map[*ast.FuncLit]*CGNode),
		localBind: make(map[types.Object]*CGNode),
		escaping:  make(map[*ast.FuncLit]bool),
		addrTaken: make(map[*types.Func]bool),
		bySig:     make(map[string][]*CGNode),
	}
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	b.pkgs = sorted

	b.collectNamedTypes()
	for _, pkg := range b.pkgs {
		b.createNodes(pkg)
	}
	for _, pkg := range b.pkgs {
		b.analyzeValues(pkg)
	}
	b.indexSignatures()
	for lit, node := range b.litNodes {
		node.Escapes = b.escaping[lit]
	}
	for _, n := range b.graph.order {
		b.buildEdges(n)
	}
	return b.graph
}

type cgBuilder struct {
	graph *CallGraph
	pkgs  []*Package

	// namedTypes are all module-declared named non-interface types, in
	// deterministic order, for CHA interface resolution.
	namedTypes []*types.Named

	litNodes map[*ast.FuncLit]*CGNode
	// localBind maps a local variable bound exactly once to a function
	// literal onto that literal's node.
	localBind map[types.Object]*CGNode
	// escaping marks literals that may be invoked from outside their
	// lexical scope (returned, passed as argument, stored).
	escaping map[*ast.FuncLit]bool
	// addrTaken marks declared functions referenced as values.
	addrTaken map[*types.Func]bool
	// bySig indexes address-taken functions and escaping literals by
	// signature for dynamic-call resolution.
	bySig map[string][]*CGNode
}

// collectNamedTypes gathers every module named non-interface type in
// (package path, name) order.
func (b *cgBuilder) collectNamedTypes() {
	for _, pkg := range b.pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// createNodes registers declaration nodes and their nested literal nodes
// for one package.
func (b *cgBuilder) createNodes(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			name := fd.Name.Name
			if fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if rn := recvTypeName(sig.Recv().Type()); rn != "" {
						name = rn + "." + name
					}
				}
			}
			n := &CGNode{
				Ref:  pkg.Path + ":" + name,
				Pkg:  pkg,
				Fn:   fn,
				Decl: fd,
				name: name,
			}
			b.addNode(n)
			if fn != nil {
				b.graph.byFn[fn] = n
			}
			b.createLitNodes(n)
		}
	}
}

// addNode registers a node, keeping the first declaration on ref
// collision (Go forbids them outside build-tag games anyway).
func (b *cgBuilder) addNode(n *CGNode) {
	if _, ok := b.graph.nodes[n.Ref]; ok {
		return
	}
	b.graph.nodes[n.Ref] = n
	b.graph.order = append(b.graph.order, n)
}

// createLitNodes walks a node's body and registers a child node for every
// directly nested function literal, recursively.
func (b *cgBuilder) createLitNodes(parent *CGNode) {
	count := 0
	walkShallow(parent.Body(), func(n ast.Node) {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return
		}
		count++
		child := &CGNode{
			Ref:  fmt.Sprintf("%s$%d", parent.Ref, count),
			Pkg:  parent.Pkg,
			Lit:  lit,
			name: fmt.Sprintf("%s$%d", parent.name, count),
		}
		b.addNode(child)
		b.litNodes[lit] = child
		b.createLitNodes(child)
	})
}

// walkShallow visits the AST below root but does not descend into nested
// function literals (their bodies belong to their own graph nodes). The
// literal node itself is visited.
func walkShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != root {
			visit(lit)
			return false
		}
		visit(n)
		return true
	})
}

// analyzeValues scans one package for address-taken functions, escaping
// literals, and precise local literal bindings.
func (b *cgBuilder) analyzeValues(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		// callPos marks expressions in direct call position, which do not
		// make the referenced function address-taken.
		callPos := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callPos[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[e].(*types.Func); ok && !callPos[e] {
					b.addrTaken[fn] = true
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[e.Sel].(*types.Func); ok && !callPos[e] {
					b.addrTaken[fn] = true
				}
			case *ast.FuncLit:
				if !callPos[e] {
					// Classified precisely below; default to escaping.
					b.escaping[e] = true
				}
			}
			return true
		})
		// A literal whose only binding is `v := func(){...}` (or `v =`)
		// with a single assignment to v is precisely call-resolvable
		// through v; count assignments per object first.
		assignCount := make(map[types.Object]int)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						assignCount[obj]++
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, id)
				if obj == nil || assignCount[obj] != 1 {
					continue
				}
				if v, ok := obj.(*types.Var); !ok || v.IsField() || v.Parent() == nil {
					continue // fields and package-level vars stay escaping
				} else if v.Parent() == pkg.Types.Scope() {
					continue
				}
				if node := b.litNodes[lit]; node != nil {
					b.localBind[obj] = node
					b.escaping[lit] = false
				}
			}
			return true
		})
	}
}

// objOf resolves an identifier to its object through either table.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// indexSignatures builds the dynamic-call index over address-taken
// declared functions and escaping literals.
func (b *cgBuilder) indexSignatures() {
	for _, n := range b.graph.order {
		var sig *types.Signature
		switch {
		case n.Fn != nil:
			if !b.addrTaken[n.Fn] {
				continue
			}
			sig, _ = n.Fn.Type().(*types.Signature)
		case n.Lit != nil:
			if !b.escaping[n.Lit] {
				continue
			}
			sig, _ = n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		}
		if sig == nil {
			continue
		}
		key := sigKey(sig)
		b.bySig[key] = append(b.bySig[key], n)
	}
}

// sigKey renders a signature (receiver excluded) for dynamic matching.
func sigKey(sig *types.Signature) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	sb.WriteByte(')')
	if sig.Variadic() {
		sb.WriteString("...")
	}
	sb.WriteByte('(')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	sb.WriteByte(')')
	return sb.String()
}

// buildEdges resolves one node's call edges.
func (b *cgBuilder) buildEdges(n *CGNode) {
	info := n.Pkg.Info
	seen := make(map[*CGNode]bool)
	addEdge := func(callee *CGNode, site token.Pos, kind EdgeKind) {
		if callee == nil || seen[callee] {
			return
		}
		seen[callee] = true
		n.Edges = append(n.Edges, CGEdge{Callee: callee, Site: site, Kind: kind})
	}
	walkShallow(n.Body(), func(node ast.Node) {
		switch e := node.(type) {
		case *ast.FuncLit:
			// Defining a literal on this path conservatively implies it
			// may execute on it.
			addEdge(b.litNodes[e], e.Pos(), EdgeContains)
		case *ast.CallExpr:
			b.resolveCall(n, e, info, addEdge)
		}
	})
}

// resolveCall adds the edges for one call expression.
func (b *cgBuilder) resolveCall(n *CGNode, call *ast.CallExpr, info *types.Info, addEdge func(*CGNode, token.Pos, EdgeKind)) {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		addEdge(b.litNodes[f], call.Pos(), EdgeCall)
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			addEdge(b.graph.byFn[obj], call.Pos(), EdgeCall)
		case *types.Var:
			if lit := b.localBind[obj]; lit != nil {
				addEdge(lit, call.Pos(), EdgeCall)
			} else {
				b.dynamicEdges(obj.Type(), call.Pos(), addEdge)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return
				}
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					b.chaEdges(iface, m, call.Pos(), addEdge)
				} else {
					addEdge(b.graph.byFn[m], call.Pos(), EdgeCall)
				}
			case types.FieldVal:
				b.dynamicEdges(sel.Type(), call.Pos(), addEdge)
			}
			return
		}
		// Package-qualified reference: pkg.Func or pkg.FuncVar.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			addEdge(b.graph.byFn[obj], call.Pos(), EdgeCall)
		case *types.Var:
			b.dynamicEdges(obj.Type(), call.Pos(), addEdge)
		}
	}
}

// dynamicEdges adds signature-matched edges for a call through a func
// value of type t.
func (b *cgBuilder) dynamicEdges(t types.Type, site token.Pos, addEdge func(*CGNode, token.Pos, EdgeKind)) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, callee := range b.bySig[sigKey(sig)] {
		addEdge(callee, site, EdgeDynamic)
	}
}

// chaEdges adds class-hierarchy edges for an interface method call: the
// same-named method of every module type whose method set satisfies the
// interface.
func (b *cgBuilder) chaEdges(iface *types.Interface, m *types.Func, site token.Pos, addEdge func(*CGNode, token.Pos, EdgeKind)) {
	for _, named := range b.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), m.Name())
		impl, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		addEdge(b.graph.byFn[impl], site, EdgeInterface)
	}
}

// recvTypeName returns the receiver's named-type name, stripping pointers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
