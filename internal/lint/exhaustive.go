package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveConfig scopes the exhaustive analyzer.
type ExhaustiveConfig struct {
	// TypePrefix restricts the check to enum types declared in packages
	// whose import path starts with this prefix (the module's own enums;
	// stdlib integer types are never treated as enums).
	TypePrefix string
	// Exclude maps a qualified type name ("pkg/path.Type") to constant
	// names that do not participate in exhaustiveness — count sentinels
	// like sensors.NumStates.
	Exclude map[string][]string
}

// Exhaustive returns the exhaustive analyzer: a switch over one of the
// module's enum-like types (core.Strategy, sensors.StateIndex, the
// sensors.Type enum, attack modes, mission phases, …) must either cover
// every declared constant of the type or carry a default clause. A new
// strategy or sensor type added without updating every dispatch site is
// exactly the silent state-vector drift the SoK warns about.
func Exhaustive(cfg ExhaustiveConfig) *Analyzer {
	return &Analyzer{
		Name: "exhaustive",
		Doc: "switches over module enum types must cover every declared " +
			"constant or have a default clause",
		Run: func(pass *Pass) { runExhaustive(pass, cfg) },
	}
}

func runExhaustive(pass *Pass, cfg ExhaustiveConfig) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, cfg, sw)
			return true
		})
	}
}

func checkSwitch(pass *Pass, cfg ExhaustiveConfig, sw *ast.SwitchStmt) {
	tagType := pass.TypeOf(sw.Tag)
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), cfg.TypePrefix) {
		return
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return
	}

	qualified := obj.Pkg().Path() + "." + obj.Name()
	excluded := make(map[string]bool)
	for _, name := range cfg.Exclude[qualified] {
		excluded[name] = true
	}

	// Enum members: package-level constants of exactly this type,
	// declared alongside it.
	scope := obj.Pkg().Scope()
	type member struct{ name, val string }
	var members []member
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || excluded[name] || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, member{name, c.Val().ExactString()})
	}
	if len(members) < 2 {
		return // not an enum
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: the switch is total by construction
		}
		for _, e := range clause.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch,
		"switch on %s.%s is not exhaustive: missing %s (add the cases or a default clause)",
		obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
}
