// Package exhaustive is golden-test input for the exhaustive analyzer.
package exhaustive

// Mode is a small closed enum of the kind the analyzer guards.
type Mode int

// Modes.
const (
	ModeIdle Mode = iota
	ModeArmed
	ModeFlying
)

func partial(m Mode) string {
	switch m { // want "switch on exhaustive.Mode is not exhaustive: missing ModeFlying"
	case ModeIdle:
		return "idle"
	case ModeArmed:
		return "armed"
	}
	return "?"
}

func veryPartial(m Mode) string {
	switch m { // want "missing ModeArmed, ModeFlying"
	case ModeIdle:
		return "idle"
	}
	return "?"
}

func full(m Mode) string {
	switch m {
	case ModeIdle, ModeArmed:
		return "grounded"
	case ModeFlying:
		return "flying"
	}
	return "?"
}

func defaulted(m Mode) string {
	switch m {
	case ModeIdle:
		return "idle"
	default:
		return "other"
	}
}

func nonEnum(n int) string {
	switch n { // plain ints are not enums
	case 1:
		return "one"
	}
	return "?"
}

func tagless(m Mode) string {
	switch { // tagless switches are ordinary if-chains
	case m == ModeIdle:
		return "idle"
	}
	return "?"
}

// Stage mirrors the pipeline stage enums that end in a count sentinel:
// the sentinel is excluded from coverage (suite config), the real
// constants are not.
type Stage int

// Stages, with a trailing sentinel.
const (
	StageDetect Stage = iota + 1
	StageRecover
	NumStages // sentinel, excluded via ExhaustiveConfig.Exclude
)

func sentinelExcluded(s Stage) string {
	switch s { // sentinel exclusion: NumStages not required
	case StageDetect:
		return "detect"
	case StageRecover:
		return "recover"
	}
	return "?"
}

func sentinelStillPartial(s Stage) string {
	switch s { // want "switch on exhaustive.Stage is not exhaustive: missing StageRecover"
	case StageDetect:
		return "detect"
	}
	return "?"
}
