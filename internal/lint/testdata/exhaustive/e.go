// Package exhaustive is golden-test input for the exhaustive analyzer.
package exhaustive

// Mode is a small closed enum of the kind the analyzer guards.
type Mode int

// Modes.
const (
	ModeIdle Mode = iota
	ModeArmed
	ModeFlying
)

func partial(m Mode) string {
	switch m { // want "switch on exhaustive.Mode is not exhaustive: missing ModeFlying"
	case ModeIdle:
		return "idle"
	case ModeArmed:
		return "armed"
	}
	return "?"
}

func veryPartial(m Mode) string {
	switch m { // want "missing ModeArmed, ModeFlying"
	case ModeIdle:
		return "idle"
	}
	return "?"
}

func full(m Mode) string {
	switch m {
	case ModeIdle, ModeArmed:
		return "grounded"
	case ModeFlying:
		return "flying"
	}
	return "?"
}

func defaulted(m Mode) string {
	switch m {
	case ModeIdle:
		return "idle"
	default:
		return "other"
	}
}

func nonEnum(n int) string {
	switch n { // plain ints are not enums
	case 1:
		return "one"
	}
	return "?"
}

func tagless(m Mode) string {
	switch { // tagless switches are ordinary if-chains
	case m == ModeIdle:
		return "idle"
	}
	return "?"
}
