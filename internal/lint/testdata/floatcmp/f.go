// Package floatcmp is golden-test input for the floatcmp analyzer.
package floatcmp

func compare(a, b float64) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	return a != b // want "floating-point != comparison"
}

type metres float64

func named(a, b metres) bool {
	return a == b // want "floating-point == comparison"
}

func narrow(a, b float32) bool {
	return a == b // want "floating-point == comparison"
}

func fine(a, b float64, i, j int) bool {
	const x, y = 1.0, 2.0
	if x == y { // fully constant: folds at compile time, exact by construction
		return false
	}
	if i == j { // integer equality is exact
		return true
	}
	return a < b // ordered comparisons carry no equality trap
}
