// Package ignore exercises the //lint:ignore suppression directives.
package ignore

func lineAbove(a, b float64) bool {
	//lint:ignore floatcmp the replay gate needs bit-exact equality
	return a == b
}

func sameLine(a, b float64) bool {
	return a == b //lint:ignore floatcmp exact comparison is the point here
}

func bare(a, b float64) bool {
	// A directive without a reason still suppresses, but is itself
	// reported so no suppression escapes the audit trail.
	/* want "directive is missing a reason" */ //lint:ignore floatcmp
	return a == b
}

func unsuppressed(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func wrongAnalyzer(a, b float64) bool {
	//lint:ignore errdrop reasons for one analyzer do not leak to another
	return a == b // want "floating-point == comparison"
}
