// Package mapiter is golden-test input for the mapiter analyzer
// (configured with the fmt sink).
package mapiter

import (
	"fmt"
	"sort"
)

// countFold is an order-insensitive fold: fine.
func countFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// appendLeak accumulates map keys in iteration order.
func appendLeak(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order leaks into an append"
		keys = append(keys, k)
	}
	return keys
}

// appendSorted collects then canonicalizes: the sanctioned idiom.
func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printLeak feeds iteration order straight into an output sink.
func printLeak(m map[string]int) {
	for k, v := range m { // want "map iteration order leaks into a call into fmt"
		fmt.Println(k, v)
	}
}

// concatLeak builds a string in iteration order.
func concatLeak(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration order leaks into a string concatenation"
		s += k
	}
	return s
}

// sendLeak races iteration order onto a channel.
func sendLeak(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order leaks into a channel send"
		ch <- k
	}
}

// sliceRange ranges over a slice: ordered, unrestricted.
func sliceRange(xs []string) string {
	s := ""
	for _, x := range xs {
		s += x
	}
	return s
}
