//go:build lintneverbuilds

package tagged

// This file's tag is never satisfied; if the loader includes it anyway
// the test sees the duplicate declaration as a type error.
const InEveryBuild = false
