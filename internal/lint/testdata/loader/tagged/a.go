// Package tagged is loader-test input for build-constraint filtering.
package tagged

// InEveryBuild is declared in the unconstrained file.
const InEveryBuild = true
