package tagged

// OnWindows is only part of the package when GOOS=windows (implicit
// filename constraint).
const OnWindows = true
