// Package typeerr is loader-test input: it type-checks with errors, and
// the loader must still return the package (analyzers run on partially
// checked packages; the driver surfaces the errors).
package typeerr

func broken() int {
	return undefinedIdentifier
}
