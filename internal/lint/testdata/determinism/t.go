// Package determinism is golden-test input for the determinism analyzer.
package determinism

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	start := time.Now()   // want "wall-clock read time.Now"
	_ = time.Since(start) // want "wall-clock read time.Since"
	return rand.Int63()   // want "global math/rand source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors of explicit sources are fine
	return r.Float64()                  // ...and so are methods on them
}

func elapsed(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) // time methods and constants are fine
}
