// Package hotalloc is golden-test input for the hotalloc v2 analyzer.
// The hot set is derived from the declared root filter.tick: helper,
// tickfn, and tick2 are hot because tick (transitively) calls them; cold
// is a declared cut point, so neither it nor colder is checked; and
// unreached is never visited at all.
package hotalloc

import "repro/internal/mat"

type filter struct {
	p    *mat.Mat
	ws   *mat.Mat
	buf  []float64
	n    int
	hook func()
}

// logger is an interface sink used to provoke boxing diagnostics.
type logger interface {
	log(v any)
}

// pair is a concrete non-pointer value: passing it to an interface
// parameter boxes it.
type pair struct{ a, b float64 }

// tick is the declared root: every allocating call below must be flagged.
func (f *filter) tick(fj *mat.Mat, lg logger) {
	tmp := mat.New(12, 12) // want "allocating mat call New in hot function hotalloc.filter.tick"
	_ = tmp
	f.p = fj.Mul(f.p)              // want "allocating mat method Mul in hot function hotalloc.filter.tick"
	f.p = f.p.T()                  // want "TransposeInto kernel"
	scratch := make([]float64, 12) // want "make in hot function hotalloc.filter.tick"
	_ = scratch
	mat.MulInto(f.ws, fj, f.p)     // in-place kernels are the sanctioned form
	f.buf = append(f.buf[:0], 1.0) // append into a reused buffer is fine
	f.hook = func() { f.n++ }      // want "closure escapes hot function hotalloc.filter.tick"
	lg.log(pair{1, 2})             // want "hotalloc.pair boxed into any in hot function hotalloc.filter.tick"
	lg.log(f)                      // pointers are interface-word sized: no boxing
	lg.log(3)                      // constants convert to static interface data
	f.helper()
	f.tickfn()
	_ = f.tick2(mat.Vec{1, 2})
	f.cold()
}

// helper is not named anywhere in the configuration: it is hot because
// tick calls it, and stays hot no matter where it moves.
func (f *filter) helper() {
	f.p = f.p.Clone() // want "allocating mat method Clone in hot function hotalloc.filter.helper"
}

// tickfn covers function literals: a literal bound once to a local and
// invoked runs on the hot path (and does not escape).
func (f *filter) tickfn() {
	g := func() {
		_ = mat.NewVec(3) // want "allocating mat call NewVec in hot function hotalloc.filter.tickfn"
	}
	g()
}

// tick2 covers allocating methods on the Vec type.
func (f *filter) tick2(v mat.Vec) mat.Vec {
	return v.Add(v) // want "allocating mat method Add in hot function hotalloc.filter.tick2"
}

// cold is a declared cut point: the same calls pass unremarked, and
// colder — reachable only through it — is cut with it.
func (f *filter) cold() {
	f.p = mat.Identity(12).Scale(0.1)
	_ = make([]float64, 4)
	f.colder()
}

func (f *filter) colder() {
	_ = make([]float64, 8)
}

// unreached is not reachable from the root: unchecked.
func (f *filter) unreached() {
	_ = mat.New(3, 3)
}
