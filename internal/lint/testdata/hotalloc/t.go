// Package hotalloc is golden-test input for the hotalloc analyzer: tick,
// tickfn, and tick2 are declared hot in the test's config; cold is not.
package hotalloc

import "repro/internal/mat"

type filter struct {
	p   *mat.Mat
	ws  *mat.Mat
	buf []float64
}

// tick is declared hot: every allocating call below must be flagged.
func (f *filter) tick(fj *mat.Mat) {
	tmp := mat.New(12, 12) // want "allocating mat call New in hot function tick"
	_ = tmp
	f.p = fj.Mul(f.p)              // want "allocating mat method Mul in hot function tick"
	f.p = f.p.T()                  // want "TransposeInto kernel"
	scratch := make([]float64, 12) // want "make in hot function tick"
	_ = scratch
	mat.MulInto(f.ws, fj, f.p)     // in-place kernels are the sanctioned form
	f.buf = append(f.buf[:0], 1.0) // append into a reused buffer is fine
}

// tickfn covers function literals: they run on the hot path too.
func (f *filter) tickfn() {
	g := func() {
		_ = mat.NewVec(3) // want "allocating mat call NewVec in hot function tickfn"
	}
	g()
}

// tick2 covers allocating methods on the Vec type.
func (f *filter) tick2(v mat.Vec) mat.Vec {
	return v.Add(v) // want "allocating mat method Add in hot function tick2"
}

// cold is not in the hot list: the same calls pass unremarked.
func (f *filter) cold() {
	f.p = mat.Identity(12).Scale(0.1)
	_ = make([]float64, 4)
}
