// Package stateindex is golden-test input for the stateindex analyzer.
package stateindex

import "repro/internal/sensors"

func read(ps sensors.PhysState) float64 {
	return ps[2] // want "physical-state vector indexed with raw constant 2"
}

func readPtr(ps *sensors.PhysState) float64 {
	return ps[0] // want "physical-state vector indexed with raw constant 0"
}

func shadowShape(e [19]float64) float64 { // want "magic literal 19"
	return e[3] // want "physical-state vector indexed with raw constant 3"
}

func convert() sensors.StateIndex {
	return sensors.StateIndex(3) // want "raw literal 3 of type sensors.StateIndex"
}

func ok(ps sensors.PhysState, i int) float64 {
	sum := ps[sensors.SX] + ps[sensors.SBaroAlt]
	for j := range ps {
		sum += ps[j] // computed indices are fine
	}
	sum += ps[i]
	var full [sensors.NumStates]float64 // canonical length spelling
	sum += full[sensors.SVZ]
	return sum
}

func bounds(i sensors.StateIndex) bool {
	// Zero is the universal below-range sentinel and does not move when
	// the PS layout evolves, so it is exempt.
	return i >= 0 && i < sensors.NumStates
}
