// Package sharedwrite is golden-test input for the sharedwrite analyzer.
// pool stands in for the runner package's Do primitive (named in the
// test's Runners config), so closures passed to it are held to the same
// confinement rules as go-statement bodies.
package sharedwrite

import "sync"

type acc struct{ n int }

// pool is the configured worker-pool primitive.
func pool(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func fanOut(n int) []float64 {
	out := make([]float64, n)
	done := 0
	guarded := 0
	var mu sync.Mutex
	pool(n, func(i int) {
		out[i] = float64(i) // per-index slot keyed by the worker's own index: confined
		done++              // want "unconfined write to captured variable done from a worker callback passed to pool"
		mu.Lock()
		guarded++ // serialized under the mutex: fine
		mu.Unlock()
	})
	_ = done
	_ = guarded
	return out
}

func goStmt(results []int, i int) {
	sum := 0
	go func() {
		results[i] = 1 // want "unconfined write to captured element of results through an outside index"
		sum++          // want "unconfined write to captured variable sum from a go statement"
	}()
	_ = sum
}

// confinedLoop indexes with a variable declared inside the literal.
func confinedLoop(results []int) {
	go func() {
		for j := range results {
			results[j] = j
		}
	}()
}

func fieldWrite(a *acc) {
	go func() {
		a.n++ // want "unconfined write to captured field a.n"
	}()
}

// deferGuard holds the mutex to the end of the literal.
func deferGuard(mu *sync.Mutex, a *acc) {
	go func() {
		mu.Lock()
		defer mu.Unlock()
		a.n++
	}()
}

func ptrWrite(p *int) {
	go func() {
		*p = 1 // want "unconfined write to captured pointee of p"
	}()
}
