// Package errdrop is golden-test input for the errdrop analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func drop() {
	fail() // want "error result of fail is silently discarded"
	pair() // want "error result of pair is silently discarded"
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	_, _ = pair() // explicit discard is visible in review
	var sb strings.Builder
	sb.WriteString("ok")      // strings.Builder writes cannot fail
	fmt.Fprintf(&sb, "%d", 1) // ...including through fmt.Fprintf
	fmt.Println("progress")   // stdout diagnostics are exempt
	return nil
}
