// Package puretick is golden-test input for the puretick analyzer: the
// reachability proof is rooted at tick, so helper's select is flagged
// through the call chain while unreached's clock read is not.
package puretick

import (
	"math/rand"
	"time"
)

func tick(m map[string]float64, ch chan int) float64 {
	go drain(ch)    // want "goroutine spawn on the deterministic tick path"
	t := time.Now() // want "wall-clock read time.Now on the deterministic tick path"
	_ = t
	v := rand.Float64() // want "global math/rand source"

	// Order-insensitive fold over a map: fine.
	sum := 0.0
	for _, x := range m {
		sum += x
	}

	// Map order leaking into a string: scheduling-independent but
	// iteration-order dependent, so the replay breaks bit-exactness.
	names := ""
	for k := range m { // want "map iteration order leaks into a string concatenation on the deterministic tick path"
		names += k
	}
	_ = names

	helper(ch)
	return sum + v
}

// helper is flagged through the chain tick → helper.
func helper(ch chan int) {
	select { // want "select on the deterministic tick path"
	case v := <-ch:
		_ = v
	default:
	}
}

func drain(ch chan int) {
	for range ch {
	}
}

// unreached is outside the proof: the clock read passes unremarked.
func unreached() time.Time {
	return time.Now()
}
