package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop returns the errdrop analyzer: inside the given import-path
// scope (internal/…), a call whose error result is silently discarded —
// an expression statement that ignores a returned error — is forbidden.
// Recovery stacks fail silently when a reconstruction or calibration step
// swallows its error; discarding must be explicit (`_ = f()`), ideally
// with a comment, or suppressed with //lint:ignore errdrop.
//
// Writes into error-free sinks (strings.Builder, bytes.Buffer) and the
// fmt stdout print family are exempt: their error results are
// documentation artifacts, not failure signals.
func ErrDrop(pathPrefix string) *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc: "forbid silently discarded error returns in " + pathPrefix +
			" packages; discard explicitly with `_ =` or handle the error",
		Run: func(pass *Pass) { runErrDrop(pass, pathPrefix) },
	}
}

var errorType = types.Universe.Lookup("error").Type()

func runErrDrop(pass *Pass, pathPrefix string) {
	if !strings.HasPrefix(pass.Pkg.Path, pathPrefix) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently discarded; handle it or assign to _ explicitly",
				calleeName(call))
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// exemptCall reports whether the call belongs to the allowlist of
// never-fails APIs: stdout prints, and fmt.Fprint* into in-memory sinks
// whose Write cannot return an error.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on strings.Builder / bytes.Buffer document a nil error.
	if recv := pass.TypeOf(sel.X); recv != nil {
		if isErrorFreeSink(recv) {
			return true
		}
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	if name == "Print" || name == "Printf" || name == "Println" {
		return true
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		if w := pass.TypeOf(call.Args[0]); w != nil && isErrorFreeSink(w) {
			return true
		}
	}
	return false
}

// isErrorFreeSink reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func isErrorFreeSink(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedFrom(t, "strings", "Builder") || isNamedFrom(t, "bytes", "Buffer")
}

// calleeName renders the called expression for the diagnostic message.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
