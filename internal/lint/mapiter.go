package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIterConfig scopes the mapiter analyzer.
type MapIterConfig struct {
	// Sinks are import-path prefixes whose calls inside a map-range body
	// mark the iteration as order-sensitive (e.g. "fmt", the telemetry
	// package): results flowing into them would leak Go's randomized map
	// iteration order into the output.
	Sinks []string
}

// MapIter returns the mapiter analyzer: ranging over a map is fine for
// order-insensitive folds (counting, set insertion, min/max), but a range
// body that appends to a slice, concatenates a string, sends on a
// channel, or calls an output sink makes the result depend on Go's
// randomized map iteration order and breaks bit-exact replay. The
// sanctioned forms are iterating a canonically ordered key slice, or
// sorting the collected results immediately after the loop (a sort call
// after the range in the same function is recognized and exempts it).
func MapIter(cfg MapIterConfig) *Analyzer {
	return &Analyzer{
		Name: "mapiter",
		Doc: "forbid map iteration whose results feed order-sensitive sinks " +
			"(append, string concatenation, channel sends, output packages) " +
			"unless canonicalized by a sort after the loop",
		Run: func(pass *Pass) { runMapIter(pass, cfg) },
	}
}

func runMapIter(pass *Pass, cfg MapIterConfig) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				sink, sensitive := orderSensitiveMapRange(pass.Pkg.Info, rng, cfg.Sinks)
				if !sensitive || sortedAfter(pass.Pkg.Info, fd.Body, rng.End()) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"map iteration order leaks into %s; iterate a canonically ordered key slice or sort the result after the loop",
					sink)
				return true
			})
		}
	}
}

// orderSensitiveMapRange reports whether rng ranges over a map and its
// body feeds an order-sensitive sink, naming the sink for the diagnostic.
// Order-insensitive folds — map/set insertion, counters, min/max — pass.
func orderSensitiveMapRange(info *types.Info, rng *ast.RangeStmt, sinks []string) (string, bool) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return "", false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return "", false
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.AssignStmt:
			// String concatenation: s += x or s = s + x.
			if e.Tok == token.ADD_ASSIGN && isString(info.TypeOf(e.Lhs[0])) {
				sink = "a string concatenation"
				return false
			}
			if e.Tok == token.ASSIGN && len(e.Lhs) == 1 && len(e.Rhs) == 1 {
				if bin, ok := e.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD && isString(info.TypeOf(e.Lhs[0])) {
					sink = "a string concatenation"
					return false
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(e.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					sink = "an append"
					return false
				}
			}
			if path := calleePkgPath(info, e); path != "" {
				for _, s := range sinks {
					if path == s || strings.HasPrefix(path, s+"/") {
						sink = "a call into " + path
						return false
					}
				}
			}
		}
		return true
	})
	return sink, sink != ""
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// calleePkgPath returns the declaring package path of a call's callee, or
// "" for builtins, local closures, and unresolved calls.
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		return fn.Pkg().Path()
	}
	return ""
}

// sortedAfter reports whether body contains a sort.* or slices.Sort* call
// positioned after pos — the collect-then-canonicalize idiom that makes a
// map-order-dependent accumulation deterministic again.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch path := calleePkgPath(info, call); path {
		case "sort":
			found = true
		case "slices":
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
