package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors holds type-checking errors; analyzers still run on a
	// partially checked package, but the driver surfaces these.
	TypeErrors []error
}

// Loader discovers, parses, and type-checks the module's packages. Module
// packages are resolved from source within the module tree; standard
// library imports are type-checked through the source importer. The
// loader deliberately has no module cache or network dependency.
type Loader struct {
	// Fset is the shared file set for all loaded packages.
	Fset *token.FileSet
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	baseDir string
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader returns a loader rooted at the module containing dir.
// Patterns passed to Load are resolved relative to dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modPath,
		baseDir:    abs,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Load resolves the given package patterns. A pattern is a directory
// (relative to the loader's base directory), optionally suffixed with
// "/..." to include all packages under it. With no patterns, "./..." is
// assumed. Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped during expansion.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	add := func(dir string) error {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return err
		}
		if pkg != nil && !seen[pkg.Path] {
			seen[pkg.Path] = true
			out = append(out, pkg)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.baseDir, dir)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !hasGoFiles(path) {
				return nil
			}
			return add(path)
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a lintable Go source file (non-test,
// not editor/hidden detritus).
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// knownOS and knownArch mirror go/build's recognized GOOS/GOARCH values
// for implicit filename constraints (name_GOOS.go, name_GOARCH.go,
// name_GOOS_GOARCH.go).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true, "zos": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true,
	"wasm": true,
}

// fileSuffixOK evaluates the implicit GOOS/GOARCH filename constraints
// against the host platform (delint analyzes the build it runs on, like
// the compiler it fronts).
func fileSuffixOK(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) >= 3 {
		osPart, archPart := parts[len(parts)-2], parts[len(parts)-1]
		if knownOS[osPart] && knownArch[archPart] {
			return osPart == runtime.GOOS && archPart == runtime.GOARCH
		}
	}
	if len(parts) >= 2 {
		switch last := parts[len(parts)-1]; {
		case knownOS[last]:
			return last == runtime.GOOS
		case knownArch[last]:
			return last == runtime.GOARCH
		}
	}
	return true
}

// buildTagsOK evaluates the parsed file's //go:build constraint (if any)
// for the host platform. Only comments above the package clause are
// considered, matching the compiler's placement rule.
func buildTagsOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let the build complain
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}

// buildTagSatisfied resolves one build tag for the host: GOOS, GOARCH,
// the gc toolchain, and every go1.N release tag (delint runs on the
// module's own toolchain, which satisfies the module's go directive).
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// loadDir loads the package in dir, deriving its import path from the
// module root.
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and type-checks the package at dir, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) || !fileSuffixOK(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildTagsOK(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.Fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		Files: files,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source within the module tree; everything else (the standard library)
// goes through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: dependency %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
