package lint

import (
	"go/ast"
	"go/types"
)

// HotallocConfig declares the roots of the module's zero-allocation hot
// set. The hot set itself is derived: every function, method, and closure
// transitively reachable from a root through the call graph is hot,
// minus the declared cold cut points. Nothing else is hand-maintained —
// refactors that move or extract code cannot silently drop it from
// coverage, because coverage follows calls.
type HotallocConfig struct {
	// MatPath is the import path of the matrix package whose allocating
	// API is forbidden inside hot functions (each allocating call has an
	// in-place *Into twin).
	MatPath string
	// Roots are the FuncRefs the hot set is derived from: the per-tick
	// pipeline entry and the inference kernels.
	Roots []FuncRef
	// Cold are FuncRefs cut out of the traversal: sanctioned episodic or
	// lazy-growth paths (per-episode triage, one-time workspace growth)
	// that own the pipeline's cold allocations. Neither a cold function
	// nor anything reachable only through it is checked.
	Cold []FuncRef
}

// Hotalloc returns the hotalloc analyzer: inside the derived hot set,
// calls to the mat package's allocating constructors/solvers, calls to
// its allocating value-returning methods, and the make builtin are all
// forbidden — they allocate on every tick and regress the zero-allocation
// steady state. The sanctioned form is a workspace preallocated in the
// type's constructor plus the *Into kernels. Two further allocation
// sources are flagged in hot code: converting a concrete non-pointer
// value to an interface (boxing allocates), and closures that escape
// their defining function (closure capture allocates at creation).
// append is deliberately not flagged: appends into capacity-retaining
// reused buffers are amortized allocation-free and are the idiom for
// variable-length scratch. panic argument subtrees are exempt — the
// panic path is terminal, not hot.
func Hotalloc(cfg HotallocConfig) *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "forbid allocation in the hot set derived from the declared " +
			"roots: no make, no allocating " + cfg.MatPath + " calls, no " +
			"interface boxing, no escaping closures; preallocate workspace " +
			"in the constructor and use the *Into kernels",
		RunProgram: func(pass *ProgramPass) { runHotalloc(pass, cfg) },
	}
}

// hotallocFuncs are the mat package's allocating package-level
// constructors and solvers.
var hotallocFuncs = map[string]bool{
	"New":      true,
	"NewVec":   true,
	"NewLU":    true,
	"Identity": true,
	"Diag":     true,
	"FromRows": true,
	"Solve":    true,
	"SolveMat": true,
	"Inverse":  true,
	"FactorLU": true,
}

// hotallocMethods are the allocating value-returning methods on the mat
// package's types; each has an allocation-free *Into twin.
var hotallocMethods = map[string]bool{
	"Mul":        true,
	"MulVec":     true,
	"Add":        true,
	"Sub":        true,
	"Scale":      true,
	"T":          true,
	"Clone":      true,
	"Symmetrize": true,
	"SolveVec":   true,
}

func runHotalloc(pass *ProgramPass, cfg HotallocConfig) {
	graph := pass.Prog.Graph
	cold := make(map[*CGNode]bool, len(cfg.Cold))
	for _, ref := range cfg.Cold {
		if n := graph.Node(ref); n != nil {
			cold[n] = true
		} else {
			pass.Reportf(pass.Prog.Pkgs[0].Files[0].Pos(),
				"hotalloc cold entry %q does not resolve to a module function; update the analyzer configuration", ref)
		}
	}
	var roots []*CGNode
	for _, ref := range cfg.Roots {
		n := graph.Node(ref)
		if n == nil {
			pass.Reportf(pass.Prog.Pkgs[0].Files[0].Pos(),
				"hotalloc root %q does not resolve to a module function; update the analyzer configuration", ref)
			continue
		}
		roots = append(roots, n)
	}
	reach, order := graph.Reachable(roots, func(n *CGNode) bool { return cold[n] })
	for _, n := range order {
		checkHotNode(pass, cfg, reach, n)
	}
}

// checkHotNode scans one hot node's body. Nested literals are their own
// hot nodes (reached through containment edges), so the walk stops at
// literal boundaries; escaping literals are flagged here, at their
// definition site in the hot parent.
func checkHotNode(pass *ProgramPass, cfg HotallocConfig, reach map[*CGNode]ReachEntry, n *CGNode) {
	info := n.Pkg.Info
	name := n.DisplayName()
	chain := Chain(reach, n)
	for _, e := range n.Edges {
		if e.Kind == EdgeContains && e.Callee.Escapes {
			pass.Reportf(e.Site,
				"closure escapes hot function %s and allocates at creation (hot path: %s); hoist it into the constructor or bind it to a local variable",
				name, chain)
		}
	}
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literal bodies are their own hot nodes
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok {
				switch b.Name() {
				case "panic":
					return false // the panic path is terminal, not hot
				case "make":
					pass.Reportf(call.Pos(),
						"make in hot function %s allocates every call (hot path: %s); preallocate the buffer in the constructor and reuse it",
						name, chain)
					return true
				}
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cfg.MatPath {
				break
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				break
			}
			if sig.Recv() != nil {
				if hotallocMethods[fn.Name()] {
					pass.Reportf(call.Pos(),
						"allocating mat method %s in hot function %s (hot path: %s); use the in-place %sInto kernel with a workspace destination",
						fn.Name(), name, chain, intoName(fn.Name()))
				}
			} else if hotallocFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"allocating mat call %s in hot function %s (hot path: %s); preallocate in the constructor and reuse the workspace",
					fn.Name(), name, chain)
			}
		}
		checkBoxing(pass, info, call, name, chain)
		return true
	})
}

// checkBoxing flags call arguments that convert a concrete non-pointer
// value to an interface parameter: the conversion boxes, allocating on
// every call. Pointer-shaped values (pointers, channels, maps, funcs) are
// stored directly in the interface word, and constants are staticized by
// the compiler — neither allocates.
func checkBoxing(pass *ProgramPass, info *types.Info, call *ast.CallExpr, name, chain string) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passthrough, no element boxing
			}
			if s, ok := params.At(np - 1).Type().Underlying().(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < np:
			paramT = params.At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		argT := info.TypeOf(arg)
		if argT == nil || types.IsInterface(argT) || pointerShaped(argT) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants convert to static interface data
		}
		pass.Reportf(arg.Pos(),
			"%s boxed into %s in hot function %s allocates every call (hot path: %s); keep the hot path monomorphic or pass a preallocated value",
			types.TypeString(argT, shortQualifier), types.TypeString(paramT, shortQualifier), name, chain)
	}
}

// shortQualifier renders package-qualified type names with the package
// basename only, keeping diagnostics readable.
func shortQualifier(p *types.Package) string { return p.Name() }

// pointerShaped reports whether values of t are stored directly in an
// interface word without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// intoName maps an allocating method name to its *Into kernel for the
// diagnostic's suggested fix.
func intoName(method string) string {
	switch method {
	case "T":
		return "Transpose"
	case "SolveVec":
		return "SolveVec"
	default:
		return method
	}
}
