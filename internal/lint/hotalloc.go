package lint

import (
	"go/ast"
	"go/types"
)

// HotallocConfig declares the module's hot functions — the ones on the
// steady-state per-tick path whose execution must not allocate.
type HotallocConfig struct {
	// MatPath is the import path of the matrix package whose allocating
	// API is forbidden inside hot functions (each allocating call has an
	// in-place *Into twin).
	MatPath string
	// Hot maps a package import path to the names of its hot functions
	// and methods.
	Hot map[string][]string
}

// Hotalloc returns the hotalloc analyzer: inside a declared hot function,
// calls to the mat package's allocating constructors/solvers, calls to
// its allocating value-returning methods, and the make builtin are all
// forbidden — they allocate on every tick and regress the zero-allocation
// steady state. The sanctioned form is a workspace preallocated in the
// type's constructor plus the *Into kernels. append is deliberately not
// flagged: appends into capacity-retaining reused buffers are amortized
// allocation-free and are the idiom for variable-length scratch.
//
// One-time lazy allocations must live in a non-hot helper (e.g. the
// filter's refreshDT), which also documents them as cold-path.
func Hotalloc(cfg HotallocConfig) *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "forbid allocation in declared hot functions: no make and no " +
			"allocating " + cfg.MatPath + " calls; preallocate workspace in the " +
			"constructor and use the *Into kernels",
		Run: func(pass *Pass) { runHotalloc(pass, cfg) },
	}
}

// hotallocFuncs are the mat package's allocating package-level
// constructors and solvers.
var hotallocFuncs = map[string]bool{
	"New":      true,
	"NewVec":   true,
	"NewLU":    true,
	"Identity": true,
	"Diag":     true,
	"FromRows": true,
	"Solve":    true,
	"SolveMat": true,
	"Inverse":  true,
	"FactorLU": true,
}

// hotallocMethods are the allocating value-returning methods on the mat
// package's types; each has an allocation-free *Into twin.
var hotallocMethods = map[string]bool{
	"Mul":        true,
	"MulVec":     true,
	"Add":        true,
	"Sub":        true,
	"Scale":      true,
	"T":          true,
	"Clone":      true,
	"Symmetrize": true,
	"SolveVec":   true,
}

func runHotalloc(pass *Pass, cfg HotallocConfig) {
	hot := cfg.Hot[pass.Pkg.Path]
	if len(hot) == 0 {
		return
	}
	hotSet := make(map[string]bool, len(hot))
	for _, name := range hot {
		hotSet[name] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotSet[fd.Name.Name] {
				continue
			}
			checkHotFunc(pass, cfg, fd)
		}
	}
}

// checkHotFunc walks one hot function's body, including any function
// literals inside it — they execute on the hot path too.
func checkHotFunc(pass *Pass, cfg HotallocConfig, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := pass.Pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "make" {
				pass.Reportf(call.Pos(),
					"make in hot function %s allocates every call; preallocate the buffer in the constructor and reuse it",
					fd.Name.Name)
			}
		case *ast.SelectorExpr:
			fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cfg.MatPath {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() != nil {
				if hotallocMethods[fn.Name()] {
					pass.Reportf(call.Pos(),
						"allocating mat method %s in hot function %s; use the in-place %sInto kernel with a workspace destination",
						fn.Name(), fd.Name.Name, intoName(fn.Name()))
				}
			} else if hotallocFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"allocating mat call %s in hot function %s; preallocate in the constructor and reuse the workspace",
					fn.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

// intoName maps an allocating method name to its *Into kernel for the
// diagnostic's suggested fix.
func intoName(method string) string {
	switch method {
	case "T":
		return "Transpose"
	case "SolveVec":
		return "SolveVec"
	default:
		return method
	}
}
