package telemetry

import "sync"

// Collector folds per-job Missions into per-experiment aggregates. The
// parallel runner feeds it after its deterministic reduce, in submission
// order, and experiments run sequentially, so aggregation order — and
// therefore every float sum in the report — is independent of the worker
// count. A nil *Collector is a valid no-op sink.
//
// The mutex exists for safety, not for ordering: correctness of the
// report's byte-identity relies on the callers' sequential discipline.
type Collector struct {
	mu      sync.Mutex
	order   []*ExperimentReport
	byName  map[string]*ExperimentReport
	current *ExperimentReport
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byName: make(map[string]*ExperimentReport)}
}

// Begin switches the collector to the named experiment group, creating it
// on first use. Repeated Begin calls with the same name reuse the group.
func (c *Collector) Begin(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current = c.group(name)
}

// group returns (creating if needed) the named aggregate. Callers hold mu.
func (c *Collector) group(name string) *ExperimentReport {
	if g, ok := c.byName[name]; ok {
		return g
	}
	g := &ExperimentReport{
		Name:      name,
		Detection: DetectionStats{LatencyTicks: NewHistogram(DefaultLatencyBounds()...)},
	}
	c.byName[name] = g
	c.order = append(c.order, g)
	return g
}

// Add folds one mission's telemetry into the current experiment group.
// Missions arriving before any Begin land in an "unattributed" group.
func (c *Collector) Add(m *Mission) {
	if c == nil || m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.current
	if g == nil {
		g = c.group("unattributed")
		c.current = g
	}
	g.Jobs++
	if m.Outcome.Success {
		g.Succeeded++
	}
	if m.Outcome.Crashed {
		g.Crashed++
	}
	if m.Outcome.Stalled {
		g.Stalled++
	}
	g.Ticks += int64(m.Ticks)
	g.Events += len(m.Events)
	g.Counters.Add(m.Counters)
	g.Stages.Add(m.Stages)

	if m.Outcome.AttackMounted {
		g.AttackedJobs++
		if m.DetectionLatencyTicks >= 0 {
			g.Detection.Detected++
			g.Detection.LatencyTicks.Observe(int64(m.DetectionLatencyTicks))
		} else {
			g.Detection.Undetected++
		}
		if m.Outcome.DiagnosedDuringAttack {
			g.Diagnosis.TruePositives++
		} else {
			g.Diagnosis.FalseNegatives++
		}
		if len(g.FirstAttackedTrace) == 0 {
			g.FirstAttackedTrace = append([]Event(nil), m.Events...)
		}
	} else {
		if m.Counters.RecoveryEpisodes > 0 {
			g.Diagnosis.FalsePositives++
		} else {
			g.Diagnosis.TrueNegatives++
		}
	}
}

// ObserveRMSD folds one recovery-RMSD value into the current group.
func (c *Collector) ObserveRMSD(v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		c.current = c.group("unattributed")
	}
	c.current.RecoveryRMSD.observe(v)
}

// Report assembles the versioned run report: per-experiment entries in
// Begin order plus merged totals.
func (c *Collector) Report(meta Meta) (*Report, error) {
	if c == nil {
		return &Report{Version: ReportVersion, Meta: meta}, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{Version: ReportVersion, Meta: meta}
	totals := ExperimentReport{
		Name:      "totals",
		Detection: DetectionStats{LatencyTicks: NewHistogram(DefaultLatencyBounds()...)},
	}
	for _, g := range c.order {
		e := *g
		// Deep-copy the mutable aggregates so the rendered report is a
		// snapshot.
		e.Detection.LatencyTicks = g.Detection.LatencyTicks.Clone()
		e.FirstAttackedTrace = append([]Event(nil), g.FirstAttackedTrace...)
		e.finalize()
		rep.Experiments = append(rep.Experiments, e)
		if err := totals.accumulate(g); err != nil {
			return nil, err
		}
	}
	totals.finalize()
	rep.Totals = totals
	return rep, nil
}
