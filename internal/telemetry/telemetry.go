// Package telemetry is the deterministic observability layer of the
// detect→diagnose→recover pipeline: per-mission event traces, pipeline
// counters, fixed-bucket histograms, and per-stage cost-model totals that
// the runner aggregates into a versioned machine-readable run report.
//
// Everything in this package is keyed by simulation ticks — never the
// wall clock — and aggregation follows job submission order, so a run
// report is byte-identical at any worker count and on any machine. The
// determinism analyzer (cmd/delint) enforces the no-wall-clock rule over
// this package. The layer is allocation-light: a mission's telemetry is
// a handful of events and fixed-size counter structs, and a nil *Recorder
// is a valid no-op sink so instrumented code pays only a nil check when
// telemetry is off.
package telemetry

import (
	"fmt"
	"strconv"
)

// Kind enumerates the pipeline events a mission can emit.
type Kind int

// The event kinds of the detect→diagnose→recover pipeline.
const (
	// KindAlertRaised marks the attack detector's alert latching; the
	// detail names the triggering channel and mechanism (instantaneous
	// residual vs CUSUM accumulation).
	KindAlertRaised Kind = iota + 1
	// KindAlertCleared marks the alert unlatching without recovery — a
	// masked false alarm or an environmental transient.
	KindAlertCleared
	// KindDiagnosis is one diagnosis inference pass; the detail carries
	// the per-sensor verdicts (and marginals for the FG diagnoser).
	KindDiagnosis
	// KindReconstruct is a checkpoint restore: the EKF roll-forward
	// replay from the latest trusted checkpoint (detail: records
	// replayed).
	KindReconstruct
	// KindRecoveryEngaged marks recovery-controller entry; the detail
	// names the strategy, the controller flown, and the isolated sensors.
	KindRecoveryEngaged
	// KindSensorReadmitted marks an isolated sensor re-admitted by the
	// recovery re-validation loop.
	KindSensorReadmitted
	// KindRecoveryExited marks the hand-back to the nominal autopilot.
	KindRecoveryExited
	// KindMissionEnd closes the trace with the mission outcome.
	KindMissionEnd
	// KindModeTransition marks one pipeline FSM mode transition,
	// attributed to the stage that caused it. Recorded only when
	// transition tracing is enabled (EnableTransitions) so that default
	// run reports stay byte-identical across pipeline-internal refactors.
	KindModeTransition
)

// String names the kind as rendered in reports.
func (k Kind) String() string {
	switch k {
	case KindAlertRaised:
		return "alert_raised"
	case KindAlertCleared:
		return "alert_cleared"
	case KindDiagnosis:
		return "diagnosis"
	case KindReconstruct:
		return "reconstruct"
	case KindRecoveryEngaged:
		return "recovery_engaged"
	case KindSensorReadmitted:
		return "sensor_readmitted"
	case KindRecoveryExited:
		return "recovery_exited"
	case KindMissionEnd:
		return "mission_end"
	case KindModeTransition:
		return "mode_transition"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stage enumerates the defense pipeline's control-loop stages. It is the
// single stage vocabulary shared by the cost model (StageNS per-stage
// totals), the pipeline's FSM transition attribution, and the run report:
// internal/core charges modeled nanoseconds against these names, and each
// FSM mode transition names the Stage that caused it.
type Stage int

// The pipeline stages, in per-tick execution order. The first three are
// the undefended control loop; the rest are the defense modules whose sum
// is the Table 3 CPU-overhead numerator.
const (
	// StageBaseLoop is the non-defense control-loop floor (sensor I/O,
	// scheduling, logging).
	StageBaseLoop Stage = iota + 1
	// StageFusion is the EKF predict+correct over the PS vector.
	StageFusion
	// StageControl is the control-law evaluation (autopilot or LQR).
	StageControl
	// StageShadow is the attack-free shadow-reference propagation.
	StageShadow
	// StageDetect is the residual+CUSUM attack-detector update.
	StageDetect
	// StageObserve is the diagnosis observation push.
	StageObserve
	// StageCheckpoint is the historic-states record append.
	StageCheckpoint
	// StageDiagnose is one diagnosis inference pass.
	StageDiagnose
	// StageReconstruct is the checkpoint-replay state reconstruction.
	StageReconstruct
	// StageRecoveryMonitor is the re-validation and attack-subsidence
	// monitoring while recovery is engaged.
	StageRecoveryMonitor
	// NumStages is the stage-count sentinel, not a stage (excluded from
	// exhaustiveness; see internal/lint/suite.go).
	NumStages
)

// String names the stage as rendered in reports and transition events.
func (s Stage) String() string {
	switch s {
	case StageBaseLoop:
		return "base_loop"
	case StageFusion:
		return "fusion"
	case StageControl:
		return "control"
	case StageShadow:
		return "shadow"
	case StageDetect:
		return "detect"
	case StageObserve:
		return "observe"
	case StageCheckpoint:
		return "checkpoint"
	case StageDiagnose:
		return "diagnose"
	case StageReconstruct:
		return "reconstruct"
	case StageRecoveryMonitor:
		return "recovery_monitor"
	}
	// strconv.Itoa, unlike fmt, boxes nothing; String is reachable from
	// the per-tick transition path.
	return "Stage(" + strconv.Itoa(int(s)) + ")"
}

// MarshalText renders the kind name into JSON reports.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name back from a JSON report, so persisted
// reports (campaign shard checkpoints, recorded run artifacts) round-trip
// losslessly through their encoding.
func (k *Kind) UnmarshalText(text []byte) error {
	name := string(text)
	for c := KindAlertRaised; c <= KindModeTransition; c++ {
		if c.String() == name {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", name)
}

// Event is one timestamped pipeline event. Tick is the simulation tick
// (control periods since mission start) — the only clock this layer
// knows.
type Event struct {
	Tick   int    `json:"tick"`
	Kind   Kind   `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Counters are one mission's pipeline totals. All fields are exact event
// counts, so sums over missions are order-independent.
type Counters struct {
	// AlertsRaised counts detector alert latch edges.
	AlertsRaised int `json:"alerts_raised"`
	// AlertTicks counts control periods with the alert latched while in
	// normal (non-recovery) mode.
	AlertTicks int `json:"alert_ticks"`
	// DiagnosisPasses counts diagnosis inference passes, including the
	// settling-window re-checks after recovery entry.
	DiagnosisPasses int `json:"diagnosis_passes"`
	// MaskedAlerts counts diagnosis passes that implicated no sensor —
	// detector false alarms masked before recovery could engage.
	MaskedAlerts int `json:"masked_alerts"`
	// Reconstructions counts checkpoint restores (EKF roll-forward
	// replays).
	Reconstructions int `json:"reconstructions"`
	// ReplayedRecords totals the checkpoint records replayed across all
	// reconstructions.
	ReplayedRecords int `json:"replayed_records"`
	// RecoveryEpisodes counts recovery-controller activations.
	RecoveryEpisodes int `json:"recovery_episodes"`
	// RecoveryTicks counts control periods flown under the recovery
	// controller.
	RecoveryTicks int `json:"recovery_ticks"`
	// SensorsReadmitted counts isolated sensors re-admitted by the
	// re-validation loop.
	SensorsReadmitted int `json:"sensors_readmitted"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.AlertsRaised += o.AlertsRaised
	c.AlertTicks += o.AlertTicks
	c.DiagnosisPasses += o.DiagnosisPasses
	c.MaskedAlerts += o.MaskedAlerts
	c.Reconstructions += o.Reconstructions
	c.ReplayedRecords += o.ReplayedRecords
	c.RecoveryEpisodes += o.RecoveryEpisodes
	c.RecoveryTicks += o.RecoveryTicks
	c.SensorsReadmitted += o.SensorsReadmitted
}

// StageNS breaks the deterministic cost model's modeled nanoseconds down
// per control-loop stage. The stages mirror internal/core/costmodel.go:
// the base columns are the undefended loop, the rest are the defense
// modules whose sum is the Table 3 CPU-overhead numerator.
type StageNS struct {
	BaseLoop int64 `json:"base_loop_ns"`
	Fusion   int64 `json:"fusion_ns"`
	Control  int64 `json:"control_ns"`

	Shadow          int64 `json:"shadow_ns"`
	Detect          int64 `json:"detect_ns"`
	Observe         int64 `json:"observe_ns"`
	Checkpoint      int64 `json:"checkpoint_ns"`
	Diagnose        int64 `json:"diagnose_ns"`
	Reconstruct     int64 `json:"reconstruct_ns"`
	RecoveryMonitor int64 `json:"recovery_monitor_ns"`
}

// DefenseNS is the defense modules' modeled total — the Table 3
// CPU-overhead numerator.
func (s StageNS) DefenseNS() int64 {
	return s.Shadow + s.Detect + s.Observe + s.Checkpoint +
		s.Diagnose + s.Reconstruct + s.RecoveryMonitor
}

// BaseNS is the undefended control loop's modeled total.
func (s StageNS) BaseNS() int64 { return s.BaseLoop + s.Fusion + s.Control }

// TotalNS is the whole control loop's modeled total.
func (s StageNS) TotalNS() int64 { return s.BaseNS() + s.DefenseNS() }

// AddNS charges ns modeled nanoseconds against the named stage. It is
// the cost model's write path: internal/core charges every stage through
// this single switch, so the cost-model vocabulary cannot drift from the
// pipeline's Stage identity.
func (s *StageNS) AddNS(st Stage, ns int64) {
	switch st {
	case StageBaseLoop:
		s.BaseLoop += ns
	case StageFusion:
		s.Fusion += ns
	case StageControl:
		s.Control += ns
	case StageShadow:
		s.Shadow += ns
	case StageDetect:
		s.Detect += ns
	case StageObserve:
		s.Observe += ns
	case StageCheckpoint:
		s.Checkpoint += ns
	case StageDiagnose:
		s.Diagnose += ns
	case StageReconstruct:
		s.Reconstruct += ns
	case StageRecoveryMonitor:
		s.RecoveryMonitor += ns
	case NumStages:
		// The sentinel carries no bucket; charging it is a programming
		// error kept silent to preserve determinism.
	}
}

// Of returns the accumulated nanoseconds of the named stage.
func (s StageNS) Of(st Stage) int64 {
	switch st {
	case StageBaseLoop:
		return s.BaseLoop
	case StageFusion:
		return s.Fusion
	case StageControl:
		return s.Control
	case StageShadow:
		return s.Shadow
	case StageDetect:
		return s.Detect
	case StageObserve:
		return s.Observe
	case StageCheckpoint:
		return s.Checkpoint
	case StageDiagnose:
		return s.Diagnose
	case StageReconstruct:
		return s.Reconstruct
	case StageRecoveryMonitor:
		return s.RecoveryMonitor
	case NumStages:
		return 0
	}
	return 0
}

// Add accumulates o into s.
func (s *StageNS) Add(o StageNS) {
	s.BaseLoop += o.BaseLoop
	s.Fusion += o.Fusion
	s.Control += o.Control
	s.Shadow += o.Shadow
	s.Detect += o.Detect
	s.Observe += o.Observe
	s.Checkpoint += o.Checkpoint
	s.Diagnose += o.Diagnose
	s.Reconstruct += o.Reconstruct
	s.RecoveryMonitor += o.RecoveryMonitor
}

// Outcome is the mission-level classification the collector needs to
// build precision/recall inputs without re-deriving experiment context.
type Outcome struct {
	Success bool `json:"success"`
	Crashed bool `json:"crashed"`
	Stalled bool `json:"stalled"`
	// AttackMounted reports whether an SDA schedule was configured.
	AttackMounted bool `json:"attack_mounted"`
	// DiagnosedDuringAttack reports whether diagnosis implicated at least
	// one sensor while the attack was active.
	DiagnosedDuringAttack bool `json:"diagnosed_during_attack"`
}

// Mission is one mission's complete telemetry record: the event trace,
// the counters, the per-stage cost-model totals, and the outcome.
type Mission struct {
	Events   []Event  `json:"events"`
	Counters Counters `json:"counters"`
	Stages   StageNS  `json:"stages"`
	Outcome  Outcome  `json:"outcome"`
	// Ticks is the mission length in control periods.
	Ticks int `json:"ticks"`
	// DetectionLatencyTicks is attack onset → alert latch in ticks; -1
	// when no attack was mounted or the attack was never detected.
	DetectionLatencyTicks int `json:"detection_latency_ticks"`
}

// Recorder accumulates one mission's telemetry. A nil *Recorder is a
// valid no-op sink, so instrumented pipeline code needs no nil checks at
// the call sites.
type Recorder struct {
	m Mission
	// traceTransitions enables KindModeTransition events. Off by default
	// so that run reports stay byte-identical across pipeline-internal
	// refactors; tests and explicit tracing runs opt in.
	traceTransitions bool
}

// NewRecorder returns an empty mission recorder.
func NewRecorder() *Recorder {
	return &Recorder{m: Mission{DetectionLatencyTicks: -1}}
}

// Event appends a raw event to the trace.
func (r *Recorder) Event(tick int, kind Kind, detail string) {
	if r == nil {
		return
	}
	r.m.Events = append(r.m.Events, Event{Tick: tick, Kind: kind, Detail: detail})
}

// AlertRaised records a detector alert latch edge.
func (r *Recorder) AlertRaised(tick int, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.AlertsRaised++
	r.Event(tick, KindAlertRaised, detail)
}

// AlertCleared records the alert unlatching without recovery.
func (r *Recorder) AlertCleared(tick int) {
	if r == nil {
		return
	}
	r.Event(tick, KindAlertCleared, "")
}

// AlertTick counts one control period with the alert latched.
func (r *Recorder) AlertTick() {
	if r == nil {
		return
	}
	r.m.Counters.AlertTicks++
}

// DiagnosisPass records one diagnosis inference pass as an event. masked
// marks an empty verdict (a masked detector false alarm).
func (r *Recorder) DiagnosisPass(tick int, masked bool, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.DiagnosisPasses++
	if masked {
		r.m.Counters.MaskedAlerts++
	}
	r.Event(tick, KindDiagnosis, detail)
}

// QuietDiagnosisPass counts a settling-window diagnosis re-check without
// emitting an event (the re-checks run every tick of the union window and
// would flood the trace).
func (r *Recorder) QuietDiagnosisPass() {
	if r == nil {
		return
	}
	r.m.Counters.DiagnosisPasses++
}

// Reconstruction records one checkpoint restore replaying the given
// number of records.
func (r *Recorder) Reconstruction(tick, records int) {
	if r == nil {
		return
	}
	r.m.Counters.Reconstructions++
	r.m.Counters.ReplayedRecords += records
	r.Event(tick, KindReconstruct, fmt.Sprintf("records=%d", records))
}

// RecoveryEngaged records a recovery-controller activation.
func (r *Recorder) RecoveryEngaged(tick int, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.RecoveryEpisodes++
	r.Event(tick, KindRecoveryEngaged, detail)
}

// RecoveryTick counts one control period under the recovery controller.
func (r *Recorder) RecoveryTick() {
	if r == nil {
		return
	}
	r.m.Counters.RecoveryTicks++
}

// SensorReadmitted records an isolated sensor re-admitted by the
// re-validation loop.
func (r *Recorder) SensorReadmitted(tick int, sensor string) {
	if r == nil {
		return
	}
	r.m.Counters.SensorsReadmitted++
	r.Event(tick, KindSensorReadmitted, sensor)
}

// RecoveryExited records the hand-back to the nominal autopilot.
func (r *Recorder) RecoveryExited(tick int, detail string) {
	if r == nil {
		return
	}
	r.Event(tick, KindRecoveryExited, detail)
}

// EnableTransitions turns on FSM mode-transition tracing: every
// pipeline mode transition is recorded as one stage-attributed
// KindModeTransition event. Off by default so default run reports stay
// byte-stable.
func (r *Recorder) EnableTransitions() {
	if r == nil {
		return
	}
	r.traceTransitions = true
}

// ModeTransition records one pipeline FSM transition from→to, attributed
// to the stage that caused it. A no-op unless EnableTransitions was
// called.
func (r *Recorder) ModeTransition(tick int, from, to string, cause Stage) {
	if r == nil || !r.traceTransitions {
		return
	}
	r.Event(tick, KindModeTransition, from+"->"+to+" stage="+cause.String())
}

// SetDetectionLatency records the attack-onset→alert latency in ticks.
func (r *Recorder) SetDetectionLatency(ticks int) {
	if r == nil {
		return
	}
	r.m.DetectionLatencyTicks = ticks
}

// SetStages installs the mission's per-stage cost-model totals.
func (r *Recorder) SetStages(s StageNS) {
	if r == nil {
		return
	}
	r.m.Stages = s
}

// FinishMission closes the trace with the outcome.
func (r *Recorder) FinishMission(tick int, detail string, o Outcome) {
	if r == nil {
		return
	}
	r.m.Ticks = tick
	r.m.Outcome = o
	r.Event(tick, KindMissionEnd, detail)
}

// Mission returns the accumulated record. A nil recorder returns nil.
func (r *Recorder) Mission() *Mission {
	if r == nil {
		return nil
	}
	return &r.m
}
