// Package telemetry is the deterministic observability layer of the
// detect→diagnose→recover pipeline: per-mission event traces, pipeline
// counters, fixed-bucket histograms, and per-stage cost-model totals that
// the runner aggregates into a versioned machine-readable run report.
//
// Everything in this package is keyed by simulation ticks — never the
// wall clock — and aggregation follows job submission order, so a run
// report is byte-identical at any worker count and on any machine. The
// determinism analyzer (cmd/delint) enforces the no-wall-clock rule over
// this package. The layer is allocation-light: a mission's telemetry is
// a handful of events and fixed-size counter structs, and a nil *Recorder
// is a valid no-op sink so instrumented code pays only a nil check when
// telemetry is off.
package telemetry

import "fmt"

// Kind enumerates the pipeline events a mission can emit.
type Kind int

// The event kinds of the detect→diagnose→recover pipeline.
const (
	// KindAlertRaised marks the attack detector's alert latching; the
	// detail names the triggering channel and mechanism (instantaneous
	// residual vs CUSUM accumulation).
	KindAlertRaised Kind = iota + 1
	// KindAlertCleared marks the alert unlatching without recovery — a
	// masked false alarm or an environmental transient.
	KindAlertCleared
	// KindDiagnosis is one diagnosis inference pass; the detail carries
	// the per-sensor verdicts (and marginals for the FG diagnoser).
	KindDiagnosis
	// KindReconstruct is a checkpoint restore: the EKF roll-forward
	// replay from the latest trusted checkpoint (detail: records
	// replayed).
	KindReconstruct
	// KindRecoveryEngaged marks recovery-controller entry; the detail
	// names the strategy, the controller flown, and the isolated sensors.
	KindRecoveryEngaged
	// KindSensorReadmitted marks an isolated sensor re-admitted by the
	// recovery re-validation loop.
	KindSensorReadmitted
	// KindRecoveryExited marks the hand-back to the nominal autopilot.
	KindRecoveryExited
	// KindMissionEnd closes the trace with the mission outcome.
	KindMissionEnd
)

// String names the kind as rendered in reports.
func (k Kind) String() string {
	switch k {
	case KindAlertRaised:
		return "alert_raised"
	case KindAlertCleared:
		return "alert_cleared"
	case KindDiagnosis:
		return "diagnosis"
	case KindReconstruct:
		return "reconstruct"
	case KindRecoveryEngaged:
		return "recovery_engaged"
	case KindSensorReadmitted:
		return "sensor_readmitted"
	case KindRecoveryExited:
		return "recovery_exited"
	case KindMissionEnd:
		return "mission_end"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind name into JSON reports.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one timestamped pipeline event. Tick is the simulation tick
// (control periods since mission start) — the only clock this layer
// knows.
type Event struct {
	Tick   int    `json:"tick"`
	Kind   Kind   `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Counters are one mission's pipeline totals. All fields are exact event
// counts, so sums over missions are order-independent.
type Counters struct {
	// AlertsRaised counts detector alert latch edges.
	AlertsRaised int `json:"alerts_raised"`
	// AlertTicks counts control periods with the alert latched while in
	// normal (non-recovery) mode.
	AlertTicks int `json:"alert_ticks"`
	// DiagnosisPasses counts diagnosis inference passes, including the
	// settling-window re-checks after recovery entry.
	DiagnosisPasses int `json:"diagnosis_passes"`
	// MaskedAlerts counts diagnosis passes that implicated no sensor —
	// detector false alarms masked before recovery could engage.
	MaskedAlerts int `json:"masked_alerts"`
	// Reconstructions counts checkpoint restores (EKF roll-forward
	// replays).
	Reconstructions int `json:"reconstructions"`
	// ReplayedRecords totals the checkpoint records replayed across all
	// reconstructions.
	ReplayedRecords int `json:"replayed_records"`
	// RecoveryEpisodes counts recovery-controller activations.
	RecoveryEpisodes int `json:"recovery_episodes"`
	// RecoveryTicks counts control periods flown under the recovery
	// controller.
	RecoveryTicks int `json:"recovery_ticks"`
	// SensorsReadmitted counts isolated sensors re-admitted by the
	// re-validation loop.
	SensorsReadmitted int `json:"sensors_readmitted"`
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.AlertsRaised += o.AlertsRaised
	c.AlertTicks += o.AlertTicks
	c.DiagnosisPasses += o.DiagnosisPasses
	c.MaskedAlerts += o.MaskedAlerts
	c.Reconstructions += o.Reconstructions
	c.ReplayedRecords += o.ReplayedRecords
	c.RecoveryEpisodes += o.RecoveryEpisodes
	c.RecoveryTicks += o.RecoveryTicks
	c.SensorsReadmitted += o.SensorsReadmitted
}

// StageNS breaks the deterministic cost model's modeled nanoseconds down
// per control-loop stage. The stages mirror internal/core/costmodel.go:
// the base columns are the undefended loop, the rest are the defense
// modules whose sum is the Table 3 CPU-overhead numerator.
type StageNS struct {
	BaseLoop int64 `json:"base_loop_ns"`
	Fusion   int64 `json:"fusion_ns"`
	Control  int64 `json:"control_ns"`

	Shadow          int64 `json:"shadow_ns"`
	Detect          int64 `json:"detect_ns"`
	Observe         int64 `json:"observe_ns"`
	Checkpoint      int64 `json:"checkpoint_ns"`
	Diagnose        int64 `json:"diagnose_ns"`
	Reconstruct     int64 `json:"reconstruct_ns"`
	RecoveryMonitor int64 `json:"recovery_monitor_ns"`
}

// DefenseNS is the defense modules' modeled total — the Table 3
// CPU-overhead numerator.
func (s StageNS) DefenseNS() int64 {
	return s.Shadow + s.Detect + s.Observe + s.Checkpoint +
		s.Diagnose + s.Reconstruct + s.RecoveryMonitor
}

// BaseNS is the undefended control loop's modeled total.
func (s StageNS) BaseNS() int64 { return s.BaseLoop + s.Fusion + s.Control }

// TotalNS is the whole control loop's modeled total.
func (s StageNS) TotalNS() int64 { return s.BaseNS() + s.DefenseNS() }

// Add accumulates o into s.
func (s *StageNS) Add(o StageNS) {
	s.BaseLoop += o.BaseLoop
	s.Fusion += o.Fusion
	s.Control += o.Control
	s.Shadow += o.Shadow
	s.Detect += o.Detect
	s.Observe += o.Observe
	s.Checkpoint += o.Checkpoint
	s.Diagnose += o.Diagnose
	s.Reconstruct += o.Reconstruct
	s.RecoveryMonitor += o.RecoveryMonitor
}

// Outcome is the mission-level classification the collector needs to
// build precision/recall inputs without re-deriving experiment context.
type Outcome struct {
	Success bool `json:"success"`
	Crashed bool `json:"crashed"`
	Stalled bool `json:"stalled"`
	// AttackMounted reports whether an SDA schedule was configured.
	AttackMounted bool `json:"attack_mounted"`
	// DiagnosedDuringAttack reports whether diagnosis implicated at least
	// one sensor while the attack was active.
	DiagnosedDuringAttack bool `json:"diagnosed_during_attack"`
}

// Mission is one mission's complete telemetry record: the event trace,
// the counters, the per-stage cost-model totals, and the outcome.
type Mission struct {
	Events   []Event  `json:"events"`
	Counters Counters `json:"counters"`
	Stages   StageNS  `json:"stages"`
	Outcome  Outcome  `json:"outcome"`
	// Ticks is the mission length in control periods.
	Ticks int `json:"ticks"`
	// DetectionLatencyTicks is attack onset → alert latch in ticks; -1
	// when no attack was mounted or the attack was never detected.
	DetectionLatencyTicks int `json:"detection_latency_ticks"`
}

// Recorder accumulates one mission's telemetry. A nil *Recorder is a
// valid no-op sink, so instrumented pipeline code needs no nil checks at
// the call sites.
type Recorder struct {
	m Mission
}

// NewRecorder returns an empty mission recorder.
func NewRecorder() *Recorder {
	return &Recorder{m: Mission{DetectionLatencyTicks: -1}}
}

// Event appends a raw event to the trace.
func (r *Recorder) Event(tick int, kind Kind, detail string) {
	if r == nil {
		return
	}
	r.m.Events = append(r.m.Events, Event{Tick: tick, Kind: kind, Detail: detail})
}

// AlertRaised records a detector alert latch edge.
func (r *Recorder) AlertRaised(tick int, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.AlertsRaised++
	r.Event(tick, KindAlertRaised, detail)
}

// AlertCleared records the alert unlatching without recovery.
func (r *Recorder) AlertCleared(tick int) {
	if r == nil {
		return
	}
	r.Event(tick, KindAlertCleared, "")
}

// AlertTick counts one control period with the alert latched.
func (r *Recorder) AlertTick() {
	if r == nil {
		return
	}
	r.m.Counters.AlertTicks++
}

// DiagnosisPass records one diagnosis inference pass as an event. masked
// marks an empty verdict (a masked detector false alarm).
func (r *Recorder) DiagnosisPass(tick int, masked bool, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.DiagnosisPasses++
	if masked {
		r.m.Counters.MaskedAlerts++
	}
	r.Event(tick, KindDiagnosis, detail)
}

// QuietDiagnosisPass counts a settling-window diagnosis re-check without
// emitting an event (the re-checks run every tick of the union window and
// would flood the trace).
func (r *Recorder) QuietDiagnosisPass() {
	if r == nil {
		return
	}
	r.m.Counters.DiagnosisPasses++
}

// Reconstruction records one checkpoint restore replaying the given
// number of records.
func (r *Recorder) Reconstruction(tick, records int) {
	if r == nil {
		return
	}
	r.m.Counters.Reconstructions++
	r.m.Counters.ReplayedRecords += records
	r.Event(tick, KindReconstruct, fmt.Sprintf("records=%d", records))
}

// RecoveryEngaged records a recovery-controller activation.
func (r *Recorder) RecoveryEngaged(tick int, detail string) {
	if r == nil {
		return
	}
	r.m.Counters.RecoveryEpisodes++
	r.Event(tick, KindRecoveryEngaged, detail)
}

// RecoveryTick counts one control period under the recovery controller.
func (r *Recorder) RecoveryTick() {
	if r == nil {
		return
	}
	r.m.Counters.RecoveryTicks++
}

// SensorReadmitted records an isolated sensor re-admitted by the
// re-validation loop.
func (r *Recorder) SensorReadmitted(tick int, sensor string) {
	if r == nil {
		return
	}
	r.m.Counters.SensorsReadmitted++
	r.Event(tick, KindSensorReadmitted, sensor)
}

// RecoveryExited records the hand-back to the nominal autopilot.
func (r *Recorder) RecoveryExited(tick int, detail string) {
	if r == nil {
		return
	}
	r.Event(tick, KindRecoveryExited, detail)
}

// SetDetectionLatency records the attack-onset→alert latency in ticks.
func (r *Recorder) SetDetectionLatency(ticks int) {
	if r == nil {
		return
	}
	r.m.DetectionLatencyTicks = ticks
}

// SetStages installs the mission's per-stage cost-model totals.
func (r *Recorder) SetStages(s StageNS) {
	if r == nil {
		return
	}
	r.m.Stages = s
}

// FinishMission closes the trace with the outcome.
func (r *Recorder) FinishMission(tick int, detail string, o Outcome) {
	if r == nil {
		return
	}
	r.m.Ticks = tick
	r.m.Outcome = o
	r.Event(tick, KindMissionEnd, detail)
}

// Mission returns the accumulated record. A nil recorder returns nil.
func (r *Recorder) Mission() *Mission {
	if r == nil {
		return nil
	}
	return &r.m
}
