package telemetry

import "fmt"

// merge folds another summary's extremes and partial sum into s. All
// fields except Sum merge exactly; Sum is a float partial sum, so its
// merged value is bit-identical to the monolithic accumulation only when
// at most one input has observations (float addition is not associative
// in general). Campaign sweeps never populate summaries — only the
// Table 6 recovery experiment calls ObserveRMSD — so the report merge
// below stays byte-exact for every report the campaign layer produces.
func (s *Summary) merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.N == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
}

// accumulate folds src's aggregates into dst: integer fields add, the
// latency histogram merges exactly (erroring on bucket-layout mismatch),
// and the RMSD summary merges via Summary.merge. Derived fields (Mean,
// CPUOverheadPercent) are left stale — finalize recomputes them — and
// FirstAttackedTrace is deliberately untouched: the totals entry never
// carries a trace, and the cross-shard merge selects one positionally.
func (dst *ExperimentReport) accumulate(src *ExperimentReport) error {
	dst.Jobs += src.Jobs
	dst.Succeeded += src.Succeeded
	dst.Crashed += src.Crashed
	dst.Stalled += src.Stalled
	dst.AttackedJobs += src.AttackedJobs
	dst.Ticks += src.Ticks
	dst.Events += src.Events
	dst.Counters.Add(src.Counters)
	dst.Stages.Add(src.Stages)
	dst.Detection.Detected += src.Detection.Detected
	dst.Detection.Undetected += src.Detection.Undetected
	if err := dst.Detection.LatencyTicks.Merge(src.Detection.LatencyTicks); err != nil {
		return fmt.Errorf("experiment %q: %w", src.Name, err)
	}
	dst.Diagnosis.TruePositives += src.Diagnosis.TruePositives
	dst.Diagnosis.FalseNegatives += src.Diagnosis.FalseNegatives
	dst.Diagnosis.FalsePositives += src.Diagnosis.FalsePositives
	dst.Diagnosis.TrueNegatives += src.Diagnosis.TrueNegatives
	dst.RecoveryRMSD.merge(src.RecoveryRMSD)
	return nil
}

// finalize recomputes the derived fields from the accumulated state.
func (e *ExperimentReport) finalize() {
	e.CPUOverheadPercent = 0
	if t := e.Stages.TotalNS(); t > 0 {
		e.CPUOverheadPercent = 100 * float64(e.Stages.DefenseNS()) / float64(t)
	}
	e.RecoveryRMSD.finish()
}

// MergeReports folds partial run reports — each covering a disjoint,
// submission-order-contiguous slice of one logical sweep — into the
// single report the whole sweep would have produced monolithically. This
// is the campaign layer's reduce: shards run independently, persist
// partial reports, and the study report is assembled here.
//
// Experiment groups merge by name, ordered by first appearance across
// the parts in the order given. Because shards are contiguous
// submission-order ranges and groups appear in Begin order within each
// shard, first-seen order across in-order parts equals the monolithic
// Begin order. Each group's FirstAttackedTrace is the first non-empty
// trace in part order — again the monolithic choice, since an earlier
// shard's attacked job precedes a later shard's in submission order.
// Totals are recomputed from the merged groups exactly as
// Collector.Report derives them, never taken from the parts.
//
// The merge is exact — associative and invariant to how the sweep was
// partitioned — because every aggregated field is integer-valued except
// Summary.Sum (see Summary.merge for the caveat) and the derived
// Mean/CPUOverheadPercent values, which are recomputed once from merged
// integer state rather than merged.
//
// Every part must carry the current ReportVersion; Meta is taken from
// the caller, since partial reports describe shards, not the study.
func MergeReports(meta Meta, parts ...*Report) (*Report, error) {
	rep := &Report{Version: ReportVersion, Meta: meta}
	order := []*ExperimentReport{}
	byName := map[string]*ExperimentReport{}
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("telemetry: merge part %d is nil", pi)
		}
		if p.Version != ReportVersion {
			return nil, fmt.Errorf("telemetry: merge part %d has report version %d, want %d", pi, p.Version, ReportVersion)
		}
		for i := range p.Experiments {
			src := &p.Experiments[i]
			g, ok := byName[src.Name]
			if !ok {
				g = &ExperimentReport{
					Name:      src.Name,
					Detection: DetectionStats{LatencyTicks: NewHistogram(DefaultLatencyBounds()...)},
				}
				byName[src.Name] = g
				order = append(order, g)
			}
			if err := g.accumulate(src); err != nil {
				return nil, fmt.Errorf("telemetry: merge part %d: %w", pi, err)
			}
			if len(g.FirstAttackedTrace) == 0 && len(src.FirstAttackedTrace) > 0 {
				g.FirstAttackedTrace = append([]Event(nil), src.FirstAttackedTrace...)
			}
		}
	}
	totals := ExperimentReport{
		Name:      "totals",
		Detection: DetectionStats{LatencyTicks: NewHistogram(DefaultLatencyBounds()...)},
	}
	for _, g := range order {
		if err := totals.accumulate(g); err != nil {
			return nil, fmt.Errorf("telemetry: merge totals: %w", err)
		}
		g.finalize()
		rep.Experiments = append(rep.Experiments, *g)
	}
	totals.finalize()
	rep.Totals = totals
	return rep, nil
}
