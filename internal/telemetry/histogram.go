package telemetry

import "fmt"

// Histogram is a fixed-bound integer histogram over tick-valued
// observations. Bounds are inclusive upper bucket edges in ascending
// order; one implicit overflow bucket catches values above the last
// bound. All state is integer, so Merge is exact and associative — the
// collector can fold per-mission histograms in any grouping and the
// result is byte-identical.
type Histogram struct {
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	N      int64   `json:"n"`
	Sum    int64   `json:"sum"`
	// Min and Max are the observed extremes; both zero when N == 0.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// NewHistogram builds a histogram with the given ascending inclusive
// upper bounds. It panics on unordered bounds — bucket layouts are
// compile-time choices, not data.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int64, len(bounds)+1)}
}

// DefaultLatencyBounds are the detection-latency bucket edges in ticks at
// the 100 Hz control rate: 0.1 s up to 32 s, then overflow.
func DefaultLatencyBounds() []int64 {
	return []int64{10, 25, 50, 100, 200, 400, 800, 1600, 3200}
}

// Observe adds one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Merge accumulates o into h. The bucket layouts must match; merging is
// exact and associative.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("telemetry: histogram bound count mismatch: %d vs %d", len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("telemetry: histogram bound mismatch at %d: %d vs %d", i, b, o.Bounds[i])
		}
	}
	if o.N == 0 {
		return nil
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.N == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
	return nil
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{
		Bounds: make([]int64, len(h.Bounds)),
		Counts: make([]int64, len(h.Counts)),
		N:      h.N, Sum: h.Sum, Min: h.Min, Max: h.Max,
	}
	copy(out.Bounds, h.Bounds)
	copy(out.Counts, h.Counts)
	return out
}
