package telemetry

import (
	"math"
	"reflect"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(10, 25)
	for _, v := range []int64{0, 10, 11, 25, 26, 1000} {
		h.Observe(v)
	}
	// Upper edges are inclusive: 10 → bucket 0, 25 → bucket 1, >25 →
	// overflow.
	want := []int64{2, 2, 2}
	if !reflect.DeepEqual(h.Counts, want) {
		t.Errorf("Counts = %v, want %v", h.Counts, want)
	}
	if h.N != 6 || h.Min != 0 || h.Max != 1000 {
		t.Errorf("N/Min/Max = %d/%d/%d, want 6/0/1000", h.N, h.Min, h.Max)
	}
	if h.Sum != 0+10+11+25+26+1000 {
		t.Errorf("Sum = %d", h.Sum)
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	fill := func(vals ...int64) *Histogram {
		h := NewHistogram(DefaultLatencyBounds()...)
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := fill(1, 7, 40, 3200, 9000)
	b := fill(25, 26, 100)
	c := fill(0, 0, 801, 12)

	// (a ⊕ b) ⊕ c
	left := a.Clone()
	if err := left.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	// a ⊕ (b ⊕ c)
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := a.Clone()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge is not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
}

func TestHistogramMergeBoundMismatch(t *testing.T) {
	a := NewHistogram(10, 20)
	b := NewHistogram(10, 30)
	if err := a.Merge(b); err == nil {
		t.Error("merging histograms with different bounds should error")
	}
	c := NewHistogram(10)
	if err := a.Merge(c); err == nil {
		t.Error("merging histograms with different bound counts should error")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	if got := h.Mean(); math.Abs(got) > 1e-15 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	h.Observe(10)
	h.Observe(20)
	if got := h.Mean(); math.Abs(got-15) > 1e-12 {
		t.Errorf("mean = %v, want 15", got)
	}
}

func TestHistogramCloneIsIndependent(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(5)
	c := h.Clone()
	c.Observe(20)
	if h.N != 1 || c.N != 2 {
		t.Errorf("clone shares state: h.N=%d c.N=%d", h.N, c.N)
	}
	if h.Counts[1] != 0 {
		t.Error("clone mutation leaked into the original's buckets")
	}
}

func TestNewHistogramPanicsOnNonAscendingBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(20, 10) should panic")
		}
	}()
	NewHistogram(20, 10)
}
