package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestNilRecorderIsNoOp exercises every Recorder method on a nil receiver:
// instrumented pipeline code must be able to run with telemetry off.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Event(1, KindAlertRaised, "x")
	r.AlertRaised(1, "cusum:x")
	r.AlertCleared(2)
	r.AlertTick()
	r.DiagnosisPass(3, true, "")
	r.QuietDiagnosisPass()
	r.Reconstruction(4, 100)
	r.RecoveryEngaged(5, "DeLorean/lqr")
	r.RecoveryTick()
	r.SensorReadmitted(6, "GPS")
	r.RecoveryExited(7, "")
	r.SetDetectionLatency(12)
	r.SetStages(StageNS{BaseLoop: 1})
	r.FinishMission(8, "completed", Outcome{Success: true})
	if r.Mission() != nil {
		t.Error("nil recorder should yield a nil mission")
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	r.AlertRaised(100, "inst:x")
	r.AlertTick()
	r.AlertTick()
	r.DiagnosisPass(101, false, "GPS:p=0.900(malicious)")
	r.QuietDiagnosisPass()
	r.Reconstruction(101, 1500)
	r.RecoveryEngaged(101, "DeLorean/lqr isolated={GPS}")
	r.RecoveryTick()
	r.SensorReadmitted(300, "GPS")
	r.RecoveryExited(320, "was-isolated={GPS}")
	r.SetDetectionLatency(12)
	r.SetStages(StageNS{BaseLoop: 10, Shadow: 2})
	r.FinishMission(5000, "completed", Outcome{Success: true, AttackMounted: true})

	m := r.Mission()
	want := Counters{
		AlertsRaised: 1, AlertTicks: 2,
		DiagnosisPasses: 2, Reconstructions: 1, ReplayedRecords: 1500,
		RecoveryEpisodes: 1, RecoveryTicks: 1, SensorsReadmitted: 1,
	}
	if m.Counters != want {
		t.Errorf("Counters = %+v, want %+v", m.Counters, want)
	}
	if m.DetectionLatencyTicks != 12 {
		t.Errorf("DetectionLatencyTicks = %d, want 12", m.DetectionLatencyTicks)
	}
	if m.Ticks != 5000 || !m.Outcome.Success || !m.Outcome.AttackMounted {
		t.Errorf("mission close state wrong: %+v", m)
	}
	// Event trace: raised, diagnosis, reconstruct, engaged, readmitted,
	// exited, mission end — quiet passes and per-tick counters emit none.
	kinds := []Kind{
		KindAlertRaised, KindDiagnosis, KindReconstruct, KindRecoveryEngaged,
		KindSensorReadmitted, KindRecoveryExited, KindMissionEnd,
	}
	if len(m.Events) != len(kinds) {
		t.Fatalf("got %d events, want %d: %+v", len(m.Events), len(kinds), m.Events)
	}
	for i, k := range kinds {
		if m.Events[i].Kind != k {
			t.Errorf("event %d kind = %s, want %s", i, m.Events[i].Kind, k)
		}
	}
}

func TestNewRecorderMarksUndetected(t *testing.T) {
	r := NewRecorder()
	if got := r.Mission().DetectionLatencyTicks; got != -1 {
		t.Errorf("fresh recorder latency = %d, want -1 (undetected)", got)
	}
}

// attackedMission builds a detected, diagnosed, recovered attack mission.
func attackedMission(latency int) *Mission {
	r := NewRecorder()
	r.AlertRaised(50, "cusum:x")
	r.DiagnosisPass(51, false, "GPS")
	r.RecoveryEngaged(51, "DeLorean/lqr isolated={GPS}")
	r.SetDetectionLatency(latency)
	r.FinishMission(1000, "completed", Outcome{
		Success: true, AttackMounted: true, DiagnosedDuringAttack: true,
	})
	return r.Mission()
}

func TestCollectorClassification(t *testing.T) {
	c := NewCollector()
	c.Begin("exp")
	c.Add(attackedMission(12))
	// Attacked but never detected nor diagnosed.
	und := NewRecorder()
	und.FinishMission(1000, "completed", Outcome{Success: true, AttackMounted: true})
	c.Add(und.Mission())
	// Clean mission with a gratuitous recovery: diagnosis FP.
	fp := NewRecorder()
	fp.RecoveryEngaged(10, "DeLorean/autopilot isolated={gyroscope}")
	fp.FinishMission(900, "completed", Outcome{Success: true})
	c.Add(fp.Mission())
	// Clean, quiet mission: TN.
	tn := NewRecorder()
	tn.FinishMission(800, "completed", Outcome{Success: true})
	c.Add(tn.Mission())

	rep, err := c.Report(Meta{Generator: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiment groups, want 1", len(rep.Experiments))
	}
	e := rep.Experiments[0]
	if e.Jobs != 4 || e.AttackedJobs != 2 {
		t.Errorf("jobs/attacked = %d/%d, want 4/2", e.Jobs, e.AttackedJobs)
	}
	if e.Detection.Detected != 1 || e.Detection.Undetected != 1 {
		t.Errorf("detection = %+v", e.Detection)
	}
	if e.Detection.LatencyTicks.N != 1 || e.Detection.LatencyTicks.Sum != 12 {
		t.Errorf("latency histogram = %+v", e.Detection.LatencyTicks)
	}
	d := e.Diagnosis
	if d.TruePositives != 1 || d.FalseNegatives != 1 || d.FalsePositives != 1 || d.TrueNegatives != 1 {
		t.Errorf("diagnosis stats = %+v", d)
	}
	if len(e.FirstAttackedTrace) == 0 {
		t.Error("first attacked trace not captured")
	}
	if e.FirstAttackedTrace[0].Kind != KindAlertRaised {
		t.Errorf("trace starts with %s, want alert_raised", e.FirstAttackedTrace[0].Kind)
	}
	if rep.Totals.Jobs != 4 {
		t.Errorf("totals jobs = %d, want 4", rep.Totals.Jobs)
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Begin("x")
	c.Add(attackedMission(5))
	c.ObserveRMSD(1.5)
	rep, err := c.Report(Meta{Generator: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != ReportVersion || len(rep.Experiments) != 0 {
		t.Errorf("nil collector report = %+v", rep)
	}
}

// TestReportJSONStable renders the same collector twice: the bytes must
// match exactly (Report snapshots; WriteJSON is deterministic).
func TestReportJSONStable(t *testing.T) {
	c := NewCollector()
	c.Begin("a")
	c.Add(attackedMission(7))
	c.ObserveRMSD(0.25)
	c.Begin("b")
	c.Add(attackedMission(90))

	render := func() []byte {
		rep, err := c.Report(Meta{Generator: "test", Missions: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Error("report JSON differs across renders of the same collector")
	}
	if !bytes.Contains(first, []byte(`"version": 1`)) {
		t.Error("report JSON missing version field")
	}
}

// TestWriteNDJSONMatchesWriteJSON pins the framing equivalence the
// mission service relies on: the single NDJSON line is exactly the
// indented report with its whitespace compacted — same tokens, same
// number rendering.
func TestWriteNDJSONMatchesWriteJSON(t *testing.T) {
	c := NewCollector()
	c.Begin("a")
	c.Add(attackedMission(7))
	rep, err := c.Report(Meta{Generator: "test", Missions: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var indented, line bytes.Buffer
	if err := rep.WriteJSON(&indented); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteNDJSON(&line); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(line.Bytes(), []byte("\n")); n != 1 || !bytes.HasSuffix(line.Bytes(), []byte("\n")) {
		t.Fatalf("NDJSON framing: %d newlines, want exactly one, trailing", n)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, indented.Bytes()); err != nil {
		t.Fatal(err)
	}
	compacted.WriteByte('\n')
	if !bytes.Equal(line.Bytes(), compacted.Bytes()) {
		t.Error("WriteNDJSON differs from compacted WriteJSON bytes")
	}
}
