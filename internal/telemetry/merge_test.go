package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// mergeMission builds the i-th mission of a deterministic synthetic
// sweep covering every classification branch: detected attacks,
// undetected attacks, gratuitous recoveries, and quiet clean missions.
func mergeMission(i int) *Mission {
	r := NewRecorder()
	r.SetStages(StageNS{BaseLoop: int64(1000 + 13*i), Shadow: int64(10 * i)})
	switch i % 4 {
	case 0: // detected, diagnosed, recovered attack
		r.AlertRaised(50+i, "cusum:x")
		r.DiagnosisPass(51+i, false, "GPS")
		r.RecoveryEngaged(52+i, "DeLorean/lqr isolated={GPS}")
		r.SetDetectionLatency(10 + 7*i)
		r.FinishMission(1000+i, "completed", Outcome{
			Success: true, AttackMounted: true, DiagnosedDuringAttack: true,
		})
	case 1: // clean, quiet
		r.FinishMission(900+i, "completed", Outcome{Success: true})
	case 2: // attacked, never detected, crashed
		r.FinishMission(400+i, "crashed", Outcome{Crashed: true, AttackMounted: true})
	default: // clean with a gratuitous recovery: diagnosis FP
		r.RecoveryEngaged(10+i, "DeLorean/autopilot isolated={gyroscope}")
		r.FinishMission(800+i, "completed", Outcome{Success: true})
	}
	return r.Mission()
}

// mergeGroup assigns mission i its experiment group; the boundary sits
// mid-sweep so shard cuts land both inside and across groups.
func mergeGroup(i int) string {
	if i < 7 {
		return "alpha"
	}
	return "beta"
}

// collectRange folds missions [lo, hi) into a fresh collector exactly as
// a campaign shard does: Begin per job (repeat Begins reuse the group),
// Add in submission order.
func collectRange(t *testing.T, lo, hi int) *Report {
	t.Helper()
	c := NewCollector()
	for i := lo; i < hi; i++ {
		c.Begin(mergeGroup(i))
		c.Add(mergeMission(i))
		// Exactly-representable values keep float sums associative, so
		// the sharded RMSD path can be byte-compared too.
		c.ObserveRMSD(float64(i) * 0.25)
	}
	rep, err := c.Report(Meta{Generator: "shard"})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// roundTrip pushes a report through its JSON encoding, as campaign
// checkpoints do between a shard run and the final merge.
func roundTrip(t *testing.T, rep *Report) *Report {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	out := &Report{}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func renderJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeReportsSplitEqualsMonolithic is the campaign layer's core
// guarantee: partition a sweep at any contiguous cut points, aggregate
// each slice independently, persist the partials through JSON, merge —
// the bytes equal the monolithic report's, for every partitioning.
func TestMergeReportsSplitEqualsMonolithic(t *testing.T) {
	const n = 12
	meta := Meta{Generator: "merged", Missions: n, Seed: 42}
	mono := collectRange(t, 0, n)
	mono.Meta = meta
	want := renderJSON(t, mono)

	splits := [][]int{
		{n},                                     // one shard: merge of a single part
		{6, n},                                  // two halves
		{3, 6, 9, n},                            // four shards
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, n}, // shard per mission
		{7, n},                                  // cut exactly on the group boundary
		{2, 11, n},                              // uneven shards
	}
	for _, cuts := range splits {
		parts := make([]*Report, 0, len(cuts))
		lo := 0
		for _, hi := range cuts {
			parts = append(parts, roundTrip(t, collectRange(t, lo, hi)))
			lo = hi
		}
		merged, err := MergeReports(meta, parts...)
		if err != nil {
			t.Fatalf("cuts %v: %v", cuts, err)
		}
		if got := renderJSON(t, merged); !bytes.Equal(got, want) {
			t.Errorf("cuts %v: merged report differs from monolithic bytes", cuts)
		}
	}
}

// TestMergeReportsAssociativity: merging partials in any grouping yields
// the same bytes, as long as submission order is preserved.
func TestMergeReportsAssociativity(t *testing.T) {
	meta := Meta{Generator: "merged"}
	a := collectRange(t, 0, 4)
	b := collectRange(t, 4, 8)
	c := collectRange(t, 8, 12)

	flat, err := MergeReports(meta, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := MergeReports(Meta{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, err := MergeReports(meta, ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := MergeReports(Meta{}, b, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := MergeReports(meta, a, bc)
	if err != nil {
		t.Fatal(err)
	}
	want := renderJSON(t, flat)
	if !bytes.Equal(renderJSON(t, left), want) {
		t.Error("left-grouped merge differs from flat merge")
	}
	if !bytes.Equal(renderJSON(t, right), want) {
		t.Error("right-grouped merge differs from flat merge")
	}
}

// TestMergeReportsFirstTraceFromEarliestPart: the merged group's example
// trace is the earliest part's, matching the monolithic first-attacked
// choice.
func TestMergeReportsFirstTraceFromEarliestPart(t *testing.T) {
	// Missions 0 and 4 are both attacked (i%4 == 0); with a cut at 2 the
	// trace must come from mission 0 in the first part.
	a := collectRange(t, 0, 2)
	b := collectRange(t, 2, 6)
	merged, err := MergeReports(Meta{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Experiments) == 0 {
		t.Fatal("no experiment groups after merge")
	}
	g := merged.Experiments[0]
	if len(g.FirstAttackedTrace) == 0 {
		t.Fatal("merged group lost its first-attacked trace")
	}
	wantFirst := a.Experiments[0].FirstAttackedTrace[0]
	if g.FirstAttackedTrace[0] != wantFirst {
		t.Errorf("merged trace starts at %+v, want the first part's %+v", g.FirstAttackedTrace[0], wantFirst)
	}
}

// TestMergeReportsRejectsBadParts: nil parts and version-mismatched
// parts fail loudly rather than producing a silently wrong study report.
func TestMergeReportsRejectsBadParts(t *testing.T) {
	good := collectRange(t, 0, 2)
	if _, err := MergeReports(Meta{}, good, nil); err == nil {
		t.Error("nil part did not error")
	}
	stale := collectRange(t, 0, 2)
	stale.Version = ReportVersion + 1
	if _, err := MergeReports(Meta{}, good, stale); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch error = %v", err)
	}
}

// TestMergeReportsEmpty: merging nothing yields a valid empty report.
func TestMergeReportsEmpty(t *testing.T) {
	rep, err := MergeReports(Meta{Generator: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != ReportVersion || len(rep.Experiments) != 0 || rep.Totals.Jobs != 0 {
		t.Errorf("empty merge = %+v", rep)
	}
}
