package telemetry

import (
	"encoding/json"
	"io"
)

// ReportVersion is the run-report schema version. Bump it on any change
// to the report's field set or semantics; CI diffs reports across
// commits, and an unversioned shape change would read as experiment
// drift.
const ReportVersion = 1

// Meta carries the run parameters stamped into a report. Wall-clock
// timestamps and worker counts are deliberately absent: a report must be
// byte-identical for a given (seed, missions, wind) at any parallelism.
type Meta struct {
	Generator string  `json:"generator"`
	Missions  int     `json:"missions"`
	Seed      int64   `json:"seed"`
	Wind      float64 `json:"wind"`
}

// Report is the versioned machine-readable run report: one entry per
// experiment in execution order, plus the cross-experiment totals.
type Report struct {
	Version     int                `json:"version"`
	Meta        Meta               `json:"meta"`
	Experiments []ExperimentReport `json:"experiments"`
	Totals      ExperimentReport   `json:"totals"`
}

// ExperimentReport aggregates one experiment's jobs in submission order.
type ExperimentReport struct {
	Name string `json:"name"`
	// Jobs counts the missions aggregated into this entry.
	Jobs      int `json:"jobs"`
	Succeeded int `json:"succeeded"`
	Crashed   int `json:"crashed"`
	Stalled   int `json:"stalled"`
	// AttackedJobs counts jobs with an SDA schedule mounted.
	AttackedJobs int `json:"attacked_jobs"`
	// Ticks totals simulated control periods across the jobs.
	Ticks int64 `json:"ticks"`
	// Events totals trace events across the jobs.
	Events int `json:"events"`

	Detection DetectionStats `json:"detection"`
	Diagnosis DiagnosisStats `json:"diagnosis"`
	// RecoveryRMSD summarizes the attitude RMSD values experiments report
	// for recovery-activated missions (Eq. 5).
	RecoveryRMSD Summary `json:"recovery_rmsd"`

	Counters Counters `json:"counters"`
	Stages   StageNS  `json:"stages"`
	// CPUOverheadPercent is the cost model's defense share of the total
	// modeled loop time (Table 3).
	CPUOverheadPercent float64 `json:"cpu_overhead_percent"`

	// FirstAttackedTrace is the event trace of the first attacked job in
	// submission order — one concrete detect→diagnose→recover timeline
	// per experiment, bounded regardless of scale.
	FirstAttackedTrace []Event `json:"first_attacked_trace,omitempty"`
}

// DetectionStats aggregates detection latency over attacked jobs.
type DetectionStats struct {
	Detected   int `json:"detected"`
	Undetected int `json:"undetected"`
	// LatencyTicks is the onset→alert latency distribution in simulation
	// ticks.
	LatencyTicks *Histogram `json:"latency_ticks"`
}

// DiagnosisStats are the precision/recall inputs of the diagnosis stage,
// classified per mission.
type DiagnosisStats struct {
	// TruePositives: attack mounted and diagnosis implicated sensors
	// while it was active.
	TruePositives int `json:"true_positives"`
	// FalseNegatives: attack mounted but never diagnosed during the
	// attack.
	FalseNegatives int `json:"false_negatives"`
	// FalsePositives: no attack, yet recovery engaged (a gratuitous
	// activation).
	FalsePositives int `json:"false_positives"`
	// TrueNegatives: no attack and no recovery activation.
	TrueNegatives int `json:"true_negatives"`
}

// Summary is an order-stable scalar aggregate (values are accumulated in
// submission order, so the float sums are bit-reproducible).
type Summary struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
}

// observe folds one value into the summary.
func (s *Summary) observe(v float64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += v
}

// finish computes the derived fields.
func (s *Summary) finish() {
	if s.N > 0 {
		s.Mean = s.Sum / float64(s.N)
	}
}

// WriteJSON renders the report as indented JSON with a trailing newline.
// encoding/json emits struct fields in declaration order and shortest
// float representations, so the bytes are stable for identical contents.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// WriteNDJSON renders the report as a single compact line with a
// trailing newline — the framing the mission service streams as the
// final record of a result stream. The bytes are exactly WriteJSON's
// with the indentation removed (json.Compact of one equals json.Marshal
// of the other), so a streamed report and a written report file pin the
// same content.
func (r *Report) WriteNDJSON(w io.Writer) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
