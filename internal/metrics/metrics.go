// Package metrics implements the paper's evaluation metrics (§5.2,
// Appendix A.5): recovery-stability RMSD over the RV's attitude (Eq. 5),
// normalized RMSD (Eq. 13), percentage mission delay against a min-max
// baseline completion time (Eq. 6/14), and aggregate success/crash rates.
package metrics

import (
	"math"

	"repro/internal/vehicle"
)

// AttitudeRMSD computes the Root Mean Square Deviation between a
// recovery-activated mission's attitude series and the attack-free ground
// truth on the same trajectory (Eq. 5), element-wise over roll, pitch, and
// yaw with angular wrapping, over the overlapping prefix of the two
// series.
func AttitudeRMSD(recovered, groundTruth [][3]float64) float64 {
	n := len(recovered)
	if len(groundTruth) < n {
		n = len(groundTruth)
	}
	if n == 0 {
		return 0
	}
	var ss float64
	for i := 0; i < n; i++ {
		for axis := 0; axis < 3; axis++ {
			d := vehicle.WrapAngle(recovered[i][axis] - groundTruth[i][axis])
			ss += d * d
		}
	}
	return math.Sqrt(ss / float64(3*n))
}

// NormalizeRMSD maps an RMSD value into [0, 1] relative to the minimum
// and maximum RMSD observed across recovery-activated missions (Eq. 13).
// A degenerate range returns 0.
func NormalizeRMSD(rmsd, minRMSD, maxRMSD float64) float64 {
	if maxRMSD <= minRMSD {
		return 0
	}
	v := (rmsd - minRMSD) / (maxRMSD - minRMSD)
	return vehicle.Clamp(v, 0, 1)
}

// BaselineTime is the Eq. 14 min-max baseline mission completion time.
func BaselineTime(tMin, tMax float64) float64 {
	return (tMin + tMax) / 2
}

// PercentMissionDelay is the Eq. 6 percentage mission delay of a
// recovery-activated mission against the attack-free ground truth,
// normalized by the baseline completion time. A non-positive baseline
// returns 0.
func PercentMissionDelay(tRecovery, tGroundTruth, tBaseline float64) float64 {
	if tBaseline <= 0 {
		return 0
	}
	return (tRecovery - tGroundTruth) / tBaseline * 100
}

// Rate returns 100·hits/total as a percentage, 0 for an empty total.
func Rate(hits, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}

// MinMax returns the smallest and largest value of xs; (0, 0) for an
// empty slice.
func MinMax(xs []float64) (minV, maxV float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV
}
