package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttitudeRMSDIdentical(t *testing.T) {
	series := [][3]float64{{0.1, 0.2, 0.3}, {0.2, 0.1, 0.0}}
	if got := AttitudeRMSD(series, series); got != 0 {
		t.Errorf("RMSD of identical series = %v, want 0", got)
	}
}

func TestAttitudeRMSDKnownValue(t *testing.T) {
	a := [][3]float64{{0.1, 0, 0}}
	b := [][3]float64{{0, 0, 0}}
	want := math.Sqrt(0.1 * 0.1 / 3)
	if got := AttitudeRMSD(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSD = %v, want %v", got, want)
	}
}

func TestAttitudeRMSDWrapsYaw(t *testing.T) {
	a := [][3]float64{{0, 0, math.Pi - 0.01}}
	b := [][3]float64{{0, 0, -math.Pi + 0.01}}
	if got := AttitudeRMSD(a, b); got > 0.05 {
		t.Errorf("RMSD across the wrap = %v, want ≈ 0.0115", got)
	}
}

func TestAttitudeRMSDDifferentLengths(t *testing.T) {
	a := [][3]float64{{0.1, 0, 0}, {0.1, 0, 0}, {9, 9, 9}}
	b := [][3]float64{{0, 0, 0}, {0, 0, 0}}
	// Only the overlapping prefix counts; the wild third sample of a is
	// ignored.
	want := math.Sqrt(0.01 / 3)
	if got := AttitudeRMSD(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSD = %v, want %v", got, want)
	}
}

func TestAttitudeRMSDEmpty(t *testing.T) {
	if got := AttitudeRMSD(nil, nil); got != 0 {
		t.Errorf("empty RMSD = %v", got)
	}
}

func TestNormalizeRMSD(t *testing.T) {
	tests := []struct {
		name             string
		rmsd, minV, maxV float64
		want             float64
	}{
		{name: "min", rmsd: 1, minV: 1, maxV: 3, want: 0},
		{name: "max", rmsd: 3, minV: 1, maxV: 3, want: 1},
		{name: "mid", rmsd: 2, minV: 1, maxV: 3, want: 0.5},
		{name: "degenerate", rmsd: 2, minV: 2, maxV: 2, want: 0},
		{name: "below clamps", rmsd: 0, minV: 1, maxV: 3, want: 0},
		{name: "above clamps", rmsd: 9, minV: 1, maxV: 3, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizeRMSD(tt.rmsd, tt.minV, tt.maxV); got != tt.want {
				t.Errorf("NormalizeRMSD = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBaselineTime(t *testing.T) {
	if got := BaselineTime(40, 60); got != 50 {
		t.Errorf("BaselineTime = %v, want 50", got)
	}
}

func TestPercentMissionDelay(t *testing.T) {
	// Recovery mission took 60 s, ground truth 50 s, baseline 50 s → 20%.
	if got := PercentMissionDelay(60, 50, 50); got != 20 {
		t.Errorf("PMD = %v, want 20", got)
	}
	if got := PercentMissionDelay(60, 50, 0); got != 0 {
		t.Errorf("PMD with zero baseline = %v, want 0", got)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(3, 4); got != 75 {
		t.Errorf("Rate = %v, want 75", got)
	}
	if got := Rate(1, 0); got != 0 {
		t.Errorf("Rate with zero total = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1})
	if lo != -1 || hi != 4 {
		t.Errorf("MinMax = (%v, %v)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = (%v, %v)", lo, hi)
	}
}

// Property: RMSD is symmetric and non-negative.
func TestPropertyRMSDSymmetricNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := make([][3]float64, n)
		b := make([][3]float64, n)
		for i := range a {
			for j := 0; j < 3; j++ {
				a[i][j] = rng.NormFloat64()
				b[i][j] = rng.NormFloat64()
			}
		}
		ab := AttitudeRMSD(a, b)
		ba := AttitudeRMSD(b, a)
		return ab >= 0 && math.Abs(ab-ba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: normalized RMSD always lands in [0, 1].
func TestPropertyNormalizeBounded(t *testing.T) {
	f := func(r, lo, hi float64) bool {
		// Constrain to a physical magnitude range; astronomically large
		// inputs overflow the subtraction and are not meaningful RMSDs.
		r = math.Mod(math.Abs(r), 1e6)
		lo = math.Mod(lo, 1e6)
		hi = math.Mod(hi, 1e6)
		v := NormalizeRMSD(r, lo, hi)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAttitudeRMSDOneSideEmpty(t *testing.T) {
	a := [][3]float64{{0.1, 0, 0}}
	if got := AttitudeRMSD(a, nil); got != 0 {
		t.Errorf("RMSD(a, nil) = %v, want 0 (no overlap)", got)
	}
	if got := AttitudeRMSD(nil, a); got != 0 {
		t.Errorf("RMSD(nil, a) = %v, want 0 (no overlap)", got)
	}
}
