package vehicle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testQuad() Quadcopter {
	return MustProfile(Pixhawk).Quad
}

func TestQuadHoverEquilibrium(t *testing.T) {
	q := testQuad()
	s := State{Z: 10}
	u := Input{Thrust: q.HoverThrust()}
	for i := 0; i < 1000; i++ {
		s = q.Step(s, u, Wind{}, 0.005)
	}
	if math.Abs(s.Z-10) > 1e-6 {
		t.Errorf("hover drifted: z = %v", s.Z)
	}
	if s.Speed() > 1e-9 {
		t.Errorf("hover gained speed: %v", s.Speed())
	}
}

func TestQuadFreeFall(t *testing.T) {
	q := testQuad()
	s := State{Z: 100}
	var elapsed float64
	for i := 0; i < 200; i++ {
		s = q.Step(s, Input{}, Wind{}, 0.005)
		elapsed += 0.005
	}
	// With drag, fall distance is slightly less than ½gt² but must be close
	// for the first second.
	want := 0.5 * Gravity * elapsed * elapsed
	fell := 100 - s.Z
	if fell <= 0.8*want || fell > want {
		t.Errorf("free fall after %vs fell %vm, want ≈ %v", elapsed, fell, want)
	}
}

func TestQuadThrustClimbs(t *testing.T) {
	q := testQuad()
	s := State{Z: 5}
	u := Input{Thrust: 1.3 * q.HoverThrust()}
	for i := 0; i < 400; i++ {
		s = q.Step(s, u, Wind{}, 0.005)
	}
	if s.Z <= 5 {
		t.Errorf("excess thrust did not climb: z = %v", s.Z)
	}
	if s.VZ <= 0 {
		t.Errorf("vz = %v, want > 0", s.VZ)
	}
}

func TestQuadPitchProducesForwardMotion(t *testing.T) {
	q := testQuad()
	// Pitch forward slightly, compensate thrust to roughly hold altitude.
	s := State{Z: 10, Pitch: 0.1}
	u := Input{Thrust: q.HoverThrust() / math.Cos(0.1)}
	for i := 0; i < 400; i++ {
		s = q.Step(s, u, Wind{}, 0.005)
	}
	if s.X <= 0 {
		t.Errorf("pitched drone did not move forward: x = %v", s.X)
	}
}

func TestQuadGroundClamp(t *testing.T) {
	q := testQuad()
	s := State{Z: 0.01, VZ: -5}
	s = q.Step(s, Input{}, Wind{}, 0.05)
	if s.Z < 0 {
		t.Errorf("state went below ground: z = %v", s.Z)
	}
	if s.VZ < 0 {
		t.Errorf("downward velocity retained on ground: vz = %v", s.VZ)
	}
}

func TestQuadWindPushes(t *testing.T) {
	q := testQuad()
	s := State{Z: 10}
	u := Input{Thrust: q.HoverThrust()}
	w := Wind{VX: 8}
	for i := 0; i < 1000; i++ {
		s = q.Step(s, u, w, 0.005)
	}
	if s.X <= 0.1 {
		t.Errorf("wind did not push drone: x = %v", s.X)
	}
}

func TestQuadYawMoment(t *testing.T) {
	q := testQuad()
	s := State{Z: 10}
	u := Input{Thrust: q.HoverThrust(), MYaw: 0.01}
	for i := 0; i < 200; i++ {
		s = q.Step(s, u, Wind{}, 0.005)
	}
	if s.WYaw <= 0 {
		t.Errorf("yaw moment produced no yaw rate: %v", s.WYaw)
	}
}

func TestStateVecRoundTrip(t *testing.T) {
	s := State{X: 1, Y: 2, Z: 3, VX: 4, VY: 5, VZ: 6, Roll: 0.1, Pitch: 0.2, Yaw: 0.3, WRoll: 0.4, WPitch: 0.5, WYaw: 0.6}
	got := StateFromVec(s.Vec())
	if got != s {
		t.Errorf("round trip: got %+v, want %+v", got, s)
	}
}

func TestWrapAngle(t *testing.T) {
	tests := []struct {
		give, want float64
	}{
		{give: 0, want: 0},
		{give: math.Pi / 2, want: math.Pi / 2},
		{give: 3 * math.Pi, want: math.Pi},
		{give: -3 * math.Pi, want: math.Pi},
		{give: 2 * math.Pi, want: 0},
	}
	for _, tt := range tests {
		if got := WrapAngle(tt.give); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("WrapAngle(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRoverStraightLine(t *testing.T) {
	r := MustProfile(AionR1).Rover
	s := State{VX: 2} // heading yaw=0, moving +x
	for i := 0; i < 200; i++ {
		s = r.Step(s, Input{Thrust: r.DragCoef * 2}, Wind{}, 0.01)
	}
	if s.X <= 1 {
		t.Errorf("rover did not advance: x = %v", s.X)
	}
	if math.Abs(s.Y) > 0.01 {
		t.Errorf("rover drifted sideways: y = %v", s.Y)
	}
}

func TestRoverTurns(t *testing.T) {
	r := MustProfile(AionR1).Rover
	s := State{VX: 2}
	u := Input{Thrust: r.DragCoef * 2, MYaw: 0.3}
	for i := 0; i < 300; i++ {
		s = r.Step(s, u, Wind{}, 0.01)
	}
	if math.Abs(s.Yaw) < 0.1 {
		t.Errorf("steering produced no yaw: %v", s.Yaw)
	}
	if math.Abs(s.Y) < 0.1 {
		t.Errorf("turning rover stayed on axis: y = %v", s.Y)
	}
}

func TestRoverSpeedLimit(t *testing.T) {
	r := MustProfile(AionR1).Rover
	s := State{}
	u := Input{Thrust: 100}
	for i := 0; i < 500; i++ {
		s = r.Step(s, u, Wind{}, 0.01)
	}
	if s.Speed2D() > r.MaxSpeed+1e-9 {
		t.Errorf("speed %v exceeds limit %v", s.Speed2D(), r.MaxSpeed)
	}
}

func TestRoverSteeringClamp(t *testing.T) {
	r := MustProfile(AionR1).Rover
	d1 := r.Derivative(State{VX: 2}, Input{MYaw: 10}, Wind{})
	d2 := r.Derivative(State{VX: 2}, Input{MYaw: r.MaxSteer}, Wind{})
	if math.Abs(d1.Yaw-d2.Yaw) > 1e-12 {
		t.Errorf("steering not clamped: %v vs %v", d1.Yaw, d2.Yaw)
	}
}

func TestRoverZeroesAltitudeChannels(t *testing.T) {
	r := MustProfile(AionR1).Rover
	s := State{Z: 5, VZ: 1, Roll: 0.2, VX: 1}
	s = r.Step(s, Input{}, Wind{}, 0.01)
	if s.Z != 0 || s.VZ != 0 || s.Roll != 0 {
		t.Errorf("rover retained altitude channels: %+v", s)
	}
}

func TestProfilesTable2SensorCounts(t *testing.T) {
	// Table 2 exact sensor counts.
	tests := []struct {
		name ProfileName
		want SensorCounts
	}{
		{name: Pixhawk, want: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 1}},
		{name: Tarot, want: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 2}},
		{name: SkyViper, want: SensorCounts{GPS: 1, Gyro: 1, Accel: 1, Mag: 1, Baro: 1}},
		{name: AionR1, want: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 1}},
		{name: ArduCopter, want: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 1, Baro: 1}},
		{name: ArduRover, want: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 1, Baro: 1}},
	}
	for _, tt := range tests {
		t.Run(string(tt.name), func(t *testing.T) {
			p := MustProfile(tt.name)
			if p.Counts != tt.want {
				t.Errorf("counts = %+v, want %+v", p.Counts, tt.want)
			}
		})
	}
}

func TestLookupProfileUnknown(t *testing.T) {
	if _, err := LookupProfile("NoSuchRV"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestProfileKinds(t *testing.T) {
	for _, name := range AllRVs() {
		p := MustProfile(name)
		switch p.Kind {
		case KindQuadcopter:
			if p.Quad.Mass <= 0 {
				t.Errorf("%s: quad mass %v", name, p.Quad.Mass)
			}
		case KindRover:
			if p.Rover.LF <= 0 || p.Rover.LR <= 0 {
				t.Errorf("%s: rover geometry %+v", name, p.Rover)
			}
		default:
			t.Errorf("%s: bad kind %v", name, p.Kind)
		}
	}
}

func TestRealAndSimulatedPartition(t *testing.T) {
	if got := len(RealRVs()); got != 4 {
		t.Errorf("RealRVs = %d, want 4", got)
	}
	if got := len(SimulatedRVs()); got != 2 {
		t.Errorf("SimulatedRVs = %d, want 2", got)
	}
	if got := len(AllRVs()); got != 6 {
		t.Errorf("AllRVs = %d, want 6", got)
	}
}

// Property: energy-like sanity — under zero input and no wind, a quad's
// speed never increases (drag + gravity only decelerate horizontal motion;
// vertical speeds grow, so check horizontal only).
func TestPropertyQuadDragDecaysHorizontalSpeed(t *testing.T) {
	q := testQuad()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := State{Z: 50, VX: r.Float64() * 10, VY: r.Float64() * 10}
		prev := s.Speed2D()
		for i := 0; i < 50; i++ {
			s = q.Step(s, Input{}, Wind{}, 0.005)
			cur := s.Speed2D()
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RK4 integration keeps all states finite for bounded random
// inputs over a short horizon.
func TestPropertyQuadStatesStayFinite(t *testing.T) {
	q := testQuad()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := State{Z: 20}
		for i := 0; i < 100; i++ {
			u := Input{
				Thrust: r.Float64() * 2 * q.HoverThrust(),
				MRoll:  (r.Float64() - 0.5) * 0.1,
				MPitch: (r.Float64() - 0.5) * 0.1,
				MYaw:   (r.Float64() - 0.5) * 0.1,
			}
			s = q.Step(s, u, Wind{}, 0.005)
			for _, v := range s.Vec() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWindSpeed(t *testing.T) {
	if got := (Wind{VX: 3, VY: 4}).Speed(); got != 5 {
		t.Errorf("Wind.Speed = %v, want 5", got)
	}
}

func TestKindString(t *testing.T) {
	if KindQuadcopter.String() != "quadcopter" || KindRover.String() != "rover" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind should stringify to unknown")
	}
}
