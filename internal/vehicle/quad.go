package vehicle

import "math"

// Quadcopter is the 6-DOF drone model of Appendix A.2:
//
//	v̇x = (U_t/m)(cosφ sinθ cosψ + sinφ sinψ)
//	v̇y = (U_t/m)(cosφ sinθ sinψ − sinφ cosψ)
//	v̇z = (U_t/m) cosφ cosθ − g
//	φ̇ = ωφ, θ̇ = ωθ, ψ̇ = ωψ
//	ω̇φ = U_φ/I_x + ωθ·ωψ·(I_y−I_z)/I_x
//	ω̇θ = U_θ/I_y + ωφ·ωψ·(I_z−I_x)/I_y
//	ω̇ψ = U_ψ/I_z + ωφ·ωθ·(I_x−I_y)/I_z
//
// augmented with a linear aerodynamic drag term against the air-relative
// velocity, which both keeps the closed loop realistic and gives wind a
// physical coupling into the translational dynamics.
type Quadcopter struct {
	// Mass in kg.
	Mass float64
	// Moments of inertia about the body axes, kg·m².
	IX, IY, IZ float64
	// DragCoef is the linear translational drag coefficient, N·s/m.
	DragCoef float64
	// AngularDrag is the linear rotational damping coefficient, N·m·s.
	AngularDrag float64
}

// HoverThrust returns the thrust that exactly cancels gravity at level
// attitude.
func (q Quadcopter) HoverThrust() float64 {
	return q.Mass * Gravity
}

// Derivative returns d(state)/dt for the current state, input, and wind.
func (q Quadcopter) Derivative(s State, u Input, w Wind) State {
	cf, sf := math.Cos(s.Roll), math.Sin(s.Roll)
	ct, st := math.Cos(s.Pitch), math.Sin(s.Pitch)
	cp, sp := math.Cos(s.Yaw), math.Sin(s.Yaw)

	// Air-relative velocity for drag.
	rx, ry, rz := s.VX-w.VX, s.VY-w.VY, s.VZ-w.VZ
	kd := q.DragCoef / q.Mass

	var d State
	d.X, d.Y, d.Z = s.VX, s.VY, s.VZ
	d.VX = u.Thrust/q.Mass*(cf*st*cp+sf*sp) - kd*rx
	d.VY = u.Thrust/q.Mass*(cf*st*sp-sf*cp) - kd*ry
	d.VZ = u.Thrust/q.Mass*cf*ct - Gravity - kd*rz
	d.Roll, d.Pitch, d.Yaw = s.WRoll, s.WPitch, s.WYaw
	d.WRoll = u.MRoll/q.IX + s.WPitch*s.WYaw*(q.IY-q.IZ)/q.IX - q.AngularDrag/q.IX*s.WRoll
	d.WPitch = u.MPitch/q.IY + s.WRoll*s.WYaw*(q.IZ-q.IX)/q.IY - q.AngularDrag/q.IY*s.WPitch
	d.WYaw = u.MYaw/q.IZ + s.WRoll*s.WPitch*(q.IX-q.IY)/q.IZ - q.AngularDrag/q.IZ*s.WYaw
	return d
}

// Step advances the quadcopter state by dt seconds with classic RK4 and
// clamps the result to the ground plane (Z ≥ 0; a drone cannot descend
// below ground — the sim layer classifies a hard ground contact as a
// crash).
func (q Quadcopter) Step(s State, u Input, w Wind, dt float64) State {
	// Bound once to a local so the closure provably stays on the stack —
	// Step runs inside the zero-allocation tick path.
	deriv := func(x State) State { return q.Derivative(x, u, w) }
	out := rk4(s, dt, deriv)
	out.Roll = wrapAngle(out.Roll)
	out.Pitch = wrapAngle(out.Pitch)
	out.Yaw = wrapAngle(out.Yaw)
	if out.Z < 0 {
		out.Z = 0
		if out.VZ < 0 {
			out.VZ = 0
		}
	}
	return out
}

// rk4 performs one classic Runge-Kutta step of the state ODE.
func rk4(s State, dt float64, f func(State) State) State {
	k1 := f(s)
	k2 := f(addScaled(s, k1, dt/2))
	k3 := f(addScaled(s, k2, dt/2))
	k4 := f(addScaled(s, k3, dt))
	out := s
	c := dt / 6
	out.X += c * (k1.X + 2*k2.X + 2*k3.X + k4.X)
	out.Y += c * (k1.Y + 2*k2.Y + 2*k3.Y + k4.Y)
	out.Z += c * (k1.Z + 2*k2.Z + 2*k3.Z + k4.Z)
	out.VX += c * (k1.VX + 2*k2.VX + 2*k3.VX + k4.VX)
	out.VY += c * (k1.VY + 2*k2.VY + 2*k3.VY + k4.VY)
	out.VZ += c * (k1.VZ + 2*k2.VZ + 2*k3.VZ + k4.VZ)
	out.Roll += c * (k1.Roll + 2*k2.Roll + 2*k3.Roll + k4.Roll)
	out.Pitch += c * (k1.Pitch + 2*k2.Pitch + 2*k3.Pitch + k4.Pitch)
	out.Yaw += c * (k1.Yaw + 2*k2.Yaw + 2*k3.Yaw + k4.Yaw)
	out.WRoll += c * (k1.WRoll + 2*k2.WRoll + 2*k3.WRoll + k4.WRoll)
	out.WPitch += c * (k1.WPitch + 2*k2.WPitch + 2*k3.WPitch + k4.WPitch)
	out.WYaw += c * (k1.WYaw + 2*k2.WYaw + 2*k3.WYaw + k4.WYaw)
	return out
}

func addScaled(s, d State, h float64) State {
	return State{
		X: s.X + h*d.X, Y: s.Y + h*d.Y, Z: s.Z + h*d.Z,
		VX: s.VX + h*d.VX, VY: s.VY + h*d.VY, VZ: s.VZ + h*d.VZ,
		Roll: s.Roll + h*d.Roll, Pitch: s.Pitch + h*d.Pitch, Yaw: s.Yaw + h*d.Yaw,
		WRoll: s.WRoll + h*d.WRoll, WPitch: s.WPitch + h*d.WPitch, WYaw: s.WYaw + h*d.WYaw,
	}
}

// wrapAngle wraps an angle to (−π, π].
func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// WrapAngle wraps an angle to (−π, π]. Exported for use by controllers
// computing heading errors.
func WrapAngle(a float64) float64 { return wrapAngle(a) }
