// Package vehicle implements the physics substrate the paper's evaluation
// ran on: a 6-DOF quadcopter (the drone dynamics of Appendix A.2) and a
// kinematic-bicycle ground rover (Kong et al., as cited in Appendix A.2),
// both integrated with fixed-step RK4, plus the six vehicle profiles of
// Table 2 (Pixhawk, Tarot, Sky-Viper, ArduCopter, Aion R1, ArduRover).
//
// The paper evaluated on real RVs and on ArduPilot SITL/Gazebo. There is
// no Go robotics/SITL ecosystem, so this package is the simulated
// substitute: the attack/diagnosis/recovery code path above it is
// identical to the paper's, which injected attacks in software at the
// sensor boundary regardless of the physics below (paper §5.3).
package vehicle

import "math"

// Gravity is the gravitational acceleration used by the quadcopter model.
const Gravity = 9.81

// Kind distinguishes the two vehicle classes in the evaluation.
type Kind int

// Vehicle kinds.
const (
	KindQuadcopter Kind = iota + 1
	KindRover
)

// String returns the human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindQuadcopter:
		return "quadcopter"
	case KindRover:
		return "rover"
	default:
		return "unknown"
	}
}

// State is the 12-dimensional rigid-body state of a quadcopter, and a
// superset of the rover state (rovers leave the z/attitude channels at
// zero except yaw ψ).
//
// Units: position m, velocity m/s, angles rad, angular velocity rad/s.
type State struct {
	// Position in the world frame (NED-like; Z is altitude up).
	X, Y, Z float64
	// Velocity in the world frame.
	VX, VY, VZ float64
	// Euler angles: roll φ, pitch θ, yaw ψ.
	Roll, Pitch, Yaw float64
	// Body angular rates.
	WRoll, WPitch, WYaw float64
}

// Vec flattens the state into a 12-vector in the canonical order
// [x y z vx vy vz φ θ ψ ωφ ωθ ωψ].
func (s State) Vec() []float64 {
	return []float64{
		s.X, s.Y, s.Z,
		s.VX, s.VY, s.VZ,
		s.Roll, s.Pitch, s.Yaw,
		s.WRoll, s.WPitch, s.WYaw,
	}
}

// VecInto flattens the state into dst in the canonical 12-vector order
// without allocating. dst must have length 12.
func (s State) VecInto(dst []float64) {
	_ = dst[11]
	dst[0], dst[1], dst[2] = s.X, s.Y, s.Z
	dst[3], dst[4], dst[5] = s.VX, s.VY, s.VZ
	dst[6], dst[7], dst[8] = s.Roll, s.Pitch, s.Yaw
	dst[9], dst[10], dst[11] = s.WRoll, s.WPitch, s.WYaw
}

// StateFromVec rebuilds a State from the canonical 12-vector order.
func StateFromVec(v []float64) State {
	return State{
		X: v[0], Y: v[1], Z: v[2],
		VX: v[3], VY: v[4], VZ: v[5],
		Roll: v[6], Pitch: v[7], Yaw: v[8],
		WRoll: v[9], WPitch: v[10], WYaw: v[11],
	}
}

// Speed returns the magnitude of the translational velocity.
func (s State) Speed() float64 {
	return math.Sqrt(s.VX*s.VX + s.VY*s.VY + s.VZ*s.VZ)
}

// HorizontalDistanceTo returns the ground-plane distance to (x, y).
func (s State) HorizontalDistanceTo(x, y float64) float64 {
	dx, dy := s.X-x, s.Y-y
	return math.Sqrt(dx*dx + dy*dy)
}

// Input is the actuation command for either vehicle class.
//
// For a quadcopter it is the Appendix A.2 control vector: total thrust U_t
// (N) and the three rotor moment commands U_φ, U_θ, U_ψ (N·m).
//
// For a rover, Thrust carries the longitudinal acceleration command a
// (m/s²) and MYaw carries the steering angle δ (rad); the other fields
// are unused.
type Input struct {
	Thrust              float64
	MRoll, MPitch, MYaw float64
}

// Vec flattens the input into the canonical 4-vector [Ut Uφ Uθ Uψ].
func (u Input) Vec() []float64 {
	return []float64{u.Thrust, u.MRoll, u.MPitch, u.MYaw}
}

// Wind is the instantaneous wind velocity in the world frame.
type Wind struct {
	VX, VY, VZ float64
}

// Speed returns the wind speed magnitude.
func (w Wind) Speed() float64 {
	return math.Sqrt(w.VX*w.VX + w.VY*w.VY + w.VZ*w.VZ)
}
