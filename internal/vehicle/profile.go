package vehicle

import "fmt"

// ProfileName identifies one of the six subject RVs of Table 2.
type ProfileName string

// The six subject RVs of the paper's evaluation (Table 2). The first four
// correspond to the paper's real vehicles; the last two to its SITL
// vehicles. In this reproduction all six run on the simulated substrate,
// differentiated by their physical and sensing parameters.
const (
	Pixhawk    ProfileName = "Pixhawk"
	Tarot      ProfileName = "Tarot"
	SkyViper   ProfileName = "Sky-Viper"
	AionR1     ProfileName = "AionR1"
	ArduCopter ProfileName = "ArduCopter"
	ArduRover  ProfileName = "ArduRover"
)

// RealRVs lists the profiles standing in for the paper's four real
// vehicles (Table 7).
func RealRVs() []ProfileName {
	return []ProfileName{Pixhawk, Tarot, SkyViper, AionR1}
}

// SimulatedRVs lists the profiles standing in for the paper's two SITL
// vehicles (Tables 4–6, Fig. 10).
func SimulatedRVs() []ProfileName {
	return []ProfileName{ArduCopter, ArduRover}
}

// AllRVs lists every profile.
func AllRVs() []ProfileName {
	return []ProfileName{Pixhawk, Tarot, SkyViper, AionR1, ArduCopter, ArduRover}
}

// SensorCounts records how many physical units of each sensor type a
// profile carries (Table 2). Diagnosis operates at the sensor-*type*
// granularity, as in the paper ("when we say a sensor is attacked, we
// mean that all the sensors of that type are attacked").
type SensorCounts struct {
	GPS, Gyro, Accel, Mag, Baro int
}

// SensorRates records per-sensor-type sample rates in Hz. The checkpoint
// recorder aligns the streams to the fastest rate (paper §4.2).
type SensorRates struct {
	GPS, Gyro, Accel, Mag, Baro float64
}

// NoiseFloor records the 1-σ measurement noise per sensor type in the
// units of the measured quantity.
type NoiseFloor struct {
	GPSPos float64 // m
	GPSVel float64 // m/s
	Gyro   float64 // rad/s
	Accel  float64 // m/s²
	Mag    float64 // gauss
	Baro   float64 // m of altitude
}

// Profile is a complete subject-RV description: physics, sensing, and
// mission envelope.
type Profile struct {
	Name   ProfileName
	Kind   Kind
	Quad   Quadcopter // valid when Kind == KindQuadcopter
	Rover  Rover      // valid when Kind == KindRover
	Counts SensorCounts
	Rates  SensorRates
	Noise  NoiseFloor

	// CruiseSpeed is the nominal mission speed in m/s.
	CruiseSpeed float64
	// CruiseAltitude is the nominal mission altitude for drones, m.
	CruiseAltitude float64
	// MaxTilt clamps commanded roll/pitch in rad.
	MaxTilt float64
	// MaxThrust clamps total thrust in N (quad) or acceleration in m/s²
	// (rover).
	MaxThrust float64
}

// IsQuad reports whether the profile is a drone.
func (p Profile) IsQuad() bool { return p.Kind == KindQuadcopter }

// LookupProfile returns the named profile, or an error for an unknown
// name.
func LookupProfile(name ProfileName) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("vehicle: unknown profile %q", name)
}

// MustProfile returns the named profile and panics on unknown names; use
// only with the package's own constants.
func MustProfile(name ProfileName) Profile {
	p, err := LookupProfile(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Profiles returns the six subject-RV profiles (Table 2). Masses,
// inertias, and geometry approximate the respective commercial platforms;
// sensor counts follow Table 2 exactly.
func Profiles() []Profile {
	defaultRates := SensorRates{GPS: 10, Gyro: 400, Accel: 400, Mag: 100, Baro: 100}
	return []Profile{
		{
			Name:   Pixhawk,
			Kind:   KindQuadcopter,
			Quad:   Quadcopter{Mass: 1.5, IX: 0.022, IY: 0.022, IZ: 0.040, DragCoef: 0.35, AngularDrag: 0.012},
			Counts: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 1},
			Rates:  defaultRates,
			Noise: NoiseFloor{
				GPSPos: 0.8, GPSVel: 0.12, Gyro: 0.010, Accel: 0.08, Mag: 0.012, Baro: 0.15,
			},
			CruiseSpeed: 5, CruiseAltitude: 10, MaxTilt: 0.5, MaxThrust: 4 * 1.5 * Gravity,
		},
		{
			Name:   Tarot,
			Kind:   KindQuadcopter,
			Quad:   Quadcopter{Mass: 2.6, IX: 0.045, IY: 0.045, IZ: 0.085, DragCoef: 0.45, AngularDrag: 0.020},
			Counts: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 2},
			Rates:  defaultRates,
			Noise: NoiseFloor{
				GPSPos: 0.7, GPSVel: 0.10, Gyro: 0.008, Accel: 0.07, Mag: 0.010, Baro: 0.12,
			},
			CruiseSpeed: 6, CruiseAltitude: 12, MaxTilt: 0.45, MaxThrust: 4 * 2.6 * Gravity,
		},
		{
			Name:   SkyViper,
			Kind:   KindQuadcopter,
			Quad:   Quadcopter{Mass: 0.15, IX: 0.0009, IY: 0.0009, IZ: 0.0016, DragCoef: 0.06, AngularDrag: 0.0006},
			Counts: SensorCounts{GPS: 1, Gyro: 1, Accel: 1, Mag: 1, Baro: 1},
			Rates:  SensorRates{GPS: 5, Gyro: 200, Accel: 200, Mag: 50, Baro: 50},
			Noise: NoiseFloor{
				GPSPos: 1.2, GPSVel: 0.18, Gyro: 0.020, Accel: 0.15, Mag: 0.020, Baro: 0.25,
			},
			CruiseSpeed: 3, CruiseAltitude: 8, MaxTilt: 0.55, MaxThrust: 4 * 0.15 * Gravity,
		},
		{
			Name:   AionR1,
			Kind:   KindRover,
			Rover:  Rover{LF: 0.20, LR: 0.20, MaxSteer: 0.6, MaxSpeed: 3.5, DragCoef: 0.3, WindFactor: 0.02},
			Counts: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 3, Baro: 1},
			Rates:  defaultRates,
			Noise: NoiseFloor{
				GPSPos: 0.6, GPSVel: 0.10, Gyro: 0.008, Accel: 0.06, Mag: 0.010, Baro: 0.15,
			},
			CruiseSpeed: 2, CruiseAltitude: 0, MaxTilt: 0, MaxThrust: 2.5,
		},
		{
			Name:   ArduCopter,
			Kind:   KindQuadcopter,
			Quad:   Quadcopter{Mass: 1.5, IX: 0.020, IY: 0.020, IZ: 0.038, DragCoef: 0.30, AngularDrag: 0.010},
			Counts: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 1, Baro: 1},
			Rates:  defaultRates,
			Noise: NoiseFloor{
				GPSPos: 0.8, GPSVel: 0.12, Gyro: 0.010, Accel: 0.08, Mag: 0.012, Baro: 0.15,
			},
			CruiseSpeed: 5, CruiseAltitude: 10, MaxTilt: 0.5, MaxThrust: 4 * 1.5 * Gravity,
		},
		{
			Name:   ArduRover,
			Kind:   KindRover,
			Rover:  Rover{LF: 0.25, LR: 0.25, MaxSteer: 0.6, MaxSpeed: 4.0, DragCoef: 0.25, WindFactor: 0.02},
			Counts: SensorCounts{GPS: 1, Gyro: 3, Accel: 3, Mag: 1, Baro: 1},
			Rates:  defaultRates,
			Noise: NoiseFloor{
				GPSPos: 0.7, GPSVel: 0.10, Gyro: 0.009, Accel: 0.07, Mag: 0.011, Baro: 0.15,
			},
			CruiseSpeed: 2.5, CruiseAltitude: 0, MaxTilt: 0, MaxThrust: 2.5,
		},
	}
}
