package vehicle

import "math"

// Rover is the kinematic bicycle model of Appendix A.2 (Kong et al.):
//
//	β  = atan( l_r/(l_f+l_r) · tan δ )
//	ẋ  = v·cos(ψ+β)
//	ẏ  = v·sin(ψ+β)
//	ψ̇  = (v/l_r)·sin β
//	v̇  = a
//
// where δ is the steering angle and a the longitudinal acceleration
// command. The rover reuses State with Z/attitude channels other than Yaw
// held at zero, and Input with Thrust = a, MYaw = δ.
type Rover struct {
	// LF and LR are the distances from the centre of mass to the front
	// and rear axles, in metres.
	LF, LR float64
	// MaxSteer clamps |δ| in radians.
	MaxSteer float64
	// MaxSpeed clamps the forward speed in m/s.
	MaxSpeed float64
	// DragCoef is a linear rolling-resistance coefficient applied against
	// the ground-relative speed (1/s). Wind couples in weakly via the
	// relative-velocity term scaled by WindFactor.
	DragCoef float64
	// WindFactor scales how strongly wind pushes the rover (rovers are far
	// less wind-sensitive than drones).
	WindFactor float64
}

// SlipAngle returns β for steering angle delta.
func (r Rover) SlipAngle(delta float64) float64 {
	return math.Atan(r.LR / (r.LF + r.LR) * math.Tan(delta))
}

// Derivative returns d(state)/dt for the rover.
func (r Rover) Derivative(s State, u Input, w Wind) State {
	delta := clamp(u.MYaw, -r.MaxSteer, r.MaxSteer)
	beta := r.SlipAngle(delta)
	v := s.Speed2D()

	var d State
	d.X = v*math.Cos(s.Yaw+beta) + r.WindFactor*w.VX
	d.Y = v*math.Sin(s.Yaw+beta) + r.WindFactor*w.VY
	d.Yaw = v / r.LR * math.Sin(beta)
	// Longitudinal acceleration minus rolling resistance, decomposed back
	// onto the world frame through the heading.
	a := u.Thrust - r.DragCoef*v
	d.VX = a*math.Cos(s.Yaw+beta) - v*d.Yaw*math.Sin(s.Yaw+beta)
	d.VY = a*math.Sin(s.Yaw+beta) + v*d.Yaw*math.Cos(s.Yaw+beta)
	d.WYaw = 0 // kinematic model: yaw rate is algebraic, not a state
	return d
}

// Step advances the rover state by dt seconds with RK4 and enforces the
// speed limit.
func (r Rover) Step(s State, u Input, w Wind, dt float64) State {
	// Bound once to a local so the closure provably stays on the stack —
	// Step runs inside the zero-allocation tick path.
	deriv := func(x State) State { return r.Derivative(x, u, w) }
	out := rk4(s, dt, deriv)
	out.Yaw = wrapAngle(out.Yaw)
	out.Z, out.VZ = 0, 0
	out.Roll, out.Pitch = 0, 0
	out.WRoll, out.WPitch = 0, 0
	// Record the algebraic yaw rate so sensors observe it.
	delta := clamp(u.MYaw, -r.MaxSteer, r.MaxSteer)
	beta := r.SlipAngle(delta)
	out.WYaw = out.Speed2D() / r.LR * math.Sin(beta)
	if v := out.Speed2D(); v > r.MaxSpeed {
		scale := r.MaxSpeed / v
		out.VX *= scale
		out.VY *= scale
	}
	return out
}

// Speed2D returns the ground-plane speed.
func (s State) Speed2D() float64 {
	return math.Sqrt(s.VX*s.VX + s.VY*s.VY)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp bounds v to [lo, hi]. Exported for controller saturation logic.
func Clamp(v, lo, hi float64) float64 { return clamp(v, lo, hi) }
