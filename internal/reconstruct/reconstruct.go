// Package reconstruct implements State Reconstruction (§4.3): after
// diagnosis identifies the targeted sensors, the RV's state vector X'(t_a)
// is rebuilt by (1) replaying the dynamics model forward from the latest
// trustworthy checkpoint x_{t_s} over the recorded control inputs —
// fusing the recorded measurements of the *uncompromised* sensors along
// the way ("State Reconstructor utilizes measurements from uncompromised
// sensors and historical states for compromised sensors", §4) — and
// (2) keeping the live states x_c(t_a) from the uncompromised sensors:
//
//	X'(t_a) = [x_c(t_a), x_r(t_a)]
//
// The reconstructed vector is the initial system state of recovery and —
// when only a subset of sensors is attacked — preserves real-time sensor
// feedback, which is what enables targeted recovery.
package reconstruct

import (
	"errors"

	"repro/internal/checkpoint"
	"repro/internal/ekf"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// ErrNoTrustedState is returned when no attack-free checkpoint window is
// available (the RV was attacked before any historic state could be
// recorded, violating the §2.3 attack-free-start assumption).
var ErrNoTrustedState = errors.New("reconstruct: no trusted historic state available")

// Reconstructor rebuilds RV state vectors from historic states and live
// uncompromised sensors.
type Reconstructor struct {
	profile vehicle.Profile
	step    ekf.StepFunc
	dt      float64
}

// ReplayStats describes one roll-forward: the trusted anchor time the
// replay started from and how many recorded control periods it stepped
// through. Telemetry attributes reconstruction cost by Records.
type ReplayStats struct {
	// AnchorT is the checkpoint timestamp the replay anchored to.
	AnchorT float64
	// Records is the number of recorded (input, measurement) records
	// replayed through the dynamics model.
	Records int
}

// New returns a reconstructor for the profile's dynamics model at the
// given control period.
func New(p vehicle.Profile, dt float64) *Reconstructor {
	return &Reconstructor{profile: p, step: ekf.StepForProfile(p), dt: dt}
}

// RollForward re-derives the rigid-body state at the recovery activation
// time t_a from the latest trustworthy checkpoint, replaying the recorded
// control inputs through the dynamics model (x_r(t_{s+1}) = f(x_{t_s},
// u_{t_s}), iterated to t_a) and fusing the recorded measurements of the
// sensors NOT in compromised along the way. With every sensor
// compromised (the LQR-O worst case) this degrades to the pure open-loop
// model replay.
func (r *Reconstructor) RollForward(rec *checkpoint.Recorder, compromised sensors.TypeSet) (vehicle.State, ReplayStats, error) {
	anchor, ok := rec.LatestTrusted()
	if !ok {
		return vehicle.State{}, ReplayStats{}, ErrNoTrustedState
	}
	clean := sensors.NewTypeSet()
	for _, t := range sensors.AllTypes() {
		if !compromised.Has(t) {
			clean.Add(t)
		}
	}

	stats := ReplayStats{AnchorT: anchor.T}
	f := ekf.New(r.profile)
	f.Init(anchor.Est)
	for _, record := range rec.RecordsSince(anchor.T) {
		stats.Records++
		if record.InputOnly || clean.Len() == 0 {
			// No usable measurements: open-loop model step.
			f.Predict(record.Input, r.dt)
			continue
		}
		f.PredictHybrid(record.Input, record.PS, clean, r.dt)
		// Correction errors cannot occur with a diagonal positive R.
		_ = f.Correct(record.PS, clean)
	}
	return f.State(), stats, nil
}

// Reconstruct builds X'(t_a): states of compromised sensors come from the
// replayed model estimate; states of uncompromised sensors come from the
// live sensor-derived vector. The returned PS vector and rigid-body state
// are the initial system state handed to the recovery controller.
func (r *Reconstructor) Reconstruct(
	rec *checkpoint.Recorder,
	live sensors.PhysState,
	compromised sensors.TypeSet,
) (sensors.PhysState, vehicle.State, ReplayStats, error) {
	rolled, stats, err := r.RollForward(rec, compromised)
	if err != nil {
		return sensors.PhysState{}, vehicle.State{}, ReplayStats{}, err
	}
	// Model-derived PS channels for the compromised sensors.
	modelPS := sensors.TruePhysState(rolled, [3]float64{}, sensors.BodyField(rolled.Yaw))
	reconstructed := sensors.MergeStates(live, modelPS, compromised)

	// The rigid-body state handed to recovery: live channels where their
	// sensor is clean, replayed channels where compromised.
	hybrid := reconstructed.VehicleState()
	return reconstructed, hybrid, stats, nil
}
