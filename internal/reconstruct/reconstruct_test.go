package reconstruct

import (
	"errors"
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

func hoverRecorder(t *testing.T, prof vehicle.Profile, seconds float64, dt float64) (*checkpoint.Recorder, vehicle.State) {
	t.Helper()
	r := checkpoint.NewRecorder(1.0)
	s := vehicle.State{Z: 10}
	u := vehicle.Input{Thrust: prof.Quad.HoverThrust()}
	for tm := 0.0; tm < seconds; tm += dt {
		s = prof.Quad.Step(s, u, vehicle.Wind{}, dt)
		ps := sensors.TruePhysState(s, [3]float64{}, sensors.BodyField(s.Yaw))
		r.Record(checkpoint.Record{T: tm, PS: ps, Est: s, Input: u})
	}
	return r, s
}

func TestRollForwardHover(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	rec, truth := hoverRecorder(t, prof, 3.0, dt)
	rc := New(prof, dt)
	got, stats, err := rc.RollForward(rec, sensors.NewTypeSet(sensors.AllTypes()...))
	if err != nil {
		t.Fatalf("RollForward: %v", err)
	}
	if math.Abs(got.Z-truth.Z) > 0.1 {
		t.Errorf("rolled z = %v, truth %v", got.Z, truth.Z)
	}
	if stats.Records <= 0 {
		t.Errorf("replay stats records = %d, want > 0", stats.Records)
	}
}

func TestRollForwardNoTrusted(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	rc := New(prof, 0.01)
	empty := checkpoint.NewRecorder(1.0)
	if _, _, err := rc.RollForward(empty, sensors.NewTypeSet()); !errors.Is(err, ErrNoTrustedState) {
		t.Errorf("err = %v, want ErrNoTrustedState", err)
	}
}

func TestReconstructMergesCleanAndModelStates(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	rec, truth := hoverRecorder(t, prof, 3.0, dt)
	rc := New(prof, dt)

	// Live states: GPS spoofed by +40 m, everything else truthful.
	live := sensors.TruePhysState(truth, [3]float64{}, sensors.BodyField(truth.Yaw))
	live[sensors.SX] += 40

	ps, hybrid, _, err := rc.Reconstruct(rec, live, sensors.NewTypeSet(sensors.GPS))
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	// The GPS x channel must come from the model (≈ truth), not the spoof.
	if math.Abs(ps[sensors.SX]-truth.X) > 1 {
		t.Errorf("reconstructed x = %v, want ≈ %v (spoof was %v)", ps[sensors.SX], truth.X, live[sensors.SX])
	}
	// Clean channels pass through live.
	if ps[sensors.SBaroAlt] != live[sensors.SBaroAlt] {
		t.Errorf("clean baro channel altered: %v", ps[sensors.SBaroAlt])
	}
	if math.Abs(hybrid.X-truth.X) > 1 {
		t.Errorf("hybrid x = %v, want ≈ %v", hybrid.X, truth.X)
	}
}

func TestReconstructAllCompromisedIsWorstCase(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	rec, truth := hoverRecorder(t, prof, 3.0, dt)
	rc := New(prof, dt)

	var garbage sensors.PhysState
	for i := range garbage {
		garbage[i] = 1e6
	}
	ps, _, _, err := rc.Reconstruct(rec, garbage, sensors.NewTypeSet(sensors.AllTypes()...))
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	// All channels replaced by the model: nothing from the garbage vector
	// survives.
	if math.Abs(ps[sensors.SZ]-truth.Z) > 0.5 {
		t.Errorf("worst-case reconstruction z = %v, want ≈ %v", ps[sensors.SZ], truth.Z)
	}
	for i, v := range ps {
		if v > 1e5 {
			t.Fatalf("garbage leaked through channel %d: %v", i, v)
		}
	}
}

func TestReconstructNoneCompromisedIsLive(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	rec, truth := hoverRecorder(t, prof, 3.0, dt)
	rc := New(prof, dt)
	live := sensors.TruePhysState(truth, [3]float64{1, 2, 3}, sensors.BodyField(truth.Yaw))
	ps, _, _, err := rc.Reconstruct(rec, live, sensors.NewTypeSet())
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if ps != live {
		t.Error("with no compromised sensors, reconstruction should be the live vector")
	}
}

func TestRollForwardSpansDetectionGap(t *testing.T) {
	// Records stop (alert) and the roll-forward must bridge the gap using
	// inputs recorded during the corrupted window.
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	r := checkpoint.NewRecorder(1.0)
	s := vehicle.State{Z: 10}
	u := vehicle.Input{Thrust: prof.Quad.HoverThrust()}
	var tm float64
	for tm = 0; tm < 2.5; tm += dt {
		s = prof.Quad.Step(s, u, vehicle.Wind{}, dt)
		ps := sensors.TruePhysState(s, [3]float64{}, sensors.BodyField(s.Yaw))
		r.Record(checkpoint.Record{T: tm, PS: ps, Est: s, Input: u})
	}
	r.OnAlert()
	// Truth keeps evolving during the attack, but the recorder is stopped.
	for ; tm < 3.0; tm += dt {
		s = prof.Quad.Step(s, u, vehicle.Wind{}, dt)
	}
	rc := New(prof, dt)
	got, _, err := rc.RollForward(r, sensors.NewTypeSet(sensors.AllTypes()...))
	if err != nil {
		t.Fatalf("RollForward: %v", err)
	}
	// Hover: roll-forward should still be close to truth despite the gap.
	if math.Abs(got.Z-s.Z) > 0.5 {
		t.Errorf("rolled z = %v, truth %v", got.Z, s.Z)
	}
}
