package sysid

import (
	"math"
	"math/rand"

	"repro/internal/vehicle"
)

// CollectQuadTrace flies excitation maneuvers on the true quadcopter model
// and records identification samples, mirroring the paper's data
// collection ("we run missions capturing sensor readings and control
// signals to the rotors in various modes of operation of a drone —
// takeoff, loiter, auto, circle, and land"). noise adds Gaussian
// measurement noise of the given stdev to the recorded accelerations.
func CollectQuadTrace(q vehicle.Quadcopter, seconds, dt, noise float64, rng *rand.Rand) []Sample {
	var out []Sample
	s := vehicle.State{Z: 10}
	hover := q.HoverThrust()
	n := int(seconds / dt)
	out = make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		// Excitation: thrust chirp plus small random moments — rich enough
		// to identify mass, drag, and all three inertias.
		u := vehicle.Input{
			Thrust: hover * (1 + 0.25*chirp(t)),
			MRoll:  0.04 * q.IX / 0.02 * (rng.Float64() - 0.5),
			MPitch: 0.04 * q.IY / 0.02 * (rng.Float64() - 0.5),
			MYaw:   0.02 * q.IZ / 0.02 * (rng.Float64() - 0.5),
		}
		d := q.Derivative(s, u, vehicle.Wind{})
		sample := Sample{
			State: s,
			Input: u,
			Accel: [3]float64{
				d.VX + noise*rng.NormFloat64(),
				d.VY + noise*rng.NormFloat64(),
				d.VZ + noise*rng.NormFloat64(),
			},
			AngAccel: [3]float64{
				d.WRoll + noise*rng.NormFloat64(),
				d.WPitch + noise*rng.NormFloat64(),
				d.WYaw + noise*rng.NormFloat64(),
			},
		}
		out = append(out, sample)
		s = q.Step(s, u, vehicle.Wind{}, dt)
		// Keep the excitation from tumbling or grounding the vehicle.
		if s.Z < 2 {
			s.Z = 10
			s.VZ = 0
		}
		if abs(s.Roll) > 0.6 || abs(s.Pitch) > 0.6 {
			s.Roll, s.Pitch = 0, 0
			s.WRoll, s.WPitch = 0, 0
		}
	}
	return out
}

// chirp is a multi-frequency excitation signal in [−1, 1].
func chirp(t float64) float64 {
	return 0.5*math.Sin(0.7*t) + 0.3*math.Sin(2.3*t) + 0.2*math.Sin(5.1*t)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
