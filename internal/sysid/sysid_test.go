package sysid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/vehicle"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2x1 + 3x2 exactly.
	a := mat.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	b := mat.Vec{2, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// y = 1.5x + noise; slope recovered within tolerance.
	n := 500
	a := mat.New(n, 1)
	b := mat.NewVec(n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		a.Set(i, 0, x)
		b[i] = 1.5*x + 0.01*rng.NormFloat64()
	}
	theta, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta[0]-1.5) > 0.01 {
		t.Errorf("slope = %v, want 1.5", theta[0])
	}
}

func TestFitQuadRecoversParameters(t *testing.T) {
	truth := vehicle.MustProfile(vehicle.Pixhawk).Quad
	rng := rand.New(rand.NewSource(42))
	samples := CollectQuadTrace(truth, 60, 0.01, 0.02, rng)
	got, err := FitQuad(samples)
	if err != nil {
		t.Fatalf("FitQuad: %v", err)
	}
	within := func(name string, got, want, tol float64) {
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %v, want %v ± %.0f%%", name, got, want, tol*100)
		}
	}
	within("mass", got.Mass, truth.Mass, 0.05)
	within("drag", got.DragCoef, truth.DragCoef, 0.25)
	within("IX", got.IX, truth.IX, 0.10)
	within("IY", got.IY, truth.IY, 0.10)
	within("IZ", got.IZ, truth.IZ, 0.10)
}

func TestFitQuadInsufficientData(t *testing.T) {
	if _, err := FitQuad(nil); err == nil {
		t.Error("expected ErrInsufficientData")
	}
}

func TestIdentifiedModelPredicts(t *testing.T) {
	// The fitted model must predict hover within a small altitude error
	// over a few seconds.
	truth := vehicle.MustProfile(vehicle.Tarot).Quad
	rng := rand.New(rand.NewSource(7))
	samples := CollectQuadTrace(truth, 60, 0.01, 0.02, rng)
	params, err := FitQuad(samples)
	if err != nil {
		t.Fatalf("FitQuad: %v", err)
	}
	model := params.Model(truth)

	sTrue := vehicle.State{Z: 10}
	sModel := vehicle.State{Z: 10}
	u := vehicle.Input{Thrust: truth.HoverThrust()}
	for i := 0; i < 500; i++ {
		sTrue = truth.Step(sTrue, u, vehicle.Wind{}, 0.01)
		sModel = model.Step(sModel, u, vehicle.Wind{}, 0.01)
	}
	if d := math.Abs(sTrue.Z - sModel.Z); d > 1.0 {
		t.Errorf("identified model diverged %vm in 5 s of hover", d)
	}
}

// Property: with zero noise, mass identification is near-exact for any
// profile.
func TestPropertyNoiselessFitExact(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		names := vehicle.AllRVs()
		prof := vehicle.MustProfile(names[int(pick)%len(names)])
		if !prof.IsQuad() {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		samples := CollectQuadTrace(prof.Quad, 30, 0.01, 0, rng)
		got, err := FitQuad(samples)
		if err != nil {
			return false
		}
		return math.Abs(got.Mass-prof.Quad.Mass)/prof.Quad.Mass < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
