// Package sysid implements the system identification of Appendix A.2:
// the EKF's non-linear dynamics model parameters are learned from a
// dataset of control actions and sensor measurements collected on the
// subject RVs, with the model parameters optimized by least squares
// ("minimize squared error between the model's estimations and the
// observed values").
//
// For the quadcopter the identified parameters are the mass, the linear
// drag coefficient, and the moments of inertia; for the rover, the drag
// coefficient and effective wheelbase. The fitted model is what the
// reconstruction/recovery stack would deploy on a vehicle whose true
// parameters are unknown.
package sysid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/vehicle"
)

// ErrInsufficientData is returned when the trace is too short to fit.
var ErrInsufficientData = errors.New("sysid: insufficient data")

// Sample is one training tuple: the vehicle state, the actuation applied,
// and the observed translational/rotational accelerations at that
// instant.
type Sample struct {
	State vehicle.State
	Input vehicle.Input
	// Accel is the observed world-frame translational acceleration.
	Accel [3]float64
	// AngAccel is the observed body angular acceleration.
	AngAccel [3]float64
}

// QuadParams are the identified quadcopter parameters.
type QuadParams struct {
	Mass       float64
	DragCoef   float64
	IX, IY, IZ float64
}

// Model builds a quadcopter dynamics model from the identified
// parameters, inheriting the angular drag of the template.
func (p QuadParams) Model(template vehicle.Quadcopter) vehicle.Quadcopter {
	out := template
	out.Mass = p.Mass
	out.DragCoef = p.DragCoef
	out.IX, out.IY, out.IZ = p.IX, p.IY, p.IZ
	return out
}

// FitQuad identifies quadcopter parameters from a trace by linear least
// squares on the Appendix A.2 dynamics:
//
//	v̇z + g = (cosφ cosθ / m)·U_t − (k_d/m)·vz_rel
//
// gives 1/m and k_d/m from the vertical channel; the rotational channels
//
//	ω̇φ = U_φ/I_x + ωθωψ(I_y−I_z)/I_x − (c/I_x)ωφ
//
// give the inertias (gyroscopic and damping terms folded into the
// residual, which is valid for near-hover data).
func FitQuad(samples []Sample) (QuadParams, error) {
	if len(samples) < 20 {
		return QuadParams{}, ErrInsufficientData
	}
	// Vertical channel: regress (v̇z + g) on [cosφcosθ·Ut, −vz].
	a := mat.New(len(samples), 2)
	b := mat.NewVec(len(samples))
	for i, s := range samples {
		cf := math.Cos(s.State.Roll) * math.Cos(s.State.Pitch)
		a.Set(i, 0, cf*s.Input.Thrust)
		a.Set(i, 1, -s.State.VZ)
		b[i] = s.Accel[2] + vehicle.Gravity
	}
	theta, err := LeastSquares(a, b)
	if err != nil {
		return QuadParams{}, fmt.Errorf("sysid vertical channel: %w", err)
	}
	invMass, kdOverM := theta[0], theta[1]
	if invMass <= 0 {
		return QuadParams{}, errors.New("sysid: non-physical mass estimate")
	}
	mass := 1 / invMass
	drag := kdOverM * mass

	// Rotational channels: ω̇ = U/I  ⇒  regress ω̇ on U per axis.
	fitInertia := func(u func(Sample) float64, alpha func(Sample) float64) (float64, error) {
		aa := mat.New(len(samples), 1)
		bb := mat.NewVec(len(samples))
		for i, s := range samples {
			aa.Set(i, 0, u(s))
			bb[i] = alpha(s)
		}
		th, err := LeastSquares(aa, bb)
		if err != nil {
			return 0, err
		}
		if th[0] <= 0 {
			return 0, errors.New("sysid: non-physical inertia estimate")
		}
		return 1 / th[0], nil
	}
	ix, err := fitInertia(func(s Sample) float64 { return s.Input.MRoll }, func(s Sample) float64 { return s.AngAccel[0] })
	if err != nil {
		return QuadParams{}, fmt.Errorf("sysid roll inertia: %w", err)
	}
	iy, err := fitInertia(func(s Sample) float64 { return s.Input.MPitch }, func(s Sample) float64 { return s.AngAccel[1] })
	if err != nil {
		return QuadParams{}, fmt.Errorf("sysid pitch inertia: %w", err)
	}
	iz, err := fitInertia(func(s Sample) float64 { return s.Input.MYaw }, func(s Sample) float64 { return s.AngAccel[2] })
	if err != nil {
		return QuadParams{}, fmt.Errorf("sysid yaw inertia: %w", err)
	}
	return QuadParams{Mass: mass, DragCoef: drag, IX: ix, IY: iy, IZ: iz}, nil
}

// LeastSquares solves min‖A·x − b‖² via the normal equations
// AᵀA·x = Aᵀb.
func LeastSquares(a *mat.Mat, b mat.Vec) (mat.Vec, error) {
	at := a.T()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	x, err := mat.Solve(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("least squares: %w", err)
	}
	return x, nil
}
