// Package sim is the closed-loop mission harness: it wires the vehicle
// physics, wind, sensor suite, SDA injection, and a defense framework into
// one simulated mission and reports the outcome metrics the paper's
// evaluation uses (mission success, crash, deviation, delay, overheads).
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/diagnosis"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
	"repro/internal/wind"
)

// Config describes one mission run.
type Config struct {
	Profile  vehicle.Profile
	Plan     mission.Plan
	Strategy core.Strategy

	// Source supplies the per-tick sensor readings. Nil selects the
	// simulator synthesizer (a SimSource built from Profile, Seed,
	// Attacks, and the dropout settings — the classic closed-loop
	// mission). A non-nil Source owns attack and failure injection
	// itself, so Attacks/DropoutAt/DropoutSensors must stay unset (see
	// Validate). A Source is stateful and must not be shared between
	// missions.
	Source sensors.Source

	// Delta are the diagnosis thresholds; zero value uses
	// core.DefaultDelta for the profile.
	Delta diagnosis.Delta
	// Diagnoser optionally overrides the diagnosis technique.
	Diagnoser diagnosis.Diagnoser
	// Detector optionally overrides the attack detector.
	Detector detect.Detector
	// WindowSec is the checkpoint window (default 15 s).
	WindowSec float64

	// Attacks is the SDA schedule; nil means attack-free.
	Attacks *attack.Schedule

	// DropoutAt fails the DropoutSensors at the given mission time
	// (failure injection; zero disables).
	DropoutAt      float64
	DropoutSensors sensors.TypeSet

	// WindMean/WindGust/WindDir parameterize the wind model.
	WindMean, WindGust, WindDir float64

	// Seed drives all stochastic components (sensor noise, wind).
	Seed int64
	// DT is the physics/control period (default 0.01 s).
	DT float64
	// MaxSec is the mission time budget (default 240 s).
	MaxSec float64
	// TraceEvery records a trace point every N ticks (0 disables).
	TraceEvery int
	// CollectErrors records the framework's per-tick diagnosis error
	// vector (decimated 1:5) for δ calibration.
	CollectErrors bool
	// TraceTransitions records every pipeline FSM mode transition as a
	// stage-attributed telemetry event. Off by default so run reports stay
	// byte-stable across pipeline-internal refactors.
	TraceTransitions bool

	// Shared optionally attaches the per-(profile, DT) read-only caches
	// the fleet executor builds once per batch (recovery LQR gain, EKF
	// covariance schedule, diagnosis graph specs). Results are
	// bit-identical with or without it; Validate rejects a mismatched
	// profile or control period.
	Shared *core.Shared
}

// TracePoint is one decimated sample of the mission for figures.
type TracePoint struct {
	T            float64
	Truth        vehicle.State
	Believed     vehicle.State
	Recovering   bool
	AlertActive  bool
	AttackActive bool
}

// Result is the mission outcome.
type Result struct {
	// Completed reports whether the mission tracker reached its end.
	Completed bool
	// Crashed reports a physical crash (ground impact or loss of
	// attitude).
	Crashed     bool
	CrashTime   float64
	CrashReason string
	// Stalled reports budget exhaustion without completion or crash.
	Stalled bool
	// FinalDistance is the true horizontal distance from the destination
	// at mission end.
	FinalDistance float64
	// Success is the paper's mission-success criterion: completed, no
	// crash, final deviation under 10 m (§5.2).
	Success bool
	// Duration is the mission time (simulated seconds).
	Duration float64

	// DiagnosedDuringAttack is the last diagnosis verdict made while an
	// attack was active (for TP accounting).
	DiagnosedDuringAttack sensors.TypeSet
	// DiagnosisRanDuringAttack reports whether a diagnosis verdict was
	// produced while the attack was active.
	DiagnosisRanDuringAttack bool
	// RecoveryActivations counts recovery episodes.
	RecoveryActivations int
	// LastRecoveryDiagnosis is the diagnosis verdict of the most recent
	// recovery activation (attack or not — used by the FP experiments to
	// see what a gratuitous activation flagged).
	LastRecoveryDiagnosis sensors.TypeSet

	// AttitudeSeries holds decimated [roll pitch yaw] samples for RMSD.
	AttitudeSeries [][3]float64
	// Trace holds the decimated mission trace when requested.
	Trace []TracePoint

	// EnergyProxy integrates |thrust|·dt (the motor-effort battery
	// proxy).
	EnergyProxy float64
	// DefenseNS and TotalNS support the CPU-overhead accounting: modeled
	// nanoseconds of the defense modules and of the whole control loop on
	// the reference flight controller (see core's cost model). Modeled —
	// not wall-clock — time keeps mission results byte-identical across
	// runs and worker counts.
	DefenseNS int64
	TotalNS   int64
	Ticks     int
	// ErrorSamples holds decimated diagnosis error vectors when
	// CollectErrors is set.
	ErrorSamples []sensors.PhysState
	// MemoryBytes is the peak checkpoint buffer footprint.
	MemoryBytes int
	// Telemetry is the mission's full pipeline record: event trace,
	// counters, per-stage cost-model totals, and outcome classification.
	Telemetry *telemetry.Mission
}

// SuccessRadius is the paper's §5.2 mission-success threshold: 2× the
// standard 5 m GPS offset.
const SuccessRadius = 10.0

// cancelCheckTicks is how many control periods elapse between context
// polls in RunContext (100 ticks = 1 simulated second at the default DT —
// cheap enough to be invisible, frequent enough that cancellation lands
// within milliseconds of real time).
const cancelCheckTicks = 100

// Run executes one mission and returns its outcome.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the mission loop polls
// ctx every cancelCheckTicks control periods (about one simulated second)
// and abandons the mission with ctx.Err() once the context is done. The
// parallel runner (internal/runner) uses this to stop a sweep mid-flight.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	m, err := NewMission(cfg)
	if err != nil {
		return Result{}, err
	}
	done := ctx.Done()
	for {
		if m.tick%cancelCheckTicks == 0 {
			select {
			case <-done:
				return m.res, ctx.Err()
			default:
			}
		}
		cont, err := m.Step()
		if err != nil {
			return m.res, err
		}
		if !cont {
			break
		}
	}
	return m.Finish(), nil
}

// Mission is one resumable mission: NewMission builds the per-mission
// state, Step advances exactly one control period, and Finish computes
// the outcome once Step reports the mission over. RunContext is the
// single-mission driver; the fleet executor (internal/fleet) interleaves
// Steps of many same-profile missions in lockstep. Both paths run the
// identical per-tick code in the identical order, which is what makes
// fleet output byte-identical to the per-goroutine runner's.
type Mission struct {
	cfg     Config
	fw      *core.Framework
	tel     *telemetry.Recorder
	gusts   *wind.Model
	src     sensors.Source
	tracker *mission.Tracker

	truth    vehicle.State
	lastU    vehicle.Input
	tiltTime float64
	t        float64
	tick     int

	attackOnsetTick int
	latencyRecorded bool
	over            bool
	res             Result
}

// NewMission validates and defaults the configuration and assembles the
// mission: the defense pipeline, the wind field, the sensor source, and
// the plan tracker, with the master rng's draw order (suite seed, then
// wind seed) preserved exactly as documented on Config.Seed.
func NewMission(cfg Config) (*Mission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DT <= 0 {
		cfg.DT = 0.01
	}
	if cfg.MaxSec <= 0 {
		cfg.MaxSec = 240
	}
	if cfg.Delta == (diagnosis.Delta{}) {
		cfg.Delta = core.DefaultDelta(cfg.Profile)
	}
	tel := telemetry.NewRecorder()
	if cfg.TraceTransitions {
		tel.EnableTransitions()
	}
	fw, err := core.New(core.Config{
		Profile:   cfg.Profile,
		DT:        cfg.DT,
		Delta:     cfg.Delta,
		WindowSec: cfg.WindowSec,
		Diagnoser: cfg.Diagnoser,
		Detector:  cfg.Detector,
		Telemetry: tel,
		Shared:    cfg.Shared,
	}, cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	// The master rng's draw order is part of the byte-identity contract:
	// first the suite's noise seed, then the wind seed. The suite seed is
	// drawn even when an external Source replaces the simulator suite, so
	// the wind — which stays simulator-side — sees the same seed either
	// way and a recorded mission replays bit-exactly.
	rng := rand.New(rand.NewSource(cfg.Seed))
	suiteSeed := rng.Int63()
	gusts := wind.New(cfg.WindMean, cfg.WindDir, cfg.WindGust, rand.New(rand.NewSource(rng.Int63())))
	src := cfg.Source
	if src == nil {
		src = newSimSource(cfg.Profile, suiteSeed, cfg.Attacks, cfg.DropoutAt, cfg.DropoutSensors)
	}
	m := &Mission{
		cfg:             cfg,
		fw:              fw,
		tel:             tel,
		gusts:           gusts,
		src:             src,
		tracker:         mission.NewTracker(cfg.Plan, 2.0),
		attackOnsetTick: -1,
	}
	fw.Init(m.truth)
	return m, nil
}

// Step advances the mission one control period. It returns (false, nil)
// once the mission is over — completed, crashed, or time budget
// exhausted — after which Finish yields the Result. A sensor-source
// error ends the mission with (false, err); the partial Result is
// available on the mission value but Finish must not be used.
func (m *Mission) Step() (bool, error) {
	if m.over || !(m.t < m.cfg.MaxSec) {
		m.over = true
		return false, nil
	}
	if m.tracker.Done() {
		m.res.Completed = true
		m.over = true
		return false, nil
	}
	cfg := &m.cfg
	res := &m.res
	dt := cfg.DT
	t := m.t
	w := m.gusts.Step(dt)

	// True acceleration for the accelerometer model (synthesizing
	// sources consume it; replay sources ignore it).
	accel := trueAccel(cfg.Profile, m.truth, m.lastU, w)
	reading, err := m.src.Sample(sensors.Tick{T: t, DT: dt, Truth: m.truth, TruthAccel: accel})
	if err != nil {
		m.over = true
		return false, srcErr(t, err)
	}
	meas := reading.State
	attackActive := reading.AttackActive

	u := m.fw.Tick(t, meas, m.tracker.Target())
	m.lastU = u
	// Detection latency: ticks from the attack first reaching the
	// sensors to the detector alert latching.
	if attackActive && m.attackOnsetTick < 0 {
		m.attackOnsetTick = m.tick
	}
	if m.attackOnsetTick >= 0 && !m.latencyRecorded && m.fw.AlertActive() {
		m.tel.SetDetectionLatency(m.tick - m.attackOnsetTick)
		m.latencyRecorded = true
	}
	if cfg.CollectErrors && m.tick%5 == 0 {
		res.ErrorSamples = append(res.ErrorSamples, m.fw.LastError())
	}
	// Advance the mission plan on the post-tick believed state, i.e.
	// after detection/diagnosis/reconstruction have had the chance to
	// scrub an attack-induced jump out of the estimate this tick.
	believed := m.fw.Believed()
	m.tracker.Advance(believed.X, believed.Y, believed.Z)

	// Physics.
	if cfg.Profile.IsQuad() {
		m.truth = cfg.Profile.Quad.Step(m.truth, u, w, dt)
	} else {
		m.truth = cfg.Profile.Rover.Step(m.truth, u, w, dt)
	}

	// Telemetry.
	res.EnergyProxy += math.Abs(u.Thrust) * dt
	m.noteDiagnosis(attackActive)
	if mb := m.fw.MemoryBytes(); mb > res.MemoryBytes {
		res.MemoryBytes = mb
	}
	if m.tick%10 == 0 {
		res.AttitudeSeries = append(res.AttitudeSeries, [3]float64{m.truth.Roll, m.truth.Pitch, m.truth.Yaw})
	}
	if cfg.TraceEvery > 0 && m.tick%cfg.TraceEvery == 0 {
		res.Trace = append(res.Trace, TracePoint{
			T: t, Truth: m.truth, Believed: m.fw.Believed(),
			Recovering: m.fw.Recovering(), AlertActive: m.fw.AlertActive(),
			AttackActive: attackActive,
		})
	}
	m.tick++
	res.Duration = t

	// Crash detection (§5.2: physically damaged).
	if crashed, why := crashCheck(cfg.Profile, m.truth, m.tracker.Phase(), &m.tiltTime, dt); crashed {
		res.Crashed = true
		res.CrashTime = t
		res.CrashReason = why
		m.over = true
		m.t += dt
		return false, nil
	}
	m.t += dt
	return true, nil
}

// noteDiagnosis captures the pipeline's diagnosis verdict into the
// result while an attack or a recovery episode is in progress. The
// clones it takes happen only on attacked or recovering ticks, so it is
// a declared hotalloc cold cut point of the fleet's lockstep loop.
func (m *Mission) noteDiagnosis(attackActive bool) {
	if attackActive && m.fw.DiagnosisRan() {
		m.res.DiagnosedDuringAttack = m.fw.Compromised()
		m.res.DiagnosisRanDuringAttack = true
	}
	if m.fw.Recovering() {
		if c := m.fw.Compromised(); c.Len() > 0 {
			m.res.LastRecoveryDiagnosis = c
		}
	}
}

// srcErr wraps a sensor-source failure with its mission time. Kept out
// of Step so the hot loop stays free of the fmt boxing on the (terminal)
// error path; it is a declared hotalloc cold cut point.
func srcErr(t float64, err error) error {
	return fmt.Errorf("sim: sensor source at t=%.2fs: %w", t, err)
}

// Finish computes the mission outcome: crash/stall classification, final
// deviation, overhead accounting, and the telemetry record. Call it once,
// after Step has returned false without an error.
func (m *Mission) Finish() Result {
	res := &m.res
	if m.tracker.Done() {
		res.Completed = true
	}
	res.Stalled = !res.Completed && !res.Crashed

	dest := m.cfg.Plan.Destination()
	res.FinalDistance = m.truth.HorizontalDistanceTo(dest.X, dest.Y)
	res.Success = res.Completed && !res.Crashed && res.FinalDistance < SuccessRadius
	res.RecoveryActivations = m.fw.RecoveryActivations()
	res.DefenseNS, res.TotalNS, res.Ticks = m.fw.Overhead()

	m.tel.SetStages(m.fw.Stages())
	detail := "completed"
	switch {
	case res.Crashed:
		detail = "crashed:" + res.CrashReason
	case res.Stalled:
		detail = "stalled"
	}
	m.tel.FinishMission(res.Ticks, detail, telemetry.Outcome{
		Success:               res.Success,
		Crashed:               res.Crashed,
		Stalled:               res.Stalled,
		AttackMounted:         m.src.AttackMounted(),
		DiagnosedDuringAttack: res.DiagnosisRanDuringAttack && res.DiagnosedDuringAttack.Len() > 0,
	})
	res.Telemetry = m.tel.Mission()
	return m.res
}

// trueAccel returns the translational acceleration of the vehicle at its
// current state (what a perfect accelerometer would measure in this
// simplified world-frame model).
func trueAccel(p vehicle.Profile, s vehicle.State, u vehicle.Input, w vehicle.Wind) [3]float64 {
	if p.IsQuad() {
		d := p.Quad.Derivative(s, u, w)
		return [3]float64{d.VX, d.VY, d.VZ}
	}
	d := p.Rover.Derivative(s, u, w)
	return [3]float64{d.VX, d.VY, 0}
}

// crashCheck classifies physical crashes: a hard ground impact outside
// the landing phase, sustained loss of attitude, or gross divergence.
func crashCheck(p vehicle.Profile, s vehicle.State, phase mission.Phase, tiltTime *float64, dt float64) (bool, string) {
	if dist := math.Hypot(s.X, s.Y); dist > 2000 {
		return true, "diverged"
	}
	if !p.IsQuad() {
		return false, ""
	}
	if s.Z <= 0.01 && phase != mission.PhaseLanding && phase != mission.PhaseComplete && phase != mission.PhaseTakeoff {
		return true, "ground impact"
	}
	if math.Abs(s.Roll) > 1.2 || math.Abs(s.Pitch) > 1.2 {
		*tiltTime += dt
		if *tiltTime > 0.3 {
			return true, "attitude loss"
		}
	} else {
		*tiltTime = 0
	}
	return false, ""
}
