// Package sim is the closed-loop mission harness: it wires the vehicle
// physics, wind, sensor suite, SDA injection, and a defense framework into
// one simulated mission and reports the outcome metrics the paper's
// evaluation uses (mission success, crash, deviation, delay, overheads).
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/diagnosis"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
	"repro/internal/wind"
)

// Config describes one mission run.
type Config struct {
	Profile  vehicle.Profile
	Plan     mission.Plan
	Strategy core.Strategy

	// Source supplies the per-tick sensor readings. Nil selects the
	// simulator synthesizer (a SimSource built from Profile, Seed,
	// Attacks, and the dropout settings — the classic closed-loop
	// mission). A non-nil Source owns attack and failure injection
	// itself, so Attacks/DropoutAt/DropoutSensors must stay unset (see
	// Validate). A Source is stateful and must not be shared between
	// missions.
	Source sensors.Source

	// Delta are the diagnosis thresholds; zero value uses
	// core.DefaultDelta for the profile.
	Delta diagnosis.Delta
	// Diagnoser optionally overrides the diagnosis technique.
	Diagnoser diagnosis.Diagnoser
	// Detector optionally overrides the attack detector.
	Detector detect.Detector
	// WindowSec is the checkpoint window (default 15 s).
	WindowSec float64

	// Attacks is the SDA schedule; nil means attack-free.
	Attacks *attack.Schedule

	// DropoutAt fails the DropoutSensors at the given mission time
	// (failure injection; zero disables).
	DropoutAt      float64
	DropoutSensors sensors.TypeSet

	// WindMean/WindGust/WindDir parameterize the wind model.
	WindMean, WindGust, WindDir float64

	// Seed drives all stochastic components (sensor noise, wind).
	Seed int64
	// DT is the physics/control period (default 0.01 s).
	DT float64
	// MaxSec is the mission time budget (default 240 s).
	MaxSec float64
	// TraceEvery records a trace point every N ticks (0 disables).
	TraceEvery int
	// CollectErrors records the framework's per-tick diagnosis error
	// vector (decimated 1:5) for δ calibration.
	CollectErrors bool
	// TraceTransitions records every pipeline FSM mode transition as a
	// stage-attributed telemetry event. Off by default so run reports stay
	// byte-stable across pipeline-internal refactors.
	TraceTransitions bool
}

// TracePoint is one decimated sample of the mission for figures.
type TracePoint struct {
	T            float64
	Truth        vehicle.State
	Believed     vehicle.State
	Recovering   bool
	AlertActive  bool
	AttackActive bool
}

// Result is the mission outcome.
type Result struct {
	// Completed reports whether the mission tracker reached its end.
	Completed bool
	// Crashed reports a physical crash (ground impact or loss of
	// attitude).
	Crashed     bool
	CrashTime   float64
	CrashReason string
	// Stalled reports budget exhaustion without completion or crash.
	Stalled bool
	// FinalDistance is the true horizontal distance from the destination
	// at mission end.
	FinalDistance float64
	// Success is the paper's mission-success criterion: completed, no
	// crash, final deviation under 10 m (§5.2).
	Success bool
	// Duration is the mission time (simulated seconds).
	Duration float64

	// DiagnosedDuringAttack is the last diagnosis verdict made while an
	// attack was active (for TP accounting).
	DiagnosedDuringAttack sensors.TypeSet
	// DiagnosisRanDuringAttack reports whether a diagnosis verdict was
	// produced while the attack was active.
	DiagnosisRanDuringAttack bool
	// RecoveryActivations counts recovery episodes.
	RecoveryActivations int
	// LastRecoveryDiagnosis is the diagnosis verdict of the most recent
	// recovery activation (attack or not — used by the FP experiments to
	// see what a gratuitous activation flagged).
	LastRecoveryDiagnosis sensors.TypeSet

	// AttitudeSeries holds decimated [roll pitch yaw] samples for RMSD.
	AttitudeSeries [][3]float64
	// Trace holds the decimated mission trace when requested.
	Trace []TracePoint

	// EnergyProxy integrates |thrust|·dt (the motor-effort battery
	// proxy).
	EnergyProxy float64
	// DefenseNS and TotalNS support the CPU-overhead accounting: modeled
	// nanoseconds of the defense modules and of the whole control loop on
	// the reference flight controller (see core's cost model). Modeled —
	// not wall-clock — time keeps mission results byte-identical across
	// runs and worker counts.
	DefenseNS int64
	TotalNS   int64
	Ticks     int
	// ErrorSamples holds decimated diagnosis error vectors when
	// CollectErrors is set.
	ErrorSamples []sensors.PhysState
	// MemoryBytes is the peak checkpoint buffer footprint.
	MemoryBytes int
	// Telemetry is the mission's full pipeline record: event trace,
	// counters, per-stage cost-model totals, and outcome classification.
	Telemetry *telemetry.Mission
}

// SuccessRadius is the paper's §5.2 mission-success threshold: 2× the
// standard 5 m GPS offset.
const SuccessRadius = 10.0

// cancelCheckTicks is how many control periods elapse between context
// polls in RunContext (100 ticks = 1 simulated second at the default DT —
// cheap enough to be invisible, frequent enough that cancellation lands
// within milliseconds of real time).
const cancelCheckTicks = 100

// Run executes one mission and returns its outcome.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the mission loop polls
// ctx every cancelCheckTicks control periods (about one simulated second)
// and abandons the mission with ctx.Err() once the context is done. The
// parallel runner (internal/runner) uses this to stop a sweep mid-flight.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.DT <= 0 {
		cfg.DT = 0.01
	}
	if cfg.MaxSec <= 0 {
		cfg.MaxSec = 240
	}
	if cfg.Delta == (diagnosis.Delta{}) {
		cfg.Delta = core.DefaultDelta(cfg.Profile)
	}
	tel := telemetry.NewRecorder()
	if cfg.TraceTransitions {
		tel.EnableTransitions()
	}
	fw, err := core.New(core.Config{
		Profile:   cfg.Profile,
		DT:        cfg.DT,
		Delta:     cfg.Delta,
		WindowSec: cfg.WindowSec,
		Diagnoser: cfg.Diagnoser,
		Detector:  cfg.Detector,
		Telemetry: tel,
	}, cfg.Strategy)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	// The master rng's draw order is part of the byte-identity contract:
	// first the suite's noise seed, then the wind seed. The suite seed is
	// drawn even when an external Source replaces the simulator suite, so
	// the wind — which stays simulator-side — sees the same seed either
	// way and a recorded mission replays bit-exactly.
	rng := rand.New(rand.NewSource(cfg.Seed))
	suiteSeed := rng.Int63()
	gusts := wind.New(cfg.WindMean, cfg.WindDir, cfg.WindGust, rand.New(rand.NewSource(rng.Int63())))
	src := cfg.Source
	if src == nil {
		src = newSimSource(cfg.Profile, suiteSeed, cfg.Attacks, cfg.DropoutAt, cfg.DropoutSensors)
	}
	tracker := mission.NewTracker(cfg.Plan, 2.0)

	var truth vehicle.State
	fw.Init(truth)

	var res Result
	var lastU vehicle.Input
	tiltTime := 0.0
	dt := cfg.DT
	tick := 0

	done := ctx.Done()
	attackOnsetTick := -1
	latencyRecorded := false
	for t := 0.0; t < cfg.MaxSec; t += dt {
		if tick%cancelCheckTicks == 0 {
			select {
			case <-done:
				return res, ctx.Err()
			default:
			}
		}
		if tracker.Done() {
			res.Completed = true
			break
		}
		w := gusts.Step(dt)

		// True acceleration for the accelerometer model (synthesizing
		// sources consume it; replay sources ignore it).
		accel := trueAccel(cfg.Profile, truth, lastU, w)
		reading, err := src.Sample(sensors.Tick{T: t, DT: dt, Truth: truth, TruthAccel: accel})
		if err != nil {
			return res, fmt.Errorf("sim: sensor source at t=%.2fs: %w", t, err)
		}
		meas := reading.State
		attackActive := reading.AttackActive

		u := fw.Tick(t, meas, tracker.Target())
		lastU = u
		// Detection latency: ticks from the attack first reaching the
		// sensors to the detector alert latching.
		if attackActive && attackOnsetTick < 0 {
			attackOnsetTick = tick
		}
		if attackOnsetTick >= 0 && !latencyRecorded && fw.AlertActive() {
			tel.SetDetectionLatency(tick - attackOnsetTick)
			latencyRecorded = true
		}
		if cfg.CollectErrors && tick%5 == 0 {
			res.ErrorSamples = append(res.ErrorSamples, fw.LastError())
		}
		// Advance the mission plan on the post-tick believed state, i.e.
		// after detection/diagnosis/reconstruction have had the chance to
		// scrub an attack-induced jump out of the estimate this tick.
		believed := fw.Believed()
		tracker.Advance(believed.X, believed.Y, believed.Z)

		// Physics.
		if cfg.Profile.IsQuad() {
			truth = cfg.Profile.Quad.Step(truth, u, w, dt)
		} else {
			truth = cfg.Profile.Rover.Step(truth, u, w, dt)
		}

		// Telemetry.
		res.EnergyProxy += math.Abs(u.Thrust) * dt
		if attackActive && fw.DiagnosisRan() {
			res.DiagnosedDuringAttack = fw.Compromised()
			res.DiagnosisRanDuringAttack = true
		}
		if fw.Recovering() {
			if c := fw.Compromised(); c.Len() > 0 {
				res.LastRecoveryDiagnosis = c
			}
		}
		if mb := fw.MemoryBytes(); mb > res.MemoryBytes {
			res.MemoryBytes = mb
		}
		if tick%10 == 0 {
			res.AttitudeSeries = append(res.AttitudeSeries, [3]float64{truth.Roll, truth.Pitch, truth.Yaw})
		}
		if cfg.TraceEvery > 0 && tick%cfg.TraceEvery == 0 {
			res.Trace = append(res.Trace, TracePoint{
				T: t, Truth: truth, Believed: fw.Believed(),
				Recovering: fw.Recovering(), AlertActive: fw.AlertActive(),
				AttackActive: attackActive,
			})
		}
		tick++
		res.Duration = t

		// Crash detection (§5.2: physically damaged).
		if crashed, why := crashCheck(cfg.Profile, truth, tracker.Phase(), &tiltTime, dt); crashed {
			res.Crashed = true
			res.CrashTime = t
			res.CrashReason = why
			break
		}
	}
	if tracker.Done() {
		res.Completed = true
	}
	res.Stalled = !res.Completed && !res.Crashed

	dest := cfg.Plan.Destination()
	res.FinalDistance = truth.HorizontalDistanceTo(dest.X, dest.Y)
	res.Success = res.Completed && !res.Crashed && res.FinalDistance < SuccessRadius
	res.RecoveryActivations = fw.RecoveryActivations()
	res.DefenseNS, res.TotalNS, res.Ticks = fw.Overhead()

	tel.SetStages(fw.Stages())
	detail := "completed"
	switch {
	case res.Crashed:
		detail = "crashed:" + res.CrashReason
	case res.Stalled:
		detail = "stalled"
	}
	tel.FinishMission(res.Ticks, detail, telemetry.Outcome{
		Success:               res.Success,
		Crashed:               res.Crashed,
		Stalled:               res.Stalled,
		AttackMounted:         src.AttackMounted(),
		DiagnosedDuringAttack: res.DiagnosisRanDuringAttack && res.DiagnosedDuringAttack.Len() > 0,
	})
	res.Telemetry = tel.Mission()
	return res, nil
}

// trueAccel returns the translational acceleration of the vehicle at its
// current state (what a perfect accelerometer would measure in this
// simplified world-frame model).
func trueAccel(p vehicle.Profile, s vehicle.State, u vehicle.Input, w vehicle.Wind) [3]float64 {
	if p.IsQuad() {
		d := p.Quad.Derivative(s, u, w)
		return [3]float64{d.VX, d.VY, d.VZ}
	}
	d := p.Rover.Derivative(s, u, w)
	return [3]float64{d.VX, d.VY, 0}
}

// crashCheck classifies physical crashes: a hard ground impact outside
// the landing phase, sustained loss of attitude, or gross divergence.
func crashCheck(p vehicle.Profile, s vehicle.State, phase mission.Phase, tiltTime *float64, dt float64) (bool, string) {
	if dist := math.Hypot(s.X, s.Y); dist > 2000 {
		return true, "diverged"
	}
	if !p.IsQuad() {
		return false, ""
	}
	if s.Z <= 0.01 && phase != mission.PhaseLanding && phase != mission.PhaseComplete && phase != mission.PhaseTakeoff {
		return true, "ground impact"
	}
	if math.Abs(s.Roll) > 1.2 || math.Abs(s.Pitch) > 1.2 {
		*tiltTime += dt
		if *tiltTime > 0.3 {
			return true, "attitude loss"
		}
	} else {
		*tiltTime = 0
	}
	return false, ""
}
