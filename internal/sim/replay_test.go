package sim

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/source"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

// reportBytes renders one mission's telemetry the way run reports do, so
// replay equivalence is judged on the same bytes CI diffs.
func reportBytes(t *testing.T, res Result, seed int64) []byte {
	t.Helper()
	col := telemetry.NewCollector()
	col.Begin("replay-prop")
	col.Add(res.Telemetry)
	rep, err := col.Report(telemetry.Meta{Generator: "replay-prop", Missions: 1, Seed: seed, Wind: 1})
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func gpsWindowSchedule(seed int64) *attack.Schedule {
	rng := rand.New(rand.NewSource(seed))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 35)
	return attack.NewSchedule(sda)
}

// TestReplayReproducesLiveMission is the seam's core property: for every
// defense strategy and both vehicle kinds, a mission recorded through a
// Recorder-wrapped SimSource and then replayed from the serialized trace
// produces a byte-identical telemetry report. The trace round-trips
// through its on-disk encoding, so the property covers the format too.
func TestReplayReproducesLiveMission(t *testing.T) {
	if testing.Short() {
		t.Skip("full missions")
	}
	const seed = 11
	for _, pn := range []vehicle.ProfileName{vehicle.ArduCopter, vehicle.ArduRover} {
		for _, strat := range []core.Strategy{core.StrategyDeLorean, core.StrategySSR, core.StrategyPIDPiper} {
			t.Run(string(pn)+"/"+strat.String(), func(t *testing.T) {
				profile := vehicle.MustProfile(pn)
				cfg := Config{
					Profile:   profile,
					Plan:      mission.NewStraight(50, profile.CruiseAltitude),
					Strategy:  strat,
					WindowSec: 8,
					WindMean:  1,
					Seed:      seed,
					MaxSec:    120,
				}

				rec := source.NewRecorder(NewSimSource(SourceConfig{
					Profile: profile, Seed: cfg.Seed, Attacks: gpsWindowSchedule(99),
				}))
				live := cfg
				live.Source = rec
				resLive, err := Run(live)
				if err != nil {
					t.Fatalf("live run: %v", err)
				}

				var enc bytes.Buffer
				if err := rec.Trace(nil).Encode(&enc); err != nil {
					t.Fatalf("Encode: %v", err)
				}
				tr, err := trace.Decode(bytes.NewReader(enc.Bytes()))
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				replay := cfg
				replay.Source = source.NewReplay(tr)
				resReplay, err := Run(replay)
				if err != nil {
					t.Fatalf("replay run: %v", err)
				}

				a, b := reportBytes(t, resLive, seed), reportBytes(t, resReplay, seed)
				if !bytes.Equal(a, b) {
					t.Errorf("replayed report differs from live report (%d vs %d bytes)", len(a), len(b))
				}
				if resLive.Success != resReplay.Success || resLive.Ticks != resReplay.Ticks {
					t.Errorf("outcome drift: live {success:%v ticks:%d} replay {success:%v ticks:%d}",
						resLive.Success, resLive.Ticks, resReplay.Success, resReplay.Ticks)
				}
			})
		}
	}
}

// TestExternalSimSourceMatchesDefault pins the refactor's bit-exactness:
// passing an explicitly constructed SimSource through Config.Source is
// indistinguishable from the nil-Source path that builds one internally.
func TestExternalSimSourceMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("full missions")
	}
	cfg := baseCfg(core.StrategyDeLorean, 7)
	cfg.Attacks = gpsWindowSchedule(99)
	resDefault, err := Run(cfg)
	if err != nil {
		t.Fatalf("nil-Source run: %v", err)
	}

	ext := baseCfg(core.StrategyDeLorean, 7)
	ext.Source = NewSimSource(SourceConfig{
		Profile: ext.Profile, Seed: ext.Seed, Attacks: gpsWindowSchedule(99),
	})
	resExt, err := Run(ext)
	if err != nil {
		t.Fatalf("external-Source run: %v", err)
	}
	a, b := reportBytes(t, resDefault, 7), reportBytes(t, resExt, 7)
	if !bytes.Equal(a, b) {
		t.Error("external SimSource diverged from the internal nil-Source path")
	}
}

// TestReplayTruncatedTraceAborts: a trace shorter than the mission fails
// the run with source.ErrExhausted instead of silently freezing sensors.
func TestReplayTruncatedTraceAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("full mission")
	}
	cfg := baseCfg(core.StrategyDeLorean, 5)
	rec := source.NewRecorder(NewSimSource(SourceConfig{Profile: cfg.Profile, Seed: cfg.Seed}))
	live := cfg
	live.Source = rec
	if _, err := Run(live); err != nil {
		t.Fatalf("record run: %v", err)
	}
	tr := rec.Trace(nil)
	if len(tr.Frames) < 200 {
		t.Fatalf("recorded only %d frames", len(tr.Frames))
	}
	tr.Frames = tr.Frames[:200] // 2 s of a mission that needs far more

	short := cfg
	short.Source = source.NewReplay(tr)
	_, err := Run(short)
	if !errors.Is(err, source.ErrExhausted) {
		t.Errorf("got %v, want wrapped source.ErrExhausted", err)
	}
}
