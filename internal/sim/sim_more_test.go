package sim

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/sensors"
)

// Additional integration tests: per-sensor attacks and the tolerating
// (SSR / PID-Piper) strategies.

func TestMagAttackDeLorean(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 21)
	rng := rand.New(rand.NewSource(21))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.Mag), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiagnosedDuringAttack.Has(sensors.Mag) {
		t.Errorf("mag attack not diagnosed: %v", res.DiagnosedDuringAttack)
	}
	if res.Crashed {
		t.Errorf("crashed under mag-only SDA: %+v", res.CrashReason)
	}
	if !res.Success {
		t.Errorf("mag-only SDA should be recoverable: %+v", res)
	}
}

func TestBaroAttackDeLorean(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 22)
	rng := rand.New(rand.NewSource(22))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.Baro), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiagnosedDuringAttack.Has(sensors.Baro) {
		t.Errorf("baro attack not diagnosed: %v", res.DiagnosedDuringAttack)
	}
	if !res.Success {
		t.Errorf("baro-only SDA should be recoverable: %+v", res)
	}
}

func TestAccelAttackDeLorean(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 23)
	rng := rand.New(rand.NewSource(23))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.Accel), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiagnosedDuringAttack.Has(sensors.Accel) {
		t.Errorf("accel attack not diagnosed: %v", res.DiagnosedDuringAttack)
	}
	if !res.Success {
		t.Errorf("accel-only SDA should be recoverable: %+v", res)
	}
}

func TestSSRActivatesOnAttack(t *testing.T) {
	cfg := baseCfg(core.StrategySSR, 24)
	rng := rand.New(rand.NewSource(24))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 30)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryActivations == 0 {
		t.Error("SSR never engaged its virtual sensors")
	}
}

func TestPIDPiperActivatesOnAttack(t *testing.T) {
	cfg := baseCfg(core.StrategyPIDPiper, 25)
	rng := rand.New(rand.NewSource(25))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 30)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryActivations == 0 {
		t.Error("PID-Piper never engaged its FFC")
	}
}

func TestAllSensorAttackCheckpointMethodsSurvive(t *testing.T) {
	// Worst case: all five sensor types attacked. The checkpoint-based
	// techniques should avoid crashing (paper: ≤4% crash at k=5).
	for _, strat := range []core.Strategy{core.StrategyLQRO, core.StrategyDeLorean} {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := baseCfg(strat, 26)
			rng := rand.New(rand.NewSource(26))
			sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.AllTypes()...), 15, 30)
			cfg.Attacks = attack.NewSchedule(sda)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashed {
				t.Errorf("%v crashed under all-sensor SDA: %s", strat, res.CrashReason)
			}
		})
	}
}

func TestCollectErrorsProducesSamples(t *testing.T) {
	cfg := baseCfg(core.StrategyNone, 27)
	cfg.CollectErrors = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorSamples) == 0 {
		t.Fatal("no error samples collected")
	}
	for _, e := range res.ErrorSamples {
		if !e.IsFinite() {
			t.Fatal("non-finite error sample")
		}
	}
}

func TestOverheadTelemetry(t *testing.T) {
	res, err := Run(baseCfg(core.StrategyDeLorean, 28))
	if err != nil {
		t.Fatal(err)
	}
	if res.DefenseNS <= 0 || res.TotalNS <= 0 || res.Ticks <= 0 {
		t.Errorf("missing overhead telemetry: %+v", res)
	}
	if res.DefenseNS > res.TotalNS {
		t.Error("defense time exceeds total loop time")
	}
	if res.MemoryBytes <= 0 {
		t.Error("no checkpoint memory recorded")
	}
	if res.EnergyProxy <= 0 {
		t.Error("no energy recorded")
	}
}

func TestGPSDropoutFailureInjection(t *testing.T) {
	// Failure injection: the GPS dies mid-flight (holds stale values).
	// The framework should treat the frozen channel like an anomaly,
	// isolate it, and finish the mission on the remaining sensors.
	cfg := baseCfg(core.StrategyDeLorean, 33)
	cfg.DropoutAt = 15
	cfg.DropoutSensors = sensors.NewTypeSet(sensors.GPS)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Errorf("crashed on GPS dropout: %s", res.CrashReason)
	}
	if !res.Completed {
		t.Errorf("mission did not complete after GPS dropout: %+v", res)
	}
	// A stale-held GPS on a moving vehicle must have raised an alert and
	// implicated the GPS.
	if res.RecoveryActivations == 0 {
		t.Error("dropout never triggered recovery")
	}
}

func TestInnovationDetectorEndToEnd(t *testing.T) {
	// The Savior-style innovation detector must also drive the pipeline.
	cfg := baseCfg(core.StrategyDeLorean, 34)
	th := core.DefaultDelta(cfg.Profile)
	var monitored detect.Thresholds
	for i, v := range th {
		monitored[i] = v
	}
	cfg.Detector = detect.NewInnovation(monitored)
	rng := rand.New(rand.NewSource(34))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 30)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiagnosisRanDuringAttack {
		t.Error("innovation detector never triggered diagnosis")
	}
	if res.Crashed {
		t.Errorf("crashed: %s", res.CrashReason)
	}
}

// Property: attack-free missions never trigger recovery, across seeds and
// wind draws (the gratuitous-activation invariant of §6.1).
func TestPropertyNoGratuitousRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full missions")
	}
	for seed := int64(40); seed < 46; seed++ {
		cfg := baseCfg(core.StrategyDeLorean, seed)
		cfg.WindMean = float64(seed%4) * 0.8
		cfg.WindGust = 0.5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.RecoveryActivations != 0 {
			t.Errorf("seed %d: %d gratuitous activations (wind %.1f)", seed, res.RecoveryActivations, cfg.WindMean)
		}
	}
}
