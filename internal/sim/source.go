package sim

import (
	"math/rand"

	"repro/internal/attack"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// SourceConfig describes a simulator sensor source: the synthesizer half
// of the sensor-ingestion seam, extracted from the mission loop.
type SourceConfig struct {
	// Profile sets the sensor rates and noise floors.
	Profile vehicle.Profile
	// Seed is the mission seed; the suite's noise rng is derived from it
	// exactly as RunContext derives it, so an externally constructed
	// SimSource is bit-identical to the one RunContext builds internally
	// for the same Config.Seed.
	Seed int64
	// Attacks is the SDA schedule the source bakes into its measurements;
	// nil means attack-free.
	Attacks *attack.Schedule
	// DropoutAt / DropoutSensors inject a sensor failure at the given
	// mission time (zero disables).
	DropoutAt      float64
	DropoutSensors sensors.TypeSet
}

// SimSource synthesizes sensor readings from simulated physics: the
// multi-rate noisy suite, SDA bias injection gated on emitter range, and
// failure (dropout) injection — the mission loop's former inline
// synthesis refactored behind the sensors.Source seam, bit-exact with the
// pre-seam output.
type SimSource struct {
	suite   *sensors.Suite
	attacks *attack.Schedule

	dropoutAt      float64
	dropoutSensors sensors.TypeSet
	dropoutArmed   bool
}

// NewSimSource builds a simulator source. Wrap it in a source.Recorder to
// capture the mission as an on-disk trace.
func NewSimSource(c SourceConfig) *SimSource {
	rng := rand.New(rand.NewSource(c.Seed))
	return newSimSource(c.Profile, rng.Int63(), c.Attacks, c.DropoutAt, c.DropoutSensors)
}

// newSimSource is the seeded core shared with RunContext: suiteSeed is
// the first Int63 draw of the mission's master rng.
func newSimSource(p vehicle.Profile, suiteSeed int64, attacks *attack.Schedule, dropoutAt float64, dropoutSensors sensors.TypeSet) *SimSource {
	return &SimSource{
		suite:          sensors.NewSuite(p, rand.New(rand.NewSource(suiteSeed))),
		attacks:        attacks,
		dropoutAt:      dropoutAt,
		dropoutSensors: dropoutSensors,
		dropoutArmed:   dropoutAt > 0 && dropoutSensors.Len() > 0,
	}
}

// Sample synthesizes the frame at tick.T: arm any scheduled dropout,
// gate the SDA bias on the emitters' physical range at the vehicle's true
// position (Table 2), and advance the multi-rate suite.
func (s *SimSource) Sample(tick sensors.Tick) (sensors.Reading, error) {
	if s.dropoutArmed && tick.T >= s.dropoutAt {
		s.suite.SetDropout(s.dropoutSensors)
		s.dropoutArmed = false
	}
	var rd sensors.Reading
	var bias sensors.Bias
	if s.attacks != nil {
		// The injection reaches the sensors only while the vehicle is
		// physically inside the emitters' range (Table 2).
		bias = s.attacks.BiasAtPos(tick.T, tick.Truth.X, tick.Truth.Y)
		rd.AttackActive = s.attacks.InRangeAt(tick.T, tick.Truth.X, tick.Truth.Y)
		rd.AttackTargets = bias.TargetMask()
	}
	rd.State = s.suite.Sample(tick.T, tick.DT, tick.Truth, tick.TruthAccel, bias)
	return rd, nil
}

// AttackMounted reports whether the source carries an SDA schedule.
func (s *SimSource) AttackMounted() bool { return s.attacks != nil }
