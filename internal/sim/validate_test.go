package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/sensors"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	// The zero values that select documented defaults must pass.
	cfg := baseCfg(0, 1)
	cfg.DT, cfg.MaxSec, cfg.WindowSec = 0, 0, 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
}

func TestValidateNamesTheField(t *testing.T) {
	for _, tt := range []struct {
		field  string
		mutate func(*Config)
	}{
		{"Profile", func(c *Config) { *c = Config{} }},
		{"DT", func(c *Config) { c.DT = -0.01 }},
		{"DT", func(c *Config) { c.DT = math.NaN() }},
		{"DT", func(c *Config) { c.DT = math.Inf(1) }},
		{"MaxSec", func(c *Config) { c.MaxSec = -1 }},
		{"WindowSec", func(c *Config) { c.WindowSec = math.NaN() }},
		{"TraceEvery", func(c *Config) { c.TraceEvery = -5 }},
		{"DropoutAt", func(c *Config) { c.DropoutAt = -2 }},
		{"Attacks", func(c *Config) {
			c.Source = NewSimSource(SourceConfig{Profile: c.Profile, Seed: c.Seed})
			c.Attacks = attack.NewSchedule()
		}},
		{"DropoutAt", func(c *Config) {
			c.Source = NewSimSource(SourceConfig{Profile: c.Profile, Seed: c.Seed})
			c.DropoutAt, c.DropoutSensors = 10, sensors.NewTypeSet(sensors.GPS)
		}},
	} {
		cfg := baseCfg(0, 1)
		tt.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tt.field)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error type %T, want *ConfigError", tt.field, err)
			continue
		}
		if ce.Field != tt.field {
			t.Errorf("got Config.%s, want Config.%s (%v)", ce.Field, tt.field, err)
		}
		if !strings.Contains(err.Error(), "Config."+tt.field) {
			t.Errorf("message %q does not name the field", err)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := baseCfg(0, 1)
	cfg.DT = -1
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an invalid config")
	}
}
