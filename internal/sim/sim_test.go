package sim

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

func baseCfg(strategy core.Strategy, seed int64) Config {
	return Config{
		Profile:   vehicle.MustProfile(vehicle.ArduCopter),
		Plan:      mission.NewStraight(50, 10),
		Strategy:  strategy,
		WindowSec: 8,
		Seed:      seed,
		MaxSec:    200,
	}
}

func TestAttackFreeMissionSucceeds(t *testing.T) {
	for _, strat := range []core.Strategy{core.StrategyNone, core.StrategyDeLorean, core.StrategyLQRO} {
		t.Run(strat.String(), func(t *testing.T) {
			res, err := Run(baseCfg(strat, 1))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Success {
				t.Errorf("attack-free mission failed: %+v", res)
			}
			if res.RecoveryActivations != 0 {
				t.Errorf("gratuitous recovery in attack-free mission: %d", res.RecoveryActivations)
			}
		})
	}
}

func TestAttackFreeWithWind(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 2)
	cfg.WindMean, cfg.WindGust = 2.0, 0.8
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Success {
		t.Errorf("windy attack-free mission failed: %+v", res)
	}
	if res.RecoveryActivations != 0 {
		t.Errorf("wind triggered recovery: %d activations", res.RecoveryActivations)
	}
}

func TestGPSAttackDeLoreanRecovers(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 3)
	rng := rand.New(rand.NewSource(99))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.DiagnosisRanDuringAttack {
		t.Fatal("diagnosis never ran during the attack")
	}
	if !res.DiagnosedDuringAttack.Equal(sensors.NewTypeSet(sensors.GPS)) {
		t.Errorf("diagnosis = %v, want {GPS}", res.DiagnosedDuringAttack)
	}
	if res.RecoveryActivations == 0 {
		t.Error("recovery never activated")
	}
	if !res.Success {
		t.Errorf("DeLorean failed to recover from single GPS SDA: %+v", res)
	}
}

func TestGPSAttackUndefendedDisrupted(t *testing.T) {
	cfg := baseCfg(core.StrategyNone, 3)
	rng := rand.New(rand.NewSource(99))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 200)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A persistent full-mission GPS spoof with no defense must disrupt the
	// mission: crash, stall, or a badly off-target landing.
	if res.Success {
		t.Errorf("undefended drone succeeded under persistent GPS spoof: %+v", res)
	}
}

func TestMultiSensorAttackLQROvsDeLorean(t *testing.T) {
	targets := sensors.NewTypeSet(sensors.GPS, sensors.Accel)
	mk := func(strat core.Strategy) Result {
		cfg := baseCfg(strat, 4)
		rng := rand.New(rand.NewSource(123))
		sda := attack.New(rng, attack.DefaultParams(), targets, 15, 35)
		cfg.Attacks = attack.NewSchedule(sda)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%v): %v", strat, err)
		}
		return res
	}
	dl := mk(core.StrategyDeLorean)
	lo := mk(core.StrategyLQRO)
	if dl.Crashed {
		t.Errorf("DeLorean crashed: %+v", dl)
	}
	if lo.Crashed {
		t.Errorf("LQR-O crashed: %+v", lo)
	}
	if !dl.Success {
		t.Errorf("DeLorean failed 2-sensor SDA: %+v", dl)
	}
}

func TestGyroAttackDiagnosed(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 5)
	rng := rand.New(rand.NewSource(7))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.Gyro), 15, 30)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.DiagnosedDuringAttack.Has(sensors.Gyro) {
		t.Errorf("gyro attack not diagnosed: %v", res.DiagnosedDuringAttack)
	}
	if res.Crashed {
		t.Errorf("DeLorean crashed under gyro SDA: %+v", res)
	}
}

func TestRoverMissionWithAttack(t *testing.T) {
	cfg := Config{
		Profile:   vehicle.MustProfile(vehicle.AionR1),
		Plan:      mission.NewPolygon(mission.Polygon2, 4, 25, 0),
		Strategy:  core.StrategyDeLorean,
		WindowSec: 8,
		Seed:      6,
		MaxSec:    300,
	}
	rng := rand.New(rand.NewSource(11))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 20, 40)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Success {
		t.Errorf("rover mission failed: %+v", res)
	}
}

func TestTraceRecording(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 8)
	cfg.TraceEvery = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].T <= res.Trace[i-1].T {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseCfg(core.StrategyDeLorean, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseCfg(core.StrategyDeLorean, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.FinalDistance != b.FinalDistance || a.Success != b.Success {
		t.Errorf("same seed, different outcomes: %+v vs %+v", a, b)
	}
}
