package sim

import (
	"math"

	"repro/internal/floats"
)

// ConfigError reports one invalid Config field. Errors name the field so
// callers assembling configs programmatically (the experiment registry,
// the mission service) can point at the offending knob.
type ConfigError struct {
	// Field is the Config field name, e.g. "DT".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return "sim: invalid Config." + e.Field + ": " + e.Reason
}

// Validate checks the configuration for internal consistency before any
// defaulting: zero values that select documented defaults (DT, MaxSec,
// WindowSec, Delta) are valid, negative or non-finite knobs are not, and
// a mission driven by an external Source must not also carry the
// simulator-only synthesis settings (the source owns attack and failure
// injection). RunContext calls it first; it is exported so services can
// reject a bad mission request before committing a worker to it.
func (cfg Config) Validate() error {
	if cfg.Profile.Name == "" {
		return &ConfigError{Field: "Profile", Reason: "empty vehicle profile (use vehicle.LookupProfile)"}
	}
	if cfg.DT < 0 || math.IsNaN(cfg.DT) || math.IsInf(cfg.DT, 0) {
		return &ConfigError{Field: "DT", Reason: "control period must be positive (zero selects the 0.01 s default)"}
	}
	if cfg.MaxSec < 0 || math.IsNaN(cfg.MaxSec) {
		return &ConfigError{Field: "MaxSec", Reason: "mission time budget must be non-negative (zero selects the 240 s default)"}
	}
	if cfg.WindowSec < 0 || math.IsNaN(cfg.WindowSec) {
		return &ConfigError{Field: "WindowSec", Reason: "checkpoint window must be non-negative (zero selects the default)"}
	}
	if cfg.TraceEvery < 0 {
		return &ConfigError{Field: "TraceEvery", Reason: "trace decimation must be non-negative (zero disables tracing)"}
	}
	if cfg.DropoutAt < 0 || math.IsNaN(cfg.DropoutAt) {
		return &ConfigError{Field: "DropoutAt", Reason: "dropout time must be non-negative (zero disables failure injection)"}
	}
	if cfg.Shared != nil {
		dt := cfg.DT
		if floats.Zero(dt) {
			dt = 0.01 // the documented DT default
		}
		if !cfg.Shared.Matches(cfg.Profile.Name, dt) {
			return &ConfigError{Field: "Shared", Reason: "caches built for a different (profile, dt) pair than this mission"}
		}
	}
	if cfg.Source != nil {
		if cfg.Attacks != nil {
			return &ConfigError{Field: "Attacks", Reason: "conflicts with Source: an external source already carries its injections (bake the schedule into the source)"}
		}
		if cfg.DropoutAt > 0 || cfg.DropoutSensors.Len() > 0 {
			return &ConfigError{Field: "DropoutAt", Reason: "conflicts with Source: failure injection is simulator-side (bake the dropout into the source)"}
		}
	}
	return nil
}
