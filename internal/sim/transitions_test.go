package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/sensors"
	"repro/internal/telemetry"
)

// attackedCfg returns a GPS-SDA DeLorean mission configuration.
func attackedCfg(seed int64, trace bool) Config {
	cfg := baseCfg(core.StrategyDeLorean, seed)
	cfg.TraceTransitions = trace
	rng := rand.New(rand.NewSource(seed))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	return cfg
}

// parseMode resolves an FSM mode from its transition-event rendering.
func parseMode(t *testing.T, name string) core.Mode {
	t.Helper()
	for _, m := range []core.Mode{
		core.ModeNominal, core.ModeSuspicious, core.ModeDiagnosing,
		core.ModeRecovering, core.ModeRevalidating, core.ModeExiting,
	} {
		if m.String() == name {
			return m
		}
	}
	t.Fatalf("unknown mode name %q", name)
	return 0
}

// TestTraceTransitionsLegalWalk runs an attacked mission with transition
// tracing on and asserts the recorded transitions form a contiguous legal
// walk of the FSM starting at Nominal — each event exactly one edge,
// each attributed to a stage.
func TestTraceTransitionsLegalWalk(t *testing.T) {
	res, err := Run(attackedCfg(31, true))
	if err != nil {
		t.Fatal(err)
	}
	at := core.ModeNominal
	transitions := 0
	for _, ev := range res.Telemetry.Events {
		if ev.Kind != telemetry.KindModeTransition {
			continue
		}
		transitions++
		// Detail shape: "<from>-><to> stage=<stage>".
		arrow, stage, ok := strings.Cut(ev.Detail, " stage=")
		if !ok || stage == "" {
			t.Fatalf("transition %q lacks stage attribution", ev.Detail)
		}
		fromName, toName, ok := strings.Cut(arrow, "->")
		if !ok {
			t.Fatalf("malformed transition detail %q", ev.Detail)
		}
		from, to := parseMode(t, fromName), parseMode(t, toName)
		if from != at {
			t.Fatalf("transition %q does not continue the walk (machine at %s)", ev.Detail, at)
		}
		if !core.LegalTransition(from, to) {
			t.Fatalf("illegal transition recorded: %q", ev.Detail)
		}
		at = to
	}
	if transitions == 0 {
		t.Fatal("attacked mission recorded no mode transitions")
	}
	// The walk need not end at Nominal: DeLorean's targeted recovery flies
	// the mission onward at speed, so the goal is often reached mid-episode
	// (here while re-validating the isolated GPS).
	if !at.Normal() && !at.Recovery() {
		t.Errorf("mission ended in transient FSM state %s", at)
	}
}

// TestTraceTransitionsPreservesReport pins the byte-identity contract at
// the sim layer: the same mission with tracing on differs from the
// untraced run only by the mode_transition events.
func TestTraceTransitionsPreservesReport(t *testing.T) {
	traced, err := Run(attackedCfg(31, true))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(attackedCfg(31, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range plain.Telemetry.Events {
		if ev.Kind == telemetry.KindModeTransition {
			t.Fatalf("untraced mission recorded a mode transition: %+v", ev)
		}
	}
	stripped := *traced.Telemetry
	stripped.Events = nil
	for _, ev := range traced.Telemetry.Events {
		if ev.Kind != telemetry.KindModeTransition {
			stripped.Events = append(stripped.Events, ev)
		}
	}
	if !reflect.DeepEqual(&stripped, plain.Telemetry) {
		t.Errorf("tracing changed the mission record beyond transition events:\ntraced-stripped: %+v\nplain:           %+v",
			&stripped, plain.Telemetry)
	}
}
