package sim

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/sensors"
	"repro/internal/telemetry"
)

func kinds(events []telemetry.Event) map[telemetry.Kind]int {
	m := make(map[telemetry.Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// TestTelemetryAttackedMission: an attacked, recovered mission must carry
// a full telemetry record — onset-relative detection latency, a recovery
// episode, the alert/recovery event trace, and cost-model stage totals.
func TestTelemetryAttackedMission(t *testing.T) {
	cfg := baseCfg(core.StrategyDeLorean, 3)
	rng := rand.New(rand.NewSource(99))
	sda := attack.New(rng, attack.DefaultParams(), sensors.NewTypeSet(sensors.GPS), 15, 35)
	cfg.Attacks = attack.NewSchedule(sda)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Telemetry
	if m == nil {
		t.Fatal("attacked mission produced no telemetry")
	}
	if !m.Outcome.AttackMounted {
		t.Error("outcome does not record the mounted attack")
	}
	if m.Outcome.Success != res.Success {
		t.Errorf("outcome success = %v, result success = %v", m.Outcome.Success, res.Success)
	}
	if m.DetectionLatencyTicks < 0 {
		t.Errorf("detection latency = %d, want >= 0 (attack was detected)", m.DetectionLatencyTicks)
	}
	if m.Counters.RecoveryEpisodes == 0 {
		t.Error("no recovery episodes counted despite activations")
	}
	if m.Ticks != res.Ticks {
		t.Errorf("telemetry ticks = %d, result ticks = %d", m.Ticks, res.Ticks)
	}
	if m.Stages.TotalNS() <= 0 || m.Stages.DefenseNS() <= 0 {
		t.Errorf("stage totals not populated: %+v", m.Stages)
	}
	ks := kinds(m.Events)
	for _, want := range []telemetry.Kind{
		telemetry.KindAlertRaised, telemetry.KindRecoveryEngaged, telemetry.KindMissionEnd,
	} {
		if ks[want] == 0 {
			t.Errorf("event trace missing %s: %+v", want, m.Events)
		}
	}
	if last := m.Events[len(m.Events)-1]; last.Kind != telemetry.KindMissionEnd {
		t.Errorf("trace ends with %s, want mission_end", last.Kind)
	}
}

// TestTelemetryCleanUndefendedMission: telemetry is always attached, and
// a quiet StrategyNone mission must show no defense activity.
func TestTelemetryCleanUndefendedMission(t *testing.T) {
	res, err := Run(baseCfg(core.StrategyNone, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Telemetry
	if m == nil {
		t.Fatal("clean mission produced no telemetry")
	}
	if m.Outcome.AttackMounted {
		t.Error("clean mission marked as attacked")
	}
	if m.DetectionLatencyTicks != -1 {
		t.Errorf("latency = %d, want -1 (nothing to detect)", m.DetectionLatencyTicks)
	}
	if m.Counters.RecoveryEpisodes != 0 || m.Counters.Reconstructions != 0 {
		t.Errorf("undefended mission recorded defense work: %+v", m.Counters)
	}
	ks := kinds(m.Events)
	if ks[telemetry.KindRecoveryEngaged] != 0 || ks[telemetry.KindAlertRaised] != 0 {
		t.Errorf("undefended mission emitted defense events: %+v", m.Events)
	}
	if ks[telemetry.KindMissionEnd] != 1 {
		t.Errorf("want exactly one mission_end event: %+v", m.Events)
	}
}
