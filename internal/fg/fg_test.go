package fg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThresholdFactorMalicious(t *testing.T) {
	// Both errors above δ: the factor admits only Malicious.
	f := ThresholdFactor(5, 6, 2)
	if f([]Outcome{Malicious}) != 1 {
		t.Error("want f(malicious) = 1 when both errors inflated")
	}
	if f([]Outcome{Benign}) != 0 {
		t.Error("want f(benign) = 0 when both errors inflated")
	}
}

func TestThresholdFactorBenign(t *testing.T) {
	tests := []struct {
		name        string
		ePrev, eCur float64
	}{
		{name: "both below", ePrev: 1, eCur: 1},
		{name: "only current above", ePrev: 1, eCur: 5},
		{name: "only previous above", ePrev: 5, eCur: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := ThresholdFactor(tt.ePrev, tt.eCur, 2)
			if f([]Outcome{Benign}) != 1 {
				t.Error("want f(benign) = 1")
			}
			if f([]Outcome{Malicious}) != 0 {
				t.Error("want f(malicious) = 0")
			}
		})
	}
}

func TestThresholdFactorArityGuard(t *testing.T) {
	f := ThresholdFactor(5, 5, 2)
	if f([]Outcome{Malicious, Benign}) != 0 {
		t.Error("wrong-arity assignment should score 0")
	}
}

func TestMarginalSingleVariableInflated(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	g.AddFactor("fx", ThresholdFactor(10, 10, 2), v)
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("P(malicious) = %v, want 1", p)
	}
	o, err := g.MLE(v)
	if err != nil {
		t.Fatal(err)
	}
	if o != Malicious {
		t.Errorf("MLE = %v, want malicious", o)
	}
}

func TestMarginalSingleVariableQuiet(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	g.AddFactor("fx", ThresholdFactor(0.1, 0.1, 2), v)
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("P(malicious) = %v, want 0", p)
	}
	o, err := g.MLE(v)
	if err != nil {
		t.Fatal(err)
	}
	if o != Benign {
		t.Errorf("MLE = %v, want benign", o)
	}
}

func TestMarginalNoFactorsIsPrior(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("P(malicious) with no evidence = %v, want prior 0.5", p)
	}
}

func TestMarginalRespectsPrior(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	v.PriorMalicious = 0.9
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.9) > 1e-12 {
		t.Errorf("P(malicious) = %v, want 0.9", p)
	}
}

func TestMarginalUnknownVariable(t *testing.T) {
	g := New()
	g.AddVariable("x")
	other := New().AddVariable("y")
	if _, err := g.Marginal(other); err == nil {
		t.Error("expected ErrUnknownVariable")
	}
	if _, err := g.Marginal(nil); err == nil {
		t.Error("expected error for nil variable")
	}
}

func TestMultiVariableIndependentFactors(t *testing.T) {
	// Per-sensor graph shape: several states, one factor each. Inference
	// on each variable must be independent of the others.
	g := New()
	vHot := g.AddVariable("hot")
	vCold := g.AddVariable("cold")
	g.AddFactor("fhot", ThresholdFactor(9, 9, 1), vHot)
	g.AddFactor("fcold", ThresholdFactor(0, 0, 1), vCold)
	pHot, err := g.Marginal(vHot)
	if err != nil {
		t.Fatal(err)
	}
	pCold, err := g.Marginal(vCold)
	if err != nil {
		t.Fatal(err)
	}
	if pHot != 1 || pCold != 0 {
		t.Errorf("pHot = %v, pCold = %v; want 1, 0", pHot, pCold)
	}
}

func TestCouplingFactor(t *testing.T) {
	// A pairwise factor that forces both variables to share an outcome.
	g := New()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	g.AddFactor("same", func(assign []Outcome) float64 {
		if assign[0] == assign[1] {
			return 1
		}
		return 0
	}, a, b)
	g.AddFactor("aMal", ThresholdFactor(9, 9, 1), a)
	pb, err := g.Marginal(b)
	if err != nil {
		t.Fatal(err)
	}
	if pb != 1 {
		t.Errorf("coupled variable P(malicious) = %v, want 1", pb)
	}
}

func TestAllZeroFactorsFallBackToPrior(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	g.AddFactor("impossible", func([]Outcome) float64 { return 0 }, v)
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("degenerate graph marginal = %v, want prior fallback 0.5", p)
	}
}

func TestVariablesAccessor(t *testing.T) {
	g := New()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	vars := g.Variables()
	if len(vars) != 2 || vars[0] != a || vars[1] != b {
		t.Errorf("Variables = %v", vars)
	}
}

// Property: for a single-variable graph with a threshold factor, the MLE
// is Malicious exactly when both errors exceed δ (Eq. 2 semantics).
func TestPropertyEq2Semantics(t *testing.T) {
	f := func(ePrev, eCur, delta float64) bool {
		ePrev, eCur = math.Abs(ePrev), math.Abs(eCur)
		delta = math.Abs(delta)
		g := New()
		v := g.AddVariable("s")
		g.AddFactor("f", ThresholdFactor(ePrev, eCur, delta), v)
		o, err := g.MLE(v)
		if err != nil {
			return false
		}
		want := Benign
		if ePrev > delta && eCur > delta {
			want = Malicious
		}
		return o == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeString(t *testing.T) {
	if Benign.String() != "benign" || Malicious.String() != "malicious" {
		t.Error("Outcome.String wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should stringify")
	}
}

// TestMarginalsMatchesMarginal: the single-pass batch inference must
// agree with per-variable Marginal on every variable, including under
// coupling factors.
func TestMarginalsMatchesMarginal(t *testing.T) {
	g := New()
	a := g.AddVariable("a")
	b := g.AddVariable("b")
	c := g.AddVariable("c")
	g.AddFactor("fa", ThresholdFactor(5, 6, 2), a) // inflated → malicious
	g.AddFactor("fb", ThresholdFactor(1, 1, 2), b) // quiet → benign
	// Coupling: c tracks a (both same outcome scores 1, else 0.2).
	g.AddFactor("fc", func(assign []Outcome) float64 {
		if assign[0] == assign[1] {
			return 1
		}
		return 0.2
	}, a, c)

	batch := g.Marginals()
	for i, v := range g.Variables() {
		single, err := g.Marginal(v)
		if err != nil {
			t.Fatalf("Marginal(%s): %v", v.Name, err)
		}
		if math.Abs(batch[i]-single) > 1e-12 {
			t.Errorf("var %s: Marginals=%v Marginal=%v", v.Name, batch[i], single)
		}
	}
	if batch[0] < 0.99 {
		t.Errorf("inflated variable marginal = %v, want ≈ 1", batch[0])
	}
	if batch[1] > 0.01 {
		t.Errorf("quiet variable marginal = %v, want ≈ 0", batch[1])
	}
}

// TestMarginalsZeroMassFallsBackToPriors mirrors
// TestAllZeroFactorsFallBackToPrior for the batch form.
func TestMarginalsZeroMassFallsBackToPriors(t *testing.T) {
	g := New()
	a := g.AddVariable("a")
	a.PriorMalicious = 0.25
	g.AddVariable("b")
	g.AddFactor("impossible", func([]Outcome) float64 { return 0 }, a)
	got := g.Marginals()
	if math.Abs(got[0]-0.25) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("zero-mass marginals = %v, want priors [0.25 0.5]", got)
	}
}

func TestMarginalsEmptyGraph(t *testing.T) {
	if got := New().Marginals(); len(got) != 0 {
		t.Errorf("empty graph marginals = %v, want empty", got)
	}
}

func TestThresholdFactorAtMatchesValueForm(t *testing.T) {
	// The evidence-cell factor must evaluate the exact predicate of the
	// value-capturing factor for the same evidence — including after the
	// cells are rewritten, which is the cached-graph update path.
	cases := []struct{ ePrev, eCur, delta float64 }{
		{0, 0, 1}, {2, 2, 1}, {2, 0.5, 1}, {0.5, 2, 1}, {1, 1, 1},
		{3.7, 9.1, 2.4}, {2.4, 2.4, 2.4},
	}
	var ePrev, eCur float64
	for _, c := range cases {
		ePrev, eCur = c.ePrev, c.eCur
		val := ThresholdFactor(c.ePrev, c.eCur, c.delta)
		at := ThresholdFactorAt(&ePrev, &eCur, c.delta)
		for _, o := range []Outcome{Benign, Malicious} {
			if got, want := at([]Outcome{o}), val([]Outcome{o}); got != want {
				t.Errorf("(%v, %v, δ=%v) outcome %v: at=%v value=%v",
					c.ePrev, c.eCur, c.delta, o, got, want)
			}
		}
		if at([]Outcome{Benign, Malicious}) != 0 {
			t.Error("arity guard missing on evidence-cell factor")
		}
	}
}

func TestThresholdFactorAtTracksCellRewrites(t *testing.T) {
	var ePrev, eCur float64
	g := New()
	v := g.AddVariable("s")
	g.AddFactor("f", ThresholdFactorAt(&ePrev, &eCur, 1), v)

	p, err := g.Marginal(v)
	if err != nil || p != 0 {
		t.Fatalf("quiet evidence: P(malicious) = %v, %v; want 0", p, err)
	}
	ePrev, eCur = 5, 5
	g.Invalidate()
	if p, _ := g.Marginal(v); p != 1 {
		t.Errorf("inflated evidence after rewrite: P(malicious) = %v, want 1", p)
	}
}
