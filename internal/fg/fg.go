// Package fg is a small factor-graph engine (Appendix A.1): a bipartite
// probabilistic graphical model of variables and factor functions that
// expresses a joint distribution as a product of local factors,
//
//	P(x₁,…,xₙ) = ∏ f(x)
//
// with marginal and maximum-likelihood inference over binary-outcome
// variables. DeLorean's attack diagnosis builds one factor graph per
// sensor, with one variable per physical state and factor functions over
// the observed error history (Eq. 2–4).
package fg

import (
	"errors"
	"fmt"

	"repro/internal/floats"
)

// Outcome is a binary variable outcome. DeLorean's diagnosis uses
// Benign/Malicious (§4.1: "We consider binary outcomes for the sensors").
type Outcome int

// Binary outcomes.
const (
	Benign Outcome = iota + 1
	Malicious
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Benign:
		return "benign"
	case Malicious:
		return "malicious"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ErrUnknownVariable is returned when inference is requested for a
// variable that is not part of the graph.
var ErrUnknownVariable = errors.New("fg: unknown variable")

// Variable is a binary-outcome node with a prior. The paper assumes
// uniform priors: P(benign) = P(malicious) = 0.5.
type Variable struct {
	Name string
	// PriorMalicious is P(malicious) before evidence; 0.5 by default.
	PriorMalicious float64

	index int
}

// FactorFunc scores an assignment of the factor's variables. Observed
// evidence (the errors e) is captured in the closure, matching the
// paper's f(e_{t−1}, e_t, s_t) form.
type FactorFunc func(assign []Outcome) float64

// Factor couples one or more variables through a factor function.
type Factor struct {
	Name string
	vars []*Variable
	fn   FactorFunc
}

// Graph is a factor graph over binary variables.
type Graph struct {
	vars    []*Variable
	factors []*Factor

	// marg caches P(v = Malicious | evidence) per variable from a single
	// enumeration of the joint; margValid is cleared whenever the graph
	// mutates (AddVariable/AddFactor/Invalidate). assign and local are the
	// enumeration's reused scratch.
	marg      []float64
	margValid bool
	assign    []Outcome
	local     []Outcome
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// AddVariable adds a binary variable with a uniform prior and returns it.
func (g *Graph) AddVariable(name string) *Variable {
	v := &Variable{Name: name, PriorMalicious: 0.5, index: len(g.vars)}
	g.vars = append(g.vars, v)
	g.margValid = false
	return v
}

// AddFactor attaches a factor function over the given variables.
func (g *Graph) AddFactor(name string, fn FactorFunc, vars ...*Variable) *Factor {
	f := &Factor{Name: name, vars: vars, fn: fn}
	g.factors = append(g.factors, f)
	g.margValid = false
	return f
}

// Invalidate discards cached inference results. Structural mutation
// (AddVariable/AddFactor) invalidates automatically; call this when the
// evidence captured inside a factor closure changes without the graph
// itself changing.
func (g *Graph) Invalidate() { g.margValid = false }

// Variables returns the graph's variables in insertion order.
func (g *Graph) Variables() []*Variable {
	out := make([]*Variable, len(g.vars))
	copy(out, g.vars)
	return out
}

// score evaluates the unnormalized joint probability of a full assignment:
// the product of the variable priors and every factor. The per-factor
// argument slice is graph-owned scratch; factor functions must not retain
// it past the call.
func (g *Graph) score(assign []Outcome) float64 {
	p := 1.0
	for i, v := range g.vars {
		if assign[i] == Malicious {
			p *= v.PriorMalicious
		} else {
			p *= 1 - v.PriorMalicious
		}
	}
	for _, f := range g.factors {
		local := g.local[:len(f.vars)]
		for i, v := range f.vars {
			local[i] = assign[v.index]
		}
		p *= f.fn(local)
		if floats.Zero(p) {
			return 0
		}
	}
	return p
}

// growScratch sizes the enumeration scratch for the current graph shape.
// Cold path: it allocates only when the graph outgrows its buffers, so
// the hot compute loop stays allocation-free.
func (g *Graph) growScratch() {
	n := len(g.vars)
	if cap(g.marg) < n {
		g.marg = make([]float64, n)
		g.assign = make([]Outcome, n)
	}
	maxArity := 0
	for _, f := range g.factors {
		if len(f.vars) > maxArity {
			maxArity = len(f.vars)
		}
	}
	if cap(g.local) < maxArity {
		g.local = make([]Outcome, maxArity)
	}
}

// compute runs one exact enumeration of the joint and caches the
// per-variable malicious marginals. It walks the 2ⁿ assignments
// iteratively in the lexicographic order the recursive walk it replaced
// produced (assignment i is bit n−1−i of the code, Benign before
// Malicious), so the floating-point accumulation order — and therefore
// every cached marginal — is bit-identical to the recursive form. A graph
// whose factors admit no assignment falls back to the priors. The cache
// survives until the graph mutates; scratch buffers are grown once and
// reused across recomputations.
func (g *Graph) compute() {
	if g.margValid {
		return
	}
	n := len(g.vars)
	g.growScratch()
	g.marg = g.marg[:n]
	for i := range g.marg {
		g.marg[i] = 0
	}
	assign := g.assign[:n]
	var total float64
	for code := 0; code < 1<<n; code++ {
		for i := 0; i < n; i++ {
			if code&(1<<(n-1-i)) != 0 {
				assign[i] = Malicious
			} else {
				assign[i] = Benign
			}
		}
		s := g.score(assign)
		total += s
		for j, a := range assign {
			if a == Malicious {
				g.marg[j] += s
			}
		}
	}
	if floats.Zero(total) {
		// All assignments scored zero — no factor admits any outcome.
		// Fall back to the priors.
		for i, v := range g.vars {
			g.marg[i] = v.PriorMalicious
		}
	} else {
		for i := range g.marg {
			g.marg[i] /= total
		}
	}
	g.margValid = true
}

// Marginal returns P(v = Malicious | evidence) by summing the joint over
// all assignments (sum-product over the full joint; the diagnosis graphs
// are small — one variable per physical state of one sensor — so exact
// enumeration is cheap and exact). The enumeration runs at most once per
// graph mutation: Marginal, Marginals, and MLE all read the same cache.
func (g *Graph) Marginal(v *Variable) (float64, error) {
	if v == nil || v.index >= len(g.vars) || g.vars[v.index] != v {
		return 0, ErrUnknownVariable
	}
	g.compute()
	return g.marg[v.index], nil
}

// Marginals returns P(v = Malicious | evidence) for every variable in
// insertion order from the shared single-enumeration cache. The slice is
// freshly allocated and the caller's to keep; hot paths use MarginalsInto.
func (g *Graph) Marginals() []float64 {
	out := make([]float64, len(g.vars))
	return g.MarginalsInto(out)
}

// MarginalsInto fills dst with P(v = Malicious | evidence) for every
// variable in insertion order and returns it, allocating nothing. dst
// must have length len(g.Variables()).
func (g *Graph) MarginalsInto(dst []float64) []float64 {
	if len(dst) != len(g.vars) {
		panic(fmt.Sprintf("fg: MarginalsInto destination length %d != %d variables", len(dst), len(g.vars)))
	}
	g.compute()
	copy(dst, g.marg)
	return dst
}

// MLE returns the maximum-likelihood outcome for v given the evidence
// (argmax P(s|e), Algorithm 1 line 30): Malicious when
// P(malicious|e) > 0.5.
func (g *Graph) MLE(v *Variable) (Outcome, error) {
	p, err := g.Marginal(v)
	if err != nil {
		return 0, err
	}
	if p > 0.5 {
		return Malicious, nil
	}
	return Benign, nil
}

// ThresholdFactor builds the paper's Eq. 2 factor function for one
// physical state, capturing the observed error pair (e_{t−1}, e_t) and
// the calibrated threshold δ:
//
//	f(e_{t−1}, e_t, s) = 1 if e_t > δ ∧ e_{t−1} > δ ∧ s = malicious
//	                     1 if ¬(e_t > δ ∧ e_{t−1} > δ) ∧ s = benign
//	                     0 otherwise
//
// (The benign clause is the complement required for the factor product to
// be a proper indicator over both outcomes.) The returned closure expects
// exactly one variable.
func ThresholdFactor(ePrev, eCur, delta float64) FactorFunc {
	inflated := ePrev > delta && eCur > delta
	return func(assign []Outcome) float64 {
		if len(assign) != 1 {
			return 0
		}
		if inflated == (assign[0] == Malicious) {
			return 1
		}
		return 0
	}
}

// ThresholdFactorAt is the evidence-cell form of ThresholdFactor: instead
// of capturing the error pair by value, the factor reads it through the
// given pointers at evaluation time. This lets a caller build each
// diagnosis graph once, store the per-step errors into the pointed-to
// cells, and re-run inference with Invalidate — no per-diagnosis graph
// reconstruction, no per-diagnosis closure allocation. The predicate is
// evaluated identically to ThresholdFactor, so the cached-graph and
// rebuilt-graph forms produce bit-identical marginals for equal evidence.
func ThresholdFactorAt(ePrev, eCur *float64, delta float64) FactorFunc {
	return func(assign []Outcome) float64 {
		if len(assign) != 1 {
			return 0
		}
		inflated := *ePrev > delta && *eCur > delta
		if inflated == (assign[0] == Malicious) {
			return 1
		}
		return 0
	}
}
