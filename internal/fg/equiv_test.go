package fg

import (
	"math"
	"math/rand"
	"testing"
)

// refMarginals is a verbatim transcription of the recursive 2ⁿ walk the
// iterative cached enumeration replaced: the equivalence oracle for the
// floating-point accumulation order.
func refMarginals(g *Graph) []float64 {
	n := len(g.vars)
	malicious := make([]float64, n)
	var total float64
	assign := make([]Outcome, n)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			s := refScore(g, assign)
			total += s
			for j := range assign {
				if assign[j] == Malicious {
					malicious[j] += s
				}
			}
			return
		}
		assign[i] = Benign
		walk(i + 1)
		assign[i] = Malicious
		walk(i + 1)
	}
	walk(0)
	out := make([]float64, n)
	if total == 0 {
		for i, v := range g.vars {
			out[i] = v.PriorMalicious
		}
		return out
	}
	for i := range out {
		out[i] = malicious[i] / total
	}
	return out
}

// refScore is the allocating per-assignment score of the pre-cache code.
func refScore(g *Graph, assign []Outcome) float64 {
	p := 1.0
	for i, v := range g.vars {
		if assign[i] == Malicious {
			p *= v.PriorMalicious
		} else {
			p *= 1 - v.PriorMalicious
		}
	}
	for _, f := range g.factors {
		local := make([]Outcome, len(f.vars))
		for i, v := range f.vars {
			local[i] = assign[v.index]
		}
		p *= f.fn(local)
		if p == 0 {
			return 0
		}
	}
	return p
}

// randomGraph builds a graph with n variables, random priors, per-variable
// soft factors, and one pairwise coupling factor.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New()
	vars := make([]*Variable, n)
	for i := 0; i < n; i++ {
		v := g.AddVariable("v")
		v.PriorMalicious = 0.2 + 0.6*rng.Float64()
		vars[i] = v
		w := 0.1 + 0.8*rng.Float64()
		g.AddFactor("soft", func(assign []Outcome) float64 {
			if assign[0] == Malicious {
				return w
			}
			return 1 - w
		}, v)
	}
	if n >= 2 {
		g.AddFactor("pair", func(assign []Outcome) float64 {
			if assign[0] == assign[1] {
				return 0.9
			}
			return 0.35
		}, vars[0], vars[1])
	}
	return g
}

// TestIterativeMatchesRecursive pins the single-enumeration cache to the
// recursive walk bit-for-bit, for Marginals, Marginal, and MLE.
func TestIterativeMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 8; n++ {
		g := randomGraph(rng, n)
		want := refMarginals(g)
		got := g.Marginals()
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: Marginals[%d] = %g, reference %g (bits differ)", n, i, got[i], want[i])
			}
		}
		for i, v := range g.Variables() {
			p, err := g.Marginal(v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(p) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: Marginal(v%d) = %g, reference %g", n, i, p, want[i])
			}
			o, err := g.MLE(v)
			if err != nil {
				t.Fatal(err)
			}
			wantO := Benign
			if want[i] > 0.5 {
				wantO = Malicious
			}
			if o != wantO {
				t.Fatalf("n=%d: MLE(v%d) = %v, want %v", n, i, o, wantO)
			}
		}
	}
}

// TestZeroTotalFallsBackToPriors: an all-zero joint still reports priors
// through the cache path, exactly as the recursive walk did.
func TestZeroTotalFallsBackToPriors(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	v.PriorMalicious = 0.3
	g.AddFactor("never", func([]Outcome) float64 { return 0 }, v)
	p, err := g.Marginal(v)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.3 {
		t.Fatalf("zero-total marginal = %g, want prior 0.3", p)
	}
}

// TestCacheInvalidation: a structural mutation after inference must
// trigger recomputation, and Invalidate must cover evidence changes
// hidden inside factor closures.
func TestCacheInvalidation(t *testing.T) {
	g := New()
	v := g.AddVariable("x")
	p0, _ := g.Marginal(v)
	if p0 != 0.5 {
		t.Fatalf("uniform prior marginal = %g, want 0.5", p0)
	}
	// Structural mutation: adding a decisive factor must invalidate.
	g.AddFactor("f", ThresholdFactor(1, 1, 0.5), v)
	p1, _ := g.Marginal(v)
	if p1 <= 0.99 {
		t.Fatalf("marginal after AddFactor = %g, want ≈1 (cache not invalidated?)", p1)
	}
	// Evidence mutation inside a closure: needs explicit Invalidate.
	evidence := 1.0
	g2 := New()
	w := g2.AddVariable("y")
	g2.AddFactor("g", func(assign []Outcome) float64 {
		inflated := evidence > 0.5
		if inflated == (assign[0] == Malicious) {
			return 1
		}
		return 0
	}, w)
	hi, _ := g2.Marginal(w)
	evidence = 0.0
	stale, _ := g2.Marginal(w)
	if stale != hi {
		t.Fatal("expected stale cached marginal before Invalidate")
	}
	g2.Invalidate()
	fresh, _ := g2.Marginal(w)
	if fresh == hi {
		t.Fatal("Invalidate did not force recomputation")
	}
}

// TestMarginalsIntoContract: length is checked, the cached path is
// allocation-free once warmed, and repeated calls return stable values.
func TestMarginalsIntoContract(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 5)
	buf := make([]float64, 5)
	want := g.Marginals()
	got := g.MarginalsInto(buf)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MarginalsInto[%d] = %g, Marginals %g", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MarginalsInto with wrong length should panic")
		}
	}()
	g.MarginalsInto(make([]float64, 2))
}

// TestMarginalsIntoZeroAlloc: with warmed scratch, a full recomputation
// (Invalidate + MarginalsInto) allocates nothing.
func TestMarginalsIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 6)
	buf := make([]float64, 6)
	g.MarginalsInto(buf) // grow scratch once
	if n := testing.AllocsPerRun(50, func() {
		g.Invalidate()
		g.MarginalsInto(buf)
	}); n != 0 {
		t.Errorf("Invalidate+MarginalsInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { g.MarginalsInto(buf) }); n != 0 {
		t.Errorf("cached MarginalsInto allocates %v per run, want 0", n)
	}
}
