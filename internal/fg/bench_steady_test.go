package fg_test

// Steady-state benchmark for the cached-graph inference path. This file
// is NOT in scripts/bench_compare.sh's portable set: it uses the
// evidence-cell API (ThresholdFactorAt, MarginalsInto) that historical
// comparison trees predate, so it lives apart from bench_test.go, which
// must compile in both trees.

import (
	"testing"

	"repro/internal/fg"
)

// BenchmarkFGMarginalsSteady is the cached-graph steady state the
// diagnosis engine now runs: graphs built once with evidence-cell
// factors, each step rewriting the cells, invalidating, and reading the
// marginals into a reused buffer. Must report 0 allocs/op.
func BenchmarkFGMarginalsSteady(b *testing.B) {
	const n = 6
	ePrev := make([]float64, n)
	eCur := make([]float64, n)
	g := fg.New()
	for i := 0; i < n; i++ {
		v := g.AddVariable("s")
		g.AddFactor("f", fg.ThresholdFactorAt(&ePrev[i], &eCur[i], 1), v)
	}
	buf := make([]float64, n)
	g.MarginalsInto(buf) // warm the enumeration scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			ePrev[j] = float64((i + j) % 3)
			eCur[j] = ePrev[j]
		}
		g.Invalidate()
		g.MarginalsInto(buf)
	}
}
