package fg_test

// Benchmark for the factor-graph inference path the diagnosis engine
// drives. Public API only, so scripts/bench_compare.sh can run the same
// file against the pre-optimization tree.

import (
	"testing"

	"repro/internal/fg"
)

// buildDiagnosisShapedGraph mirrors the per-sensor diagnosis graphs: one
// variable and one threshold factor per monitored physical state.
func buildDiagnosisShapedGraph(n int) (*fg.Graph, []*fg.Variable) {
	g := fg.New()
	vars := make([]*fg.Variable, n)
	for i := 0; i < n; i++ {
		v := g.AddVariable("s")
		inflate := float64(i%2) * 2
		g.AddFactor("f", fg.ThresholdFactor(inflate, inflate, 1), v)
		vars[i] = v
	}
	return g, vars
}

func BenchmarkFGMarginals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, _ := buildDiagnosisShapedGraph(6)
		_ = g.Marginals()
	}
}

// BenchmarkFGMarginalAllVars measures per-variable queries on one graph —
// the pattern that paid 2ⁿ per variable before the shared enumeration.
func BenchmarkFGMarginalAllVars(b *testing.B) {
	g, vars := buildDiagnosisShapedGraph(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vars {
			if _, err := g.Marginal(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}
