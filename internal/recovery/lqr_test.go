package recovery

import (
	"math"
	"testing"

	"repro/internal/mission"
	"repro/internal/vehicle"
)

func TestLQRQuadReachesWaypoint(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	dt := 0.01
	l, err := NewLQR(prof, dt)
	if err != nil {
		t.Fatalf("NewLQR: %v", err)
	}
	s := vehicle.State{Z: 10}
	target := mission.Waypoint{X: 15, Y: -5, Z: 12}
	for i := 0; i < 6000; i++ {
		u := l.Update(s, target, dt)
		s = prof.Quad.Step(s, u, vehicle.Wind{}, dt)
	}
	if d := s.HorizontalDistanceTo(target.X, target.Y); d > 1.5 {
		t.Errorf("quad %vm from waypoint after 60s", d)
	}
	if math.Abs(s.Z-target.Z) > 1.5 {
		t.Errorf("quad altitude %v, want %v", s.Z, target.Z)
	}
}

func TestLQRQuadStabilizesFromDisturbance(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	dt := 0.01
	l, err := NewLQR(prof, dt)
	if err != nil {
		t.Fatalf("NewLQR: %v", err)
	}
	// Badly tilted, falling, and offset.
	s := vehicle.State{X: 5, Z: 20, VZ: -3, Roll: 0.4, Pitch: -0.3, WRoll: 1}
	target := mission.Waypoint{X: 0, Y: 0, Z: 20}
	for i := 0; i < 4000; i++ {
		u := l.Update(s, target, dt)
		s = prof.Quad.Step(s, u, vehicle.Wind{}, dt)
	}
	if math.Abs(s.Roll) > 0.05 || math.Abs(s.Pitch) > 0.05 {
		t.Errorf("attitude not stabilized: roll %v pitch %v", s.Roll, s.Pitch)
	}
	if d := s.HorizontalDistanceTo(0, 0); d > 1.5 {
		t.Errorf("position not recovered: %vm off", d)
	}
}

func TestLQRQuadThrustBounded(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.Pixhawk)
	l, err := NewLQR(prof, 0.01)
	if err != nil {
		t.Fatalf("NewLQR: %v", err)
	}
	u := l.Update(vehicle.State{Z: 0}, mission.Waypoint{Z: 500}, 0.01)
	if u.Thrust > prof.MaxThrust+1e-9 || u.Thrust < 0 {
		t.Errorf("thrust %v outside [0, %v]", u.Thrust, prof.MaxThrust)
	}
}

func TestLQRRoverReachesWaypoint(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.AionR1)
	dt := 0.01
	l, err := NewLQR(prof, dt)
	if err != nil {
		t.Fatalf("NewLQR: %v", err)
	}
	s := vehicle.State{VX: 0.5}
	target := mission.Waypoint{X: 20, Y: 10}
	for i := 0; i < 10000; i++ {
		u := l.Update(s, target, dt)
		s = prof.Rover.Step(s, u, vehicle.Wind{}, dt)
		if s.HorizontalDistanceTo(target.X, target.Y) < 1.0 {
			return
		}
	}
	t.Errorf("rover never reached waypoint; final (%v, %v)", s.X, s.Y)
}

func TestLQRRoverSteeringBounded(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduRover)
	l, err := NewLQR(prof, 0.01)
	if err != nil {
		t.Fatalf("NewLQR: %v", err)
	}
	u := l.Update(vehicle.State{VX: 2}, mission.Waypoint{X: -50, Y: 50}, 0.01)
	if math.Abs(u.MYaw) > prof.Rover.MaxSteer+1e-9 {
		t.Errorf("steering %v exceeds %v", u.MYaw, prof.Rover.MaxSteer)
	}
}

func TestLQRName(t *testing.T) {
	l, err := NewLQR(vehicle.MustProfile(vehicle.Pixhawk), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "LQR" {
		t.Errorf("Name = %q", l.Name())
	}
}

func TestLQRResetClearsRoverGain(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.AionR1)
	l, err := NewLQR(prof, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	l.Update(vehicle.State{VX: 1}, mission.Waypoint{X: 5}, 0.01)
	if l.kRover == nil {
		t.Fatal("rover gain not synthesized on first update")
	}
	l.Reset()
	if l.kRover != nil {
		t.Error("Reset did not clear rover gain")
	}
}

func TestLQRAllQuadProfilesSynthesize(t *testing.T) {
	for _, name := range vehicle.AllRVs() {
		prof := vehicle.MustProfile(name)
		if _, err := NewLQR(prof, 0.01); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
