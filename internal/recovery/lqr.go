// Package recovery implements the Checkpoint-based attack-recovery
// controllers the paper builds on and compares against (§3.1, §5.1): a
// Linear Quadratic Regulator recovery controller in the style of Zhang et
// al. (LQR-O when driven by worst-case roll-forward states, targeted when
// driven by DeLorean's reconstructed states), plus the model-based
// baselines SSR (software-sensor recovery) and PID-Piper (feed-forward
// controller recovery).
//
// The recovery controller's job is identical across techniques: given a
// state estimate and the mission target, derive recovery control actions
// that steer the RV back to its set trajectory. What differs between
// techniques — and what the paper's evaluation isolates — is the quality
// of the estimate each technique feeds it.
package recovery

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/mission"
	"repro/internal/vehicle"
)

// Controller derives recovery control actions from a state estimate and
// the mission target. It mirrors control.Autopilot so the framework can
// swap it into the loop when the Recovery Switch engages (Fig. 4).
type Controller interface {
	Name() string
	Update(est vehicle.State, target mission.Waypoint, dt float64) vehicle.Input
	Reset()
}

var _ Controller = (*LQR)(nil)

// LQR is the discrete infinite-horizon LQR recovery controller. For
// quadcopters the gain is synthesized once around hover; for rovers the
// linearization depends on heading and speed, so the gain is refreshed
// when the operating point drifts.
type LQR struct {
	profile vehicle.Profile
	dt      float64

	// Quadcopter gain (12 states × 4 inputs) around hover.
	kQuad *mat.Mat

	// Rover gain (4 states × 2 inputs) around the last linearization
	// point.
	kRover   *mat.Mat
	roverYaw float64
	roverVel float64

	// Workspaces: Update runs every recovery tick on the zero-allocation
	// hot path, so the error and action vectors are preallocated here and
	// reused via the *Into kernels.
	errQuad  mat.Vec
	duQuad   mat.Vec
	errRover mat.Vec
	duRover  mat.Vec
}

// NewLQR synthesizes the recovery controller for a profile at control
// period dt.
func NewLQR(p vehicle.Profile, dt float64) (*LQR, error) {
	l := &LQR{
		profile:  p,
		dt:       dt,
		errQuad:  mat.NewVec(12),
		duQuad:   mat.NewVec(4),
		errRover: mat.NewVec(4),
		duRover:  mat.NewVec(2),
	}
	if p.IsQuad() {
		k, err := quadGain(p.Quad, dt)
		if err != nil {
			return nil, fmt.Errorf("recovery lqr (%s): %w", p.Name, err)
		}
		l.kQuad = k
	}
	return l, nil
}

// QuadGain synthesizes the hover LQR gain for a quad profile at control
// period dt — the per-profile DARE solve that dominates per-mission
// setup cost. The returned matrix is read-only in Update, so one gain
// can be shared by every mission with the same (profile, dt). Returns
// nil for rovers: their gain depends on the operating point and is
// synthesized lazily per recovery episode.
func QuadGain(p vehicle.Profile, dt float64) (*mat.Mat, error) {
	if !p.IsQuad() {
		return nil, nil
	}
	k, err := quadGain(p.Quad, dt)
	if err != nil {
		return nil, fmt.Errorf("recovery lqr (%s): %w", p.Name, err)
	}
	return k, nil
}

// NewLQRShared builds the controller around a precomputed quad gain
// (from QuadGain for the same profile and dt), skipping the per-mission
// DARE solve. The gain is referenced, not copied; callers must treat it
// as immutable. A nil gain for a quad profile falls back to solving.
func NewLQRShared(p vehicle.Profile, dt float64, kQuad *mat.Mat) (*LQR, error) {
	if p.IsQuad() && kQuad == nil {
		return NewLQR(p, dt)
	}
	return &LQR{
		profile:  p,
		dt:       dt,
		kQuad:    kQuad,
		errQuad:  mat.NewVec(12),
		duQuad:   mat.NewVec(4),
		errRover: mat.NewVec(4),
		duRover:  mat.NewVec(2),
	}, nil
}

// Name implements Controller.
func (l *LQR) Name() string { return "LQR" }

// Reset implements Controller; the LQR is stateless between ticks apart
// from the cached rover gain.
func (l *LQR) Reset() {
	l.kRover = nil
}

// Update derives the recovery control action u = u_ref − K(x − x_ref).
func (l *LQR) Update(est vehicle.State, target mission.Waypoint, dt float64) vehicle.Input {
	if l.profile.IsQuad() {
		return l.updateQuad(est, target)
	}
	return l.updateRover(est, target)
}

func (l *LQR) updateQuad(est vehicle.State, target mission.Waypoint) vehicle.Input {
	// Reference: at the target waypoint, level hover — so the error is the
	// state vector with the target position subtracted.
	err := l.errQuad
	est.VecInto(err)
	err[0] -= target.X
	err[1] -= target.Y
	err[2] -= target.Z
	// Wrap angular errors.
	for i := 6; i <= 8; i++ {
		err[i] = vehicle.WrapAngle(err[i])
	}
	// Limit the position error magnitude the regulator sees, so a distant
	// target yields a bounded (cruise-like) approach instead of a violent
	// one. This is the standard recovery-controller saturation.
	const maxPosErr = 4.0
	for i := 0; i < 3; i++ {
		err[i] = vehicle.Clamp(err[i], -maxPosErr, maxPosErr)
	}
	mat.MulVecInto(l.duQuad, l.kQuad, err)
	du := l.duQuad
	q := l.profile.Quad
	u := vehicle.Input{
		Thrust: q.HoverThrust() - du[0],
		MRoll:  -du[1],
		MPitch: -du[2],
		MYaw:   -du[3],
	}
	u.Thrust = vehicle.Clamp(u.Thrust, 0.1*q.HoverThrust(), l.profile.MaxThrust)
	mmax := 4 * q.IX * 20 // comparable to the PID stack's moment authority
	u.MRoll = vehicle.Clamp(u.MRoll, -mmax, mmax)
	u.MPitch = vehicle.Clamp(u.MPitch, -mmax, mmax)
	u.MYaw = vehicle.Clamp(u.MYaw, -mmax, mmax)
	return u
}

// quadGain linearizes the quadcopter around hover and solves the DARE.
//
// Continuous-time linearization (small angles, hover thrust):
//
//	ṗ = v;  v̇x = g·θ;  v̇y = −g·φ;  v̇z = δT/m
//	φ̇ = ωφ …;  ω̇ = δM/I
//
// discretized with forward Euler at dt.
func quadGain(q vehicle.Quadcopter, dt float64) (*mat.Mat, error) {
	const n, m = 12, 4
	g := vehicle.Gravity
	kd := q.DragCoef / q.Mass

	ac := mat.New(n, n)
	// ṗ = v
	for i := 0; i < 3; i++ {
		ac.Set(i, 3+i, 1)
	}
	// v̇x = g·θ − kd·vx ; v̇y = −g·φ − kd·vy ; v̇z = −kd·vz (+δT/m via B)
	ac.Set(3, 7, g)
	ac.Set(3, 3, -kd)
	ac.Set(4, 6, -g)
	ac.Set(4, 4, -kd)
	ac.Set(5, 5, -kd)
	// attitude kinematics
	for i := 0; i < 3; i++ {
		ac.Set(6+i, 9+i, 1)
	}
	// rate damping
	ac.Set(9, 9, -q.AngularDrag/q.IX)
	ac.Set(10, 10, -q.AngularDrag/q.IY)
	ac.Set(11, 11, -q.AngularDrag/q.IZ)

	bc := mat.New(n, m)
	bc.Set(5, 0, 1/q.Mass) // δT → v̇z
	bc.Set(9, 1, 1/q.IX)
	bc.Set(10, 2, 1/q.IY)
	bc.Set(11, 3, 1/q.IZ)

	a := mat.Identity(n).Add(ac.Scale(dt))
	b := bc.Scale(dt)

	// Cost: track position, damp velocity, and keep attitude strongly
	// penalized so the regulator never commands tilts that risk loss of
	// control — recovery must be gentle by construction.
	qCost := mat.Diag([]float64{
		1, 1, 4, // position
		2, 2, 3, // velocity
		120, 120, 8, // attitude
		4, 4, 2, // rates
	})
	rCost := mat.Diag([]float64{
		0.02,       // thrust
		10, 10, 12, // moments (expensive: avoid violent torques)
	})
	return mat.LQRGain(a, b, qCost, rCost)
}

func (l *LQR) updateRover(est vehicle.State, target mission.Waypoint) vehicle.Input {
	v := est.Speed2D()
	// Refresh the linearization when the operating point has moved.
	if l.kRover == nil ||
		math.Abs(vehicle.WrapAngle(est.Yaw-l.roverYaw)) > 0.3 ||
		math.Abs(v-l.roverVel) > 0.8 {
		l.refreshRoverGain(est.Yaw, v)
	}
	if l.kRover == nil {
		return vehicle.Input{}
	}
	// Reference: target point, heading toward it, cruise speed scaled by
	// distance.
	dx, dy := target.X-est.X, target.Y-est.Y
	dist := math.Hypot(dx, dy)
	headingRef := math.Atan2(dy, dx)
	speedRef := l.profile.CruiseSpeed
	if dist < 4 {
		speedRef *= dist / 4
	}
	errVec := l.errRover
	errVec[0] = vehicle.Clamp(-dx, -8, 8)
	errVec[1] = vehicle.Clamp(-dy, -8, 8)
	errVec[2] = vehicle.WrapAngle(est.Yaw - headingRef)
	errVec[3] = v - speedRef
	mat.MulVecInto(l.duRover, l.kRover, errVec)
	du := l.duRover
	u := vehicle.Input{
		Thrust: vehicle.Clamp(-du[0], -l.profile.MaxThrust, l.profile.MaxThrust),
		MYaw:   vehicle.Clamp(-du[1], -l.profile.Rover.MaxSteer, l.profile.Rover.MaxSteer),
	}
	return u
}

// refreshRoverGain re-linearizes the rover model about the current
// operating point and replaces the cached gain. It runs only when the
// operating point drifts, so it is a sanctioned cold allocation site
// (declared in the hotalloc analyzer's cold list). A synthesis failure
// keeps the previous gain.
func (l *LQR) refreshRoverGain(yaw, v float64) {
	k, err := roverGain(l.profile.Rover, yaw, v, l.dt)
	if err == nil {
		l.kRover = k
		l.roverYaw = yaw
		l.roverVel = v
	}
}

// roverGain linearizes the kinematic bicycle about (yaw, v) and solves the
// DARE for states [x y ψ v], inputs [a δ].
func roverGain(r vehicle.Rover, yaw, v float64, dt float64) (*mat.Mat, error) {
	if v < 0.5 {
		v = 0.5 // keep the steering channel controllable
	}
	wheelbase := r.LF + r.LR
	c, s := math.Cos(yaw), math.Sin(yaw)

	ac := mat.New(4, 4)
	// ẋ = v cosψ ; ẏ = v sinψ
	ac.Set(0, 2, -v*s)
	ac.Set(0, 3, c)
	ac.Set(1, 2, v*c)
	ac.Set(1, 3, s)
	// v̇ = a − drag·v
	ac.Set(3, 3, -r.DragCoef)

	bc := mat.New(4, 2)
	bc.Set(3, 0, 1)           // a → v̇
	bc.Set(2, 1, v/wheelbase) // δ → ψ̇

	a := mat.Identity(4).Add(ac.Scale(dt))
	b := bc.Scale(dt)
	qCost := mat.Diag([]float64{2, 2, 4, 1})
	rCost := mat.Diag([]float64{1, 2})
	return mat.LQRGain(a, b, qCost, rCost)
}
