package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting of a square matrix.
// A zero LU is a valid empty workspace: Refactor grows its buffers on
// first use and reuses them afterwards, so repeated factorizations of
// same-sized systems allocate nothing.
type LU struct {
	lu   *Mat
	piv  []int
	sign int

	// col and x are SolveInto's per-column scratch, grown on first use.
	col Vec
	x   Vec
}

// NewLU returns a preallocated factorization workspace for n×n systems.
func NewLU(n int) *LU {
	return &LU{lu: New(n, n), piv: make([]int, n), col: NewVec(n), x: NewVec(n)}
}

// grow sizes the factorization workspace for n×n systems. Cold path: it
// allocates only when the system outgrows the workspace (declared in the
// hotalloc analyzer's cold list), so repeated same-sized factorizations
// and solves stay allocation-free.
func (f *LU) grow(n int) {
	if f.lu == nil || f.lu.Rows != n || f.lu.Cols != n {
		f.lu = New(n, n)
		f.piv = make([]int, n)
	}
	if len(f.col) != n {
		f.col = NewVec(n)
		f.x = NewVec(n)
	}
}

// FactorLU computes the LU factorization of a square matrix a with partial
// pivoting. It returns ErrSingular when a pivot underflows.
func FactorLU(a *Mat) (*LU, error) {
	f := &LU{}
	if err := f.Refactor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor computes the LU factorization of a into the existing
// workspace, reusing its buffers when a matches their size. It is the
// allocation-free twin of FactorLU for hot paths that repeatedly solve
// same-sized systems. The arithmetic is identical to FactorLU's, so both
// paths produce bit-identical factors.
func (f *LU) Refactor(a *Mat) error {
	if a.Rows != a.Cols {
		return ErrDimensionMismatch
	}
	n := a.Rows
	f.grow(n)
	lu, piv := f.lu, f.piv
	CloneInto(lu, a)
	for i := range piv {
		piv[i] = i
	}
	sign := 1

	for k := 0; k < n; k++ {
		// Partial pivot: find the row with the largest magnitude in column k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		if max < 1e-14 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.Data[k*n+k]
		rowk := lu.Data[k*n+k+1 : k*n+n]
		for i := k + 1; i < n; i++ {
			rowi := lu.Data[i*n+k : i*n+n]
			m := rowi[0] / pivot
			rowi[0] = m
			for j, ukj := range rowk {
				rowi[1+j] -= m * ukj
			}
		}
	}
	f.sign = sign
	return nil
}

// SolveVec solves a·x = b for x using the factorization.
func (f *LU) SolveVec(b Vec) (Vec, error) {
	x := NewVec(f.lu.Rows)
	if err := f.SolveVecInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecInto solves a·x = b into dst. dst must have length n and must
// not alias b (the permutation reads b at arbitrary indices while dst is
// written).
func (f *LU) SolveVecInto(dst, b Vec) error {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		return ErrDimensionMismatch
	}
	if sharesBacking(dst, b) {
		panic("mat: SolveVecInto destination aliases the right-hand side")
	}
	x := dst
	lu := f.lu.Data
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has an implicit unit diagonal).
	for i := 1; i < n; i++ {
		row := lu[i*n : i*n+i]
		xi := x[i]
		for j, lij := range row {
			xi -= lij * x[j]
		}
		x[i] = xi
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := lu[i*n+i+1 : i*n+n]
		xi := x[i]
		for j, uij := range row {
			xi -= uij * x[i+1+j]
		}
		x[i] = xi / lu[i*n+i]
	}
	return nil
}

// Solve solves a·X = B column by column.
func (f *LU) Solve(b *Mat) (*Mat, error) {
	out := New(f.lu.Rows, b.Cols)
	if err := f.SolveInto(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveInto solves a·X = B into dst column by column, reusing the
// workspace's column scratch. dst must be n×B.Cols and must not alias b.
func (f *LU) SolveInto(dst, b *Mat) error {
	n := f.lu.Rows
	if b.Rows != n || dst.Rows != n || dst.Cols != b.Cols {
		return ErrDimensionMismatch
	}
	mustNotAlias(dst, b, "SolveInto")
	f.grow(n)
	bc, dc := b.Cols, dst.Cols
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			f.col[i] = b.Data[i*bc+j]
		}
		if err := f.SolveVecInto(f.x, f.col); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst.Data[i*dc+j] = f.x[i]
		}
	}
	return nil
}

// Solve solves a·x = b for a square matrix a.
func Solve(a *Mat, b Vec) (Vec, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// SolveMat solves a·X = B for a square matrix a.
func SolveMat(a, b *Mat) (*Mat, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns a⁻¹ via LU factorization.
func Inverse(a *Mat) (*Mat, error) {
	return SolveMat(a, Identity(a.Rows))
}
