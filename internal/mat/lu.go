package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	lu   *Mat
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix a with partial
// pivoting. It returns ErrSingular when a pivot underflows.
func FactorLU(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrDimensionMismatch
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1

	for k := 0; k < n; k++ {
		// Partial pivot: find the row with the largest magnitude in column k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		if max < 1e-14 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves a·x = b for x using the factorization.
func (f *LU) SolveVec(b Vec) (Vec, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, ErrDimensionMismatch
	}
	x := NewVec(n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has an implicit unit diagonal).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x, nil
}

// Solve solves a·X = B column by column.
func (f *LU) Solve(b *Mat) (*Mat, error) {
	n := f.lu.Rows
	if b.Rows != n {
		return nil, ErrDimensionMismatch
	}
	out := New(n, b.Cols)
	col := NewVec(n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Solve solves a·x = b for a square matrix a.
func Solve(a *Mat, b Vec) (Vec, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// SolveMat solves a·X = B for a square matrix a.
func SolveMat(a, b *Mat) (*Mat, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns a⁻¹ via LU factorization.
func Inverse(a *Mat) (*Mat, error) {
	return SolveMat(a, Identity(a.Rows))
}
