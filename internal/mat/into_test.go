package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randMat fills an r×c matrix from the deterministic source.
func randMat(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// bitEqual reports element-wise bit identity (distinguishes ±0, NaN
// payloads — the determinism contract is bytes, not epsilons).
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestIntoEquivalence pins the contract the hot path depends on: every
// *Into kernel produces bit-identical Data to its allocating twin.
func TestIntoEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randMat(rng, 7, 5)
		b := randMat(rng, 5, 9)
		c := randMat(rng, 7, 5)
		sq := randMat(rng, 6, 6)
		v := make(Vec, 5)
		for i := range v {
			v[i] = rng.NormFloat64()
		}

		mul := New(7, 9)
		MulInto(mul, a, b)
		if !bitEqual(mul.Data, a.Mul(b).Data) {
			t.Fatal("MulInto diverges from Mul")
		}
		mv := NewVec(7)
		MulVecInto(mv, c, v)
		if !bitEqual(mv, c.MulVec(v)) {
			t.Fatal("MulVecInto diverges from MulVec")
		}
		add := New(7, 5)
		AddInto(add, a, c)
		if !bitEqual(add.Data, a.Add(c).Data) {
			t.Fatal("AddInto diverges from Add")
		}
		sub := New(7, 5)
		SubInto(sub, a, c)
		if !bitEqual(sub.Data, a.Sub(c).Data) {
			t.Fatal("SubInto diverges from Sub")
		}
		sc := New(7, 5)
		ScaleInto(sc, 0.37, a)
		if !bitEqual(sc.Data, a.Scale(0.37).Data) {
			t.Fatal("ScaleInto diverges from Scale")
		}
		tr := New(5, 7)
		TransposeInto(tr, a)
		if !bitEqual(tr.Data, a.T().Data) {
			t.Fatal("TransposeInto diverges from T")
		}
		cl := New(7, 5)
		CloneInto(cl, a)
		if !bitEqual(cl.Data, a.Clone().Data) {
			t.Fatal("CloneInto diverges from Clone")
		}
		sym := New(6, 6)
		SymmetrizeInto(sym, sq)
		if !bitEqual(sym.Data, sq.Symmetrize().Data) {
			t.Fatal("SymmetrizeInto diverges from Symmetrize")
		}
	}
}

// TestElementwiseIntoAllowsAliasing: the element-wise kernels accept a
// destination that aliases an operand and still produce the allocating
// twin's result.
func TestElementwiseIntoAllowsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 4, 3)
	b := randMat(rng, 4, 3)

	want := a.Add(b)
	got := a.Clone()
	AddInto(got, got, b)
	if !bitEqual(got.Data, want.Data) {
		t.Error("aliased AddInto diverges")
	}

	want = a.Sub(b)
	got = a.Clone()
	SubInto(got, got, b)
	if !bitEqual(got.Data, want.Data) {
		t.Error("aliased SubInto diverges")
	}

	want = a.Scale(2.5)
	got = a.Clone()
	ScaleInto(got, 2.5, got)
	if !bitEqual(got.Data, want.Data) {
		t.Error("aliased ScaleInto diverges")
	}

	got = a.Clone()
	CloneInto(got, got) // self-copy must be a no-op
	if !bitEqual(got.Data, a.Data) {
		t.Error("self CloneInto corrupted data")
	}
}

// mustPanic asserts fn panics.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

// TestCrossElementIntoRejectsAliasing: kernels with cross-element data
// flow must panic when the destination shares storage with an input —
// silent corruption otherwise.
func TestCrossElementIntoRejectsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 4, 4)
	b := randMat(rng, 4, 4)
	v := make(Vec, 4)

	mustPanic(t, "MulInto dst=a", func() { MulInto(a, a, b) })
	mustPanic(t, "MulInto dst=b", func() { MulInto(b, a, b) })
	mustPanic(t, "MulVecInto dst=v", func() { MulVecInto(v, a, v) })
	mustPanic(t, "TransposeInto dst=a", func() { TransposeInto(a, a) })
	mustPanic(t, "SymmetrizeInto dst=a", func() { SymmetrizeInto(a, a) })
}

// TestIntoShapeChecks: destinations of the wrong shape panic rather than
// writing out of place.
func TestIntoShapeChecks(t *testing.T) {
	a := New(3, 4)
	b := New(4, 2)
	mustPanic(t, "MulInto shape", func() { MulInto(New(3, 3), a, b) })
	mustPanic(t, "AddInto shape", func() { AddInto(New(3, 3), a, a) })
	mustPanic(t, "TransposeInto shape", func() { TransposeInto(New(3, 4), a) })
	mustPanic(t, "SymmetrizeInto non-square", func() { SymmetrizeInto(New(3, 4), a) })
	mustPanic(t, "MulVecInto len", func() { MulVecInto(make(Vec, 2), a, make(Vec, 4)) })
}

// TestLUWorkspaceEquivalence: Refactor/SolveInto reproduce
// FactorLU/Solve bit-for-bit while reusing buffers, and the solve
// workspace refuses an aliased right-hand side.
func TestLUWorkspaceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ws := NewLU(6)
	for trial := 0; trial < 10; trial++ {
		a := randMat(rng, 6, 6)
		for i := 0; i < 6; i++ {
			a.Set(i, i, a.At(i, i)+6) // diagonally dominant: well-conditioned
		}
		b := randMat(rng, 6, 3)

		ref, err := FactorLU(a)
		if err != nil {
			t.Fatalf("FactorLU: %v", err)
		}
		want, err := ref.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if err := ws.Refactor(a); err != nil {
			t.Fatalf("Refactor: %v", err)
		}
		got := New(6, 3)
		if err := ws.SolveInto(got, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
		if !bitEqual(got.Data, want.Data) {
			t.Fatal("workspace LU solve diverges from allocating solve")
		}
	}
	vb := make(Vec, 6)
	mustPanic(t, "SolveVecInto dst=b", func() { _ = ws.SolveVecInto(vb, vb) })
	sq := New(6, 6)
	mustPanic(t, "SolveInto dst=b", func() { _ = ws.SolveInto(sq, sq) })
}

// TestLUWorkspaceZeroAlloc: a warmed LU workspace factors and solves
// same-sized systems without allocating.
func TestLUWorkspaceZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 8, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+8)
	}
	b := randMat(rng, 8, 8)
	dst := New(8, 8)
	ws := NewLU(8)
	if n := testing.AllocsPerRun(50, func() {
		if err := ws.Refactor(a); err != nil {
			t.Fatal(err)
		}
		if err := ws.SolveInto(dst, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("LU Refactor+SolveInto allocates %v per run, want 0", n)
	}
}
