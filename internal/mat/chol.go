package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix a.
func Cholesky(a *Mat) (*Mat, error) {
	if a.Rows != a.Cols {
		return nil, ErrDimensionMismatch
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// IsPSD reports whether a is symmetric positive semi-definite within tol,
// by attempting a Cholesky factorization of a + tol·I.
func IsPSD(a *Mat, tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	shifted := a.Add(Identity(a.Rows).Scale(tol))
	_, err := Cholesky(shifted.Symmetrize())
	return err == nil
}
