package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}

	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := (Vec{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (Vec{-7, 2}).MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestVecIsFinite(t *testing.T) {
	tests := []struct {
		name string
		give Vec
		want bool
	}{
		{name: "finite", give: Vec{1, -2, 0}, want: true},
		{name: "nan", give: Vec{1, math.NaN()}, want: false},
		{name: "inf", give: Vec{math.Inf(1)}, want: false},
		{name: "empty", give: Vec{}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.IsFinite(); got != tt.want {
				t.Errorf("IsFinite = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMatMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("T content wrong: %v", at)
	}
}

func TestIdentityMulIsNoop(t *testing.T) {
	a := FromRows([][]float64{{2, -1}, {0.5, 3}})
	if got := Identity(2).Mul(a); got.MaxAbsDiff(a) > 1e-15 {
		t.Errorf("I·a = %v, want %v", got, a)
	}
}

func TestLUSolve(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	x, err := Solve(a, Vec{10, 12})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 4x+3y=10, 6x+3y=12 -> x=1, y=2
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 2, 1e-10) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vec{1, 1}); err == nil {
		t.Error("expected ErrSingular for a rank-deficient matrix")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if got := a.Mul(inv); got.MaxAbsDiff(Identity(3)) > 1e-10 {
		t.Errorf("a·a⁻¹ deviates from I by %v", got.MaxAbsDiff(Identity(3)))
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	if got := l.Mul(l.T()); got.MaxAbsDiff(a) > 1e-12 {
		t.Errorf("L·Lᵀ ≠ a: %v", got)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected ErrNotPositiveDefinite")
	}
}

func TestIsPSD(t *testing.T) {
	if !IsPSD(Diag([]float64{1, 0, 2}), 1e-9) {
		t.Error("diag(1,0,2) should be PSD")
	}
	if IsPSD(Diag([]float64{1, -1}), 1e-9) {
		t.Error("diag(1,-1) should not be PSD")
	}
}

// Property: for random well-conditioned systems, Solve(a, a·x) recovers x.
func TestPropertyLUSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := NewVec(n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Sub(x).MaxAbs() < 1e-8
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky of M·Mᵀ + I round-trips for random M.
func TestPropertyCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := New(n, n)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		a := m.Mul(m.T()).Add(Identity(n)).Symmetrize()
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return l.Mul(l.T()).MaxAbsDiff(a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: (Aᵀ)ᵀ = A and (A·B)ᵀ = Bᵀ·Aᵀ.
func TestPropertyTransposeIdentities(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := New(n, m)
		b := New(m, p)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		if a.T().T().MaxAbsDiff(a) != 0 {
			return false
		}
		return a.Mul(b).T().MaxAbsDiff(b.T().Mul(a.T())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveDAREScalar(t *testing.T) {
	// Scalar system: x' = a x + b u with a=1, b=1, q=1, r=1.
	// DARE: p = p - p²/(1+p) + 1 → p² - p - 1 = 0 → p = golden ratio.
	a := FromRows([][]float64{{1}})
	b := FromRows([][]float64{{1}})
	q := FromRows([][]float64{{1}})
	r := FromRows([][]float64{{1}})
	p, err := SolveDARE(a, b, q, r, 1000, 1e-12)
	if err != nil {
		t.Fatalf("SolveDARE: %v", err)
	}
	golden := (1 + math.Sqrt(5)) / 2
	if !almostEq(p.At(0, 0), golden, 1e-8) {
		t.Errorf("p = %v, want %v", p.At(0, 0), golden)
	}
}

func TestLQRGainStabilizes(t *testing.T) {
	// Double integrator discretized at dt=0.1.
	dt := 0.1
	a := FromRows([][]float64{{1, dt}, {0, 1}})
	b := FromRows([][]float64{{0.5 * dt * dt}, {dt}})
	q := Diag([]float64{10, 1})
	r := Diag([]float64{1})
	k, err := LQRGain(a, b, q, r)
	if err != nil {
		t.Fatalf("LQRGain: %v", err)
	}
	// Simulate the closed loop from a disturbed state; it must converge.
	x := Vec{5, -2}
	for i := 0; i < 2000; i++ {
		u := k.MulVec(x).Scale(-1)
		x = a.MulVec(x).Add(b.MulVec(u))
	}
	if x.MaxAbs() > 1e-3 {
		t.Errorf("closed loop did not converge: x = %v", x)
	}
}

// Property: the DARE fixed point satisfies the Riccati equation.
func TestPropertyDAREFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2
		// Stable-ish random A (scaled), full B.
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = 0.5 * r.NormFloat64()
		}
		b := New(n, 1)
		for i := range b.Data {
			b.Data[i] = 1 + r.Float64()
		}
		q := Identity(n)
		rr := FromRows([][]float64{{1}})
		p, err := SolveDARE(a, b, q, rr, 5000, 1e-11)
		if err != nil {
			return false
		}
		// Residual of the DARE at p.
		bt := b.T()
		s := rr.Add(bt.Mul(p).Mul(b))
		m, err := SolveMat(s, bt.Mul(p).Mul(a))
		if err != nil {
			return false
		}
		rhs := a.T().Mul(p).Mul(a).Sub(a.T().Mul(p).Mul(b).Mul(m)).Add(q)
		return rhs.MaxAbsDiff(p) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Errorf("Diag content wrong: %v", d)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	s := a.Symmetrize()
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", s)
	}
}

func TestMatString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Error("String returned empty")
	}
}
