package mat

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero Rows×Cols matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d) negative dimension", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: FromRows ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a diagonal matrix with the given diagonal entries.
func Diag(d []float64) *Mat {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 {
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) {
	m.Data[i*m.Cols+j] = v
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	CloneInto(out, m)
	return out
}

// T returns the transpose of m.
func (m *Mat) T() *Mat {
	out := New(m.Cols, m.Rows)
	TransposeInto(out, m)
	return out
}

// Add returns m + b.
func (m *Mat) Add(b *Mat) *Mat {
	m.mustSameShape(b, "Add")
	out := New(m.Rows, m.Cols)
	AddInto(out, m, b)
	return out
}

// Sub returns m - b.
func (m *Mat) Sub(b *Mat) *Mat {
	m.mustSameShape(b, "Sub")
	out := New(m.Rows, m.Cols)
	SubInto(out, m, b)
	return out
}

// Scale returns s * m.
func (m *Mat) Scale(s float64) *Mat {
	out := New(m.Rows, m.Cols)
	ScaleInto(out, s, m)
	return out
}

// Mul returns the matrix product m · b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	MulInto(out, m, b)
	return out
}

// MulVec returns the matrix-vector product m · v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec %dx%d by %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVec(m.Rows)
	MulVecInto(out, m, v)
	return out
}

// Symmetrize returns (m + mᵀ)/2, useful to keep covariance matrices
// numerically symmetric.
func (m *Mat) Symmetrize() *Mat {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	out := New(m.Rows, m.Cols)
	SymmetrizeInto(out, m)
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and b.
func (m *Mat) MaxAbsDiff(b *Mat) float64 {
	m.mustSameShape(b, "MaxAbsDiff")
	var d float64
	for i := range m.Data {
		if a := math.Abs(m.Data[i] - b.Data[i]); a > d {
			d = a
		}
	}
	return d
}

// IsFinite reports whether every entry of m is finite.
func (m *Mat) IsFinite() bool {
	for _, x := range m.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func (m *Mat) mustSameShape(b *Mat, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
