// Package mat provides the small dense linear-algebra kernel used by the
// rest of the repository: vectors, matrices, LU and Cholesky factorizations,
// and a discrete algebraic Riccati solver for LQR gain synthesis.
//
// The package is deliberately minimal — it implements exactly the
// operations the EKF, LQR recovery controller, and system-identification
// code need, with no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("mat: dimension mismatch")

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec {
	return make(Vec, n)
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Vec.Add length %d != %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Vec.Sub length %d != %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s * v.
func (v Vec) Scale(s float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AddInPlace sets v = v + w.
func (v Vec) AddInPlace(w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Vec.AddInPlace length %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Vec.Dot length %d != %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// MaxAbs returns the largest absolute entry of v, or 0 for an empty vector.
func (v Vec) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// IsFinite reports whether every entry of v is finite (no NaN or Inf).
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
