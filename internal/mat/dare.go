package mat

import (
	"errors"
	"fmt"
)

// ErrNoConvergence is returned when an iterative solver exceeds its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("mat: iteration did not converge")

// SolveDARE solves the discrete algebraic Riccati equation
//
//	P = Aᵀ·P·A − Aᵀ·P·B·(R + Bᵀ·P·B)⁻¹·Bᵀ·P·A + Q
//
// by fixed-point iteration from P₀ = Q. It is used to synthesize the LQR
// recovery gain. A is n×n, B is n×m, Q is n×n PSD, R is m×m PD.
func SolveDARE(a, b, q, r *Mat, maxIter int, tol float64) (*Mat, error) {
	n := a.Rows
	if a.Cols != n || b.Rows != n || q.Rows != n || q.Cols != n ||
		r.Rows != b.Cols || r.Cols != b.Cols {
		return nil, ErrDimensionMismatch
	}
	at := a.T()
	bt := b.T()
	p := q.Clone()
	for iter := 0; iter < maxIter; iter++ {
		// S = R + Bᵀ P B
		s := r.Add(bt.Mul(p).Mul(b))
		// M = S⁻¹ Bᵀ P A
		m, err := SolveMat(s, bt.Mul(p).Mul(a))
		if err != nil {
			return nil, fmt.Errorf("riccati step %d: %w", iter, err)
		}
		next := at.Mul(p).Mul(a).Sub(at.Mul(p).Mul(b).Mul(m)).Add(q).Symmetrize()
		if next.MaxAbsDiff(p) < tol {
			return next, nil
		}
		p = next
	}
	return nil, ErrNoConvergence
}

// LQRGain returns the infinite-horizon discrete LQR state-feedback gain
//
//	K = (R + Bᵀ·P·B)⁻¹ · Bᵀ·P·A
//
// so that u = −K·(x − x_ref) stabilizes x(t+1) = A·x + B·u.
func LQRGain(a, b, q, r *Mat) (*Mat, error) {
	p, err := SolveDARE(a, b, q, r, 10000, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("lqr gain: %w", err)
	}
	bt := b.T()
	s := r.Add(bt.Mul(p).Mul(b))
	k, err := SolveMat(s, bt.Mul(p).Mul(a))
	if err != nil {
		return nil, fmt.Errorf("lqr gain solve: %w", err)
	}
	return k, nil
}
