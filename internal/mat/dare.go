package mat

import (
	"errors"
	"fmt"
)

// ErrNoConvergence is returned when an iterative solver exceeds its
// iteration budget without meeting its tolerance.
var ErrNoConvergence = errors.New("mat: iteration did not converge")

// SolveDARE solves the discrete algebraic Riccati equation
//
//	P = Aᵀ·P·A − Aᵀ·P·B·(R + Bᵀ·P·B)⁻¹·Bᵀ·P·A + Q
//
// by fixed-point iteration from P₀ = Q. It is used to synthesize the LQR
// recovery gain. A is n×n, B is n×m, Q is n×n PSD, R is m×m PD.
func SolveDARE(a, b, q, r *Mat, maxIter int, tol float64) (*Mat, error) {
	n := a.Rows
	if a.Cols != n || b.Rows != n || q.Rows != n || q.Cols != n ||
		r.Rows != b.Cols || r.Cols != b.Cols {
		return nil, ErrDimensionMismatch
	}
	nu := b.Cols
	at := a.T()
	bt := b.T()
	p := q.Clone()
	// The fixed-point loop runs thousands of iterations; every product is
	// written into a preallocated workspace so the whole solve performs a
	// constant number of allocations. Bᵀ·P and Aᵀ·P are each computed once
	// per iteration and reused — the reused product is bit-identical to
	// recomputing it, and every kernel below preserves the accumulation
	// order of the allocating expression it replaced.
	next := New(n, n)
	btp := New(nu, n)   // Bᵀ P
	btpb := New(nu, nu) // Bᵀ P B
	s := New(nu, nu)    // R + Bᵀ P B
	btpa := New(nu, n)  // Bᵀ P A
	m := New(nu, n)     // S⁻¹ Bᵀ P A
	atp := New(n, n)    // Aᵀ P
	atpa := New(n, n)   // Aᵀ P A, then the full un-symmetrized update
	atpb := New(n, nu)  // Aᵀ P B
	atpbm := New(n, n)  // Aᵀ P B M
	lu := NewLU(nu)
	for iter := 0; iter < maxIter; iter++ {
		// S = R + Bᵀ P B
		MulInto(btp, bt, p)
		MulInto(btpb, btp, b)
		AddInto(s, r, btpb)
		// M = S⁻¹ Bᵀ P A
		MulInto(btpa, btp, a)
		if err := lu.Refactor(s); err != nil {
			return nil, fmt.Errorf("riccati step %d: %w", iter, err)
		}
		if err := lu.SolveInto(m, btpa); err != nil {
			return nil, fmt.Errorf("riccati step %d: %w", iter, err)
		}
		// next = sym(Aᵀ P A − Aᵀ P B M + Q)
		MulInto(atp, at, p)
		MulInto(atpa, atp, a)
		MulInto(atpb, atp, b)
		MulInto(atpbm, atpb, m)
		SubInto(atpa, atpa, atpbm)
		AddInto(atpa, atpa, q)
		SymmetrizeInto(next, atpa)
		if next.MaxAbsDiff(p) < tol {
			return next, nil
		}
		p, next = next, p
	}
	return nil, ErrNoConvergence
}

// LQRGain returns the infinite-horizon discrete LQR state-feedback gain
//
//	K = (R + Bᵀ·P·B)⁻¹ · Bᵀ·P·A
//
// so that u = −K·(x − x_ref) stabilizes x(t+1) = A·x + B·u.
func LQRGain(a, b, q, r *Mat) (*Mat, error) {
	p, err := SolveDARE(a, b, q, r, 10000, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("lqr gain: %w", err)
	}
	bt := b.T()
	s := r.Add(bt.Mul(p).Mul(b))
	k, err := SolveMat(s, bt.Mul(p).Mul(a))
	if err != nil {
		return nil, fmt.Errorf("lqr gain solve: %w", err)
	}
	return k, nil
}
