// In-place kernels for the hot path. Every allocating operation on Mat
// (Mul, Add, Sub, Scale, T, Clone, Symmetrize, MulVec) has an *Into twin
// here that writes into a caller-owned destination instead of allocating
// a fresh matrix. The allocating methods are thin wrappers over these
// kernels, so both paths share one arithmetic implementation and produce
// bit-identical results — the determinism contract the experiment suite
// is gated on.
//
// # Aliasing rules
//
// The kernels distinguish element-wise operations, where the destination
// may alias an operand (each output element depends only on the same
// input element), from operations with cross-element data flow, where
// aliasing would silently corrupt the result:
//
//   - AddInto, SubInto, ScaleInto, CloneInto: dst may alias any operand.
//   - MulInto, MulVecInto, TransposeInto, SymmetrizeInto: dst must not
//     alias an input; the kernel panics if it does.
//
// Aliasing is detected by comparing backing arrays. The package has no
// sub-matrix views, so two matrices either share their whole backing
// array or none of it — a first-element address comparison is exact.
package mat

import "repro/internal/floats"

// sharesBacking reports whether two float64 slices share a backing array.
// With no sub-slice views in this package, sharing is all-or-nothing, so
// comparing the first elements' addresses is an exact test.
func sharesBacking(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// mustShape panics unless m is rows×cols.
func (m *Mat) mustShape(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic("mat: " + op + " destination shape mismatch")
	}
}

// mustNotAlias panics when dst shares storage with src.
func mustNotAlias(dst, src *Mat, op string) {
	if sharesBacking(dst.Data, src.Data) {
		panic("mat: " + op + " destination aliases an operand")
	}
}

// Zero sets every element of m to zero in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulInto computes dst = a·b. dst must be a.Rows×b.Cols and must not
// alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows {
		panic("mat: MulInto operand shape mismatch")
	}
	dst.mustShape(a.Rows, b.Cols, "MulInto")
	mustNotAlias(dst, a, "MulInto")
	mustNotAlias(dst, b, "MulInto")
	dst.Zero()
	ac, bc := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*ac : i*ac+ac]
		drow := dst.Data[i*bc : i*bc+bc]
		for k, v := range arow {
			if floats.Zero(v) {
				continue
			}
			brow := b.Data[k*bc : k*bc+bc]
			for j, bv := range brow {
				drow[j] += v * bv
			}
		}
	}
}

// MulVecInto computes dst = m·v. dst must have length m.Rows and must not
// alias v.
func MulVecInto(dst Vec, m *Mat, v Vec) {
	if m.Cols != len(v) {
		panic("mat: MulVecInto operand shape mismatch")
	}
	if len(dst) != m.Rows {
		panic("mat: MulVecInto destination length mismatch")
	}
	if sharesBacking(dst, v) {
		panic("mat: MulVecInto destination aliases the operand")
	}
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
}

// AddInto computes dst = a + b element-wise. dst may alias a and/or b.
func AddInto(dst, a, b *Mat) {
	a.mustSameShape(b, "AddInto")
	dst.mustShape(a.Rows, a.Cols, "AddInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes dst = a − b element-wise. dst may alias a and/or b.
func SubInto(dst, a, b *Mat) {
	a.mustSameShape(b, "SubInto")
	dst.mustShape(a.Rows, a.Cols, "SubInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// ScaleInto computes dst = s·a element-wise. dst may alias a.
func ScaleInto(dst *Mat, s float64, a *Mat) {
	dst.mustShape(a.Rows, a.Cols, "ScaleInto")
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// CloneInto copies src into dst. dst may alias src (a self-copy is a
// no-op).
func CloneInto(dst, src *Mat) {
	dst.mustShape(src.Rows, src.Cols, "CloneInto")
	copy(dst.Data, src.Data)
}

// TransposeInto computes dst = aᵀ. dst must be a.Cols×a.Rows and must not
// alias a.
func TransposeInto(dst, a *Mat) {
	dst.mustShape(a.Cols, a.Rows, "TransposeInto")
	mustNotAlias(dst, a, "TransposeInto")
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
}

// SymmetrizeInto computes dst = (a + aᵀ)/2. a must be square; dst must
// match its shape and must not alias a.
func SymmetrizeInto(dst, a *Mat) {
	if a.Rows != a.Cols {
		panic("mat: SymmetrizeInto on non-square matrix")
	}
	dst.mustShape(a.Rows, a.Cols, "SymmetrizeInto")
	mustNotAlias(dst, a, "SymmetrizeInto")
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
}
