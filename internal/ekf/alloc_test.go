package ekf_test

// Allocation-budget regression tests: the steady-state filter cycle must
// not allocate at all. These assert the tentpole invariant directly, so a
// future change that quietly reintroduces a per-tick allocation fails the
// suite (delint's hotalloc analyzer catches the static cases; this
// catches everything else).

import (
	"testing"

	"repro/internal/sensors"
	"repro/internal/vehicle"
)

func TestEKFPredictZeroAlloc(t *testing.T) {
	f, _, _ := benchFilter()
	u := vehicle.Input{Thrust: 9}
	if n := testing.AllocsPerRun(200, func() { f.Predict(u, 0.01) }); n != 0 {
		t.Errorf("Predict allocates %v per run, want 0", n)
	}
}

func TestEKFPredictHybridZeroAlloc(t *testing.T) {
	f, meas, active := benchFilter()
	u := vehicle.Input{Thrust: 9}
	if n := testing.AllocsPerRun(200, func() { f.PredictHybrid(u, meas, active, 0.01) }); n != 0 {
		t.Errorf("PredictHybrid allocates %v per run, want 0", n)
	}
}

func TestEKFCorrectZeroAlloc(t *testing.T) {
	f, meas, active := benchFilter()
	if n := testing.AllocsPerRun(200, func() {
		if err := f.Correct(meas, active); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Correct allocates %v per run, want 0", n)
	}
}

// TestEKFCorrectZeroAllocAfterReshape: shrinking the observation set
// (sensor isolation) and growing it back must stay allocation-free —
// the workspace is sized for the maximum row count up front. The LU
// workspace reallocates once per size change; warm both sizes first.
func TestEKFCorrectZeroAllocAfterReshape(t *testing.T) {
	f, meas, _ := benchFilter()
	all := sensors.NewTypeSet(sensors.AllTypes()...)
	masked := all.Clone()
	delete(masked, sensors.GPS)
	_ = f.Correct(meas, masked)
	_ = f.Correct(meas, all)
	_ = f.Correct(meas, masked)
	if n := testing.AllocsPerRun(100, func() {
		if err := f.Correct(meas, masked); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Correct (masked set) allocates %v per run, want 0", n)
	}
}
