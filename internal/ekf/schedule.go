// Shared covariance/gain schedule.
//
// The EKF covariance recursion is measurement-independent: P evolves as
// P ← sym(F·P·Fᵀ + Q·dt) in prediction and P ← sym((I−K·H)·P) in
// correction, where F, Q, H, R depend only on the vehicle profile, the
// tick period, and the active sensor set — never on the measurements or
// the state estimate (innovation gating clamps the state update, not P).
// On the nominal path every sensor is active every tick, so the entire
// (K_t, gate_t, P_t) sequence is one deterministic function of
// (profile, dt): every mission sharing that pair walks the same schedule.
//
// Schedule materializes that sequence once, on demand, and lets any
// number of Filters consume it concurrently. A consuming filter skips
// all covariance arithmetic (≈2/3 of the per-tick EKF cost) and applies
// the cached gain and gates to its private state. The moment a mission
// leaves the nominal path — a sensor is masked for recovery, a pure
// model Predict runs, dt changes — the filter detaches: the schedule
// reconstructs the exact covariance the filter would have had (from a
// snapshot plus deterministic replay of the same kernels) and the filter
// continues on its private recursion, bit-identical to a filter that
// never shared. Detachment is sticky; missions never rejoin mid-flight.
//
// For quad profiles the recursion reaches a bitwise fixpoint (the DARE
// steady state) after ~1200–2000 cycles, after which one steady step
// serves every later tick. Rover profiles never reach a bitwise
// fixpoint (their roll/pitch block is unobserved and grows without
// bound), so their schedule keeps extending — the per-step cost is
// amortized across every rover mission in the fleet.
package ekf

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// snapEvery is the post-correction covariance snapshot stride. Snapshots
// bound detach-time replay to at most snapEvery-1 cycles.
const snapEvery = 64

// schedStep is one precomputed correction: the Kalman gain and the
// innovation gate half-widths for the full-active row set. Steps are
// immutable once published.
type schedStep struct {
	k     *mat.Mat
	gates []float64
}

// snapshot is a post-correction covariance checkpoint: p is the
// covariance after completing cycle `cycle`.
type snapshot struct {
	cycle int
	p     *mat.Mat
}

// Schedule is the shared covariance/gain schedule for one
// (vehicle profile, dt) pair. It is safe for concurrent use: the hot
// read path (step) is lock-free over atomically published immutable
// steps; extension and detach-time covariance reconstruction serialize
// on a mutex.
type Schedule struct {
	profile vehicle.Profile
	dt      float64
	nrows   int

	// steps is the atomically published prefix of the schedule. Readers
	// load the header; the backing array elements below len are
	// immutable. steady is the first index from which the schedule
	// repeats forever (the covariance fixpoint), or -1 while unknown.
	// steady is stored after the steps header that contains it, so a
	// reader observing steady ≥ 0 always finds steps[steady] present.
	steps  atomic.Pointer[[]*schedStep]
	steady atomic.Int64

	mu      sync.Mutex
	builder *Filter      // advances the shared recursion; guarded by mu
	scratch *Filter      // detach-time replay filter; guarded by mu
	rows    []obsChannel // full-active observation rows
	initP   *mat.Mat     // covariance at Init (cycle -1)
	prevP   *mat.Mat     // covariance after the last built cycle
	steadyP *mat.Mat     // covariance at/after the fixpoint
	snaps   []snapshot
	err     error // sticky builder error; steps before it stay served
}

// NewSchedule builds an empty schedule for the profile at tick period
// dt. Steps materialize lazily as filters consume them.
func NewSchedule(p vehicle.Profile, dt float64) *Schedule {
	b := New(p)
	b.Init(vehicle.State{})
	active := sensors.NewTypeSet(sensors.AllTypes()...)
	r, _ := b.selectRows(sensors.PhysState{}, active)
	rows := append([]obsChannel(nil), r...)
	s := &Schedule{
		profile: p,
		dt:      dt,
		nrows:   len(rows),
		builder: b,
		rows:    rows,
		initP:   b.p.Clone(),
		prevP:   b.p.Clone(),
	}
	empty := make([]*schedStep, 0, 2048)
	s.steps.Store(&empty)
	s.steady.Store(-1)
	return s
}

// ProfileName identifies the profile the schedule was built for.
func (s *Schedule) ProfileName() vehicle.ProfileName { return s.profile.Name }

// DT returns the tick period the schedule was built for.
func (s *Schedule) DT() float64 { return s.dt }

// covers reports whether the schedule applies to tick period dt. The
// comparison is bitwise: any other dt walks a different covariance
// trajectory.
func (s *Schedule) covers(dt float64) bool {
	return math.Float64bits(dt) == math.Float64bits(s.dt)
}

// fullRows returns the observation row count of the full-active set.
func (s *Schedule) fullRows() int { return s.nrows }

// Steps reports how many distinct steps have been materialized and
// whether the covariance fixpoint has been reached (after which one
// steady step serves every later cycle).
func (s *Schedule) Steps() (built int, steady bool) {
	return len(*s.steps.Load()), s.steady.Load() >= 0
}

// step returns the schedule entry for cycle i, materializing it (and
// any gap before it) if needed. The fast path is two atomic loads.
func (s *Schedule) step(i int) (*schedStep, error) {
	if st := s.steady.Load(); st >= 0 && int64(i) >= st {
		return (*s.steps.Load())[st], nil
	}
	if sp := *s.steps.Load(); i < len(sp) {
		return sp[i], nil
	}
	return s.extendTo(i)
}

// extendTo materializes steps through index i. Cold path: it runs the
// full covariance recursion and allocates the published steps.
func (s *Schedule) extendTo(i int) (*schedStep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := *s.steps.Load()
	for len(sp) <= i {
		if st := s.steady.Load(); st >= 0 {
			return sp[st], nil
		}
		if s.err != nil {
			return nil, s.err
		}
		sp = s.build(sp)
	}
	return sp[i], nil
}

// build advances the builder one predict/correct cycle, publishes the
// new step, and runs fixpoint detection and snapshotting. On builder
// error it latches s.err and returns sp unchanged (the caller observes
// it on the next loop iteration). Caller holds mu.
func (s *Schedule) build(sp []*schedStep) []*schedStep {
	b := s.builder
	b.propagateCovariance(vehicle.Input{}, s.dt)
	k, gates, err := b.covGain(s.rows)
	if err != nil {
		s.err = err
		return sp
	}
	c := len(sp)
	sp = append(sp, &schedStep{k: k.Clone(), gates: append([]float64(nil), gates...)})
	s.steps.Store(&sp)
	if bitsEqual(b.p, s.prevP) {
		// P reproduced itself bit-for-bit: every later cycle computes
		// the same (K, gates, P) from the same inputs. Steps[c] serves
		// all cycles ≥ c; store the order-critical steady marker last.
		s.steadyP = b.p
		s.steady.Store(int64(c))
		return sp
	}
	mat.CloneInto(s.prevP, b.p)
	if (c+1)%snapEvery == 0 {
		s.snaps = append(s.snaps, snapshot{cycle: c, p: b.p.Clone()})
	}
	return sp
}

// seedPost writes the post-correction covariance of the given cycle
// into dst (cycle -1 is the Init covariance). It reconstructs interior
// cycles by replaying the deterministic recursion from the nearest
// snapshot with the same kernels the builder used, so the result is
// bit-identical to a filter that ran privately from the start. Cold
// path: called once per detaching filter.
func (s *Schedule) seedPost(cycle int, dst *mat.Mat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cycle < 0 {
		mat.CloneInto(dst, s.initP)
		return
	}
	if st := s.steady.Load(); st >= 0 && cycle >= int(st)-1 {
		mat.CloneInto(dst, s.steadyP)
		return
	}
	start, from := -1, s.initP
	for _, sn := range s.snaps {
		if sn.cycle > cycle {
			break
		}
		start, from = sn.cycle, sn.p
	}
	if s.scratch == nil {
		s.scratch = New(s.profile)
		s.scratch.Init(vehicle.State{})
	}
	sc := s.scratch
	mat.CloneInto(sc.p, from)
	for c := start; c < cycle; c++ {
		sc.propagateCovariance(vehicle.Input{}, s.dt)
		if _, _, err := sc.covGain(s.rows); err != nil {
			// The builder completed these cycles without error, so the
			// bit-identical replay cannot fail; stop at the last good P.
			break
		}
	}
	mat.CloneInto(dst, sc.p)
}

// bitsEqual reports exact bitwise equality of two matrices.
func bitsEqual(a, b *mat.Mat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Float64bits(v) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}
