package ekf

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// This file pins the shared-schedule contract: a filter consuming a
// Schedule must be bit-indistinguishable from a filter running its
// private covariance recursion, for any profile, any fall-off point
// (including never), and any number of concurrent consumers.

// missionMeas synthesizes a deterministic mission-like measurement
// stream seeded per test.
func missionMeas(rng *rand.Rand) sensors.PhysState {
	truth := vehicle.State{
		X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: 10 + rng.NormFloat64(),
		VX: rng.NormFloat64(), VY: rng.NormFloat64(), VZ: rng.NormFloat64(),
		Yaw: rng.NormFloat64() * 0.3,
	}
	return sensors.TruePhysState(truth, [3]float64{}, sensors.BodyField(truth.Yaw))
}

// runPair drives a shared-schedule filter and a private reference
// filter through the same PredictHybrid/Correct sequence, masking GPS
// during [maskFrom, maskTo) to force the shared filter off the
// schedule, and asserts bit-identical states every step and
// bit-identical covariances at the end.
func runPair(t *testing.T, prof vehicle.Profile, sched *Schedule, steps, maskFrom, maskTo int, seed int64) {
	t.Helper()
	const dt = 0.01
	start := vehicle.State{Z: 10}

	shared := New(prof)
	shared.AttachSchedule(sched)
	shared.Init(start)
	private := New(prof)
	private.Init(start)

	all := sensors.NewTypeSet(sensors.AllTypes()...)
	masked := all.Clone()
	delete(masked, sensors.GPS)

	rng := rand.New(rand.NewSource(seed))
	u := vehicle.Input{Thrust: 9.0}
	for i := 0; i < steps; i++ {
		meas := missionMeas(rng)
		active := all
		if i >= maskFrom && i < maskTo {
			active = masked
		}
		shared.PredictHybrid(u, meas, active, dt)
		private.PredictHybrid(u, meas, active, dt)
		if err := shared.Correct(meas, active); err != nil {
			t.Fatalf("step %d: shared Correct: %v", i, err)
		}
		if err := private.Correct(meas, active); err != nil {
			t.Fatalf("step %d: private Correct: %v", i, err)
		}
		bitsEqualState(t, i, shared.State(), private.State())
	}
	gotP, wantP := shared.Covariance(), private.Covariance()
	bitsEqualMat(t, steps, "final covariance", gotP, wantP)
}

// TestScheduleMatchesPrivate: shared vs private bit identity across
// profiles and fall-off points — never, immediately, one cycle in, deep
// into the mission, and straddling a snapshot boundary.
func TestScheduleMatchesPrivate(t *testing.T) {
	for _, id := range []vehicle.ProfileName{vehicle.ArduCopter, vehicle.Pixhawk, vehicle.ArduRover} {
		prof := vehicle.MustProfile(id)
		t.Run(string(id), func(t *testing.T) {
			sched := NewSchedule(prof, 0.01)
			cases := []struct {
				name            string
				steps, from, to int
			}{
				{"nominal", 400, -1, -1},
				{"mask-at-0", 200, 0, 40},
				{"mask-at-1", 200, 1, 40},
				{"mask-at-3", 200, 3, 40},
				{"mask-mid", 300, 150, 190},
				{"mask-at-snapshot-boundary", 200, 64, 100},
				{"mask-past-snapshot", 260, 65, 100},
			}
			for ci, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					runPair(t, prof, sched, tc.steps, tc.from, tc.to, int64(100+ci))
				})
			}
		})
	}
}

// TestScheduleSteadyState: quad schedules reach the bitwise covariance
// fixpoint; missions consuming the steady step still match a private
// filter exactly, including after a post-steady fall-off.
func TestScheduleSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("long fixpoint run")
	}
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	sched := NewSchedule(prof, 0.01)
	runPair(t, prof, sched, 2500, -1, -1, 11)
	if _, steady := sched.Steps(); !steady {
		t.Fatal("quad schedule did not reach the covariance fixpoint within 2500 cycles")
	}
	// Fall off well after steady: the seed covariance is the fixpoint.
	runPair(t, prof, sched, 2500, 2200, 2260, 12)
}

// TestScheduleDetachOnPredict: a pure model Predict (the recovery
// primitive) must detach and stay bit-identical to a private filter.
func TestScheduleDetachOnPredict(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	sched := NewSchedule(prof, 0.01)
	const dt = 0.01
	start := vehicle.State{Z: 10}

	shared := New(prof)
	shared.AttachSchedule(sched)
	shared.Init(start)
	private := New(prof)
	private.Init(start)

	all := sensors.NewTypeSet(sensors.AllTypes()...)
	rng := rand.New(rand.NewSource(21))
	u := vehicle.Input{Thrust: 9.0}
	for i := 0; i < 120; i++ {
		meas := missionMeas(rng)
		if i >= 50 && i < 60 {
			shared.Predict(u, dt)
			private.Predict(u, dt)
		} else {
			shared.PredictHybrid(u, meas, all, dt)
			private.PredictHybrid(u, meas, all, dt)
			if err := shared.Correct(meas, all); err != nil {
				t.Fatalf("step %d: shared Correct: %v", i, err)
			}
			if err := private.Correct(meas, all); err != nil {
				t.Fatalf("step %d: private Correct: %v", i, err)
			}
		}
		bitsEqualState(t, i, shared.State(), private.State())
	}
	bitsEqualMat(t, 120, "final covariance", shared.Covariance(), private.Covariance())
}

// TestScheduleDetachOnDTChange: a tick at a different dt walks a
// different covariance trajectory and must leave the schedule.
func TestScheduleDetachOnDTChange(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	sched := NewSchedule(prof, 0.01)
	start := vehicle.State{Z: 10}

	shared := New(prof)
	shared.AttachSchedule(sched)
	shared.Init(start)
	private := New(prof)
	private.Init(start)

	all := sensors.NewTypeSet(sensors.AllTypes()...)
	rng := rand.New(rand.NewSource(31))
	u := vehicle.Input{Thrust: 9.0}
	for i := 0; i < 80; i++ {
		dt := 0.01
		if i >= 40 {
			dt = 0.02
		}
		meas := missionMeas(rng)
		shared.PredictHybrid(u, meas, all, dt)
		private.PredictHybrid(u, meas, all, dt)
		if err := shared.Correct(meas, all); err != nil {
			t.Fatalf("step %d: shared Correct: %v", i, err)
		}
		if err := private.Correct(meas, all); err != nil {
			t.Fatalf("step %d: private Correct: %v", i, err)
		}
		bitsEqualState(t, i, shared.State(), private.State())
		if i >= 40 && shared.onShared() {
			t.Fatalf("step %d: filter still on schedule after dt change", i)
		}
	}
	bitsEqualMat(t, 80, "final covariance", shared.Covariance(), private.Covariance())
}

// TestScheduleCovarianceRead: reading the covariance mid-mission
// detaches (the schedule carries it) and returns exactly the private
// filter's value.
func TestScheduleCovarianceRead(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduRover)
	sched := NewSchedule(prof, 0.01)
	const dt = 0.01
	start := vehicle.State{Z: 0}

	shared := New(prof)
	shared.AttachSchedule(sched)
	shared.Init(start)
	private := New(prof)
	private.Init(start)

	all := sensors.NewTypeSet(sensors.AllTypes()...)
	rng := rand.New(rand.NewSource(41))
	u := vehicle.Input{Thrust: 0.5}
	for i := 0; i < 90; i++ {
		meas := missionMeas(rng)
		shared.PredictHybrid(u, meas, all, dt)
		private.PredictHybrid(u, meas, all, dt)
		if err := shared.Correct(meas, all); err != nil {
			t.Fatalf("shared Correct: %v", err)
		}
		if err := private.Correct(meas, all); err != nil {
			t.Fatalf("private Correct: %v", err)
		}
		if i == 70 {
			bitsEqualMat(t, i, "mid-mission covariance", shared.Covariance(), private.Covariance())
			if shared.onShared() {
				t.Fatal("covariance read must detach")
			}
		}
		bitsEqualState(t, i, shared.State(), private.State())
	}
	bitsEqualMat(t, 90, "final covariance", shared.Covariance(), private.Covariance())
}

// TestScheduleConcurrentConsumers: many filters share one schedule
// concurrently, each falling off at a different point; every one must
// match its private reference. Run with -race this also proves the
// lock-free read path is data-race free against lazy extension.
func TestScheduleConcurrentConsumers(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	sched := NewSchedule(prof, 0.01)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			maskFrom, maskTo := -1, -1
			if g%2 == 1 {
				maskFrom, maskTo = 30*g, 30*g+25
			}
			// Subtests can't cross goroutines; assert via t.Errorf through
			// a local adapter instead.
			runPairErr(t, prof, sched, 300, maskFrom, maskTo, int64(g))
		}(g)
	}
	wg.Wait()
}

// runPairErr is runPair with non-fatal assertions (safe off the test
// goroutine).
func runPairErr(t *testing.T, prof vehicle.Profile, sched *Schedule, steps, maskFrom, maskTo int, seed int64) {
	const dt = 0.01
	start := vehicle.State{Z: 10}

	shared := New(prof)
	shared.AttachSchedule(sched)
	shared.Init(start)
	private := New(prof)
	private.Init(start)

	all := sensors.NewTypeSet(sensors.AllTypes()...)
	masked := all.Clone()
	delete(masked, sensors.GPS)

	rng := rand.New(rand.NewSource(seed))
	u := vehicle.Input{Thrust: 9.0}
	for i := 0; i < steps; i++ {
		meas := missionMeas(rng)
		active := all
		if i >= maskFrom && i < maskTo {
			active = masked
		}
		shared.PredictHybrid(u, meas, active, dt)
		private.PredictHybrid(u, meas, active, dt)
		if err := shared.Correct(meas, active); err != nil {
			t.Errorf("seed %d step %d: shared Correct: %v", seed, i, err)
			return
		}
		if err := private.Correct(meas, active); err != nil {
			t.Errorf("seed %d step %d: private Correct: %v", seed, i, err)
			return
		}
		gv, wv := shared.State().Vec(), private.State().Vec()
		for c := range wv {
			if math.Float64bits(gv[c]) != math.Float64bits(wv[c]) {
				t.Errorf("seed %d step %d: state diverges at component %d", seed, i, c)
				return
			}
		}
	}
	gotP, wantP := shared.Covariance(), private.Covariance()
	for i := range wantP.Data {
		if math.Float64bits(gotP.Data[i]) != math.Float64bits(wantP.Data[i]) {
			t.Errorf("seed %d: final covariance diverges at element %d", seed, i)
			return
		}
	}
}

// TestScheduleStepAllocFree: the steady-state consume path (schedule
// already extended) must not allocate.
func TestScheduleStepAllocFree(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	sched := NewSchedule(prof, 0.01)
	const dt = 0.01
	f := New(prof)
	f.AttachSchedule(sched)
	f.Init(vehicle.State{Z: 10})
	all := sensors.NewTypeSet(sensors.AllTypes()...)
	rng := rand.New(rand.NewSource(51))
	// Pre-extend the schedule past the measurement window.
	warm := New(prof)
	warm.AttachSchedule(sched)
	warm.Init(vehicle.State{Z: 10})
	for i := 0; i < 300; i++ {
		meas := missionMeas(rng)
		warm.PredictHybrid(vehicle.Input{Thrust: 9}, meas, all, dt)
		if err := warm.Correct(meas, all); err != nil {
			t.Fatal(err)
		}
	}
	meas := missionMeas(rng)
	u := vehicle.Input{Thrust: 9.0}
	n := testing.AllocsPerRun(200, func() {
		f.PredictHybrid(u, meas, all, dt)
		if err := f.Correct(meas, all); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("shared Predict/Correct cycle allocates %v per run, want 0", n)
	}
	if !f.onShared() {
		t.Fatal("filter unexpectedly detached during alloc measurement")
	}
}
