package ekf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// This file pins the tentpole's correctness contract: the workspace-based
// zero-allocation Predict/Correct cycle must produce bit-identical states
// and covariances to the allocating formulas it replaced. The reference
// implementations below are verbatim transcriptions of the pre-workspace
// code, built on the allocating mat API.

// refPropagate is the allocating covariance propagation:
// P ← sym(F·P·Fᵀ + Q·dt).
func refPropagate(p, q, fkin *mat.Mat, dt float64) *mat.Mat {
	return fkin.Mul(p).Mul(fkin.T()).Add(q.Scale(dt)).Symmetrize()
}

// refCorrect is the allocating correction step, operating on an external
// (p, x) pair with the filter's observation channels.
func refCorrect(f *Filter, p *mat.Mat, x vehicle.State, meas sensors.PhysState, active sensors.TypeSet) (*mat.Mat, vehicle.State, error) {
	var rows []obsChannel
	var z []float64
	for _, ch := range f.obs {
		if !active.Has(ch.sensor) {
			continue
		}
		if ch.sensor == sensors.Gyro && !f.isQuad {
			continue
		}
		rows = append(rows, ch)
		if ch.sensor == sensors.Mag {
			z = append(z, MagYaw(meas))
		} else {
			z = append(z, measChannel(meas, ch))
		}
	}
	if len(rows) == 0 {
		return p, x, nil
	}
	m := len(rows)
	h := mat.New(m, nx)
	rdiag := make([]float64, m)
	for i, ch := range rows {
		h.Set(i, ch.state, 1)
		rdiag[i] = ch.noise * ch.noise
	}
	xvec := mat.Vec(x.Vec())
	innov := mat.NewVec(m)
	for i, ch := range rows {
		d := z[i] - xvec[ch.state]
		if ch.state >= 6 && ch.state <= 8 {
			d = vehicle.WrapAngle(d)
		}
		innov[i] = d
	}
	ph := p.Mul(h.T())
	s := h.Mul(ph).Add(mat.Diag(rdiag))
	const gateSigma = 5.0
	for i := range innov {
		gate := gateSigma * math.Sqrt(s.At(i, i))
		innov[i] = vehicle.Clamp(innov[i], -gate, gate)
	}
	kt, err := mat.SolveMat(s.T(), ph.T())
	if err != nil {
		return nil, x, err
	}
	k := kt.T()
	dx := k.MulVec(innov)
	xvec = xvec.Add(dx)
	out := vehicle.StateFromVec(xvec)
	out.Roll = vehicle.WrapAngle(out.Roll)
	out.Pitch = vehicle.WrapAngle(out.Pitch)
	out.Yaw = vehicle.WrapAngle(out.Yaw)
	pOut := mat.Identity(nx).Sub(k.Mul(h)).Mul(p).Symmetrize()
	return pOut, out, nil
}

// bitsEqualMat asserts element-wise bit identity.
func bitsEqualMat(t *testing.T, step int, what string, got, want *mat.Mat) {
	t.Helper()
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("step %d: %s diverges at element %d: %g != %g",
				step, what, i, got.Data[i], want.Data[i])
		}
	}
}

// bitsEqualState asserts bit identity of two states.
func bitsEqualState(t *testing.T, step int, got, want vehicle.State) {
	t.Helper()
	gv, wv := got.Vec(), want.Vec()
	for i := range wv {
		if math.Float64bits(gv[i]) != math.Float64bits(wv[i]) {
			t.Fatalf("step %d: state diverges at component %d: %g != %g",
				step, i, gv[i], wv[i])
		}
	}
}

// TestWorkspaceMatchesAllocatingReference drives the filter through a
// deterministic Predict/Correct sequence — including masked-sensor phases
// that reshape the Correct workspace to a smaller row count — and checks
// state and covariance stay bit-identical to the allocating reference
// after every step.
func TestWorkspaceMatchesAllocatingReference(t *testing.T) {
	profiles := []vehicle.ProfileName{vehicle.ArduCopter, vehicle.ArduRover}
	for _, id := range profiles {
		prof := vehicle.MustProfile(id)
		t.Run(string(prof.Name), func(t *testing.T) {
			f := New(prof)
			start := vehicle.State{Z: 10}
			f.Init(start)

			const dt = 0.01
			refP := mat.Identity(nx).Scale(0.1)
			refX := start
			fkin := kinematicJacobian(dt)

			all := sensors.NewTypeSet(sensors.AllTypes()...)
			masked := all.Clone()
			delete(masked, sensors.GPS)

			rng := rand.New(rand.NewSource(7))
			u := vehicle.Input{Thrust: 9.0}
			for i := 0; i < 200; i++ {
				// A wandering truth state drives non-trivial innovations.
				truth := vehicle.State{
					X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: 10 + rng.NormFloat64(),
					VX: rng.NormFloat64(), VY: rng.NormFloat64(), VZ: rng.NormFloat64(),
					Yaw: rng.NormFloat64() * 0.3,
				}
				meas := sensors.TruePhysState(truth, [3]float64{}, sensors.BodyField(truth.Yaw))

				f.Predict(u, dt)
				refP = refPropagate(refP, f.q, fkin, dt)
				refX = f.step(refX, u, dt)
				bitsEqualMat(t, i, "covariance after Predict", f.p, refP)
				bitsEqualState(t, i, f.x, refX)

				// Mask GPS for a stretch: the workspace reshapes to fewer
				// observation rows and must still match.
				active := all
				if i >= 80 && i < 120 {
					active = masked
				}
				if err := f.Correct(meas, active); err != nil {
					t.Fatalf("step %d: Correct: %v", i, err)
				}
				var err error
				refP, refX, err = refCorrect(f, refP, refX, meas, active)
				if err != nil {
					t.Fatalf("step %d: refCorrect: %v", i, err)
				}
				bitsEqualMat(t, i, "covariance after Correct", f.p, refP)
				bitsEqualState(t, i, f.x, refX)
			}
		})
	}
}

// TestInitResetsJacobianCache: Init must discard the cached transition
// Jacobian so a new mission dt takes effect (the pre-workspace semantics:
// fkin is keyed to the first dt after Init).
func TestInitResetsJacobianCache(t *testing.T) {
	f := New(vehicle.MustProfile(vehicle.ArduCopter))
	f.Init(vehicle.State{Z: 10})
	f.Predict(vehicle.Input{}, 0.01)
	first := f.ws.fkin
	f.Predict(vehicle.Input{}, 0.02) // same mission: jacobian must NOT rebuild
	if f.ws.fkin != first {
		t.Fatal("fkin rebuilt mid-mission; pre-workspace semantics key it to the first dt after Init")
	}
	f.Init(vehicle.State{Z: 10})
	if f.ws.fkin != nil {
		t.Fatal("Init did not clear the jacobian cache")
	}
	f.Predict(vehicle.Input{}, 0.02)
	if f.ws.fkin == first {
		t.Fatal("jacobian cache not rebuilt after Init")
	}
	if got := f.ws.fkin.At(0, 3); got != 0.02 {
		t.Fatalf("rebuilt jacobian uses dt=%v, want 0.02", got)
	}
}

// TestCovarianceInto: the non-allocating accessor matches the cloning one.
func TestCovarianceInto(t *testing.T) {
	f := New(vehicle.MustProfile(vehicle.ArduCopter))
	f.Init(vehicle.State{Z: 5})
	f.Predict(vehicle.Input{}, 0.01)
	dst := mat.New(nx, nx)
	f.CovarianceInto(dst)
	want := f.Covariance()
	for i := range want.Data {
		if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("CovarianceInto diverges from Covariance at %d", i)
		}
	}
	if n := testing.AllocsPerRun(50, func() { f.CovarianceInto(dst) }); n != 0 {
		t.Errorf("CovarianceInto allocates %v per run, want 0", n)
	}
}
