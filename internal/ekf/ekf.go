// Package ekf implements the Extended Kalman Filter state estimator of
// §2.1/Appendix A.2. The filter follows the onboard architecture of real
// autopilots: the inertial sensors (gyroscope, accelerometer) drive the
// prediction step (strapdown propagation), while GPS, barometer, and
// magnetometer provide corrections. This is what makes sensor deception
// attacks effective against the fused estimate — bias on any sensor type
// propagates into the state estimate, as the paper's attacks require.
//
// The filter supports masking individual sensor types, which is how the
// DeLorean framework isolates diagnosed sensors from the feedback control
// loop (Fig. 4): a masked inertial sensor's role in prediction is replaced
// by the dynamics model f(x, u); a masked correcting sensor simply stops
// correcting. It also exposes pure model prediction, the roll-forward
// primitive state reconstruction uses to replay dynamics from the last
// trustworthy checkpoint (§4.3).
package ekf

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// nx is the rigid-body state dimension.
const nx = 12

// StepFunc advances the model state by dt under input u. It abstracts the
// dynamics model so the filter can run on either the true vehicle
// parameters or the system-identified model (Appendix A.2 learns the model
// through system identification).
type StepFunc func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State

// QuadStep returns a StepFunc for the given quadcopter model (no wind —
// the onboard model cannot observe wind; it is process noise).
func QuadStep(q vehicle.Quadcopter) StepFunc {
	return func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State {
		return q.Step(s, u, vehicle.Wind{}, dt)
	}
}

// RoverStep returns a StepFunc for the given rover model.
func RoverStep(r vehicle.Rover) StepFunc {
	return func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State {
		return r.Step(s, u, vehicle.Wind{}, dt)
	}
}

// StepForProfile returns the model step for a profile's vehicle class.
func StepForProfile(p vehicle.Profile) StepFunc {
	if p.IsQuad() {
		return QuadStep(p.Quad)
	}
	return RoverStep(p.Rover)
}

// obsChannel describes one correction row: which sensor supplies it, which
// rigid-body state index it observes, and its noise floor.
type obsChannel struct {
	sensor sensors.Type
	state  int
	noise  float64
}

// Filter is the EKF.
type Filter struct {
	step    StepFunc
	isQuad  bool
	x       vehicle.State
	p       *mat.Mat
	q       *mat.Mat
	obs     []obsChannel
	magYawN float64

	// fkin is the kinematic transition Jacobian used for covariance
	// propagation. Because the prediction is strapdown (measurement
	// driven), attitude errors do not couple into velocity through the
	// dynamics model; the only structural coupling is position ← velocity.
	// Using the full model Jacobian here would let GPS innovations leak
	// into the attitude estimate through spurious cross-covariances.
	fkin *mat.Mat
}

// New returns a filter for the profile, with measurement noise taken from
// the profile's sensor noise floor.
func New(p vehicle.Profile) *Filter {
	n := p.Noise
	obs := []obsChannel{
		{sensor: sensors.GPS, state: 0, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 1, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 2, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 3, noise: nz(n.GPSVel)},
		{sensor: sensors.GPS, state: 4, noise: nz(n.GPSVel)},
		{sensor: sensors.GPS, state: 5, noise: nz(n.GPSVel)},
		{sensor: sensors.Baro, state: 2, noise: nz(n.Baro)},
		{sensor: sensors.Mag, state: 8, noise: nz(10 * n.Mag)}, // yaw from field
		// Attitude corrections from the gyro-derived (complementary
		// filtered) angle estimates close the roll/pitch loop; without
		// them an attitude offset acquired during a gyro outage would
		// never decay.
		{sensor: sensors.Gyro, state: 6, noise: nz(20 * n.Gyro)},
		{sensor: sensors.Gyro, state: 7, noise: nz(20 * n.Gyro)},
	}
	return &Filter{
		step:    StepForProfile(p),
		isQuad:  p.IsQuad(),
		p:       mat.Identity(nx).Scale(0.1),
		q:       defaultProcessNoise(),
		obs:     obs,
		magYawN: nz(10 * n.Mag),
	}
}

// kinematicJacobian builds the constant position←velocity transition
// Jacobian for covariance propagation at period dt.
func kinematicJacobian(dt float64) *mat.Mat {
	f := mat.Identity(nx)
	for i := 0; i < 3; i++ {
		f.Set(i, 3+i, dt)   // pos ← vel
		f.Set(6+i, 9+i, dt) // angle ← rate
	}
	return f
}

// nz guards against a zero noise floor (singular R).
func nz(v float64) float64 {
	if v <= 0 {
		return 1e-3
	}
	return v
}

func defaultProcessNoise() *mat.Mat {
	d := make([]float64, nx)
	for i := 0; i < 3; i++ {
		d[i] = 0.01   // position
		d[3+i] = 0.05 // velocity (wind is unmodelled)
		d[6+i] = 0.005
		d[9+i] = 0.01
	}
	return mat.Diag(d)
}

// Init seeds the filter state.
func (f *Filter) Init(s vehicle.State) {
	f.x = s
	f.p = mat.Identity(nx).Scale(0.1)
	f.fkin = nil
}

// State returns the current estimate.
func (f *Filter) State() vehicle.State { return f.x }

// Covariance returns a copy of the estimate covariance.
func (f *Filter) Covariance() *mat.Mat { return f.p.Clone() }

// SetState force-sets the estimate (used when recovery hands the filter a
// reconstructed state).
func (f *Filter) SetState(s vehicle.State) { f.x = s }

// Predict rolls the estimate forward dt seconds under input u using the
// dynamics model only (no sensors at all) — the worst-case recovery and
// reconstruction primitive.
func (f *Filter) Predict(u vehicle.Input, dt float64) {
	f.propagateCovariance(u, dt)
	f.x = f.step(f.x, u, dt)
}

// PredictHybrid performs the strapdown prediction: inertial channels in
// active drive the propagation from their measurements; masked inertial
// channels fall back to the dynamics model under input u.
//
//   - gyroscope active: attitude integrates the measured body rates.
//   - accelerometer active: velocity integrates the measured acceleration.
//   - masked: the model step supplies the respective derivatives.
func (f *Filter) PredictHybrid(u vehicle.Input, meas sensors.PhysState, active sensors.TypeSet, dt float64) {
	f.propagateCovariance(u, dt)
	model := f.step(f.x, u, dt)

	next := f.x

	// Attitude propagation.
	if f.isQuad && active.Has(sensors.Gyro) {
		next.WRoll = meas[sensors.SWRoll]
		next.WPitch = meas[sensors.SWPitch]
		next.WYaw = meas[sensors.SWYaw]
		next.Roll = vehicle.WrapAngle(f.x.Roll + next.WRoll*dt)
		next.Pitch = vehicle.WrapAngle(f.x.Pitch + next.WPitch*dt)
		next.Yaw = vehicle.WrapAngle(f.x.Yaw + next.WYaw*dt)
	} else if !f.isQuad && active.Has(sensors.Gyro) {
		// Rovers only use the yaw gyro.
		next.WYaw = meas[sensors.SWYaw]
		next.Yaw = vehicle.WrapAngle(f.x.Yaw + next.WYaw*dt)
	} else {
		next.Roll, next.Pitch, next.Yaw = model.Roll, model.Pitch, model.Yaw
		next.WRoll, next.WPitch, next.WYaw = model.WRoll, model.WPitch, model.WYaw
	}

	// Velocity propagation.
	if active.Has(sensors.Accel) {
		next.VX = f.x.VX + meas[sensors.SAX]*dt
		next.VY = f.x.VY + meas[sensors.SAY]*dt
		next.VZ = f.x.VZ + meas[sensors.SAZ]*dt
	} else {
		next.VX, next.VY, next.VZ = model.VX, model.VY, model.VZ
	}

	// Position integrates the propagated velocity.
	next.X = f.x.X + next.VX*dt
	next.Y = f.x.Y + next.VY*dt
	next.Z = f.x.Z + next.VZ*dt
	if next.Z < 0 {
		next.Z = 0
	}
	f.x = next
}

func (f *Filter) propagateCovariance(_ vehicle.Input, dt float64) {
	if f.fkin == nil {
		f.fkin = kinematicJacobian(dt)
	}
	fj := f.fkin
	f.p = fj.Mul(f.p).Mul(fj.T()).Add(f.q.Scale(dt)).Symmetrize()
}

// MagYaw derives the yaw observation from a magnetometer field
// measurement, inverting the BodyField observation model.
func MagYaw(meas sensors.PhysState) float64 {
	return math.Atan2(-meas[sensors.SMagY], meas[sensors.SMagX])
}

// Correct fuses the correcting sensors (GPS, barometer, magnetometer) in
// active; masked sensors contribute nothing — the isolation mechanism of
// Fig. 4. Inertial sensors do not appear here; they act in PredictHybrid.
func (f *Filter) Correct(meas sensors.PhysState, active sensors.TypeSet) error {
	var rows []obsChannel
	var z []float64
	for _, ch := range f.obs {
		if !active.Has(ch.sensor) {
			continue
		}
		if ch.sensor == sensors.Gyro && !f.isQuad {
			continue // rovers carry no roll/pitch
		}
		rows = append(rows, ch)
		if ch.sensor == sensors.Mag {
			z = append(z, MagYaw(meas))
		} else {
			z = append(z, measChannel(meas, ch))
		}
	}
	if len(rows) == 0 {
		return nil
	}
	m := len(rows)
	h := mat.New(m, nx)
	rdiag := make([]float64, m)
	for i, ch := range rows {
		h.Set(i, ch.state, 1)
		rdiag[i] = ch.noise * ch.noise
	}
	xvec := mat.Vec(f.x.Vec())
	innov := mat.NewVec(m)
	for i, ch := range rows {
		d := z[i] - xvec[ch.state]
		if ch.state >= 6 && ch.state <= 8 {
			d = vehicle.WrapAngle(d)
		}
		innov[i] = d
	}
	ph := f.p.Mul(h.T())
	s := h.Mul(ph).Add(mat.Diag(rdiag))
	// Innovation gating: clamp each innovation to ±gateSigma·√S_ii, the
	// standard EKF defense against implausible jumps. A deception bias
	// larger than the gate is admitted gradually (a few gates per
	// correction cycle) rather than instantaneously — which bounds how far
	// a single corrupted correction can drag the estimate while still
	// letting persistent spoofing take effect, as observed on real
	// autopilot stacks.
	const gateSigma = 5.0
	for i := range innov {
		gate := gateSigma * math.Sqrt(s.At(i, i))
		innov[i] = vehicle.Clamp(innov[i], -gate, gate)
	}
	// K = P Hᵀ S⁻¹  ⇒  solve Sᵀ Kᵀ = (P Hᵀ)ᵀ.
	kt, err := mat.SolveMat(s.T(), ph.T())
	if err != nil {
		return fmt.Errorf("ekf correct: %w", err)
	}
	k := kt.T()
	dx := k.MulVec(innov)
	xvec = xvec.Add(dx)
	f.x = vehicle.StateFromVec(xvec)
	f.x.Roll = vehicle.WrapAngle(f.x.Roll)
	f.x.Pitch = vehicle.WrapAngle(f.x.Pitch)
	f.x.Yaw = vehicle.WrapAngle(f.x.Yaw)
	f.p = mat.Identity(nx).Sub(k.Mul(h)).Mul(f.p).Symmetrize()
	return nil
}

// measChannel reads the PS channel corresponding to an observation row.
func measChannel(meas sensors.PhysState, ch obsChannel) float64 {
	switch {
	case ch.sensor == sensors.Baro:
		return meas[sensors.SBaroAlt]
	case ch.sensor == sensors.Gyro:
		return meas[sensors.SRoll+sensors.StateIndex(ch.state-6)]
	default:
		return meas[sensors.StateIndex(ch.state)] // x..vz map 1:1
	}
}

// RollForward replays the dynamics from state s over the recorded control
// inputs, one step of dt each, and returns the terminal state. It is the
// §4.3 reconstruction operator: x_r(t_{s+1}) = f(x_{t_s}, u_{t_s}), applied
// iteratively to t_a.
func RollForward(step StepFunc, s vehicle.State, inputs []vehicle.Input, dt float64) vehicle.State {
	for _, u := range inputs {
		s = step(s, u, dt)
	}
	return s
}
