// Package ekf implements the Extended Kalman Filter state estimator of
// §2.1/Appendix A.2. The filter follows the onboard architecture of real
// autopilots: the inertial sensors (gyroscope, accelerometer) drive the
// prediction step (strapdown propagation), while GPS, barometer, and
// magnetometer provide corrections. This is what makes sensor deception
// attacks effective against the fused estimate — bias on any sensor type
// propagates into the state estimate, as the paper's attacks require.
//
// The filter supports masking individual sensor types, which is how the
// DeLorean framework isolates diagnosed sensors from the feedback control
// loop (Fig. 4): a masked inertial sensor's role in prediction is replaced
// by the dynamics model f(x, u); a masked correcting sensor simply stops
// correcting. It also exposes pure model prediction, the roll-forward
// primitive state reconstruction uses to replay dynamics from the last
// trustworthy checkpoint (§4.3).
package ekf

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// nx is the rigid-body state dimension.
const nx = 12

// StepFunc advances the model state by dt under input u. It abstracts the
// dynamics model so the filter can run on either the true vehicle
// parameters or the system-identified model (Appendix A.2 learns the model
// through system identification).
type StepFunc func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State

// QuadStep returns a StepFunc for the given quadcopter model (no wind —
// the onboard model cannot observe wind; it is process noise).
func QuadStep(q vehicle.Quadcopter) StepFunc {
	return func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State {
		return q.Step(s, u, vehicle.Wind{}, dt)
	}
}

// RoverStep returns a StepFunc for the given rover model.
func RoverStep(r vehicle.Rover) StepFunc {
	return func(s vehicle.State, u vehicle.Input, dt float64) vehicle.State {
		return r.Step(s, u, vehicle.Wind{}, dt)
	}
}

// StepForProfile returns the model step for a profile's vehicle class.
func StepForProfile(p vehicle.Profile) StepFunc {
	if p.IsQuad() {
		return QuadStep(p.Quad)
	}
	return RoverStep(p.Rover)
}

// obsChannel describes one correction row: which sensor supplies it, which
// rigid-body state index it observes, and its noise floor.
type obsChannel struct {
	sensor sensors.Type
	state  int
	noise  float64
}

// Filter is the EKF.
type Filter struct {
	step    StepFunc
	isQuad  bool
	x       vehicle.State
	p       *mat.Mat
	q       *mat.Mat
	obs     []obsChannel
	magYawN float64

	// sched, when non-nil, is the shared covariance/gain schedule this
	// filter consumes instead of running its own covariance recursion
	// (see schedule.go). schedIdx counts the completed shared
	// predict/correct cycles since Init; -1 means the filter runs (or has
	// fallen back to) the private recursion. predPending marks a shared
	// covariance propagation that has been skipped in Predict*/ and not
	// yet consumed by Correct.
	sched       *Schedule
	schedIdx    int
	predPending bool

	ws workspace
}

// workspace holds the filter's preallocated scratch so the steady-state
// Predict/Correct cycle allocates nothing. All matrices are sized at New
// for the filter's maximum observation count; the Correct scratch is
// reshaped (never grown) to the active row count each call. The scratch
// is strictly call-local — no state survives in it between steps — so
// reusing it cannot change results; delint's hotalloc analyzer keeps the
// hot functions from quietly reverting to the allocating kernels.
type workspace struct {
	// fkin is the kinematic transition Jacobian used for covariance
	// propagation. Because the prediction is strapdown (measurement
	// driven), attitude errors do not couple into velocity through the
	// dynamics model; the only structural coupling is position ← velocity.
	// Using the full model Jacobian here would let GPS innovations leak
	// into the attitude estimate through spurious cross-covariances.
	// It is built lazily on the first covariance propagation after Init
	// (dt is fixed per mission) together with its cached transpose.
	fkin  *mat.Mat
	fkinT *mat.Mat
	// qdt caches q·dt for the dt of the most recent propagation.
	qdt   *mat.Mat
	qdtDT float64

	// nx×nx scratch for covariance propagation and the Joseph-form-style
	// update, plus the cached identity.
	nxA, nxB *mat.Mat
	ident    *mat.Mat

	// Correct scratch, reshaped to the active row count m each call.
	rows  []obsChannel
	z     []float64
	h     *mat.Mat  // m×nx observation matrix
	ht    *mat.Mat  // nx×m
	ph    *mat.Mat  // nx×m
	pht   *mat.Mat  // m×nx
	hph   *mat.Mat  // m×m
	rmat  *mat.Mat  // m×m measurement-noise diagonal
	s     *mat.Mat  // m×m innovation covariance
	st    *mat.Mat  // m×m
	kt    *mat.Mat  // m×nx gain transpose
	k     *mat.Mat  // nx×m gain
	gates []float64 // per-row innovation gate half-widths
	xvec  mat.Vec
	innov mat.Vec
	dx    mat.Vec
	lu    mat.LU
}

// newWorkspace preallocates scratch for a filter with maxM observation
// rows.
func newWorkspace(maxM int) workspace {
	return workspace{
		qdt:   mat.New(nx, nx),
		nxA:   mat.New(nx, nx),
		nxB:   mat.New(nx, nx),
		ident: mat.Identity(nx),
		rows:  make([]obsChannel, 0, maxM),
		z:     make([]float64, 0, maxM),
		h:     mat.New(maxM, nx),
		ht:    mat.New(nx, maxM),
		ph:    mat.New(nx, maxM),
		pht:   mat.New(maxM, nx),
		hph:   mat.New(maxM, maxM),
		rmat:  mat.New(maxM, maxM),
		s:     mat.New(maxM, maxM),
		st:    mat.New(maxM, maxM),
		kt:    mat.New(maxM, nx),
		k:     mat.New(nx, maxM),
		gates: make([]float64, 0, maxM),
		xvec:  mat.NewVec(nx),
		innov: mat.NewVec(maxM),
		dx:    mat.NewVec(nx),
	}
}

// reshape resizes a workspace matrix to r×c, reusing its backing array
// (the workspace is sized at New for the maximum row count).
func reshape(m *mat.Mat, r, c int) {
	m.Rows, m.Cols = r, c
	m.Data = m.Data[:r*c]
}

// New returns a filter for the profile, with measurement noise taken from
// the profile's sensor noise floor.
func New(p vehicle.Profile) *Filter {
	n := p.Noise
	obs := []obsChannel{
		{sensor: sensors.GPS, state: 0, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 1, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 2, noise: nz(n.GPSPos)},
		{sensor: sensors.GPS, state: 3, noise: nz(n.GPSVel)},
		{sensor: sensors.GPS, state: 4, noise: nz(n.GPSVel)},
		{sensor: sensors.GPS, state: 5, noise: nz(n.GPSVel)},
		{sensor: sensors.Baro, state: 2, noise: nz(n.Baro)},
		{sensor: sensors.Mag, state: 8, noise: nz(10 * n.Mag)}, // yaw from field
		// Attitude corrections from the gyro-derived (complementary
		// filtered) angle estimates close the roll/pitch loop; without
		// them an attitude offset acquired during a gyro outage would
		// never decay.
		{sensor: sensors.Gyro, state: 6, noise: nz(20 * n.Gyro)},
		{sensor: sensors.Gyro, state: 7, noise: nz(20 * n.Gyro)},
	}
	return &Filter{
		step:     StepForProfile(p),
		isQuad:   p.IsQuad(),
		p:        mat.Identity(nx).Scale(0.1),
		q:        defaultProcessNoise(),
		obs:      obs,
		magYawN:  nz(10 * n.Mag),
		schedIdx: -1,
		ws:       newWorkspace(len(obs)),
	}
}

// kinematicJacobian builds the constant position←velocity transition
// Jacobian for covariance propagation at period dt.
func kinematicJacobian(dt float64) *mat.Mat {
	f := mat.Identity(nx)
	for i := 0; i < 3; i++ {
		f.Set(i, 3+i, dt)   // pos ← vel
		f.Set(6+i, 9+i, dt) // angle ← rate
	}
	return f
}

// nz guards against a zero noise floor (singular R).
func nz(v float64) float64 {
	if v <= 0 {
		return 1e-3
	}
	return v
}

func defaultProcessNoise() *mat.Mat {
	d := make([]float64, nx)
	for i := 0; i < 3; i++ {
		d[i] = 0.01   // position
		d[3+i] = 0.05 // velocity (wind is unmodelled)
		d[6+i] = 0.005
		d[9+i] = 0.01
	}
	return mat.Diag(d)
}

// Init seeds the filter state. If a schedule is attached, Init (re)arms
// consumption from step 0.
func (f *Filter) Init(s vehicle.State) {
	f.x = s
	f.p = mat.Identity(nx).Scale(0.1)
	f.ws.fkin = nil
	f.ws.fkinT = nil
	f.predPending = false
	if f.sched != nil {
		f.schedIdx = 0
	} else {
		f.schedIdx = -1
	}
}

// AttachSchedule points the filter at a shared covariance/gain schedule.
// Must be called before Init; the schedule must have been built for the
// same profile and tick period the filter will run at (Correct detaches
// defensively on any mismatch it can observe).
func (f *Filter) AttachSchedule(s *Schedule) {
	f.sched = s
	f.predPending = false
	if s != nil {
		f.schedIdx = 0
	} else {
		f.schedIdx = -1
	}
}

// onShared reports whether the filter is currently consuming the shared
// schedule rather than running its private covariance recursion.
func (f *Filter) onShared() bool { return f.schedIdx >= 0 }

// detachShared permanently drops the filter off the shared schedule: it
// materializes the private covariance the schedule has been carrying on
// its behalf and, if a propagation was pending, runs it privately. From
// here on the filter is indistinguishable from one that ran the private
// recursion the whole mission. Cold path — it allocates during schedule
// replay; detachment is sticky so it runs at most once per mission.
func (f *Filter) detachShared() {
	sched, idx, pending := f.sched, f.schedIdx, f.predPending
	f.schedIdx = -1
	f.predPending = false
	sched.seedPost(idx-1, f.p)
	if pending {
		f.propagateCovariance(vehicle.Input{}, sched.dt)
	}
}

// State returns the current estimate.
func (f *Filter) State() vehicle.State { return f.x }

// Covariance returns a copy of the estimate covariance. A filter on the
// shared schedule detaches first (the schedule carries its covariance).
func (f *Filter) Covariance() *mat.Mat {
	if f.onShared() {
		f.detachShared()
	}
	return f.p.Clone()
}

// CovarianceInto copies the estimate covariance into dst without
// allocating. dst must be 12×12. A filter on the shared schedule detaches
// first (cold path).
func (f *Filter) CovarianceInto(dst *mat.Mat) {
	if f.onShared() {
		f.detachShared()
	}
	mat.CloneInto(dst, f.p)
}

// SetState force-sets the estimate (used when recovery hands the filter a
// reconstructed state).
func (f *Filter) SetState(s vehicle.State) { f.x = s }

// Predict rolls the estimate forward dt seconds under input u using the
// dynamics model only (no sensors at all) — the worst-case recovery and
// reconstruction primitive.
func (f *Filter) Predict(u vehicle.Input, dt float64) {
	if f.onShared() {
		// Pure model prediction only happens inside recovery — off the
		// shared all-active path by definition.
		f.detachShared()
	}
	f.propagateCovariance(u, dt)
	f.x = f.step(f.x, u, dt)
}

// PredictHybrid performs the strapdown prediction: inertial channels in
// active drive the propagation from their measurements; masked inertial
// channels fall back to the dynamics model under input u.
//
//   - gyroscope active: attitude integrates the measured body rates.
//   - accelerometer active: velocity integrates the measured acceleration.
//   - masked: the model step supplies the respective derivatives.
func (f *Filter) PredictHybrid(u vehicle.Input, meas sensors.PhysState, active sensors.TypeSet, dt float64) {
	if f.onShared() {
		if !f.predPending && f.sched.covers(dt) && active.Len() == sensors.NumTypes {
			// Nominal path: the covariance propagation is deferred and
			// consumed (together with the correction) from the shared
			// schedule in Correct. The dt-keyed scratch is still built on
			// the first tick so that a later detach sees exactly the
			// caches a private filter would have (fkin is keyed to the
			// mission's first dt).
			if f.ws.fkin == nil {
				f.refreshDT(dt)
			}
			f.predPending = true
		} else {
			f.detachShared()
			f.propagateCovariance(u, dt)
		}
	} else {
		f.propagateCovariance(u, dt)
	}
	model := f.step(f.x, u, dt)

	next := f.x

	// Attitude propagation.
	if f.isQuad && active.Has(sensors.Gyro) {
		next.WRoll = meas[sensors.SWRoll]
		next.WPitch = meas[sensors.SWPitch]
		next.WYaw = meas[sensors.SWYaw]
		next.Roll = vehicle.WrapAngle(f.x.Roll + next.WRoll*dt)
		next.Pitch = vehicle.WrapAngle(f.x.Pitch + next.WPitch*dt)
		next.Yaw = vehicle.WrapAngle(f.x.Yaw + next.WYaw*dt)
	} else if !f.isQuad && active.Has(sensors.Gyro) {
		// Rovers only use the yaw gyro.
		next.WYaw = meas[sensors.SWYaw]
		next.Yaw = vehicle.WrapAngle(f.x.Yaw + next.WYaw*dt)
	} else {
		next.Roll, next.Pitch, next.Yaw = model.Roll, model.Pitch, model.Yaw
		next.WRoll, next.WPitch, next.WYaw = model.WRoll, model.WPitch, model.WYaw
	}

	// Velocity propagation.
	if active.Has(sensors.Accel) {
		next.VX = f.x.VX + meas[sensors.SAX]*dt
		next.VY = f.x.VY + meas[sensors.SAY]*dt
		next.VZ = f.x.VZ + meas[sensors.SAZ]*dt
	} else {
		next.VX, next.VY, next.VZ = model.VX, model.VY, model.VZ
	}

	// Position integrates the propagated velocity.
	next.X = f.x.X + next.VX*dt
	next.Y = f.x.Y + next.VY*dt
	next.Z = f.x.Z + next.VZ*dt
	if next.Z < 0 {
		next.Z = 0
	}
	f.x = next
}

// propagateCovariance advances P ← sym(F·P·Fᵀ + Q·dt) entirely in the
// preallocated workspace. The arithmetic and its evaluation order are the
// same as the allocating chain fj.Mul(p).Mul(fj.T()).Add(q.Scale(dt)).
// Symmetrize() it replaced, so covariances stay bit-identical.
func (f *Filter) propagateCovariance(_ vehicle.Input, dt float64) {
	ws := &f.ws
	//lint:ignore floatcmp dt is a cache key: any bit change must rebuild Q·dt
	if ws.fkin == nil || ws.qdtDT != dt {
		f.refreshDT(dt)
	}
	mat.MulInto(ws.nxA, ws.fkin, f.p)
	mat.MulInto(ws.nxB, ws.nxA, ws.fkinT)
	mat.AddInto(ws.nxB, ws.nxB, ws.qdt)
	mat.SymmetrizeInto(f.p, ws.nxB)
}

// refreshDT rebuilds the dt-dependent scratch: the kinematic transition
// Jacobian (built once per Init — dt is fixed within a mission) and the
// scaled process noise Q·dt (re-derived whenever dt changes). Cold path:
// it allocates, so it is deliberately outside the hotalloc-gated set.
func (f *Filter) refreshDT(dt float64) {
	ws := &f.ws
	if ws.fkin == nil {
		ws.fkin = kinematicJacobian(dt)
		ws.fkinT = ws.fkin.T()
	}
	//lint:ignore floatcmp dt is a cache key: any bit change must rebuild Q·dt
	if ws.qdtDT != dt {
		mat.ScaleInto(ws.qdt, dt, f.q)
		ws.qdtDT = dt
	}
}

// MagYaw derives the yaw observation from a magnetometer field
// measurement, inverting the BodyField observation model.
func MagYaw(meas sensors.PhysState) float64 {
	return math.Atan2(-meas[sensors.SMagY], meas[sensors.SMagX])
}

// Correct fuses the correcting sensors (GPS, barometer, magnetometer) in
// active; masked sensors contribute nothing — the isolation mechanism of
// Fig. 4. Inertial sensors do not appear here; they act in PredictHybrid.
//
// The update is split into a measurement-independent covariance/gain half
// (covGain: H, R, S, the innovation gates, K, and the posterior P — all a
// function of the prior P and the active row set only) and a state half
// (applyGain: innovation, gating, state update). On the nominal all-active
// path the first half is identical for every mission sharing a (profile,
// dt) pair, so a filter attached to a Schedule consumes the precomputed
// (K, gates) for its current step instead of recomputing them; the split
// only reorders operations that do not depend on each other, so results
// stay bit-identical either way.
func (f *Filter) Correct(meas sensors.PhysState, active sensors.TypeSet) error {
	rows, z := f.selectRows(meas, active)
	if f.onShared() {
		if f.predPending && len(rows) == f.sched.fullRows() {
			st, err := f.sched.step(f.schedIdx)
			if err != nil {
				return err
			}
			f.predPending = false
			f.schedIdx++
			f.applyGain(rows, z, st.k, st.gates)
			return nil
		}
		// Contract breach (masked sensor, or Correct without a pending
		// predict): leave the shared path and redo this cycle privately.
		f.detachShared()
	}
	if len(rows) == 0 {
		return nil
	}
	k, gates, err := f.covGain(rows)
	if err != nil {
		return err
	}
	f.applyGain(rows, z, k, gates)
	return nil
}

// selectRows fills the workspace row set and measurement vector for the
// active sensors and returns them (aliases of ws.rows/ws.z).
func (f *Filter) selectRows(meas sensors.PhysState, active sensors.TypeSet) ([]obsChannel, []float64) {
	ws := &f.ws
	rows := ws.rows[:0]
	z := ws.z[:0]
	for _, ch := range f.obs {
		if !active.Has(ch.sensor) {
			continue
		}
		if ch.sensor == sensors.Gyro && !f.isQuad {
			continue // rovers carry no roll/pitch
		}
		rows = append(rows, ch)
		if ch.sensor == sensors.Mag {
			z = append(z, MagYaw(meas))
		} else {
			z = append(z, measChannel(meas, ch))
		}
	}
	ws.rows, ws.z = rows, z
	return rows, z
}

// covGain runs the measurement-independent half of the correction: it
// builds H and R for the row set, forms S = H·P·Hᵀ + R, derives the
// innovation gate half-widths, solves for the Kalman gain K = P·Hᵀ·S⁻¹,
// and advances P ← sym((I − K·H)·P). The returned gain and gates alias
// the workspace and stay valid until the next covGain call.
func (f *Filter) covGain(rows []obsChannel) (*mat.Mat, []float64, error) {
	ws := &f.ws
	m := len(rows)
	reshape(ws.h, m, nx)
	reshape(ws.rmat, m, m)
	ws.h.Zero()
	ws.rmat.Zero()
	for i, ch := range rows {
		ws.h.Set(i, ch.state, 1)
		ws.rmat.Set(i, i, ch.noise*ch.noise)
	}
	reshape(ws.ht, nx, m)
	mat.TransposeInto(ws.ht, ws.h)
	reshape(ws.ph, nx, m)
	mat.MulInto(ws.ph, f.p, ws.ht)
	// S = H·P·Hᵀ + R. The addition runs over the full m×m matrices (R is
	// zero off the diagonal), matching the element order of the allocating
	// Add(Diag(rdiag)) it replaced.
	reshape(ws.hph, m, m)
	mat.MulInto(ws.hph, ws.h, ws.ph)
	reshape(ws.s, m, m)
	mat.AddInto(ws.s, ws.hph, ws.rmat)
	// Innovation gates: ±gateSigma·√S_ii, the standard EKF defense against
	// implausible jumps. A deception bias larger than the gate is admitted
	// gradually (a few gates per correction cycle) rather than
	// instantaneously — which bounds how far a single corrupted correction
	// can drag the estimate while still letting persistent spoofing take
	// effect, as observed on real autopilot stacks.
	const gateSigma = 5.0
	gates := ws.gates[:m]
	for i := range gates {
		gates[i] = gateSigma * math.Sqrt(ws.s.At(i, i))
	}
	// K = P Hᵀ S⁻¹  ⇒  solve Sᵀ Kᵀ = (P Hᵀ)ᵀ.
	reshape(ws.st, m, m)
	mat.TransposeInto(ws.st, ws.s)
	reshape(ws.pht, m, nx)
	mat.TransposeInto(ws.pht, ws.ph)
	reshape(ws.kt, m, nx)
	if err := ws.lu.Refactor(ws.st); err != nil {
		return nil, nil, fmt.Errorf("ekf correct: %w", err)
	}
	if err := ws.lu.SolveInto(ws.kt, ws.pht); err != nil {
		return nil, nil, fmt.Errorf("ekf correct: %w", err)
	}
	reshape(ws.k, nx, m)
	mat.TransposeInto(ws.k, ws.kt)
	// P ← sym((I − K·H)·P), in the same evaluation order as the allocating
	// Identity(nx).Sub(k.Mul(h)).Mul(p).Symmetrize() chain it replaced.
	// The update reads only K, H, and the prior P, none of which the state
	// half touches, so running it before the state update is bit-exact.
	mat.MulInto(ws.nxA, ws.k, ws.h)
	mat.SubInto(ws.nxA, ws.ident, ws.nxA)
	mat.MulInto(ws.nxB, ws.nxA, f.p)
	mat.SymmetrizeInto(f.p, ws.nxB)
	return ws.k, gates, nil
}

// applyGain runs the state half of the correction: the innovation against
// the current estimate, clamped to the precomputed gates, scaled through
// the gain. k must be nx×m and gates length m for m = len(rows).
func (f *Filter) applyGain(rows []obsChannel, z []float64, k *mat.Mat, gates []float64) {
	ws := &f.ws
	m := len(rows)
	xvec := ws.xvec
	f.x.VecInto(xvec)
	innov := ws.innov[:m]
	for i, ch := range rows {
		d := z[i] - xvec[ch.state]
		if ch.state >= 6 && ch.state <= 8 {
			d = vehicle.WrapAngle(d)
		}
		innov[i] = vehicle.Clamp(d, -gates[i], gates[i])
	}
	mat.MulVecInto(ws.dx, k, innov)
	xvec.AddInPlace(ws.dx)
	f.x = vehicle.StateFromVec(xvec)
	f.x.Roll = vehicle.WrapAngle(f.x.Roll)
	f.x.Pitch = vehicle.WrapAngle(f.x.Pitch)
	f.x.Yaw = vehicle.WrapAngle(f.x.Yaw)
}

// measChannel reads the PS channel corresponding to an observation row.
func measChannel(meas sensors.PhysState, ch obsChannel) float64 {
	switch {
	case ch.sensor == sensors.Baro:
		return meas[sensors.SBaroAlt]
	case ch.sensor == sensors.Gyro:
		return meas[sensors.SRoll+sensors.StateIndex(ch.state-6)]
	default:
		return meas[sensors.StateIndex(ch.state)] // x..vz map 1:1
	}
}

// RollForward replays the dynamics from state s over the recorded control
// inputs, one step of dt each, and returns the terminal state. It is the
// §4.3 reconstruction operator: x_r(t_{s+1}) = f(x_{t_s}, u_{t_s}), applied
// iteratively to t_a.
func RollForward(step StepFunc, s vehicle.State, inputs []vehicle.Input, dt float64) vehicle.State {
	for _, u := range inputs {
		s = step(s, u, dt)
	}
	return s
}
