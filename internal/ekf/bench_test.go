package ekf_test

// Hot-path benchmarks for the EKF step cycle. These use only the filter's
// public API, so scripts/bench_compare.sh can run the identical file
// against the pre-optimization tree for before/after numbers.

import (
	"testing"

	"repro/internal/ekf"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// benchFilter returns a warmed filter plus a steady-state measurement and
// the full active sensor set.
func benchFilter() (*ekf.Filter, sensors.PhysState, sensors.TypeSet) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	f := ekf.New(prof)
	f.Init(vehicle.State{Z: 10})
	meas := sensors.TruePhysState(vehicle.State{Z: 10}, [3]float64{}, sensors.BodyField(0))
	active := sensors.NewTypeSet(sensors.AllTypes()...)
	f.Predict(vehicle.Input{Thrust: 9}, 0.01)
	_ = f.Correct(meas, active)
	return f, meas, active
}

func BenchmarkEKFPredict(b *testing.B) {
	f, _, _ := benchFilter()
	u := vehicle.Input{Thrust: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(u, 0.01)
	}
}

func BenchmarkEKFPredictHybrid(b *testing.B) {
	f, meas, active := benchFilter()
	u := vehicle.Input{Thrust: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictHybrid(u, meas, active, 0.01)
	}
}

func BenchmarkEKFCorrect(b *testing.B) {
	f, meas, active := benchFilter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Correct(meas, active); err != nil {
			b.Fatal(err)
		}
	}
}
