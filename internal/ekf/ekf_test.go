package ekf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

func pixhawk() vehicle.Profile { return vehicle.MustProfile(vehicle.Pixhawk) }

func allSensors() sensors.TypeSet { return sensors.NewTypeSet(sensors.AllTypes()...) }

func TestPredictMatchesModel(t *testing.T) {
	p := pixhawk()
	f := New(p)
	s0 := vehicle.State{Z: 10, VX: 1}
	f.Init(s0)
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	f.Predict(u, 0.01)
	want := p.Quad.Step(s0, u, vehicle.Wind{}, 0.01)
	if got := f.State(); math.Abs(got.Z-want.Z) > 1e-12 || math.Abs(got.X-want.X) > 1e-12 {
		t.Errorf("Predict = %+v, want %+v", got, want)
	}
}

func TestCorrectPullsTowardMeasurement(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	var meas sensors.PhysState
	meas[sensors.SX] = 2
	meas[sensors.SZ] = 10
	meas[sensors.SBaroAlt] = 10
	for i := 0; i < 50; i++ {
		f.Predict(vehicle.Input{Thrust: p.Quad.HoverThrust()}, 0.01)
		if err := f.Correct(meas, sensors.NewTypeSet(sensors.GPS, sensors.Baro)); err != nil {
			t.Fatalf("Correct: %v", err)
		}
	}
	if got := f.State().X; got < 1 {
		t.Errorf("estimate x = %v, want pulled toward 2", got)
	}
}

func TestCorrectMaskedSensorIgnored(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	var meas sensors.PhysState
	meas[sensors.SX] = 50 // spoofed GPS
	meas[sensors.SZ] = 10
	before := f.State()
	if err := f.Correct(meas, sensors.NewTypeSet(sensors.Baro)); err != nil {
		t.Fatalf("Correct: %v", err)
	}
	if got := f.State().X; math.Abs(got-before.X) > 0.2 {
		t.Errorf("masked GPS still moved x estimate: %v", got)
	}
}

func TestCorrectEmptyMaskIsNoop(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 5, VX: 2})
	before := f.State()
	if err := f.Correct(sensors.PhysState{}, sensors.NewTypeSet()); err != nil {
		t.Fatalf("Correct: %v", err)
	}
	if f.State() != before {
		t.Error("empty-mask correction changed state")
	}
}

func TestTrackingClosedLoop(t *testing.T) {
	// The filter must track a hovering drone under noisy measurements
	// using strapdown prediction + GPS/baro/mag corrections.
	p := pixhawk()
	f := New(p)
	truth := vehicle.State{Z: 10}
	f.Init(truth)
	rng := rand.New(rand.NewSource(42))
	suite := sensors.NewSuite(p, rng)
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	dt := 0.01
	for i := 0; i < 500; i++ {
		tNow := float64(i) * dt
		d := p.Quad.Derivative(truth, u, vehicle.Wind{})
		accel := [3]float64{d.VX, d.VY, d.VZ}
		truth = p.Quad.Step(truth, u, vehicle.Wind{}, dt)
		meas := suite.Sample(tNow, dt, truth, accel, sensors.Bias{})
		f.PredictHybrid(u, meas, allSensors(), dt)
		if err := f.Correct(meas, allSensors()); err != nil {
			t.Fatalf("Correct: %v", err)
		}
	}
	est := f.State()
	if math.Abs(est.Z-truth.Z) > 0.5 {
		t.Errorf("z estimate %v vs truth %v", est.Z, truth.Z)
	}
	if math.Abs(est.X-truth.X) > 0.5 {
		t.Errorf("x estimate %v vs truth %v", est.X, truth.X)
	}
}

func TestGyroBiasCorruptsFusedAttitude(t *testing.T) {
	// A gyroscope rate bias must drag the fused attitude — the attack
	// propagation path the paper's gyro SDAs rely on.
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	var meas sensors.PhysState
	meas[sensors.SWRoll] = 0.5 // biased rate, truth is hover
	meas[sensors.SZ] = 10
	meas[sensors.SBaroAlt] = 10
	meas[sensors.SMagX], meas[sensors.SMagY], meas[sensors.SMagZ] = sensors.EarthField[0], sensors.EarthField[1], sensors.EarthField[2]
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	for i := 0; i < 200; i++ {
		// The onboard attitude estimator integrates the same biased rates,
		// so the gyro-derived angle channel grows with the bias too.
		meas[sensors.SRoll] = vehicle.WrapAngle(meas[sensors.SRoll] + 0.5*0.01)
		f.PredictHybrid(u, meas, allSensors(), 0.01)
		if err := f.Correct(meas, allSensors()); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.State().Roll; got < 0.5 {
		t.Errorf("fused roll = %v, want dragged by rate bias", got)
	}
}

func TestAccelBiasCorruptsFusedVelocity(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	var meas sensors.PhysState
	meas[sensors.SAX] = 3 // biased accel, truth is hover
	meas[sensors.SZ] = 10
	meas[sensors.SBaroAlt] = 10
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	// GPS masked so the accel drift is not corrected away instantly.
	active := sensors.NewTypeSet(sensors.Gyro, sensors.Accel, sensors.Baro)
	for i := 0; i < 100; i++ {
		f.PredictHybrid(u, meas, active, 0.01)
		if err := f.Correct(meas, active); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.State().VX; got < 1 {
		t.Errorf("fused vx = %v, want dragged by accel bias", got)
	}
}

func TestMaskedGyroFallsBackToModel(t *testing.T) {
	// With the gyro masked, a huge rate bias in the measurement must not
	// reach the attitude estimate.
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	var meas sensors.PhysState
	meas[sensors.SWRoll] = 9
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	active := sensors.NewTypeSet(sensors.Accel, sensors.Baro)
	for i := 0; i < 100; i++ {
		f.PredictHybrid(u, meas, active, 0.01)
	}
	if got := math.Abs(f.State().Roll); got > 0.01 {
		t.Errorf("masked gyro still corrupted roll: %v", got)
	}
}

func TestMagYawInversion(t *testing.T) {
	for _, yaw := range []float64{0, 0.5, -1.2, math.Pi - 0.1} {
		field := sensors.BodyField(yaw)
		var meas sensors.PhysState
		meas[sensors.SMagX], meas[sensors.SMagY], meas[sensors.SMagZ] = field[0], field[1], field[2]
		if got := MagYaw(meas); math.Abs(vehicle.WrapAngle(got-yaw)) > 1e-9 {
			t.Errorf("MagYaw(%v) = %v", yaw, got)
		}
	}
}

func TestCovarianceStaysPSD(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	var meas sensors.PhysState
	meas[sensors.SZ] = 10
	meas[sensors.SBaroAlt] = 10
	for i := 0; i < 200; i++ {
		f.PredictHybrid(u, meas, allSensors(), 0.01)
		if err := f.Correct(meas, allSensors()); err != nil {
			t.Fatalf("Correct: %v", err)
		}
		if !mat.IsPSD(f.Covariance(), 1e-9) {
			t.Fatalf("covariance not PSD at tick %d", i)
		}
	}
}

func TestMaskingGrowsUncertainty(t *testing.T) {
	p := pixhawk()
	f := New(p)
	f.Init(vehicle.State{Z: 10})
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	prev := f.Covariance().At(0, 0)
	for i := 0; i < 100; i++ {
		f.Predict(u, 0.01)
		cur := f.Covariance().At(0, 0)
		if cur < prev-1e-12 {
			t.Fatalf("masked covariance shrank at tick %d: %v < %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestRollForward(t *testing.T) {
	p := pixhawk()
	step := QuadStep(p.Quad)
	s := vehicle.State{Z: 10}
	u := vehicle.Input{Thrust: p.Quad.HoverThrust()}
	inputs := make([]vehicle.Input, 100)
	for i := range inputs {
		inputs[i] = u
	}
	got := RollForward(step, s, inputs, 0.01)
	if math.Abs(got.Z-10) > 1e-9 {
		t.Errorf("hover roll-forward drifted: z = %v", got.Z)
	}
	want := s
	for range inputs {
		want = step(want, u, 0.01)
	}
	if got != want {
		t.Errorf("RollForward = %+v, want %+v", got, want)
	}
}

func TestRoverFilterTracks(t *testing.T) {
	p := vehicle.MustProfile(vehicle.AionR1)
	f := New(p)
	truth := vehicle.State{VX: 1}
	f.Init(truth)
	rng := rand.New(rand.NewSource(7))
	suite := sensors.NewSuite(p, rng)
	u := vehicle.Input{Thrust: 0.5}
	dt := 0.01
	for i := 0; i < 300; i++ {
		d := p.Rover.Derivative(truth, u, vehicle.Wind{})
		accel := [3]float64{d.VX, d.VY, 0}
		truth = p.Rover.Step(truth, u, vehicle.Wind{}, dt)
		meas := suite.Sample(float64(i)*dt, dt, truth, accel, sensors.Bias{})
		f.PredictHybrid(u, meas, allSensors(), dt)
		if err := f.Correct(meas, allSensors()); err != nil {
			t.Fatalf("Correct: %v", err)
		}
	}
	if d := math.Abs(f.State().X - truth.X); d > 1 {
		t.Errorf("rover x estimate off by %v", d)
	}
}

func TestSetState(t *testing.T) {
	f := New(pixhawk())
	want := vehicle.State{X: 7, Z: 3}
	f.SetState(want)
	if f.State() != want {
		t.Error("SetState did not take")
	}
}

// Property: Predict is deterministic — same state, same input, same
// result.
func TestPropertyPredictDeterministic(t *testing.T) {
	p := pixhawk()
	f := func(z, vx, thrust float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) || math.IsNaN(vx) || math.IsNaN(thrust) {
			return true
		}
		s := vehicle.State{Z: math.Mod(math.Abs(z), 100), VX: math.Mod(vx, 10)}
		u := vehicle.Input{Thrust: math.Mod(math.Abs(thrust), p.MaxThrust)}
		a := New(p)
		a.Init(s)
		a.Predict(u, 0.01)
		b := New(p)
		b.Init(s)
		b.Predict(u, 0.01)
		return a.State() == b.State()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
