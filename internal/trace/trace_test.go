package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math"
	"testing"

	"repro/internal/sensors"
)

// sample builds a small trace with non-trivial float payloads (negative
// zero, subnormals, and values with full mantissas) so the round trip
// proves bit preservation, not just approximate equality.
func sample() *Trace {
	tr := &Trace{
		Header: Header{
			DT:            0.01,
			AttackMounted: true,
			Meta: []MetaEntry{
				{Key: "generator", Value: "test"},
				{Key: "seed", Value: "42"},
				{Key: "empty", Value: ""},
			},
		},
	}
	for i := 0; i < 7; i++ {
		var f Frame
		f.T = float64(i) * 0.01
		for j := range f.State {
			f.State[j] = math.Sqrt(float64(i*31+j)+0.1) * 1e-3
		}
		f.State[0] = math.Copysign(0, -1)        // -0.0 must survive
		f.State[1] = math.SmallestNonzeroFloat64 // subnormal must survive
		if i >= 3 {
			f.Flags = FlagAttackActive
			f.Targets = sensors.MaskOf(sensors.GPS, sensors.Gyro)
		}
		tr.Frames = append(tr.Frames, f)
	}
	return tr
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	enc := encode(t, tr)
	got, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.AttackMounted != tr.Header.AttackMounted {
		t.Error("AttackMounted lost")
	}
	if math.Float64bits(got.Header.DT) != math.Float64bits(tr.Header.DT) {
		t.Error("DT lost")
	}
	if len(got.Header.Meta) != len(tr.Header.Meta) {
		t.Fatalf("meta count = %d, want %d", len(got.Header.Meta), len(tr.Header.Meta))
	}
	for i, e := range tr.Header.Meta {
		if got.Header.Meta[i] != e {
			t.Errorf("meta[%d] = %+v, want %+v", i, got.Header.Meta[i], e)
		}
	}
	if len(got.Frames) != len(tr.Frames) {
		t.Fatalf("frames = %d, want %d", len(got.Frames), len(tr.Frames))
	}
	for i := range tr.Frames {
		w, g := tr.Frames[i], got.Frames[i]
		if math.Float64bits(g.T) != math.Float64bits(w.T) {
			t.Errorf("frame %d: T bits differ", i)
		}
		for j := range w.State {
			if math.Float64bits(g.State[j]) != math.Float64bits(w.State[j]) {
				t.Errorf("frame %d state %d: bits differ", i, j)
			}
		}
		if g.Flags != w.Flags || g.Targets != w.Targets {
			t.Errorf("frame %d: flags/targets differ", i)
		}
	}
	if !got.Frames[3].AttackActive() || got.Frames[0].AttackActive() {
		t.Error("AttackActive flag wrong")
	}
}

// TestDeterministicEncoding: encoding is a pure function of the contents
// — same trace, same bytes, and a decoded trace re-encodes to the
// original bytes (the regression-corpus contract).
func TestDeterministicEncoding(t *testing.T) {
	tr := sample()
	a, b := encode(t, tr), encode(t, tr)
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same trace differ")
	}
	dec, err := Decode(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(encode(t, dec), a) {
		t.Error("decode→re-encode is not byte-identical")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	enc := encode(t, sample())
	enc[0] ^= 0xFF
	if _, err := Decode(bytes.NewReader(enc)); !errors.Is(err, ErrMagic) {
		t.Errorf("got %v, want ErrMagic", err)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	enc := encode(t, sample())
	enc[len(magic)] = 99
	if _, err := Decode(bytes.NewReader(enc)); !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := encode(t, sample())
	// Truncations at every layer: inside the header, inside the gzip
	// stream, and mid-payload.
	for _, n := range []int{0, 4, len(magic) + 2, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(bytes.NewReader(enc[:n])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDecodeRejectsBitFlip(t *testing.T) {
	enc := encode(t, sample())
	// Flip a byte in the middle of the compressed payload; the gzip
	// integrity check must catch it.
	enc[len(enc)*2/3] ^= 0x40
	if _, err := Decode(bytes.NewReader(enc)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsStateCountMismatch(t *testing.T) {
	// A trace recorded with a different PS layout must be refused, not
	// misparsed. Re-encode with a corrupted channel-count field.
	tr := sample()
	var payload bytes.Buffer
	if err := tr.encodePayload(&payload); err != nil {
		t.Fatal(err)
	}
	p := payload.Bytes()
	p[0]++ // NumStates+1
	var out bytes.Buffer
	out.WriteString(magic)
	out.Write([]byte{Version, 0, 0, 0})
	gz := gzip.NewWriter(&out)
	if _, err := gz.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(out.Bytes())); !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion (layout mismatch)", err)
	}
}

func TestDecodeRejectsOversizedFrameCount(t *testing.T) {
	// A frame count larger than the remaining payload must fail fast
	// instead of allocating.
	tr := &Trace{Header: Header{DT: 0.01}}
	var payload bytes.Buffer
	if err := tr.encodePayload(&payload); err != nil {
		t.Fatal(err)
	}
	p := payload.Bytes()
	p[len(p)-1] = 0xFF // frame count low byte: 255 frames, zero payload
	var out bytes.Buffer
	out.WriteString(magic)
	out.Write([]byte{Version, 0, 0, 0})
	gz := gzip.NewWriter(&out)
	if _, err := gz.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(out.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v, want ErrCorrupt", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/m.trace"
	tr := sample()
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got.Frames) != len(tr.Frames) {
		t.Errorf("frames = %d, want %d", len(got.Frames), len(tr.Frames))
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestMetaValue(t *testing.T) {
	h := sample().Header
	if v, ok := h.MetaValue("seed"); !ok || v != "42" {
		t.Errorf("MetaValue(seed) = %q, %v", v, ok)
	}
	if _, ok := h.MetaValue("absent"); ok {
		t.Error("MetaValue(absent) should miss")
	}
}
