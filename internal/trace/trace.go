// Package trace is the versioned on-disk sensor-trace format: one frame
// per control period holding the exact (bit-preserved) timestamp, the
// full time-aligned PS measurement vector, and the attack annotations.
// A mission recorded once replays byte-identically forever — the format
// is the regression-corpus substrate of the replay gate in CI.
//
// Encoding is deterministic by construction: fixed little-endian layout,
// IEEE-754 bit images for every float (no decimal round-trip), header
// metadata as an ordered key/value list (never a map), and a gzip
// envelope whose integrity check (CRC-32 + length, verified at decode)
// doubles as the corruption detector. Re-encoding a decoded trace
// reproduces the input bytes.
package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/sensors"
)

// magic identifies a DeLorean sensor-trace file; it precedes the gzip
// envelope so `file`-style sniffing and version negotiation work without
// decompression.
const magic = "DLRNTRC\n"

// Version is the current trace-format version. Bump it on any change to
// the frame layout, header field set, or semantics; decoders reject
// versions they do not know rather than guessing (see DESIGN.md §5g for
// the versioning rules).
const Version = 1

// Frame flag bits.
const (
	// FlagAttackActive marks a frame during which the injection physically
	// reached the sensors.
	FlagAttackActive uint8 = 1 << 0
)

// Decode error classes. Decode wraps these sentinels with positional
// detail; test with errors.Is.
var (
	// ErrMagic: the input is not a DeLorean sensor trace.
	ErrMagic = errors.New("trace: bad magic (not a sensor-trace file)")
	// ErrVersion: the trace was written by an unknown format version.
	ErrVersion = errors.New("trace: unsupported format version")
	// ErrCorrupt: the envelope or payload is damaged or truncated.
	ErrCorrupt = errors.New("trace: corrupt or truncated")
)

// MetaEntry is one ordered header annotation. Meta carries the recorder's
// provenance (tool flags, profile, seed) as an explicit list so encoding
// order is the caller's order, never map order.
type MetaEntry struct {
	Key, Value string
}

// Header describes the recorded mission.
type Header struct {
	// DT is the control-period grid the frames were sampled on.
	DT float64
	// AttackMounted reports whether the recorded mission carried an SDA —
	// replay needs it for the run report's attacked/benign outcome
	// classification (the schedule itself is baked into the frames).
	AttackMounted bool
	// Meta holds ordered provenance annotations.
	Meta []MetaEntry
}

// MetaValue returns the value of the first entry with the given key, and
// whether it was present.
func (h Header) MetaValue(key string) (string, bool) {
	for _, e := range h.Meta {
		if e.Key == key {
			return e.Value, true
		}
	}
	return "", false
}

// Frame is one control period: exact timestamp, the full time-aligned PS
// measurement frame, and the attack annotations.
type Frame struct {
	T       float64
	State   sensors.PhysState
	Flags   uint8
	Targets sensors.TypeMask
}

// AttackActive reports the FlagAttackActive bit.
func (f Frame) AttackActive() bool { return f.Flags&FlagAttackActive != 0 }

// Trace is a decoded sensor trace.
type Trace struct {
	Header Header
	Frames []Frame
}

// frameBytes is the fixed on-disk frame size: timestamp, NumStates float
// images, flags, targets.
const frameBytes = 8 + 8*int(sensors.NumStates) + 2

// Encode writes the trace: magic, version, then the gzip-compressed
// payload. The output bytes are a pure function of the trace contents.
func (tr *Trace) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	if _, err := w.Write(v[:]); err != nil {
		return err
	}
	gz := gzip.NewWriter(w)
	if err := tr.encodePayload(gz); err != nil {
		return err
	}
	return gz.Close()
}

func (tr *Trace) encodePayload(w io.Writer) error {
	var buf bytes.Buffer
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	putString := func(s string) {
		putU32(uint32(len(s)))
		buf.WriteString(s)
	}

	putU32(uint32(sensors.NumStates))
	putU64(math.Float64bits(tr.Header.DT))
	var hf uint8
	if tr.Header.AttackMounted {
		hf = 1
	}
	buf.WriteByte(hf)
	putU32(uint32(len(tr.Header.Meta)))
	for _, e := range tr.Header.Meta {
		putString(e.Key)
		putString(e.Value)
	}
	putU64(uint64(len(tr.Frames)))
	for i := range tr.Frames {
		f := &tr.Frames[i]
		putU64(math.Float64bits(f.T))
		for _, s := range f.State {
			putU64(math.Float64bits(s))
		}
		buf.WriteByte(f.Flags)
		buf.WriteByte(uint8(f.Targets))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// Decode reads a trace written by Encode. Corruption anywhere — damaged
// magic, unknown version, truncated or bit-flipped payload (caught by the
// gzip CRC) — yields an error wrapping one of the sentinel classes.
func Decode(r io.Reader) (*Trace, error) {
	head := make([]byte, len(magic)+4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, ErrMagic
	}
	if v := binary.LittleEndian.Uint32(head[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: got version %d, this build reads %d", ErrVersion, v, Version)
	}
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: bad envelope: %v", ErrCorrupt, err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("%w: envelope checksum: %v", ErrCorrupt, err)
	}
	return decodePayload(payload)
}

func decodePayload(p []byte) (*Trace, error) {
	d := &payloadReader{buf: p}
	if n := d.u32(); n != uint32(sensors.NumStates) {
		if d.err != nil {
			return nil, d.fail("state-count field")
		}
		return nil, fmt.Errorf("%w: trace has %d PS channels, this build has %d",
			ErrVersion, n, int(sensors.NumStates))
	}
	var tr Trace
	tr.Header.DT = math.Float64frombits(d.u64())
	tr.Header.AttackMounted = d.u8() != 0
	nMeta := d.u32()
	if d.err != nil {
		return nil, d.fail("header")
	}
	for i := uint32(0); i < nMeta; i++ {
		k := d.str()
		v := d.str()
		if d.err != nil {
			return nil, d.fail("header meta")
		}
		tr.Header.Meta = append(tr.Header.Meta, MetaEntry{Key: k, Value: v})
	}
	nFrames := d.u64()
	if d.err != nil || nFrames > uint64(len(d.buf)-d.off)/uint64(frameBytes) {
		return nil, d.fail("frame count")
	}
	tr.Frames = make([]Frame, nFrames)
	for i := range tr.Frames {
		f := &tr.Frames[i]
		f.T = math.Float64frombits(d.u64())
		for j := range f.State {
			f.State[j] = math.Float64frombits(d.u64())
		}
		f.Flags = d.u8()
		f.Targets = sensors.TypeMask(d.u8())
	}
	if d.err != nil {
		return nil, d.fail("frames")
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last frame", ErrCorrupt, len(d.buf)-d.off)
	}
	return &tr, nil
}

// payloadReader cursors over the decompressed payload, latching the first
// out-of-bounds read as an error.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (d *payloadReader) fail(what string) error {
	if d.err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, what, d.err)
	}
	return fmt.Errorf("%w: %s", ErrCorrupt, what)
}

func (d *payloadReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = errors.New("unexpected end of payload")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *payloadReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *payloadReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *payloadReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *payloadReader) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	return string(d.take(int(n)))
}

// WriteFile encodes the trace to path.
func WriteFile(path string, tr *Trace) error {
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFile decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr, err := Decode(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
