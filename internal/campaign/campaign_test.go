package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
)

// testSpec is the suite's study: a small real grid — two vehicle
// profiles, attacked and attack-free conditions, short missions — big
// enough to split 16 ways, small enough to run many times.
func testSpec() Spec {
	return Spec{
		Name:          "test-study",
		Seed:          11,
		Missions:      4,
		Profiles:      []string{"ArduCopter", "ArduRover"},
		Strategies:    []string{"delorean"},
		AttackSensors: []int{0, 1},
		Onset:         Range{Min: 1, Max: 1.5},
		Duration:      Range{Min: 1, Max: 1.5},
		Wind:          Range{Min: 0, Max: 2},
		MaxSec:        3,
	}
}

// renderStudy runs the campaign with the options and renders the study
// bytes.
func renderStudy(t *testing.T, opt Options) []byte {
	t.Helper()
	c, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	study, err := c.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, count int
		want     []Shard
	}{
		{4, 1, []Shard{{0, 0, 4}}},
		{4, 2, []Shard{{0, 0, 2}, {1, 2, 4}}},
		{5, 2, []Shard{{0, 0, 3}, {1, 3, 5}}},
		{4, 0, []Shard{{0, 0, 4}}},
		{2, 5, []Shard{{0, 0, 1}, {1, 1, 2}}},
	}
	for _, tc := range cases {
		got := shardRanges(tc.n, tc.count)
		if len(got) != len(tc.want) {
			t.Errorf("shardRanges(%d, %d) = %v, want %v", tc.n, tc.count, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("shardRanges(%d, %d)[%d] = %v, want %v", tc.n, tc.count, i, got[i], tc.want[i])
			}
		}
	}
	// Exhaustive coverage property: every partitioning tiles [0, n).
	for n := 1; n <= 20; n++ {
		for count := 1; count <= 2*n; count++ {
			lo := 0
			for _, sh := range shardRanges(n, count) {
				if sh.Lo != lo || sh.Hi < sh.Lo {
					t.Fatalf("shardRanges(%d, %d): bad tile %v", n, count, sh)
				}
				lo = sh.Hi
			}
			if lo != n {
				t.Fatalf("shardRanges(%d, %d) covers [0, %d), want [0, %d)", n, count, lo, n)
			}
		}
	}
}

// TestStudyInvariance is the acceptance matrix: the study's bytes are
// identical across monolithic vs sharded execution, shard counts 1/4/16,
// workers 1 vs all CPUs, runner vs fleet engine, and persisted vs
// in-memory runs.
func TestStudyInvariance(t *testing.T) {
	want := renderStudy(t, Options{Shards: 1, Workers: 1})
	variants := []struct {
		name string
		opt  Options
	}{
		{"shards=4", Options{Shards: 4, Workers: 1}},
		{"shards=16", Options{Shards: 16, Workers: 1}},
		{"workers=N", Options{Shards: 4, Workers: runtime.NumCPU()}},
		{"engine=fleet", Options{Shards: 1, Workers: 1, Engine: engine.Fleet()}},
		{"engine=fleet/shards=4/workers=N", Options{Shards: 4, Engine: engine.Fleet(), BatchSize: 3}},
		{"checkpointed", Options{Shards: 4, Workers: 1, Dir: t.TempDir()}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if got := renderStudy(t, v.opt); !bytes.Equal(got, want) {
				t.Errorf("study bytes differ from the monolithic single-worker runner baseline")
			}
		})
	}
}

// TestSpecBuildIsPure: two independent builds of the same spec draw an
// identical job list — the invariant resume rests on.
func TestSpecBuildIsPure(t *testing.T) {
	spec := testSpec().withDefaults()
	a, ga, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	b, gb, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(ga) {
		t.Fatalf("job/group counts differ: %d/%d jobs, %d groups", len(a), len(b), len(ga))
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Cfg.Seed != b[i].Cfg.Seed {
			t.Errorf("job %d differs across builds: %q/%d vs %q/%d",
				i, a[i].Label, a[i].Cfg.Seed, b[i].Label, b[i].Cfg.Seed)
		}
		if ga[i] != gb[i] {
			t.Errorf("group %d differs across builds: %q vs %q", i, ga[i], gb[i])
		}
	}
}

// TestGridGroupsAndJobCount: the grid enumerates profiles × strategies ×
// attack sizes × δ scales in declared order, missions per condition.
func TestGridGroupsAndJobCount(t *testing.T) {
	spec := testSpec().withDefaults()
	jobs, groups, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := len(spec.Profiles) * len(spec.Strategies) * len(spec.AttackSensors) * len(spec.DeltaScales) * spec.Missions
	if len(jobs) != wantJobs {
		t.Fatalf("built %d jobs, want %d", len(jobs), wantJobs)
	}
	wantOrder := []string{
		"ArduCopter/DeLorean/k=0/dx1.00",
		"ArduCopter/DeLorean/k=1/dx1.00",
		"ArduRover/DeLorean/k=0/dx1.00",
		"ArduRover/DeLorean/k=1/dx1.00",
	}
	var seen []string
	for _, g := range groups {
		if len(seen) == 0 || seen[len(seen)-1] != g {
			seen = append(seen, g)
		}
	}
	if len(seen) != len(wantOrder) {
		t.Fatalf("condition order %v, want %v", seen, wantOrder)
	}
	for i := range seen {
		if seen[i] != wantOrder[i] {
			t.Errorf("condition %d = %q, want %q", i, seen[i], wantOrder[i])
		}
	}
	// Attack-free conditions carry no schedule; attacked ones do.
	for i, j := range jobs {
		attacked := strings.Contains(groups[i], "k=1")
		if (j.Cfg.Attacks != nil) != attacked {
			t.Errorf("job %d (%s): attacks=%v", i, groups[i], j.Cfg.Attacks != nil)
		}
	}
}

// TestRandomMode: random mode draws the requested total with conditions
// from the declared axes, deterministically.
func TestRandomMode(t *testing.T) {
	spec := testSpec()
	spec.Mode = ModeRandom
	spec.Missions = 10
	norm := spec.withDefaults()
	jobs, groups, err := norm.build()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 10 {
		t.Fatalf("built %d jobs, want 10", len(jobs))
	}
	conds, err := norm.conditions()
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, c := range conds {
		valid[c.name()] = true
	}
	for i, g := range groups {
		if !valid[g] {
			t.Errorf("job %d drew unknown condition %q", i, g)
		}
	}
	again, _, err := norm.build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Label != again[i].Label {
			t.Errorf("random draw %d not reproducible: %q vs %q", i, jobs[i].Label, again[i].Label)
		}
	}
}

// TestSpecValidation: each malformed spec is rejected with a pointed
// error.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad mode", func(s *Spec) { s.Mode = "zigzag" }, "mode"},
		{"no missions", func(s *Spec) { s.Missions = 0 }, "missions"},
		{"no profiles", func(s *Spec) { s.Profiles = nil }, "profile"},
		{"unknown profile", func(s *Spec) { s.Profiles = []string{"HoverBoard"} }, "profile"},
		{"unknown strategy", func(s *Spec) { s.Strategies = []string{"prayer"} }, "strategy"},
		{"negative k", func(s *Spec) { s.AttackSensors = []int{-1} }, "attack_sensors"},
		{"huge k", func(s *Spec) { s.AttackSensors = []int{99} }, "attack_sensors"},
		{"zero delta scale", func(s *Spec) { s.DeltaScales = []float64{0} }, "delta_scales"},
		{"inverted wind", func(s *Spec) { s.Wind = Range{Min: 5, Max: 1} }, "wind"},
		{"negative onset", func(s *Spec) { s.Onset = Range{Min: -1, Max: 2} }, "onset"},
		{"negative max_sec", func(s *Spec) { s.MaxSec = -3 }, "max_sec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec()
			tc.mut(&spec)
			_, err := New(spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSpecSHAIsNormalizationStable: a spec and its explicit-default
// spelling fingerprint identically, while any material change does not.
func TestSpecSHAIsNormalizationStable(t *testing.T) {
	a, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	explicit := testSpec()
	explicit.Mode = ModeGrid
	explicit.Strategies = []string{"DeLorean"}
	explicit.DeltaScales = []float64{1}
	b, err := New(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpecSHA256() != b.SpecSHA256() {
		t.Error("defaulted and explicit spec spellings fingerprint differently")
	}
	changed := testSpec()
	changed.Seed++
	c, err := New(changed)
	if err != nil {
		t.Fatal(err)
	}
	if a.SpecSHA256() == c.SpecSHA256() {
		t.Error("seed change did not change the spec fingerprint")
	}
}

// TestFreshDirRefusedWhenOccupied: without Resume, a directory holding
// checkpoints is an error, not a silent merge of two studies.
func TestFreshDirRefusedWhenOccupied(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("occupied dir error = %v, want refusal mentioning resume", err)
	}
}
