package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/telemetry"
)

// CheckpointVersion is the shard-checkpoint schema version; bump on any
// change to the checkpoint field set or semantics.
const CheckpointVersion = 1

// checkpoint is one persisted shard: the partial report plus enough
// identity (spec fingerprint, shard layout) for a resume to verify it
// belongs to the study being resumed. Reports from a different spec, a
// different shard count, or a drifted schema are refused, never merged.
type checkpoint struct {
	Version    int               `json:"version"`
	Campaign   string            `json:"campaign"`
	SpecSHA256 string            `json:"spec_sha256"`
	Shards     int               `json:"shards"`
	Shard      int               `json:"shard"`
	Lo         int               `json:"lo"`
	Hi         int               `json:"hi"`
	Report     *telemetry.Report `json:"report"`
}

// shardFile names shard i's checkpoint inside dir.
func shardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.json", i))
}

// prepareDir creates the checkpoint directory. Without resume, a
// directory already holding shard checkpoints is refused: silently
// mixing two studies' checkpoints would corrupt the merge.
func prepareDir(dir string, resume bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	if resume {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".json") {
			return fmt.Errorf("campaign: checkpoint dir %s already holds %s; resume to reuse it or pick a fresh directory", dir, name)
		}
	}
	return nil
}

// saveCheckpoint persists one finished shard atomically: the wrapper is
// written to a temp file in the same directory and renamed into place,
// so a kill at any instant leaves either no checkpoint or a complete
// one — never a truncated file a resume could half-read.
func (c *Campaign) saveCheckpoint(dir string, sh Shard, shards int, rep *telemetry.Report) error {
	cp := checkpoint{
		Version:    CheckpointVersion,
		Campaign:   c.spec.Name,
		SpecSHA256: c.sha,
		Shards:     shards,
		Shard:      sh.Index,
		Lo:         sh.Lo,
		Hi:         sh.Hi,
		Report:     rep,
	}
	path := shardFile(dir, sh.Index)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint shard %d: %w", sh.Index, err)
	}
	if err := writeJSON(f, &cp); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint shard %d: %w", sh.Index, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint shard %d: %w", sh.Index, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint shard %d: %w", sh.Index, err)
	}
	return nil
}

// loadCheckpoint reads shard sh's checkpoint if present, verifying it
// belongs to this study and shard layout. A missing file reports ok ==
// false (the shard simply runs); any mismatch is an error — resuming
// over foreign or stale checkpoints must fail loudly. Leftover .tmp
// files from a kill mid-write are invisible here: only the renamed
// final name is ever read.
func (c *Campaign) loadCheckpoint(dir string, sh Shard, shards int) (*telemetry.Report, bool, error) {
	b, err := os.ReadFile(shardFile(dir, sh.Index))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("campaign: resume shard %d: %w", sh.Index, err)
	}
	var cp checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, false, fmt.Errorf("campaign: resume shard %d: %w", sh.Index, err)
	}
	switch {
	case cp.Version != CheckpointVersion:
		err = fmt.Errorf("checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	case cp.SpecSHA256 != c.sha:
		err = fmt.Errorf("spec fingerprint %s does not match this study's %s", cp.SpecSHA256, c.sha)
	case cp.Shards != shards:
		err = fmt.Errorf("checkpoint was cut for %d shards, this run uses %d", cp.Shards, shards)
	case cp.Shard != sh.Index || cp.Lo != sh.Lo || cp.Hi != sh.Hi:
		err = fmt.Errorf("checkpoint covers shard %d [%d, %d), want shard %d [%d, %d)",
			cp.Shard, cp.Lo, cp.Hi, sh.Index, sh.Lo, sh.Hi)
	case cp.Report == nil:
		err = fmt.Errorf("checkpoint has no report")
	}
	if err != nil {
		return nil, false, fmt.Errorf("campaign: resume shard %d: %w", sh.Index, err)
	}
	return cp.Report, true, nil
}

// writeJSON renders v as indented JSON with a trailing newline.
func writeJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}
