// Package campaign is the Monte-Carlo study layer (ROADMAP item 5): it
// turns a declarative sweep Spec into a pre-drawn job list, partitions
// the list into deterministic contiguous shards, executes each shard on
// any engine behind the unified execution seam (internal/engine),
// persists every finished shard's partial telemetry report atomically to
// a checkpoint directory, and merges the partials into one versioned
// study report.
//
// The whole layer rides on two invariants. First, the job list is a pure
// function of (Spec, Seed) — shards are re-derived from the spec on
// every run, never persisted, so a resumed process reconstructs exactly
// the work a killed one was doing. Second, the merge is exact and
// associative (internal/telemetry's integer aggregates), so the study
// report's bytes are invariant to shard size, worker count, engine
// choice, and interruption history: a study killed after any prefix of
// shards and resumed — any number of times, with any worker count —
// renders the same bytes as one uninterrupted monolithic run.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// StudyVersion is the study-report schema version; bump on any change to
// the Study field set or semantics.
const StudyVersion = 1

// Campaign is a validated spec plus its derived fingerprint. Run
// executes it; the zero value is not usable — construct with New.
type Campaign struct {
	spec Spec
	sha  string
	jobs int
}

// New normalizes and validates the spec and fixes the study fingerprint.
// The job list is drawn once to validate it and count it, then
// discarded: Run re-derives it, so a Campaign is cheap to hold.
func New(spec Spec) (*Campaign, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	sha, err := spec.sha256Hex()
	if err != nil {
		return nil, err
	}
	jobs, _, err := spec.build()
	if err != nil {
		return nil, err
	}
	return &Campaign{spec: spec, sha: sha, jobs: len(jobs)}, nil
}

// Spec returns the normalized spec.
func (c *Campaign) Spec() Spec { return c.spec }

// SpecSHA256 returns the hex fingerprint of the normalized spec.
func (c *Campaign) SpecSHA256() string { return c.sha }

// Jobs returns the total mission count of the study.
func (c *Campaign) Jobs() int { return c.jobs }

// Shard is one contiguous slice [Lo, Hi) of the study's job list.
type Shard struct {
	Index int
	Lo    int
	Hi    int
}

// shardRanges partitions n jobs into at most count balanced contiguous
// shards: the first n%count shards get one extra job. The layout is a
// pure function of (n, count), so every process partitions identically.
func shardRanges(n, count int) []Shard {
	if count <= 0 {
		count = 1
	}
	if count > n {
		count = n
	}
	out := make([]Shard, count)
	lo := 0
	for i := range out {
		size := n / count
		if i < n%count {
			size++
		}
		out[i] = Shard{Index: i, Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Options configure one Run. None of them may change the study report's
// bytes — they select throughput, persistence, and interruption behavior
// only.
type Options struct {
	// Engine executes each shard; nil selects the per-goroutine runner.
	// All engines are byte-identical (the seam's contract).
	Engine engine.Engine
	// Workers is the per-shard parallelism; <= 0 uses all CPUs.
	Workers int
	// BatchSize tunes the fleet engine's lockstep width; other engines
	// ignore it.
	BatchSize int
	// Shards partitions the job list; <= 0 runs one shard. More shards
	// mean finer-grained checkpoints (less work lost on interruption),
	// never different bytes.
	Shards int
	// Dir is the checkpoint directory; "" disables persistence. Each
	// finished shard's partial report is written atomically (temp file +
	// rename), so a kill at any instant leaves only complete checkpoints.
	Dir string
	// Resume reuses valid checkpoints found in Dir, skipping their
	// shards. Without it a Dir already holding checkpoints is refused, so
	// two studies cannot silently interleave in one directory.
	Resume bool
	// HaltAfter, when positive, stops the run with ErrHalted after that
	// many shards have been executed (not resumed) in this process — a
	// deterministic stand-in for kill -9 used by the resume tests and the
	// CI interrupt/resume replay.
	HaltAfter int
	// ShardDone, when non-nil, is called after each shard completes or is
	// skipped via resume, with the number of settled shards and the total.
	ShardDone func(done, total int)
	// Progress, when non-nil, receives per-mission completion counts
	// within the currently executing shard.
	Progress func(completed, total int)
}

// ErrHalted reports a run stopped by Options.HaltAfter with its
// checkpoints intact; resume to continue.
var ErrHalted = errors.New("campaign: halted by HaltAfter; resume to continue")

// Study is the versioned merged result of one campaign: the normalized
// spec, its fingerprint, and the merged telemetry report. It records
// nothing about how the run was partitioned, paralleled, or interrupted —
// the bytes are execution-history-invariant by construction.
type Study struct {
	Version    int               `json:"version"`
	Campaign   string            `json:"campaign"`
	SpecSHA256 string            `json:"spec_sha256"`
	Spec       Spec              `json:"spec"`
	Jobs       int               `json:"jobs"`
	Report     *telemetry.Report `json:"report"`
}

// WriteJSON renders the study as indented JSON with a trailing newline,
// deterministically (field order and float rendering are fixed by
// encoding/json).
func (s *Study) WriteJSON(w io.Writer) error {
	return writeJSON(w, s)
}

// Run executes the campaign: derive the job list, partition it, execute
// or resume each shard in order, checkpoint, merge. On interruption
// (context cancellation or HaltAfter) the error is returned with all
// completed checkpoints persisted; a later Run with Resume set picks up
// after them.
func (c *Campaign) Run(ctx context.Context, opt Options) (*Study, error) {
	jobs, groups, err := c.spec.build()
	if err != nil {
		return nil, err
	}
	shards := shardRanges(len(jobs), opt.Shards)
	if opt.Dir != "" {
		if err := prepareDir(opt.Dir, opt.Resume); err != nil {
			return nil, err
		}
	}
	parts := make([]*telemetry.Report, len(shards))
	executed := 0
	for si, sh := range shards {
		if opt.Dir != "" && opt.Resume {
			rep, ok, err := c.loadCheckpoint(opt.Dir, sh, len(shards))
			if err != nil {
				return nil, err
			}
			if ok {
				parts[si] = rep
				if opt.ShardDone != nil {
					opt.ShardDone(si+1, len(shards))
				}
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := c.runShard(ctx, sh, jobs, groups, opt)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("campaign: shard %d: %w", sh.Index, err)
		}
		if opt.Dir != "" {
			if err := c.saveCheckpoint(opt.Dir, sh, len(shards), rep); err != nil {
				return nil, err
			}
		}
		parts[si] = rep
		executed++
		if opt.ShardDone != nil {
			opt.ShardDone(si+1, len(shards))
		}
		if opt.HaltAfter > 0 && executed >= opt.HaltAfter && si < len(shards)-1 {
			return nil, ErrHalted
		}
	}
	meta := telemetry.Meta{
		Generator: "campaign",
		Missions:  len(jobs),
		Seed:      c.spec.Seed,
		Wind:      c.spec.Wind.Max,
	}
	merged, err := telemetry.MergeReports(meta, parts...)
	if err != nil {
		return nil, err
	}
	return &Study{
		Version:    StudyVersion,
		Campaign:   c.spec.Name,
		SpecSHA256: c.sha,
		Spec:       c.spec,
		Jobs:       len(jobs),
		Report:     merged,
	}, nil
}

// runShard executes one shard's job slice on the selected engine and
// aggregates its telemetry in submission order, attributing each mission
// to its condition's experiment group. The shard report's meta describes
// the shard; the study meta replaces it at merge.
func (c *Campaign) runShard(ctx context.Context, sh Shard, jobs []engine.Job, groups []string, opt Options) (*telemetry.Report, error) {
	eng := opt.Engine
	if eng == nil {
		eng = engine.Runner()
	}
	res, err := eng.Run(ctx, jobs[sh.Lo:sh.Hi], engine.Options{
		Workers: opt.Workers, BatchSize: opt.BatchSize, Progress: opt.Progress,
	})
	if err != nil {
		return nil, err
	}
	col := telemetry.NewCollector()
	for i := range res {
		col.Begin(groups[sh.Lo+i])
		col.Add(res[i].Telemetry)
	}
	return col.Report(telemetry.Meta{
		Generator: "campaign-shard",
		Missions:  sh.Hi - sh.Lo,
		Seed:      c.spec.Seed,
		Wind:      c.spec.Wind.Max,
	})
}
