package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// countCheckpoints counts the complete shard checkpoints in dir.
func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestResumeAfterInterruptByteIdentical is the interrupted-resume
// property test: kill the campaign after k of n shards (for several k),
// resume — at workers 1 and all CPUs — and require the merged study to
// be byte-identical to an uninterrupted run. A stray .tmp file simulates
// a kill mid-checkpoint-write; atomic rename means resume never sees it.
func TestResumeAfterInterruptByteIdentical(t *testing.T) {
	const shards = 8
	want := renderStudy(t, Options{Shards: 1, Workers: 1})
	for _, k := range []int{1, 3, 5, 7} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			t.Run(kName(k, workers), func(t *testing.T) {
				dir := t.TempDir()
				c, err := New(testSpec())
				if err != nil {
					t.Fatal(err)
				}
				_, err = c.Run(context.Background(), Options{
					Shards: shards, Workers: workers, Dir: dir, HaltAfter: k,
				})
				if !errors.Is(err, ErrHalted) {
					t.Fatalf("interrupted run error = %v, want ErrHalted", err)
				}
				if got := countCheckpoints(t, dir); got != k {
					t.Fatalf("%d checkpoints persisted, want %d", got, k)
				}
				// A kill mid-write leaves a temp file; resume must ignore it.
				if err := os.WriteFile(filepath.Join(dir, "shard-0007.json.tmp"), []byte("{\"trunc"), 0o644); err != nil {
					t.Fatal(err)
				}
				study, err := c.Run(context.Background(), Options{
					Shards: shards, Workers: workers, Dir: dir, Resume: true,
				})
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				var buf bytes.Buffer
				if err := study.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Error("resumed study bytes differ from the uninterrupted run")
				}
				if got := countCheckpoints(t, dir); got != shards {
					t.Errorf("%d checkpoints after resume, want %d", got, shards)
				}
			})
		}
	}
}

func kName(k, workers int) string {
	return "k=" + string(rune('0'+k)) + "/workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 1 {
		return "1"
	}
	return "N"
}

// TestResumeAfterContextCancel: cancellation between shards behaves like
// a kill — completed checkpoints persist, the error is the bare
// ctx.Err(), and a resume completes the study byte-identically.
func TestResumeAfterContextCancel(t *testing.T) {
	want := renderStudy(t, Options{Shards: 1, Workers: 1})
	dir := t.TempDir()
	c, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opt := Options{Shards: 4, Workers: 1, Dir: dir}
	opt.ShardDone = func(done, total int) {
		if done == 2 {
			cancel()
		}
	}
	if _, err := c.Run(ctx, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	if got := countCheckpoints(t, dir); got != 2 {
		t.Fatalf("%d checkpoints persisted, want 2", got)
	}
	study, err := c.Run(context.Background(), Options{Shards: 4, Workers: 1, Dir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	var buf bytes.Buffer
	if err := study.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("resumed study bytes differ from the uninterrupted run")
	}
}

// TestResumeRejectsForeignCheckpoints: checkpoints from a different
// spec, or cut for a different shard count, refuse to merge.
func TestResumeRejectsForeignCheckpoints(t *testing.T) {
	dir := t.TempDir()
	c, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), Options{Shards: 4, Workers: 1, Dir: dir, HaltAfter: 2}); !errors.Is(err, ErrHalted) {
		t.Fatal(err)
	}

	other := testSpec()
	other.Seed = 999
	oc, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.Run(context.Background(), Options{Shards: 4, Dir: dir, Resume: true}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign-spec resume error = %v, want fingerprint mismatch", err)
	}
	if _, err := c.Run(context.Background(), Options{Shards: 8, Dir: dir, Resume: true}); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("re-sharded resume error = %v, want shard-layout mismatch", err)
	}
}

// TestResumeCompletedStudyIsPureMerge: resuming a fully checkpointed
// study re-merges without executing anything (no engine is touched).
func TestResumeCompletedStudyIsPureMerge(t *testing.T) {
	dir := t.TempDir()
	c, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(context.Background(), Options{Shards: 4, Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// A pre-cancelled context proves no shard executes: Run only checks
	// ctx before executing a shard, never before resuming one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	again, err := c.Run(ctx, Options{Shards: 4, Workers: 1, Dir: dir, Resume: true})
	if err != nil {
		t.Fatalf("fully-checkpointed resume: %v", err)
	}
	var a, b bytes.Buffer
	if err := first.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("pure-merge resume differs from the original run")
	}
}
