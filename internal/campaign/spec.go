package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Sweep modes. Grid enumerates the full condition product; Random draws
// each mission's condition uniformly from the axes.
const (
	ModeGrid   = "grid"
	ModeRandom = "random"
)

// Range is a closed interval a mission parameter is drawn from. Min ==
// Max pins the parameter.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// draw samples the range uniformly. A degenerate range returns Min
// without consuming the rng, so pinning a parameter does not shift the
// draws of the others — the spec documents each mission's draw sequence
// as part of its determinism contract.
func (r Range) draw(rng *rand.Rand) float64 {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + rng.Float64()*(r.Max-r.Min)
}

// Spec declares one campaign study: the sweep axes, the per-mission draw
// envelopes, and the master seed. A spec is data, not code — the full
// job list is a pure function of (Spec, Seed), so any two processes
// holding the same spec partition and re-partition the same study.
//
// Grid mode enumerates profiles × strategies × attack sizes × δ scales
// in the declared order and draws Missions missions per condition;
// random mode draws Missions missions total, each with a uniformly drawn
// condition. Either way every mission's scenario (path, wind, onset,
// duration, seed) comes from one master rng consumed in job order.
type Spec struct {
	// Name labels the study and its checkpoints.
	Name string `json:"name"`
	// Seed is the master seed; the job list is a pure function of the
	// spec and this seed.
	Seed int64 `json:"seed"`
	// Mode is ModeGrid (default) or ModeRandom.
	Mode string `json:"mode,omitempty"`
	// Missions is the sweep size: per condition in grid mode, total in
	// random mode.
	Missions int `json:"missions"`
	// Profiles are the vehicle profiles swept (vehicle.ProfileName
	// spellings). Required.
	Profiles []string `json:"profiles"`
	// Strategies are the defense strategies swept; default DeLorean.
	Strategies []string `json:"strategies,omitempty"`
	// AttackSensors are the attacked-sensor-set sizes swept; 0 is an
	// attack-free condition. Default {1}.
	AttackSensors []int `json:"attack_sensors,omitempty"`
	// DeltaScales multiply each profile's default δ diagnosis thresholds,
	// sweeping detector sensitivity. Default {1}.
	DeltaScales []float64 `json:"delta_scales,omitempty"`
	// Onset is the attack-start envelope in mission seconds; default
	// 10–20 s (inside cruise).
	Onset Range `json:"onset,omitempty"`
	// Duration is the attack-duration envelope in seconds; default
	// 15–25 s.
	Duration Range `json:"duration,omitempty"`
	// Wind is the mean-wind envelope in m/s; default 0–3 (see the
	// experiments package on the capped envelope).
	Wind Range `json:"wind,omitempty"`
	// MaxSec caps each mission's simulated time; 0 uses the simulator
	// default (240 s). Smoke specs set this low.
	MaxSec float64 `json:"max_sec,omitempty"`
}

// withDefaults returns the normalized spec: defaults filled so that two
// specs meaning the same study hash identically.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Mode == "" {
		s.Mode = ModeGrid
	}
	if len(s.Strategies) == 0 {
		s.Strategies = []string{core.StrategyDeLorean.String()}
	} else {
		// Canonicalize accepted aliases ("lqro" → "LQR-O") so equivalent
		// spellings of one study fingerprint identically; unknown names
		// pass through for validate to reject.
		canon := make([]string, len(s.Strategies))
		for i, name := range s.Strategies {
			if st, ok := core.StrategyByName(name); ok {
				canon[i] = st.String()
			} else {
				canon[i] = name
			}
		}
		s.Strategies = canon
	}
	if len(s.AttackSensors) == 0 {
		s.AttackSensors = []int{1}
	}
	if len(s.DeltaScales) == 0 {
		s.DeltaScales = []float64{1}
	}
	if s.Onset == (Range{}) {
		s.Onset = Range{Min: 10, Max: 20}
	}
	if s.Duration == (Range{}) {
		s.Duration = Range{Min: 15, Max: 25}
	}
	if s.Wind == (Range{}) {
		s.Wind = Range{Min: 0, Max: 3}
	}
	return s
}

// validate rejects a spec that cannot produce a well-formed job list.
// It operates on the normalized form.
func (s Spec) validate() error {
	if s.Mode != ModeGrid && s.Mode != ModeRandom {
		return fmt.Errorf("campaign: spec mode must be %q or %q, got %q", ModeGrid, ModeRandom, s.Mode)
	}
	if s.Missions <= 0 {
		return fmt.Errorf("campaign: spec missions must be positive, got %d", s.Missions)
	}
	if len(s.Profiles) == 0 {
		return fmt.Errorf("campaign: spec needs at least one profile")
	}
	for _, name := range s.Profiles {
		if _, err := vehicle.LookupProfile(vehicle.ProfileName(name)); err != nil {
			return fmt.Errorf("campaign: spec profile: %w", err)
		}
	}
	for _, name := range s.Strategies {
		if _, ok := core.StrategyByName(name); !ok {
			return fmt.Errorf("campaign: spec strategy %q unknown", name)
		}
	}
	maxK := len(sensors.AllTypes())
	for _, k := range s.AttackSensors {
		if k < 0 || k > maxK {
			return fmt.Errorf("campaign: spec attack_sensors entry %d out of range 0..%d", k, maxK)
		}
	}
	for _, sc := range s.DeltaScales {
		if sc <= 0 {
			return fmt.Errorf("campaign: spec delta_scales entry %v must be positive", sc)
		}
	}
	for _, r := range []struct {
		name string
		r    Range
	}{{"onset", s.Onset}, {"duration", s.Duration}, {"wind", s.Wind}} {
		if r.r.Min < 0 || r.r.Max < r.r.Min {
			return fmt.Errorf("campaign: spec %s range [%v, %v] invalid", r.name, r.r.Min, r.r.Max)
		}
	}
	if s.MaxSec < 0 {
		return fmt.Errorf("campaign: spec max_sec must be non-negative, got %v", s.MaxSec)
	}
	return nil
}

// sha256Hex fingerprints the normalized spec: the canonical JSON bytes
// hashed. Checkpoints carry it so a resume against a drifted spec fails
// loudly instead of merging incompatible shards.
func (s Spec) sha256Hex() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("campaign: hash spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// condition is one cell of the sweep.
type condition struct {
	profile  vehicle.Profile
	strategy core.Strategy
	sensors  int
	scale    float64
}

// name renders the condition as its experiment-group name. The merged
// study report carries one ExperimentReport per condition under this
// name.
func (c condition) name() string {
	return fmt.Sprintf("%s/%s/k=%d/dx%.2f", c.profile.Name, c.strategy, c.sensors, c.scale)
}

// conditions enumerates the grid in declared order. The enumeration
// order is part of the determinism contract: it fixes both the rng
// consumption order and the first-seen group order of the reports.
func (s Spec) conditions() ([]condition, error) {
	var out []condition
	for _, pn := range s.Profiles {
		p, err := vehicle.LookupProfile(vehicle.ProfileName(pn))
		if err != nil {
			return nil, err
		}
		for _, sn := range s.Strategies {
			st, ok := core.StrategyByName(sn)
			if !ok {
				return nil, fmt.Errorf("campaign: strategy %q unknown", sn)
			}
			for _, k := range s.AttackSensors {
				for _, sc := range s.DeltaScales {
					out = append(out, condition{profile: p, strategy: st, sensors: k, scale: sc})
				}
			}
		}
	}
	return out, nil
}

// simConfig assembles one mission's base config, consuming the wind and
// seed draws. Attack and δ are layered on by the caller.
func simConfig(c condition, plan mission.Plan, s Spec, rng *rand.Rand) sim.Config {
	return sim.Config{
		Profile:  c.profile,
		Plan:     plan,
		Strategy: c.strategy,
		WindMean: s.Wind.draw(rng),
		WindGust: 0.3 + 0.5*rng.Float64(),
		WindDir:  rng.Float64() * 2 * math.Pi,
		Seed:     rng.Int63(),
		MaxSec:   s.MaxSec,
	}
}

// build draws the complete job list: every mission's condition, path,
// wind, attack window, and derived seed, consumed from one master rng in
// job order. It is a pure function of the normalized spec — calling it
// twice, in any process, yields byte-identical jobs — which is what lets
// shards be re-derived on resume instead of persisted.
func (s Spec) build() ([]engine.Job, []string, error) {
	conds, err := s.conditions()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var jobs []engine.Job
	var groups []string
	addMission := func(idx int, c condition) {
		kinds := []mission.PathKind{
			mission.Straight, mission.MultiWaypoint, mission.Circular,
			mission.Polygon1, mission.Polygon2, mission.Polygon3,
		}
		plan := mission.NewOfKind(kinds[rng.Intn(len(kinds))], c.profile.CruiseAltitude, rng)
		delta := core.DefaultDelta(c.profile)
		for i := range delta {
			delta[i] *= c.scale
		}
		cfg := simConfig(c, plan, s, rng)
		if c.sensors > 0 {
			onset := s.Onset.draw(rng)
			dur := s.Duration.draw(rng)
			targets := attack.RandomTargets(rng, c.sensors)
			sda := attack.New(rng, attack.DefaultParams(), targets, onset, onset+dur)
			cfg.Attacks = attack.NewSchedule(sda)
		}
		cfg.Delta = delta
		jobs = append(jobs, engine.Job{
			Label: fmt.Sprintf("%s/%04d (seed %d)", c.name(), idx, cfg.Seed),
			Cfg:   cfg,
		})
		groups = append(groups, c.name())
	}
	switch s.Mode {
	case ModeGrid:
		for _, c := range conds {
			for i := 0; i < s.Missions; i++ {
				addMission(i, c)
			}
		}
	case ModeRandom:
		for i := 0; i < s.Missions; i++ {
			addMission(i, conds[rng.Intn(len(conds))])
		}
	default:
		return nil, nil, fmt.Errorf("campaign: spec mode %q", s.Mode)
	}
	return jobs, groups, nil
}
