package campaign

// BenchmarkCampaignSharded and BenchmarkEngineDirect race the campaign
// layer against a bare engine run of the same drawn job list: the
// difference is exactly the campaign's sharding, per-shard collection,
// and merge overhead. scripts/bench_compare.sh runs the pair and gates
// BENCH_PR10.json on the ratio staying within noise of 1.0 — sharding a
// study must cost nothing per mission.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/telemetry"
)

// benchSpec sizes one benchmark iteration: a small real grid, fleet-
// friendly (profile-homogeneous runs of missions per condition), with
// shards sized like a real study's — each shard holds enough missions to
// saturate the workers, so the race measures sharding overhead rather
// than an artificially starved tail.
func benchSpec() Spec {
	return Spec{
		Name:          "bench-study",
		Seed:          5,
		Missions:      16,
		Profiles:      []string{"ArduCopter", "ArduRover"},
		AttackSensors: []int{0, 1},
		Onset:         Range{Min: 1, Max: 1.5},
		Duration:      Range{Min: 1, Max: 1.5},
		MaxSec:        3,
	}
}

// reportMissionThroughput attaches the cross-PR headline metric:
// completed missions per wall-clock second per core.
func reportMissionThroughput(b *testing.B, missionsPerOp int) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	cores := float64(runtime.GOMAXPROCS(0))
	b.ReportMetric(float64(missionsPerOp*b.N)/sec/cores, "missions/sec/core")
}

// benchBatch pins the fleet lockstep width in both legs to the shard
// size, so the race compares equal lane widths and isolates the campaign
// layer's own overhead (per-shard collection, checkpointless run, merge)
// instead of a batch-amortization artifact.
const benchBatch = 16

func BenchmarkCampaignSharded(b *testing.B) {
	c, err := New(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Engine: engine.Fleet(), Shards: 4, BatchSize: benchBatch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
	}
	reportMissionThroughput(b, c.Jobs())
}

func BenchmarkEngineDirect(b *testing.B) {
	spec := benchSpec().withDefaults()
	jobs, _, err := spec.build()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.Fleet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, _, err := spec.build()
		if err != nil {
			b.Fatal(err)
		}
		col := telemetry.NewCollector()
		if _, err := eng.Run(context.Background(), fresh, engine.Options{Telemetry: col, BatchSize: benchBatch}); err != nil {
			b.Fatal(err)
		}
		if _, err := col.Report(telemetry.Meta{Generator: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
	reportMissionThroughput(b, len(jobs))
}
