// Package floats provides the tolerance helpers that are the sanctioned
// way to compare floating-point values in this codebase. The floatcmp
// analyzer (internal/lint) forbids raw == / != between float operands:
// rounding in the EKF, reconstruction, and δ-calibration paths makes
// exact equality silently flaky, and an exact comparison that IS intended
// should say so in one audited place rather than at every call site.
package floats

import "math"

// Zero reports whether x is exactly +0 or −0. It is the sanctioned form
// of the zero-sentinel test ("is this config channel unset?", "does this
// bias inject anything?") — exact comparison against zero is
// well-defined in IEEE 754 and intentional here.
func Zero(x float64) bool {
	//lint:ignore floatcmp the one sanctioned exact zero-sentinel comparison
	return x == 0
}

// Near reports whether a and b differ by at most tol. NaNs are never
// near anything; equal infinities are near each other.
func Near(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//lint:ignore floatcmp infinity comparison is exact by definition
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// NearZero reports whether |x| ≤ tol.
func NearZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}

// Same reports whether a and b are bit-identical values in the sense of
// determinism checks: equal, or both NaN. Trace-reproducibility tests
// use it to assert bit-for-bit replay.
func Same(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	//lint:ignore floatcmp bit-for-bit replay assertions need exact equality
	return a == b
}
