package floats

import (
	"math"
	"testing"
)

func TestZero(t *testing.T) {
	if !Zero(0) {
		t.Error("Zero(0) = false")
	}
	if !Zero(math.Copysign(0, -1)) {
		t.Error("Zero(-0) = false")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.Inf(1), math.NaN()} {
		if Zero(x) {
			t.Errorf("Zero(%g) = true", x)
		}
	}
}

func TestNear(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{-2, 2, 5, true},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), math.Inf(1), false},
		{math.Inf(1), 1, 1e300, false},
		{math.NaN(), math.NaN(), math.Inf(1), false},
		{math.NaN(), 0, 1, false},
	}
	for _, c := range cases {
		if got := Near(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Near(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestNearZero(t *testing.T) {
	if !NearZero(1e-10, 1e-9) {
		t.Error("NearZero(1e-10, 1e-9) = false")
	}
	if NearZero(1e-8, 1e-9) {
		t.Error("NearZero(1e-8, 1e-9) = true")
	}
	if NearZero(math.NaN(), 1) {
		t.Error("NearZero(NaN, 1) = true")
	}
}

func TestSame(t *testing.T) {
	if !Same(1.5, 1.5) {
		t.Error("Same(1.5, 1.5) = false")
	}
	if Same(1.5, 1.5+1e-15) {
		t.Error("Same should be exact, not tolerant")
	}
	if !Same(math.NaN(), math.NaN()) {
		t.Error("Same(NaN, NaN) = false; replay treats NaNs as reproducible")
	}
	if Same(math.NaN(), 0) {
		t.Error("Same(NaN, 0) = true")
	}
	if !Same(math.Inf(1), math.Inf(1)) {
		t.Error("Same(+Inf, +Inf) = false")
	}
}
