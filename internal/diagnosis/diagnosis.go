// Package diagnosis implements the paper's core contribution: graph-based
// probabilistic attack diagnosis (§4.1). When the attack detector raises
// an alert, the diagnoser inspects the error inflation in all of the RV's
// physical states over the last consecutive diagnosis steps and performs
// causal analysis with per-sensor factor graphs (Eq. 2–4) to identify
// which sensors the SDA targets. Sensors whose states' factor-graph MLE is
// Malicious are flagged.
//
// The package also implements the three residual-analysis (RA) baselines
// the paper compares against (§5.1): Savior-RA, PID-Piper-RA, and EKF-RA,
// which extend the respective detectors' single-step residual check to all
// physical states. Their structural weaknesses — single-step comparison
// and reliance on the fused (attack-contaminated) state estimate — are
// reproduced faithfully.
package diagnosis

import (
	"repro/internal/fg"
	"repro/internal/sensors"
)

// Delta holds the per-state error thresholds δ of Table 3. A zero entry
// marks a channel that is not monitored (e.g. altitude channels on a
// rover).
type Delta [sensors.NumStates]float64

// Diagnoser identifies the sensors targeted by an SDA. The core framework
// feeds it one (predicted, observed) PS pair per diagnosis step:
//
//   - predicted: the attack-free reference evolution of the physical
//     states (DeLorean anchors this to trustworthy historic states and the
//     dynamics model; the RA baselines use the live fused estimate).
//   - observed: the states derived directly from the (possibly attacked)
//     sensors.
type Diagnoser interface {
	// Name identifies the technique in result tables.
	Name() string
	// Reference selects which reference states the framework must feed as
	// `predicted`: DeLorean uses the attack-free anchored model reference
	// (independent of the possibly-contaminated fusion), the RA baselines
	// use the live fused estimate their source detectors operate on.
	Reference() Reference
	// Observe ingests one diagnosis step.
	Observe(predicted, observed sensors.PhysState)
	// Diagnose returns the set of sensors believed under attack given the
	// observations so far (empty set: no sensor implicated — a detector
	// false alarm is masked).
	Diagnose() sensors.TypeSet
	// Reset clears observation history.
	Reset()
}

// Reference identifies the reference-state source a diagnoser compares
// observations against.
type Reference int

// Reference sources.
const (
	// RefShadow is the attack-free model reference (anchored to
	// trustworthy history, frozen during alerts).
	RefShadow Reference = iota + 1
	// RefFused is the live fused EKF estimate (contaminated under attack —
	// the structural weakness of RA diagnosis).
	RefFused
)

// Compile-time interface checks.
var (
	_ Diagnoser = (*DeLorean)(nil)
	_ Diagnoser = (*RA)(nil)
)

// DeLorean is the factor-graph diagnosis of §4.1: it monitors the error
// e_i between the observed and reference physical states across
// consecutive diagnosis steps (the paper's four-state window yields the
// error pair (e_{t−1}, e_t)), and runs MLE inference on per-sensor factor
// graphs built from the Eq. 2 threshold factors.
type DeLorean struct {
	delta Delta

	// errHist is a fixed ring of the most recent error vectors, newest
	// last; nHist counts the valid entries and saturates at histLen.
	// Observe runs every tick, so the window must not allocate.
	errHist [histLen]sensors.PhysState
	nHist   int
	// lastVerdicts are the per-sensor outcomes of the most recent
	// Diagnose call (telemetry evidence); the buffer is reused across
	// calls.
	lastVerdicts []SensorVerdict
	// margBuf is Diagnose's reused destination for batch marginals.
	margBuf []float64

	// graphs are the per-sensor factor graphs, built once at construction.
	// Their threshold factors read the error pair through evidence cells
	// (evPrev/evCur), so Diagnose only stores the current window into the
	// cells and invalidates each graph's inference cache — it never
	// rebuilds graph structure or factor closures. The factor predicate is
	// identical to the rebuilt-per-call form, and the enumeration order is
	// a property of graph structure, so the marginals are bit-identical.
	graphs []sensorGraph
	evPrev sensors.PhysState
	evCur  sensors.PhysState
}

// sensorGraph is one sensor's cached diagnosis graph.
type sensorGraph struct {
	typ   sensors.Type
	g     *fg.Graph
	nvars int
}

// SensorVerdict is one sensor's diagnosis outcome together with its
// evidence strength — the maximum P(malicious|e) over the sensor's
// monitored physical states.
type SensorVerdict struct {
	Sensor      sensors.Type
	Malicious   bool
	MaxMarginal float64
}

// histLen is the number of consecutive error observations retained: the
// paper monitors the past four states, which yields two consecutive
// pairwise errors (e_{t−1}, e_t).
const histLen = 2

// GraphSpec is the precompiled, immutable structure of the per-sensor
// diagnosis graphs for one δ calibration: which channels each sensor
// graph monitors (Table 1 filtered by δ) and the variable/factor names.
// The graphs themselves stay per-diagnoser — their threshold factors
// read each diagnoser's private error window through evidence-cell
// pointers — but the structural enumeration is a pure function of δ, so
// one spec serves every mission sharing a calibration (the fleet
// executor caches specs per δ alongside the other profile caches).
type GraphSpec struct {
	specs   []sensorSpec
	maxVars int
}

// sensorSpec is one sensor's monitored-channel layout.
type sensorSpec struct {
	typ    sensors.Type
	states []sensors.StateIndex
	names  []string // variable names, idx.String()
	fnames []string // factor names, "f_"+idx.String()
}

// CompileSpec precomputes the diagnosis graph structure for δ.
func CompileSpec(delta Delta) *GraphSpec {
	spec := &GraphSpec{}
	for _, typ := range sensors.AllTypes() {
		ss := sensorSpec{typ: typ}
		for _, idx := range sensors.StatesOf(typ) {
			if delta[idx] <= 0 {
				continue // unmonitored channel on this RV
			}
			ss.states = append(ss.states, idx)
			ss.names = append(ss.names, idx.String())
			ss.fnames = append(ss.fnames, "f_"+idx.String())
		}
		if len(ss.states) == 0 {
			continue // sensor entirely unmonitored on this RV
		}
		spec.specs = append(spec.specs, ss)
		if len(ss.states) > spec.maxVars {
			spec.maxVars = len(ss.states)
		}
	}
	return spec
}

// NewDeLorean returns the FG diagnoser with calibrated thresholds. The
// per-sensor factor graphs over the monitored channels (Table 1) are
// built once at construction; their factors read the error evidence
// through the diagnoser's evidence cells.
func NewDeLorean(delta Delta) *DeLorean {
	return NewDeLoreanSpec(delta, CompileSpec(delta))
}

// NewDeLoreanSpec builds the diagnoser from a precompiled graph spec.
// spec must have been compiled from the same δ; the constructed
// diagnoser is identical to NewDeLorean(delta)'s.
func NewDeLoreanSpec(delta Delta, spec *GraphSpec) *DeLorean {
	d := &DeLorean{delta: delta}
	for _, ss := range spec.specs {
		g := fg.New()
		for i, idx := range ss.states {
			v := g.AddVariable(ss.names[i])
			g.AddFactor(
				ss.fnames[i],
				fg.ThresholdFactorAt(&d.evPrev[idx], &d.evCur[idx], delta[idx]),
				v,
			)
		}
		d.graphs = append(d.graphs, sensorGraph{typ: ss.typ, g: g, nvars: len(ss.states)})
	}
	d.margBuf = make([]float64, spec.maxVars)
	return d
}

// Name implements Diagnoser.
func (d *DeLorean) Name() string { return "DeLorean" }

// Reference implements Diagnoser: DeLorean diagnoses against the
// attack-free anchored model reference.
func (d *DeLorean) Reference() Reference { return RefShadow }

// Observe records the error vector for one diagnosis step, shifting the
// fixed window in place (no allocation — this runs every tick).
func (d *DeLorean) Observe(predicted, observed sensors.PhysState) {
	e := observed.AbsDiff(predicted)
	if d.nHist == histLen {
		copy(d.errHist[:], d.errHist[1:])
		d.errHist[histLen-1] = e
	} else {
		d.errHist[d.nHist] = e
		d.nHist++
	}
}

// Diagnose runs MLE inference on the cached per-sensor factor graphs
// over that sensor's physical states (Table 1) and flags the sensor if
// any state's MLE outcome is Malicious (P(s=malicious|e) > 0.5, Eq. 4).
// It stores the error window into the evidence cells the factors read
// and invalidates each graph's inference cache; graph structure is fixed
// since construction, so steady-state diagnosis allocates nothing beyond
// the returned set. The per-sensor verdicts with their marginals are
// retained for Verdicts.
func (d *DeLorean) Diagnose() sensors.TypeSet {
	flagged := sensors.NewTypeSet()
	d.lastVerdicts = d.lastVerdicts[:0]
	if d.nHist < histLen {
		return flagged
	}
	d.evPrev = d.errHist[histLen-2]
	d.evCur = d.errHist[histLen-1]

	for i := range d.graphs {
		sg := &d.graphs[i]
		sg.g.Invalidate() // evidence cells changed under the factors
		verdict := SensorVerdict{Sensor: sg.typ}
		for _, p := range sg.g.MarginalsInto(d.margBuf[:sg.nvars]) {
			if p > verdict.MaxMarginal {
				verdict.MaxMarginal = p
			}
			if p > 0.5 {
				verdict.Malicious = true
			}
		}
		if verdict.Malicious {
			flagged.Add(sg.typ)
		}
		d.lastVerdicts = append(d.lastVerdicts, verdict)
	}
	return flagged
}

// Verdicts returns the per-sensor outcomes of the most recent Diagnose
// call, in canonical sensor order, covering the monitored sensors only.
// Empty until Diagnose has run with a full observation window.
func (d *DeLorean) Verdicts() []SensorVerdict {
	out := make([]SensorVerdict, len(d.lastVerdicts))
	copy(out, d.lastVerdicts)
	return out
}

// Reset clears the history, retaining the verdict buffer for reuse.
func (d *DeLorean) Reset() {
	d.nHist = 0
	d.lastVerdicts = d.lastVerdicts[:0]
}

// RAKind selects which detector's residual analysis an RA baseline
// extends.
type RAKind int

// The three RA baselines of Table 4.
const (
	SaviorRA RAKind = iota + 1
	PIDPiperRA
	EKFRA
)

// String names the baseline as in Table 4.
func (k RAKind) String() string {
	switch k {
	case SaviorRA:
		return "Savior-RA"
	case PIDPiperRA:
		return "PID-Piper-RA"
	case EKFRA:
		return "EKF-RA"
	default:
		return "RA"
	}
}

// RA is a residual-analysis diagnosis baseline: it flags a sensor when the
// residual between the fused model estimate and the sensor-derived state
// exceeds a threshold in the last step only (§5.1: "these attack detectors
// analyze residues ... we extend the concept of residual analysis to
// monitor all the physical states"). Unlike DeLorean it has no multi-step
// causal check and its reference states are the live fused estimate, which
// is itself contaminated by the attacked sensors.
type RA struct {
	kind  RAKind
	delta Delta
	// scale adjusts the thresholds relative to δ, modelling the different
	// sensitivity of the three source detectors.
	scale float64

	ePrev, eCur sensors.PhysState
	steps       int
}

// NewRA returns an RA baseline of the given kind with thresholds scaled
// from δ. Savior uses the tightest thresholds (most sensitive, most FPs),
// PID-Piper the loosest, EKF in between, mirroring the relative FP/TP
// ordering in Table 4.
func NewRA(kind RAKind, delta Delta) *RA {
	scale := 1.0
	switch kind {
	case SaviorRA:
		scale = 0.9
	case PIDPiperRA:
		scale = 1.25
	case EKFRA:
		scale = 1.0
	}
	return &RA{kind: kind, delta: delta, scale: scale}
}

// Name implements Diagnoser.
func (r *RA) Name() string { return r.kind.String() }

// Reference implements Diagnoser: RA baselines compare against the live
// fused estimate.
func (r *RA) Reference() Reference { return RefFused }

// Observe records the current residual vector.
func (r *RA) Observe(predicted, observed sensors.PhysState) {
	r.ePrev = r.eCur
	r.eCur = observed.AbsDiff(predicted)
	r.steps++
}

// Diagnose flags every sensor with any last-step residual above its
// scaled threshold.
func (r *RA) Diagnose() sensors.TypeSet {
	flagged := sensors.NewTypeSet()
	if r.steps == 0 {
		return flagged
	}
	for _, typ := range sensors.AllTypes() {
		for _, idx := range sensors.StatesOf(typ) {
			th := r.delta[idx] * r.scale
			if th <= 0 {
				continue
			}
			if r.eCur[idx] > th {
				flagged.Add(typ)
				break
			}
		}
	}
	return flagged
}

// Reset clears the residual history.
func (r *RA) Reset() {
	r.ePrev = sensors.PhysState{}
	r.eCur = sensors.PhysState{}
	r.steps = 0
}
