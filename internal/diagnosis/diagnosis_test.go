package diagnosis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fg"
	"repro/internal/sensors"
)

// uniformDelta returns a Delta with the same threshold on every channel.
func uniformDelta(v float64) Delta {
	var d Delta
	for i := range d {
		d[i] = v
	}
	return d
}

// observePair feeds n identical (predicted, observed) steps.
func observePair(d Diagnoser, predicted, observed sensors.PhysState, n int) {
	for i := 0; i < n; i++ {
		d.Observe(predicted, observed)
	}
}

func TestDeLoreanFlagsAttackedSensor(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10 // GPS x error of 10 ≫ δ=1
	observePair(d, pred, obs, 2)
	got := d.Diagnose()
	if !got.Equal(sensors.NewTypeSet(sensors.GPS)) {
		t.Errorf("Diagnose = %v, want {GPS}", got)
	}
}

func TestDeLoreanMultiSensor(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	obs[sensors.SWRoll] = 5
	obs[sensors.SBaroAlt] = 9
	observePair(d, pred, obs, 2)
	want := sensors.NewTypeSet(sensors.GPS, sensors.Gyro, sensors.Baro)
	if got := d.Diagnose(); !got.Equal(want) {
		t.Errorf("Diagnose = %v, want %v", got, want)
	}
}

func TestDeLoreanQuietStatesNotFlagged(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 0.5 // below δ
	observePair(d, pred, obs, 4)
	if got := d.Diagnose(); got.Len() != 0 {
		t.Errorf("Diagnose = %v, want empty", got)
	}
}

func TestDeLoreanTransientMasked(t *testing.T) {
	// A single-step spike (e.g. a wind transient) must not flag: Eq. 2
	// requires BOTH consecutive errors above δ.
	d := NewDeLorean(uniformDelta(1))
	var pred, quiet, spike sensors.PhysState
	spike[sensors.SX] = 10
	d.Observe(pred, quiet)
	d.Observe(pred, spike) // e_{t−1} quiet, e_t inflated
	if got := d.Diagnose(); got.Len() != 0 {
		t.Errorf("transient flagged: %v", got)
	}
	// Once the inflation persists for a second step, it is an attack.
	d.Observe(pred, spike)
	if got := d.Diagnose(); !got.Has(sensors.GPS) {
		t.Errorf("persistent inflation not flagged: %v", got)
	}
}

func TestDeLoreanInsufficientHistory(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	d.Observe(pred, obs)
	if got := d.Diagnose(); got.Len() != 0 {
		t.Errorf("one observation should not diagnose: %v", got)
	}
}

func TestDeLoreanZeroDeltaChannelSkipped(t *testing.T) {
	// Rover-style Delta: altitude channels unmonitored.
	delta := uniformDelta(1)
	delta[sensors.SBaroAlt] = 0
	d := NewDeLorean(delta)
	var pred, obs sensors.PhysState
	obs[sensors.SBaroAlt] = 100
	observePair(d, pred, obs, 2)
	if got := d.Diagnose(); got.Has(sensors.Baro) {
		t.Errorf("unmonitored channel flagged: %v", got)
	}
}

func TestDeLoreanReset(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	observePair(d, pred, obs, 2)
	d.Reset()
	if got := d.Diagnose(); got.Len() != 0 {
		t.Errorf("after reset Diagnose = %v, want empty", got)
	}
}

func TestRAFlagsOnSingleStep(t *testing.T) {
	r := NewRA(EKFRA, uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	r.Observe(pred, obs)
	if got := r.Diagnose(); !got.Has(sensors.GPS) {
		t.Errorf("RA should flag on one step: %v", got)
	}
}

func TestRAFlagsTransients(t *testing.T) {
	// The RA structural weakness: a one-step transient IS flagged —
	// exactly what DeLorean masks.
	r := NewRA(SaviorRA, uniformDelta(1))
	var pred, quiet, spike sensors.PhysState
	spike[sensors.SVY] = 10
	r.Observe(pred, quiet)
	r.Observe(pred, spike)
	if got := r.Diagnose(); !got.Has(sensors.GPS) {
		t.Errorf("RA should flag the transient: %v", got)
	}
}

func TestRANoObservationsEmpty(t *testing.T) {
	r := NewRA(PIDPiperRA, uniformDelta(1))
	if got := r.Diagnose(); got.Len() != 0 {
		t.Errorf("no observations should diagnose empty: %v", got)
	}
}

func TestRAScalesDiffer(t *testing.T) {
	// Savior (0.9×δ) flags a residual that PID-Piper (1.25×δ) tolerates.
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 1.1 // between 0.9 and 1.25
	sav := NewRA(SaviorRA, uniformDelta(1))
	pid := NewRA(PIDPiperRA, uniformDelta(1))
	sav.Observe(pred, obs)
	pid.Observe(pred, obs)
	if !sav.Diagnose().Has(sensors.GPS) {
		t.Error("Savior-RA should flag at 1.1×δ")
	}
	if pid.Diagnose().Has(sensors.GPS) {
		t.Error("PID-Piper-RA should tolerate 1.1×δ")
	}
}

func TestRAReset(t *testing.T) {
	r := NewRA(EKFRA, uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	r.Observe(pred, obs)
	r.Reset()
	if got := r.Diagnose(); got.Len() != 0 {
		t.Errorf("after reset Diagnose = %v", got)
	}
}

func TestNames(t *testing.T) {
	if NewDeLorean(Delta{}).Name() != "DeLorean" {
		t.Error("DeLorean name wrong")
	}
	tests := []struct {
		kind RAKind
		want string
	}{
		{kind: SaviorRA, want: "Savior-RA"},
		{kind: PIDPiperRA, want: "PID-Piper-RA"},
		{kind: EKFRA, want: "EKF-RA"},
	}
	for _, tt := range tests {
		if got := NewRA(tt.kind, Delta{}).Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
	if RAKind(9).String() != "RA" {
		t.Error("unknown RAKind should stringify to RA")
	}
}

// Property: diagnosis monotonicity — adding error inflation to more
// channels never shrinks the flagged set.
func TestPropertyDiagnosisMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := uniformDelta(1)
		var pred, obs1 sensors.PhysState
		// Random base inflation on a few channels (kept below π so angular
		// channels do not wrap).
		for i := range obs1 {
			if rng.Float64() < 0.3 {
				obs1[i] = 2 + rng.Float64()
			}
		}
		// obs2 adds inflation to additional channels only.
		obs2 := obs1
		for i := range obs2 {
			if obs2[i] == 0 && rng.Float64() < 0.3 {
				obs2[i] = 2 + rng.Float64()
			}
		}
		d1 := NewDeLorean(delta)
		observePair(d1, pred, obs1, 2)
		d2 := NewDeLorean(delta)
		observePair(d2, pred, obs2, 2)
		s1, s2 := d1.Diagnose(), d2.Diagnose()
		for _, typ := range s1.List() {
			if !s2.Has(typ) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a diagnosis never flags a sensor whose channels are all below
// δ on both steps.
func TestPropertyNoFlagBelowDelta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := uniformDelta(2)
		var pred, obs sensors.PhysState
		for i := range obs {
			obs[i] = rng.Float64() * 1.9 // strictly below δ
		}
		d := NewDeLorean(delta)
		observePair(d, pred, obs, 2)
		return d.Diagnose().Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// rebuiltVerdicts is a verbatim transcription of the rebuild-per-call
// diagnosis the cached-graph form replaced: one fresh factor graph per
// sensor per call, value-capturing threshold factors. It is the
// equivalence oracle proving the evidence-cell graphs are bit-exact.
func rebuiltVerdicts(delta Delta, ePrev, eCur sensors.PhysState) []SensorVerdict {
	var out []SensorVerdict
	for _, typ := range sensors.AllTypes() {
		graph := fg.New()
		nvars := 0
		for _, idx := range sensors.StatesOf(typ) {
			if delta[idx] <= 0 {
				continue
			}
			v := graph.AddVariable(idx.String())
			graph.AddFactor("f_"+idx.String(), fg.ThresholdFactor(ePrev[idx], eCur[idx], delta[idx]), v)
			nvars++
		}
		if nvars == 0 {
			continue
		}
		verdict := SensorVerdict{Sensor: typ}
		for _, p := range graph.Marginals() {
			if p > verdict.MaxMarginal {
				verdict.MaxMarginal = p
			}
			if p > 0.5 {
				verdict.Malicious = true
			}
		}
		out = append(out, verdict)
	}
	return out
}

// TestDeLoreanCachedGraphsMatchRebuilt drives random evidence through the
// cached-graph diagnoser and the rebuild-per-call oracle and requires
// bit-identical marginals (==, not tolerance: same factor values and same
// enumeration order must give the same floats).
func TestDeLoreanCachedGraphsMatchRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	delta := uniformDelta(1)
	delta[sensors.SBaroAlt] = 0 // keep one unmonitored channel in play
	d := NewDeLorean(delta)
	var prev sensors.PhysState
	for step := 0; step < 50; step++ {
		var obs sensors.PhysState
		for i := range obs {
			if rng.Float64() < 0.4 {
				obs[i] = rng.Float64() * 3
			}
		}
		d.Observe(sensors.PhysState{}, obs)
		if step == 0 {
			prev = obs
			continue
		}
		got := d.Diagnose()
		want := rebuiltVerdicts(delta, prev, obs)
		verdicts := d.Verdicts()
		if len(verdicts) != len(want) {
			t.Fatalf("step %d: %d verdicts, oracle has %d", step, len(verdicts), len(want))
		}
		for i, w := range want {
			g := verdicts[i]
			if g.Sensor != w.Sensor || g.Malicious != w.Malicious || g.MaxMarginal != w.MaxMarginal {
				t.Fatalf("step %d sensor %v: got %+v, oracle %+v", step, w.Sensor, g, w)
			}
			if got.Has(w.Sensor) != w.Malicious {
				t.Fatalf("step %d sensor %v: flagged=%v, oracle malicious=%v",
					step, w.Sensor, got.Has(w.Sensor), w.Malicious)
			}
		}
		prev = obs
	}
}

// TestDeLoreanDiagnoseAllocBudget pins the steady-state allocation cost
// of Diagnose: the returned TypeSet (map header plus its first bucket
// when a sensor is flagged) is the only allocation — the graphs, their
// scratch, the marginal buffer, and the verdict buffer are all reused.
func TestDeLoreanDiagnoseAllocBudget(t *testing.T) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	observePair(d, pred, obs, 2)
	d.Diagnose() // warm the per-graph enumeration scratch
	if n := testing.AllocsPerRun(100, func() { d.Diagnose() }); n > 2 {
		t.Errorf("Diagnose allocates %v/op in steady state, budget 2 (the returned set)", n)
	}
}

// BenchmarkDeLoreanDiagnose is the diagnosis steady state: cached graphs,
// evidence-cell rewrite, shared-buffer marginals.
func BenchmarkDeLoreanDiagnose(b *testing.B) {
	d := NewDeLorean(uniformDelta(1))
	var pred, obs sensors.PhysState
	obs[sensors.SX] = 10
	obs[sensors.SWRoll] = 5
	observePair(d, pred, obs, 2)
	d.Diagnose()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Diagnose()
	}
}
