// Package source holds the sensor-source implementations that are not
// the simulator: recorded-trace replay, the record tee that captures any
// inner source to the on-disk trace format, and the time-aligned
// multi-stream bus an external feed plugs into. The simulator synthesizer
// itself lives in internal/sim (it owns the physics-facing half of the
// seam); everything here drives the same sensors.Source interface, so a
// mission cannot tell where its readings come from.
package source

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sensors"
	"repro/internal/trace"
)

// Replay error classes, wrapped with positional detail; test with
// errors.Is.
var (
	// ErrExhausted: the mission ran past the end of the recorded trace.
	ErrExhausted = errors.New("source: trace exhausted")
	// ErrDesync: the mission's tick grid diverged from the recorded
	// timestamps (wrong DT, wrong start, or a foreign trace).
	ErrDesync = errors.New("source: trace desync")
)

// Replay drives a mission from a recorded trace: each Sample returns the
// next recorded frame, after checking bit-exact timestamp agreement with
// the mission's tick grid. A Replay is a single-mission cursor — parallel
// replay campaigns construct one Replay per job over the same decoded
// *trace.Trace (the trace itself is read-only).
type Replay struct {
	tr   *trace.Trace
	next int
}

// NewReplay returns a replay source over the decoded trace.
func NewReplay(tr *trace.Trace) *Replay {
	return &Replay{tr: tr}
}

// Sample returns the recorded frame for tick.T. The recorded timestamp
// must match bit-for-bit: both the recording and the replaying mission
// build their grid by the same t += DT accumulation from zero, so any
// difference means the trace does not belong to this mission shape.
func (r *Replay) Sample(tick sensors.Tick) (sensors.Reading, error) {
	if r.next >= len(r.tr.Frames) {
		return sensors.Reading{}, exhaustedErr(r.next, tick.T)
	}
	f := &r.tr.Frames[r.next]
	if math.Float64bits(f.T) != math.Float64bits(tick.T) {
		return sensors.Reading{}, desyncErr(r.next, f.T, tick.T)
	}
	r.next++
	return sensors.Reading{
		State:         f.State,
		AttackActive:  f.AttackActive(),
		AttackTargets: f.Targets,
	}, nil
}

// exhaustedErr and desyncErr build Sample's terminal errors. Kept out of
// Sample so the replay hot path stays free of the fmt boxing on paths
// that end the mission anyway; both are hotalloc cold cut points.
func exhaustedErr(next int, t float64) error {
	return fmt.Errorf("%w after %d frames (t=%v)", ErrExhausted, next, t)
}

func desyncErr(next int, recorded, t float64) error {
	return fmt.Errorf("%w: frame %d recorded t=%v, mission at t=%v", ErrDesync, next, recorded, t)
}

// AttackMounted reports the trace header's attack annotation.
func (r *Replay) AttackMounted() bool { return r.tr.Header.AttackMounted }

// Remaining returns the number of unconsumed frames.
func (r *Replay) Remaining() int { return len(r.tr.Frames) - r.next }
