package source

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sensors"
	"repro/internal/trace"
)

func testTrace(n int, dt float64) *trace.Trace {
	tr := &trace.Trace{Header: trace.Header{DT: dt, AttackMounted: true}}
	t := 0.0
	for i := 0; i < n; i++ {
		var f trace.Frame
		f.T = t
		f.State[sensors.SX] = float64(i)
		f.State[sensors.SBaroAlt] = 10 + float64(i)*0.5
		if i >= n/2 {
			f.Flags = trace.FlagAttackActive
			f.Targets = sensors.MaskOf(sensors.GPS)
		}
		tr.Frames = append(tr.Frames, f)
		t += dt
	}
	return tr
}

func TestReplayDeliversFrames(t *testing.T) {
	tr := testTrace(10, 0.01)
	r := NewReplay(tr)
	if !r.AttackMounted() {
		t.Error("AttackMounted lost")
	}
	tick := 0.0
	for i := 0; i < 10; i++ {
		rd, err := r.Sample(sensors.Tick{T: tick, DT: 0.01})
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if rd.State[sensors.SX] != float64(i) {
			t.Errorf("frame %d: SX = %v", i, rd.State[sensors.SX])
		}
		wantActive := i >= 5
		if rd.AttackActive != wantActive {
			t.Errorf("frame %d: AttackActive = %v", i, rd.AttackActive)
		}
		if wantActive && !rd.AttackTargets.Has(sensors.GPS) {
			t.Errorf("frame %d: targets = %v", i, rd.AttackTargets)
		}
		tick += 0.01
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
	if _, err := r.Sample(sensors.Tick{T: tick}); !errors.Is(err, ErrExhausted) {
		t.Errorf("got %v, want ErrExhausted", err)
	}
}

func TestReplayDetectsDesync(t *testing.T) {
	r := NewReplay(testTrace(10, 0.01))
	// A mission running on a different grid (wrong DT) must fail on the
	// first mismatched timestamp, not silently feed stale frames.
	if _, err := r.Sample(sensors.Tick{T: 0, DT: 0.02}); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if _, err := r.Sample(sensors.Tick{T: 0.02, DT: 0.02}); !errors.Is(err, ErrDesync) {
		t.Errorf("got %v, want ErrDesync", err)
	}
}

// fixedSource is a deterministic inner source for Recorder tests.
type fixedSource struct{ n int }

func (f *fixedSource) Sample(tick sensors.Tick) (sensors.Reading, error) {
	f.n++
	var rd sensors.Reading
	rd.State[sensors.SY] = float64(f.n)
	rd.AttackActive = f.n > 2
	rd.AttackTargets = sensors.MaskOf(sensors.Baro)
	return rd, nil
}

func (f *fixedSource) AttackMounted() bool { return true }

func TestRecorderTees(t *testing.T) {
	rec := NewRecorder(&fixedSource{})
	tick := 0.0
	for i := 0; i < 4; i++ {
		rd, err := rec.Sample(sensors.Tick{T: tick, DT: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if rd.State[sensors.SY] != float64(i+1) {
			t.Errorf("reading %d passed through wrong: %v", i, rd.State[sensors.SY])
		}
		tick += 0.5
	}
	tr := rec.Trace([]trace.MetaEntry{{Key: "k", Value: "v"}})
	if len(tr.Frames) != 4 {
		t.Fatalf("recorded %d frames, want 4", len(tr.Frames))
	}
	if math.Float64bits(tr.Header.DT) != math.Float64bits(0.5) {
		t.Errorf("header DT = %v", tr.Header.DT)
	}
	if !tr.Header.AttackMounted {
		t.Error("header AttackMounted not delegated")
	}
	if v, ok := tr.Header.MetaValue("k"); !ok || v != "v" {
		t.Error("meta not carried")
	}
	if tr.Frames[0].AttackActive() || !tr.Frames[3].AttackActive() {
		t.Error("attack flags recorded wrong")
	}
	if !tr.Frames[3].Targets.Has(sensors.Baro) {
		t.Error("targets not recorded")
	}
	// Replaying the recorded trace reproduces the inner source's stream.
	r := NewReplay(tr)
	rd, err := r.Sample(sensors.Tick{T: 0, DT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rd.State[sensors.SY] != 1 {
		t.Errorf("replayed SY = %v, want 1", rd.State[sensors.SY])
	}
}

func TestBusAlignsMultiRateStreams(t *testing.T) {
	// GPS at 1 Hz, barometer at 4 Hz: the barometer sets the grid and the
	// GPS duplicates-last onto it (§4.2 alignment semantics).
	gps := Stream{Type: sensors.GPS}
	for i := 0; i < 3; i++ {
		gps.Samples = append(gps.Samples, StreamSample{
			T:      float64(i),
			Values: []float64{float64(i * 10), 0, 0, 1, 0, 0},
		})
	}
	baro := Stream{Type: sensors.Baro}
	for i := 0; i < 12; i++ {
		baro.Samples = append(baro.Samples, StreamSample{
			T:      float64(i) * 0.25,
			Values: []float64{50 + float64(i)},
		})
	}
	bus, err := NewBus([]Stream{gps, baro}, []Window{
		{Start: 1.0, End: 2.0, Targets: sensors.MaskOf(sensors.GPS)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bus.Grid()) != 12 {
		t.Fatalf("grid = %d points, want 12 (densest stream)", len(bus.Grid()))
	}
	if !bus.AttackMounted() {
		t.Error("bus with windows must report AttackMounted")
	}

	// Walk a finer mission grid (dt=0.1) over the bus.
	type probe struct {
		t          float64
		wantX      float64
		wantAlt    float64
		wantActive bool
	}
	for _, p := range []probe{
		{t: 0.0, wantX: 0, wantAlt: 50, wantActive: false},
		{t: 0.9, wantX: 0, wantAlt: 53, wantActive: false}, // baro refreshed 3×, GPS holding
		{t: 1.0, wantX: 10, wantAlt: 54, wantActive: true}, // GPS refresh + attack window opens
		{t: 1.9, wantX: 10, wantAlt: 57, wantActive: true}, // window closes at 2.0
		{t: 2.5, wantX: 20, wantAlt: 60, wantActive: false},
		{t: 9.0, wantX: 20, wantAlt: 61, wantActive: false}, // past both streams: hold last
	} {
		// Bus cursors are single-mission; rebuild to probe out of order.
		// Ticks are computed as k*dt (not accumulated) so probe times land
		// on exact grid values, mirroring how sim.RunContext steps time.
		b, err := NewBus([]Stream{gps, baro}, []Window{{Start: 1.0, End: 2.0, Targets: sensors.MaskOf(sensors.GPS)}})
		if err != nil {
			t.Fatal(err)
		}
		var rd sensors.Reading
		steps := int(p.t/0.1 + 0.5)
		for k := 0; k <= steps; k++ {
			if rd, err = b.Sample(sensors.Tick{T: float64(k) * 0.1, DT: 0.1}); err != nil {
				t.Fatal(err)
			}
		}
		if rd.State[sensors.SX] != p.wantX {
			t.Errorf("t=%.2f: SX = %v, want %v", p.t, rd.State[sensors.SX], p.wantX)
		}
		if rd.State[sensors.SBaroAlt] != p.wantAlt {
			t.Errorf("t=%.2f: alt = %v, want %v", p.t, rd.State[sensors.SBaroAlt], p.wantAlt)
		}
		if rd.AttackActive != p.wantActive {
			t.Errorf("t=%.2f: AttackActive = %v, want %v", p.t, rd.AttackActive, p.wantActive)
		}
		if p.wantActive && !rd.AttackTargets.Has(sensors.GPS) {
			t.Errorf("t=%.2f: targets = %v", p.t, rd.AttackTargets)
		}
	}
}

func TestBusRejectsBadStreams(t *testing.T) {
	ok := Stream{Type: sensors.Baro, Samples: []StreamSample{{T: 0, Values: []float64{1}}}}
	for _, tt := range []struct {
		name    string
		streams []Stream
	}{
		{"no streams", nil},
		{"unknown type", []Stream{{Type: sensors.Type(99), Samples: ok.Samples}}},
		{"duplicate type", []Stream{ok, ok}},
		{"empty stream", []Stream{{Type: sensors.Baro}}},
		{"unsorted", []Stream{{Type: sensors.Baro, Samples: []StreamSample{
			{T: 1, Values: []float64{1}}, {T: 0, Values: []float64{2}},
		}}}},
		{"wrong channel count", []Stream{{Type: sensors.GPS, Samples: []StreamSample{
			{T: 0, Values: []float64{1, 2}},
		}}}},
	} {
		if _, err := NewBus(tt.streams, nil); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}
