package source

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/sensors"
)

// StreamSample is one timestamped reading of a single sensor's channels,
// ordered as sensors.StatesOf(Type).
type StreamSample struct {
	T      float64
	Values []float64
}

// Stream is one independent per-sensor stream: a sensor type's readings
// at that sensor's own rate, sorted by time. Different streams need not
// share timestamps or rates — the bus aligns them.
type Stream struct {
	Type    sensors.Type
	Samples []StreamSample
}

// Window annotates an attack interval [Start, End) on the bus, with the
// sensor types it targets.
type Window struct {
	Start, End float64
	Targets    sensors.TypeMask
}

// Bus time-aligns multiple independent per-sensor streams into per-tick
// PS frames, using the checkpoint layer's multi-rate alignment (§4.2):
// the densest stream sets the target grid, and slower streams
// duplicate-last onto it. Between grid points — and on the mission's own
// finer tick grid — each channel holds its latest value, exactly like the
// onboard suite holds a sensor between refreshes. This is the seam an
// external or live feed plugs into: deliver each sensor's readings at its
// native rate and the mission consumes aligned frames.
//
// Channels of sensor types with no stream hold zero for the whole
// mission; pass every type you have. A Bus is a single-mission cursor —
// construct one per job.
type Bus struct {
	grid    []float64
	states  []sensors.PhysState
	cursor  int
	attacks []Window
}

// NewBus aligns the streams and returns the bus. Streams must be
// non-empty, sorted by time, carry exactly the channel count of their
// sensor type, and name each type at most once. Attack windows are
// optional annotations carried through to the mission's TP/FP accounting.
func NewBus(streams []Stream, attacks []Window) (*Bus, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("source: bus needs at least one stream")
	}
	byChannel := make(map[string][]checkpoint.Sample, len(streams)*4)
	seen := sensors.TypeMask(0)
	for _, st := range streams {
		channels := sensors.StatesOf(st.Type)
		if channels == nil {
			return nil, fmt.Errorf("source: bus stream has unknown sensor type %d", int(st.Type))
		}
		if seen.Has(st.Type) {
			return nil, fmt.Errorf("source: duplicate bus stream for %v", st.Type)
		}
		seen = seen.With(st.Type)
		if len(st.Samples) == 0 {
			return nil, fmt.Errorf("source: bus stream for %v is empty", st.Type)
		}
		if !sort.SliceIsSorted(st.Samples, func(i, j int) bool {
			return st.Samples[i].T < st.Samples[j].T
		}) {
			return nil, fmt.Errorf("source: bus stream for %v is not sorted by time", st.Type)
		}
		for si, s := range st.Samples {
			if len(s.Values) != len(channels) {
				return nil, fmt.Errorf("source: bus stream for %v sample %d has %d values, want %d",
					st.Type, si, len(s.Values), len(channels))
			}
		}
		for ci, idx := range channels {
			col := make([]checkpoint.Sample, len(st.Samples))
			for si, s := range st.Samples {
				col[si] = checkpoint.Sample{T: s.T, V: s.Values[ci]}
			}
			byChannel[idx.String()] = col
		}
	}

	grid, aligned := checkpoint.AlignStreams(byChannel)
	states := make([]sensors.PhysState, len(grid))
	for _, st := range streams {
		for _, idx := range sensors.StatesOf(st.Type) {
			col := aligned[idx.String()]
			for i := range states {
				states[i][idx] = col[i]
			}
		}
	}
	return &Bus{grid: grid, states: states, attacks: attacks}, nil
}

// Sample returns the latest aligned frame at or before tick.T (the first
// frame when tick.T precedes the grid), annotated with any attack window
// covering tick.T.
func (b *Bus) Sample(tick sensors.Tick) (sensors.Reading, error) {
	for b.cursor+1 < len(b.grid) && b.grid[b.cursor+1] <= tick.T {
		b.cursor++
	}
	rd := sensors.Reading{State: b.states[b.cursor]}
	for _, w := range b.attacks {
		if tick.T >= w.Start && tick.T < w.End {
			rd.AttackActive = true
			rd.AttackTargets |= w.Targets
		}
	}
	return rd, nil
}

// AttackMounted reports whether any attack window is annotated.
func (b *Bus) AttackMounted() bool { return len(b.attacks) > 0 }

// Grid returns the aligned target timestamps (the densest stream's).
func (b *Bus) Grid() []float64 { return b.grid }
