package source

import (
	"repro/internal/sensors"
	"repro/internal/trace"
)

// Recorder tees any inner source onto the on-disk trace format: every
// frame the mission consumes is appended verbatim (bit-preserved floats,
// attack annotations included), so replaying the captured trace through a
// Replay reproduces the mission byte-identically. Wrap the simulator
// source to capture a regression corpus, or a live bus to capture
// hardware-in-the-loop runs.
type Recorder struct {
	inner  sensors.Source
	dt     float64
	frames []trace.Frame
}

// NewRecorder returns a recording tee around inner.
func NewRecorder(inner sensors.Source) *Recorder {
	return &Recorder{inner: inner}
}

// Sample forwards to the inner source and appends the returned frame.
func (r *Recorder) Sample(tick sensors.Tick) (sensors.Reading, error) {
	rd, err := r.inner.Sample(tick)
	if err != nil {
		return rd, err
	}
	if len(r.frames) == 0 {
		r.dt = tick.DT
	}
	var flags uint8
	if rd.AttackActive {
		flags |= trace.FlagAttackActive
	}
	r.frames = append(r.frames, trace.Frame{
		T:       tick.T,
		State:   rd.State,
		Flags:   flags,
		Targets: rd.AttackTargets,
	})
	return rd, nil
}

// AttackMounted delegates to the inner source.
func (r *Recorder) AttackMounted() bool { return r.inner.AttackMounted() }

// Trace assembles the captured trace with the given ordered provenance
// annotations. Call it after the mission completes.
func (r *Recorder) Trace(meta []trace.MetaEntry) *trace.Trace {
	return &trace.Trace{
		Header: trace.Header{
			DT:            r.dt,
			AttackMounted: r.inner.AttackMounted(),
			Meta:          meta,
		},
		Frames: r.frames,
	}
}
