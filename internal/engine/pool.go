package engine

import (
	"context"
	"fmt"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Pool adapts a long-lived runner.Pool to the engine seam. Unlike the
// stateless runner/fleet engines it carries admission control — a
// submission that does not fit the pool's bounded queue is rejected
// whole with runner.ErrQueueFull, and a draining pool rejects with
// runner.ErrDraining — and it exposes the pool's in-submission-order
// streaming release (Submit) on top of the batch-synchronous Engine
// contract (Run). The mission service streams; the campaign layer and
// tests may Run.
type Pool struct {
	pool *runner.Pool
}

// NewPool wraps an existing pool. The caller keeps ownership: draining
// and closing remain the caller's job.
func NewPool(p *runner.Pool) *Pool { return &Pool{pool: p} }

// Name identifies the engine.
func (*Pool) Name() string { return "pool" }

// Submit reserves queue slots all-or-nothing and enqueues the jobs,
// returning a Stream that releases finished indices strictly in
// submission order. Errors pass through from runner.Pool.Submit
// (ErrQueueFull, ErrDraining) so callers can shed load.
func (p *Pool) Submit(ctx context.Context, jobs []Job) (*Stream, error) {
	AttachShared(jobs)
	results := make([]sim.Result, len(jobs))
	ticket, err := p.pool.Submit(ctx, len(jobs), func(ctx context.Context, i int) error {
		res, err := sim.RunContext(ctx, jobs[i].Cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Stream{ticket: ticket, results: results}, nil
}

// Run implements Engine on the pool: Submit, drain the stream, and
// mirror the runner's contract — results indexed by submission order,
// lowest-indexed failure reported with the job's label, bare ctx.Err()
// on cancellation, telemetry reduced in submission order only when every
// job succeeded.
func (p *Pool) Run(ctx context.Context, jobs []Job, opt Options) ([]sim.Result, error) {
	st, err := p.Submit(ctx, jobs)
	if err != nil {
		return nil, err
	}
	firstErr := -1
	done := 0
	for i := range st.Ready() {
		done++
		if opt.Progress != nil {
			opt.Progress(done, len(jobs))
		}
		if st.Err(i) != nil && firstErr < 0 {
			firstErr = i
		}
	}
	if err := ctx.Err(); err != nil {
		return st.results, err
	}
	if firstErr >= 0 {
		return st.results, fmt.Errorf("engine: pool job %d (%s): %w", firstErr, jobs[firstErr].Label, st.Err(firstErr))
	}
	if opt.Telemetry != nil {
		reduceTelemetry(st.results, opt.Telemetry)
	}
	return st.results, nil
}

// reduceTelemetry is the engine seam's deterministic reduce: per-job
// telemetry is collected strictly in submission order, never completion
// order, mirroring the runner's. It is a declared root of the puretick
// proof — everything it reaches must stay free of nondeterminism
// sources.
func reduceTelemetry(results []sim.Result, c *telemetry.Collector) {
	for i := range results {
		c.Add(results[i].Telemetry)
	}
}

// Stream is the handle to one submitted batch on the pool engine:
// finished indices are released strictly in submission order (Ready
// yields 0, 1, 2, … and is closed after the last), which is what carries
// the engines' byte-identity contract across a streaming consumer at any
// pool shard count.
type Stream struct {
	ticket  *runner.Ticket
	results []sim.Result
}

// Ready yields finished indices in submission order and is closed after
// the last.
func (s *Stream) Ready() <-chan int { return s.ticket.Ready() }

// Err returns the outcome of a released index (nil on success). Only
// valid for indices already received from Ready.
func (s *Stream) Err(i int) error { return s.ticket.Err(i) }

// Result returns the result of a released index. Only valid for indices
// already received from Ready with a nil Err.
func (s *Stream) Result(i int) sim.Result { return s.results[i] }
