package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// suite builds a deterministic mixed-profile job list — short real
// missions, attacked and clean, every draw derived from one master seed —
// fresh stateful collaborators per call so the same suite can be executed
// independently by every engine.
func suite(t testing.TB, n int) []Job {
	t.Helper()
	profiles := []vehicle.ProfileName{vehicle.ArduCopter, vehicle.ArduRover}
	rng := rand.New(rand.NewSource(7))
	jobs := make([]Job, n)
	for i := range jobs {
		p := vehicle.MustProfile(profiles[i%len(profiles)])
		cfg := sim.Config{
			Profile:   p,
			Plan:      mission.NewStraight(5, 10),
			Strategy:  core.StrategyDeLorean,
			Delta:     core.DefaultDelta(p),
			WindowSec: 5,
			WindMean:  rng.Float64() * 2,
			WindGust:  0.3,
			WindDir:   rng.Float64() * 6.28,
			Seed:      rng.Int63(),
			MaxSec:    4,
		}
		if i%3 == 0 {
			targets := attack.RandomTargets(rng, 1)
			sda := attack.New(rng, attack.DefaultParams(), targets, 1.0, 2.5)
			cfg.Attacks = attack.NewSchedule(sda)
		} else {
			// Keep the master rng draw count independent of which jobs
			// carry attacks.
			_ = attack.RandomTargets(rng, 1)
			_ = attack.New(rng, attack.DefaultParams(), nil, 1.0, 2.5)
		}
		jobs[i] = Job{Label: fmt.Sprintf("suite/%d", i), Cfg: cfg}
	}
	return jobs
}

// runOn executes a fresh suite on the engine and renders its telemetry
// report.
func runOn(t *testing.T, eng Engine, n int, opt Options) ([]sim.Result, []byte) {
	t.Helper()
	col := telemetry.NewCollector()
	col.Begin("equiv")
	opt.Telemetry = col
	res, err := eng.Run(context.Background(), suite(t, n), opt)
	if err != nil {
		t.Fatalf("%s: %v", eng.Name(), err)
	}
	rep, err := col.Report(telemetry.Meta{Generator: "engine-test"})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("write report: %v", err)
	}
	return res, buf.Bytes()
}

// engines under test: the two stateless engines plus a pool engine over
// a fresh 4-shard pool. The cleanup closes the pool after the test.
func testEngines(t *testing.T) []Engine {
	t.Helper()
	p := runner.NewPool(4, 64)
	t.Cleanup(p.Close)
	return []Engine{Runner(), Fleet(), NewPool(p)}
}

// TestEnginesByteIdentical is the seam's headline contract: for the same
// pre-drawn job list, every engine produces deeply equal results and a
// byte-identical telemetry report, at worker counts 1 and 4.
func TestEnginesByteIdentical(t *testing.T) {
	const n = 10
	wantRes, wantRep := runOn(t, Runner(), n, Options{Workers: 1})
	for _, eng := range testEngines(t) {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("%s/workers=%d", eng.Name(), workers)
			t.Run(name, func(t *testing.T) {
				gotRes, gotRep := runOn(t, eng, n, Options{Workers: workers, BatchSize: 3})
				if len(gotRes) != len(wantRes) {
					t.Fatalf("results = %d, want %d", len(gotRes), len(wantRes))
				}
				for i := range wantRes {
					if !reflect.DeepEqual(gotRes[i], wantRes[i]) {
						t.Errorf("job %d: %s result diverged from runner reference", i, eng.Name())
					}
				}
				if !bytes.Equal(gotRep, wantRep) {
					t.Errorf("%s telemetry report differs from runner reference", name)
				}
			})
		}
	}
}

// TestEnginesLowestIndexedError pins the shared failure contract: every
// engine reports the lowest-indexed failure with the job's label, and
// surviving jobs still carry valid results.
func TestEnginesLowestIndexedError(t *testing.T) {
	wantRes, _ := runOn(t, Runner(), 6, Options{Workers: 2})
	for _, eng := range testEngines(t) {
		t.Run(eng.Name(), func(t *testing.T) {
			jobs := suite(t, 6)
			jobs[2].Label = "suite/broken-a"
			jobs[2].Cfg.DT = -1 // rejected by sim.Config.Validate
			jobs[4].Label = "suite/broken-b"
			jobs[4].Cfg.DT = -1
			res, err := eng.Run(context.Background(), jobs, Options{Workers: 2})
			if err == nil {
				t.Fatal("broken job did not surface an error")
			}
			for _, want := range []string{"job 2", "suite/broken-a"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
			for _, i := range []int{0, 1, 3, 5} {
				if !reflect.DeepEqual(res[i], wantRes[i]) {
					t.Errorf("surviving job %d diverged from runner reference", i)
				}
			}
		})
	}
}

// TestEnginesCancelledContext: a pre-cancelled context returns a bare
// ctx.Err() from every engine.
func TestEnginesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range testEngines(t) {
		t.Run(eng.Name(), func(t *testing.T) {
			_, err := eng.Run(ctx, suite(t, 4), Options{Workers: 2})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if err.Error() != context.Canceled.Error() {
				t.Errorf("cancellation error is wrapped: %q", err)
			}
		})
	}
}

// TestPoolStreamSubmissionOrder pins the streaming release: Ready yields
// exactly 0..n-1 in order regardless of completion interleaving.
func TestPoolStreamSubmissionOrder(t *testing.T) {
	p := runner.NewPool(4, 64)
	defer p.Close()
	eng := NewPool(p)
	st, err := eng.Submit(context.Background(), suite(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := range st.Ready() {
		got = append(got, i)
		if st.Err(i) != nil {
			t.Errorf("job %d failed: %v", i, st.Err(i))
		}
		if st.Result(i).Ticks == 0 {
			t.Errorf("job %d: empty result", i)
		}
	}
	for i, idx := range got {
		if i != idx {
			t.Fatalf("stream released %v, want 0..7 in order", got)
		}
	}
	if len(got) != 8 {
		t.Fatalf("stream released %d indices, want 8", len(got))
	}
}

// TestPoolSubmitRejections pass the pool's admission errors through the
// seam unchanged so dispatchers can shed load on them.
func TestPoolSubmitRejections(t *testing.T) {
	p := runner.NewPool(1, 2)
	defer p.Close()
	eng := NewPool(p)
	if _, err := eng.Submit(context.Background(), suite(t, 8)); !errors.Is(err, runner.ErrQueueFull) {
		t.Errorf("oversized submit: err = %v, want ErrQueueFull", err)
	}
	p.BeginDrain()
	if _, err := eng.Submit(context.Background(), suite(t, 1)); !errors.Is(err, runner.ErrDraining) {
		t.Errorf("draining submit: err = %v, want ErrDraining", err)
	}
}

// TestByName covers the engine registry used by CLI flags.
func TestByName(t *testing.T) {
	for _, name := range Names() {
		eng, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, eng.Name())
		}
	}
	if _, err := ByName("warp"); err == nil {
		t.Error("unknown engine name did not error")
	}
}

// TestAttachSharedIdempotent: attaching twice or over a pre-attached
// config is a no-op, and configs keep their caches per (profile, dt).
func TestAttachSharedIdempotent(t *testing.T) {
	jobs := suite(t, 4)
	AttachShared(jobs)
	first := make([]*core.Shared, len(jobs))
	for i := range jobs {
		if jobs[i].Cfg.Shared == nil {
			t.Fatalf("job %d: no shared caches attached", i)
		}
		first[i] = jobs[i].Cfg.Shared
	}
	AttachShared(jobs)
	for i := range jobs {
		if jobs[i].Cfg.Shared != first[i] {
			t.Errorf("job %d: re-attach replaced the cache", i)
		}
	}
}
