// Package engine is the unified mission-execution seam: one interface
// over the repo's three execution paths — the per-goroutine parallel
// runner (internal/runner), the batched lockstep fleet executor
// (internal/fleet), and the long-lived sharded service pool
// (runner.Pool). Every consumer that used to pick an executor ad hoc
// (the experiments package's Options.Fleet branch, the mission service's
// attachShared + Pool.Submit wiring) now dispatches through an Engine.
//
// The seam's contract is the one every executor already honors: jobs are
// pre-drawn and fully seeded before submission, results are indexed by
// submission order, telemetry is reduced strictly in submission order,
// and the lowest-indexed failure is the reported error. Consequently the
// engines are interchangeable byte for byte — same jobs, same result
// bytes, same report bytes, at any worker count, batch size, or pool
// shard count — which is what lets the campaign layer (internal/campaign)
// treat engine choice as a pure throughput knob.
package engine

import (
	"context"
	"fmt"

	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Job is one pre-drawn mission, identical to the runner's job unit: a
// fully specified sim.Config carrying its own derived seed and its own
// stateful collaborators, shared with no other job.
type Job = runner.Job

// Options carry the execution knobs common to every engine. None of
// them may change output bytes — they trade wall-clock time and memory
// only.
type Options struct {
	// Workers is the parallelism; <= 0 means all CPUs.
	Workers int
	// BatchSize caps the fleet executor's lockstep width; <= 0 selects
	// the fleet default. Other engines ignore it.
	BatchSize int
	// Progress, when non-nil, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialized and
	// completed is strictly increasing; which job finished is unspecified.
	Progress func(completed, total int)
	// Telemetry, when non-nil, receives every job's mission telemetry
	// after the sweep completes, strictly in submission order.
	Telemetry *telemetry.Collector
}

// Engine executes pre-drawn seeded jobs and reduces their results and
// telemetry in submission order. Implementations must be byte-identical
// to one another: for the same job list, the result slice, the reported
// error (lowest-indexed failure), and the telemetry reduce order are
// engine-invariant.
type Engine interface {
	// Name identifies the engine ("runner", "fleet", "pool").
	Name() string
	// Run executes the jobs and returns their results indexed by
	// submission order. On error the lowest-indexed failure is returned;
	// successful entries of the result slice are still valid. Cancelling
	// ctx abandons the sweep with ctx.Err().
	Run(ctx context.Context, jobs []Job, opt Options) ([]sim.Result, error)
}

// Runner returns the per-goroutine parallel runner engine — one
// goroutine per in-flight mission, the latency-optimized default.
func Runner() Engine { return runnerEngine{} }

// Fleet returns the batched lockstep fleet engine — profile-homogeneous
// batches stepped in lockstep over shared per-(profile, dt) caches, the
// throughput-optimized choice for large homogeneous sweeps.
func Fleet() Engine { return fleetEngine{} }

// Names lists the engines constructible by name, in preference order.
func Names() []string { return []string{"runner", "fleet"} }

// ByName resolves a stateless engine from its name. The pool engine is
// excluded: it wraps a caller-owned runner.Pool (see NewPool).
func ByName(name string) (Engine, error) {
	switch name {
	case "runner":
		return runnerEngine{}, nil
	case "fleet":
		return fleetEngine{}, nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (have runner, fleet)", name)
}

// AttachShared points every job whose config has no shared caches yet at
// the process-wide per-(profile, dt) caches, so a sweep's missions
// reference one DARE solution, one EKF covariance schedule, and one
// compiled diagnosis graph spec instead of rebuilding them per mission.
// Results are bit-identical with or without the caches (the PR-9
// equivalence suite pins this); a profile whose caches cannot be built
// simply runs unshared, surfacing any real defect as the usual
// per-mission construction error. Every engine applies this uniformly,
// so no dispatcher needs its own cache wiring.
func AttachShared(jobs []Job) {
	for i := range jobs {
		cfg := &jobs[i].Cfg
		if cfg.Shared != nil {
			continue
		}
		if sh, err := fleet.SharedFor(cfg.Profile, cfg.DT); err == nil {
			cfg.Shared = sh
		}
	}
}

// runnerEngine adapts runner.Run to the seam.
type runnerEngine struct{}

func (runnerEngine) Name() string { return "runner" }

func (runnerEngine) Run(ctx context.Context, jobs []Job, opt Options) ([]sim.Result, error) {
	AttachShared(jobs)
	return runner.Run(ctx, jobs, runner.Options{
		Workers: opt.Workers, Progress: opt.Progress, Telemetry: opt.Telemetry,
	})
}

// fleetEngine adapts fleet.Run to the seam. The fleet attaches the
// shared caches itself, per batch.
type fleetEngine struct{}

func (fleetEngine) Name() string { return "fleet" }

func (fleetEngine) Run(ctx context.Context, jobs []Job, opt Options) ([]sim.Result, error) {
	return fleet.Run(ctx, jobs, fleet.Options{
		Workers: opt.Workers, BatchSize: opt.BatchSize,
		Progress: opt.Progress, Telemetry: opt.Telemetry,
	})
}
