// Package core implements the DeLorean framework (Fig. 3/4, Algorithm 1)
// as a staged defense pipeline: attack detection, attack diagnosis,
// historic-states checkpointing, state reconstruction, and attack
// recovery are six pluggable stages (stage.go) wired into one feedback
// control loop by a Pipeline (pipeline.go) that sequences them with an
// explicit recovery-mode finite-state machine (fsm.go). The defense
// strategies the paper compares — DeLorean, LQR-O worst-case recovery,
// SSR, PID-Piper, and an undefended baseline — are declarative stage
// compositions in a strategy registry (strategy.go, compose.go), not
// branches through the tick path.
//
// Each control tick the pipeline:
//
//  1. fuses the sensor-derived states into the EKF estimate, masking any
//     sensors diagnosis has isolated;
//  2. advances the shadow reference — an attack-free evolution of the
//     physical states (attitude by the dynamics model, translation
//     dead-reckoned from measured acceleration) weakly anchored to the
//     fused estimate while no alert is active;
//  3. runs the attack detector on the (reference, observed) state pair;
//  4. on an alert, stops checkpoint recording, runs the triage stage, and
//     — if sensors are implicated — reconstructs the state vector X'(t_a)
//     and switches the loop onto the recovery-controller stage
//     (Nominal → Suspicious → Diagnosing → Recovering in the FSM);
//  5. flies the recovery controller — the nominal autopilot when position
//     feedback survives, the conservative LQR otherwise — re-validating
//     isolated sensors as it goes (Revalidating), and hands the loop back
//     (Exiting → Nominal) when the attack demonstrably subsides.
package core

import (
	"repro/internal/detect"
	"repro/internal/diagnosis"
	"repro/internal/ekf"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Config assembles a pipeline.
type Config struct {
	Profile vehicle.Profile
	// DT is the control period in seconds.
	DT float64
	// Delta are the calibrated per-state diagnosis thresholds (Table 3).
	Delta diagnosis.Delta
	// DetectThresh are the detector's residual thresholds; zero value uses
	// detect.DefaultThresholds scaled off Delta.
	DetectThresh detect.Thresholds
	// WindowSec is the checkpoint window length (Table 3 WS column).
	WindowSec float64
	// Diagnoser overrides the diagnosis technique (defaults to the
	// DeLorean factor-graph diagnoser); the Table 4 comparison plugs the
	// RA baselines in here.
	Diagnoser diagnosis.Diagnoser
	// Detector overrides the attack detector (defaults to the PID-Piper
	// style residual+CUSUM detector); the FP experiment plugs a
	// detect.ForcedAlert in here.
	Detector detect.Detector
	// MaxRecoverySec caps a recovery episode (backstop exit). Defaults to
	// 40 s.
	MaxRecoverySec float64
	// Telemetry receives the mission's pipeline events and counters. Nil
	// disables event recording (a nil Recorder is a valid no-op sink).
	Telemetry *telemetry.Recorder
	// Shared, when non-nil, supplies the read-only per-(profile, dt)
	// caches — recovery LQR gain, EKF covariance schedule, diagnosis
	// graph specs — built once by the fleet executor and referenced by
	// every mission in a batch. Must match Profile.Name and DT; results
	// are bit-identical with or without it.
	Shared *Shared
}

// Framework is the historical name for the staged defense Pipeline; the
// alias keeps the pre-pipeline construction and benchmark surface
// compiling unchanged.
type Framework = Pipeline

// detectThreshFromDelta derives detector thresholds from the diagnosis δ
// values, monitoring every physical state. Monitoring the full PS vector
// is what lets the detector catch attacks on sensors whose effect the
// fused estimate partially absorbs (accelerometer bias hidden by GPS
// corrections, magnetometer heading rotations slewing the yaw estimate)
// *before* the corrupted fusion drags the attack-free reference along.
func detectThreshFromDelta(delta diagnosis.Delta) detect.Thresholds {
	var th detect.Thresholds
	for _, idx := range sensors.AllStates() {
		th[idx] = delta[idx]
	}
	if th == (detect.Thresholds{}) {
		th = detect.DefaultThresholds()
	}
	return th
}

// approxModel returns the SSR-style system-identified model: the same
// dynamics structure with imperfectly learned parameters (the
// "approximation error" the paper identifies as SSR's weakness, §3.1).
func approxModel(p vehicle.Profile) ekf.StepFunc {
	if p.IsQuad() {
		q := p.Quad
		q.Mass *= 1.06
		q.DragCoef *= 0.6
		q.IX *= 0.9
		q.IY *= 0.9
		return ekf.QuadStep(q)
	}
	r := p.Rover
	r.DragCoef *= 0.6
	return ekf.RoverStep(r)
}
