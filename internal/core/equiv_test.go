package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// The staged pipeline must be bit-exact against the legacy monolith
// (legacy_oracle_test.go): same construction, same mixed attack/no-attack
// step sequence, Float64bits-identical outputs every tick. The scenario
// deliberately walks the whole FSM — clean cruise (Nominal), a detector
// alert (Suspicious), diagnosis and engagement (Diagnosing→Recovering),
// re-validation (Revalidating), subsidence and hand-back
// (Exiting→Nominal), then a second attack episode for re-entry paths.

// equivSteps is the mixed step schedule: >200 steps per episode phase,
// two attack episodes on different sensors.
const equivSteps = 3000

// equivMeas returns the (shared) measurement for step i: a gently
// maneuvering quad/rover PS vector with a 30 m GPS bias in the first
// attack window and a gyro/accel bias in the second.
func equivMeas(i int) sensors.PhysState {
	t := float64(i) * 0.01
	s := vehicle.State{
		Z:  10 + 0.05*math.Sin(t/3),
		VX: 0.2 * math.Sin(t/5),
		VY: 0.1 * math.Cos(t/7),
	}
	accel := [3]float64{0.04 * math.Cos(t/5), -0.014 * math.Sin(t/7), 0}
	meas := sensors.TruePhysState(s, accel, sensors.BodyField(0))
	switch {
	case i >= 600 && i < 1100:
		// Episode 1: GPS position/velocity bias.
		meas[sensors.SX] += 30
		meas[sensors.SVX] += 1
	case i >= 1900 && i < 2400:
		// Episode 2 (after a clean re-acquisition gap): inertial bias.
		meas[sensors.SRoll] += 0.5
		meas[sensors.SWRoll] += 2
		meas[sensors.SAX] += 4
	}
	return meas
}

func equivTarget(i int) mission.Waypoint {
	t := float64(i) * 0.01
	return mission.Waypoint{X: 0.5 * t, Z: 10}
}

func b64(f float64) uint64 { return math.Float64bits(f) }

// requireStateBits fails when two vehicle states differ in any bit.
func requireStateBits(t *testing.T, step int, what string, a, b vehicle.State) {
	t.Helper()
	av, bv := a.Vec(), b.Vec()
	for k := range av {
		if b64(av[k]) != b64(bv[k]) {
			t.Fatalf("step %d: %s[%d] = %v (pipeline) vs %v (legacy)", step, what, k, av[k], bv[k])
		}
	}
}

func runEquiv(t *testing.T, profile vehicle.ProfileName, strategy Strategy) {
	t.Helper()
	prof := vehicle.MustProfile(profile)
	mkCfg := func(tel *telemetry.Recorder) Config {
		return Config{
			Profile:   prof,
			DT:        0.01,
			Delta:     DefaultDelta(prof),
			WindowSec: 5,
			Telemetry: tel,
		}
	}
	telNew := telemetry.NewRecorder()
	telOld := telemetry.NewRecorder()
	p, err := New(mkCfg(telNew), strategy)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	legacy, err := newLegacyFramework(mkCfg(telOld), strategy)
	if err != nil {
		t.Fatalf("newLegacyFramework: %v", err)
	}
	start := vehicle.State{Z: 10}
	p.Init(start)
	legacy.Init(start)

	sawRecovery, sawExit := false, false
	for i := 0; i < equivSteps; i++ {
		tt := float64(i) * 0.01
		meas := equivMeas(i)
		target := equivTarget(i)
		uN := p.Tick(tt, meas, target)
		uO := legacy.Tick(tt, meas, target)
		if b64(uN.Thrust) != b64(uO.Thrust) || b64(uN.MRoll) != b64(uO.MRoll) ||
			b64(uN.MPitch) != b64(uO.MPitch) || b64(uN.MYaw) != b64(uO.MYaw) {
			t.Fatalf("step %d: input diverged: %+v (pipeline) vs %+v (legacy)", i, uN, uO)
		}
		requireStateBits(t, i, "believed", p.Believed(), legacy.Believed())
		if p.Recovering() != legacy.Recovering() {
			t.Fatalf("step %d: Recovering %v vs %v", i, p.Recovering(), legacy.Recovering())
		}
		if p.AlertActive() != legacy.AlertActive() {
			t.Fatalf("step %d: AlertActive %v vs %v", i, p.AlertActive(), legacy.AlertActive())
		}
		if !p.Compromised().Equal(legacy.Compromised()) {
			t.Fatalf("step %d: Compromised %v vs %v", i, p.Compromised(), legacy.Compromised())
		}
		eN, eO := p.LastError(), legacy.LastError()
		for k := range eN {
			if b64(eN[k]) != b64(eO[k]) {
				t.Fatalf("step %d: LastError[%d] = %v vs %v", i, k, eN[k], eO[k])
			}
		}
		if legacy.Recovering() {
			sawRecovery = true
		} else if sawRecovery {
			sawExit = true
		}
	}

	if p.DiagnosisRan() != legacy.DiagnosisRan() {
		t.Errorf("DiagnosisRan %v vs %v", p.DiagnosisRan(), legacy.DiagnosisRan())
	}
	if p.RecoveryActivations() != legacy.RecoveryActivations() {
		t.Errorf("RecoveryActivations %d vs %d", p.RecoveryActivations(), legacy.RecoveryActivations())
	}
	if p.MemoryBytes() != legacy.MemoryBytes() {
		t.Errorf("MemoryBytes %d vs %d", p.MemoryBytes(), legacy.MemoryBytes())
	}
	dN, tN, kN := p.Overhead()
	dO, tO, kO := legacy.Overhead()
	if dN != dO || tN != tO || kN != kO {
		t.Errorf("Overhead (%d,%d,%d) vs (%d,%d,%d)", dN, tN, kN, dO, tO, kO)
	}
	if p.Stages() != legacy.Stages() {
		t.Errorf("Stages %+v vs %+v", p.Stages(), legacy.Stages())
	}
	if !reflect.DeepEqual(telNew.Mission(), telOld.Mission()) {
		t.Errorf("telemetry diverged:\npipeline: %+v\nlegacy:   %+v", telNew.Mission(), telOld.Mission())
	}

	// The scenario must actually exercise the defense: every defended
	// strategy should engage recovery at least once and hand back.
	if strategy != StrategyNone {
		if !sawRecovery {
			t.Error("scenario never engaged recovery; equivalence vacuous")
		}
		if !sawExit {
			t.Error("scenario never exited recovery; equivalence vacuous")
		}
	}
}

func TestPipelineEquivalence(t *testing.T) {
	for _, strategy := range AllStrategies() {
		t.Run(strategy.String(), func(t *testing.T) {
			runEquiv(t, vehicle.ArduCopter, strategy)
		})
	}
}

// The rover profile drives the non-quad branches of the shared plant
// (approxModel, modelAccel) through the same oracle.
func TestPipelineEquivalenceRover(t *testing.T) {
	for _, strategy := range []Strategy{StrategyDeLorean, StrategySSR} {
		t.Run(strategy.String(), func(t *testing.T) {
			runEquiv(t, vehicle.ArduRover, strategy)
		})
	}
}
