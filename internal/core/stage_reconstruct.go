package core

import (
	"repro/internal/sensors"
	"repro/internal/telemetry"
)

// The reconstruction stage implementations (§4.3). The checkpoint-based
// strategies replay recorded history through the dynamics model; the
// tolerating strategies anchor their virtual-model state at the current
// (possibly already corrupted) estimate — the approximation weakness the
// paper identifies in SSR (§3.1).

// hybridReconstruct replays the checkpoint window and installs the
// hybrid state X'(t_a) — reconstructed channels for the isolated
// sensors, live estimate elsewhere (DeLorean). If the trusted anchor is
// stale, the live estimate is kept and only isolation applies.
type hybridReconstruct struct{ p *Pipeline }

func (s hybridReconstruct) Seed(t float64, meas sensors.PhysState, anchorFresh bool) {
	if !anchorFresh {
		return
	}
	p := s.p
	p.chargeReconstruction()
	if _, hybrid, stats, err := p.reconstructor.Reconstruct(p.recorder, meas, p.compromised); err == nil {
		p.filter.SetState(hybrid)
		p.tel.Reconstruction(p.ticks, stats.Records)
	}
}

// rollForwardReconstruct replays the checkpoint window open-loop — the
// pure model roll-forward of the worst-case strategy (LQR-O), which
// trusts no sensor.
type rollForwardReconstruct struct{ p *Pipeline }

func (s rollForwardReconstruct) Seed(t float64, meas sensors.PhysState, anchorFresh bool) {
	if !anchorFresh {
		return
	}
	p := s.p
	p.chargeReconstruction()
	if rolled, stats, err := p.reconstructor.RollForward(p.recorder, p.compromised); err == nil {
		p.filter.SetState(rolled)
		p.tel.Reconstruction(p.ticks, stats.Records)
	}
}

// anchorCurrent seeds the virtual-sensor model state at the current
// fused estimate — SSR and PID-Piper have no checkpointing, so a
// pre-engagement corruption of the estimate is carried into recovery.
type anchorCurrent struct{ p *Pipeline }

func (s anchorCurrent) Seed(t float64, meas sensors.PhysState, anchorFresh bool) {
	s.p.ssrState = s.p.filter.State()
}

// widenReconstruction re-seeds after a widened verdict during the
// settling window: same hybrid replay, gated only on anchor freshness
// relative to the window (the rapid-re-entry staleness rule does not
// apply mid-episode).
func (p *Pipeline) widenReconstruction(t float64, meas sensors.PhysState) {
	if rec, ok := p.recorder.LatestTrusted(); ok && t-rec.T <= 2*p.cfg.WindowSec+5 {
		p.comp.Reconstruct.Seed(t, meas, true)
	}
}

// chargeReconstruction accrues a checkpoint replay over the recorded
// window (WindowSec at the control rate). The charge is a fixed function
// of the window — not of the replay's actual record count — so the
// modeled overhead stays independent of when within the window the alert
// fired; telemetry reports the actual counts separately.
func (p *Pipeline) chargeReconstruction() {
	records := int64(p.cfg.WindowSec / p.cfg.DT)
	if records < 1 {
		records = 1
	}
	p.charge(telemetry.StageReconstruct, records*costReconstructPerRecordNS)
}
