package core

import (
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// The recovery-controller stage implementations. All of them drive the
// pipeline's shared, stateful controllers (the nominal autopilot's PID
// integrators, the conservative LQR) — the stage owns the policy of
// which controller flies on which state, not the controller itself.

// targetedRecovery derives its control actions "corresponding to the
// compromised sensors": with position feedback intact (GPS clean) the
// mission continues under the nominal autopilot at mission speed, only
// the isolated sensors being masked; without it, the conservative LQR
// flies the dead-reckoned estimate (DeLorean).
type targetedRecovery struct{ p *Pipeline }

func (s targetedRecovery) Update(t float64, target mission.Waypoint) vehicle.Input {
	p := s.p
	if !p.compromised.Has(sensors.GPS) {
		return p.autopilot.Update(p.filter.State(), target, p.cfg.DT)
	}
	return p.recoveryCtl.Update(p.filter.State(), target, p.cfg.DT)
}

func (s targetedRecovery) Describe(isolated sensors.TypeSet) string {
	if isolated.Has(sensors.GPS) {
		return "lqr"
	}
	return "autopilot"
}

// conservativeRecovery flies the LQR on the fully-masked estimate — the
// pure model roll-forward (LQR-O).
type conservativeRecovery struct{ p *Pipeline }

func (s conservativeRecovery) Update(t float64, target mission.Waypoint) vehicle.Input {
	p := s.p
	return p.recoveryCtl.Update(p.filter.State(), target, p.cfg.DT)
}

func (s conservativeRecovery) Describe(isolated sensors.TypeSet) string { return "lqr" }

// virtualSensorRecovery flies the controller on the approximate-model
// state — Choi et al.'s software sensors (SSR).
type virtualSensorRecovery struct{ p *Pipeline }

func (s virtualSensorRecovery) Update(t float64, target mission.Waypoint) vehicle.Input {
	p := s.p
	dt := p.cfg.DT
	u := p.autopilot.Update(p.ssrState, target, dt)
	p.ssrState = p.approxStep(p.ssrState, u, dt)
	return u
}

func (s virtualSensorRecovery) Describe(isolated sensors.TypeSet) string {
	return "virtual-sensors"
}

// ffcRecovery blends a model feed-forward action with the (still
// attacked) fused feedback — Dash et al.'s feed-forward controller
// (PID-Piper).
type ffcRecovery struct{ p *Pipeline }

func (s ffcRecovery) Update(t float64, target mission.Waypoint) vehicle.Input {
	p := s.p
	dt := p.cfg.DT
	ff := p.autopilot.Update(p.ssrState, target, dt)
	fb := p.autopilot.Update(p.filter.State(), target, dt)
	const alpha = 0.3 // feedback share
	u := vehicle.Input{
		Thrust: (1-alpha)*ff.Thrust + alpha*fb.Thrust,
		MRoll:  (1-alpha)*ff.MRoll + alpha*fb.MRoll,
		MPitch: (1-alpha)*ff.MPitch + alpha*fb.MPitch,
		MYaw:   (1-alpha)*ff.MYaw + alpha*fb.MYaw,
	}
	p.ssrState = p.step(p.ssrState, u, dt)
	return u
}

func (s ffcRecovery) Describe(isolated sensors.TypeSet) string { return "ffc" }
