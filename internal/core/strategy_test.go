package core

import (
	"strings"
	"testing"
)

// TestStrategyRoundTrip pins the String ↔ StrategyByName round trip for
// every registered strategy, plus the registered aliases and
// case-insensitivity.
func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range AllStrategies() {
		name := s.String()
		got, ok := StrategyByName(name)
		if !ok || got != s {
			t.Errorf("StrategyByName(%q) = (%v, %v), want (%v, true)", name, got, ok, s)
		}
		// Case-insensitive and whitespace-tolerant.
		got, ok = StrategyByName("  " + strings.ToUpper(name) + " ")
		if !ok || got != s {
			t.Errorf("StrategyByName(upper %q) = (%v, %v), want (%v, true)", name, got, ok, s)
		}
	}
}

func TestStrategyByNameAliases(t *testing.T) {
	tests := []struct {
		give string
		want Strategy
	}{
		{give: "none", want: StrategyNone},
		{give: "DeLorean", want: StrategyDeLorean},
		{give: "LQR-O", want: StrategyLQRO},
		{give: "lqro", want: StrategyLQRO},
		{give: "SSR", want: StrategySSR},
		{give: "PID-Piper", want: StrategyPIDPiper},
		{give: "pidpiper", want: StrategyPIDPiper},
	}
	for _, tt := range tests {
		got, ok := StrategyByName(tt.give)
		if !ok || got != tt.want {
			t.Errorf("StrategyByName(%q) = (%v, %v), want (%v, true)", tt.give, got, ok, tt.want)
		}
	}
	for _, unknown := range []string{"", "nonsense", "delorean2", "lqr"} {
		if got, ok := StrategyByName(unknown); ok {
			t.Errorf("StrategyByName(%q) = (%v, true), want not found", unknown, got)
		}
	}
}

// TestAllStrategiesRegistered pins the registry against the enum: every
// declared Strategy constant resolves a composition at New.
func TestAllStrategiesRegistered(t *testing.T) {
	want := []Strategy{StrategyNone, StrategyDeLorean, StrategyLQRO, StrategySSR, StrategyPIDPiper}
	got := AllStrategies()
	if len(got) != len(want) {
		t.Fatalf("AllStrategies() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllStrategies()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestNewRejectsUnregisteredStrategy: the registry is the single source of
// valid strategies; construction with an unknown value is an error, not a
// silent LQR-O fallback as in the pre-registry switch.
func TestNewRejectsUnregisteredStrategy(t *testing.T) {
	fw := newFW(t, StrategyDeLorean) // valid construction must still work
	if fw.Strategy() != StrategyDeLorean {
		t.Fatalf("Strategy() = %v", fw.Strategy())
	}
	cfg := fw.cfg
	for _, bad := range []Strategy{0, Strategy(42)} {
		if _, err := New(cfg, bad); err == nil {
			t.Errorf("New with strategy %v: expected error", bad)
		}
	}
}
