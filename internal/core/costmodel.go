// Cost model for the Table 3 CPU-overhead accounting.
//
// Earlier revisions timed the defense modules with the wall clock, which
// made the reported CPU overhead a measurement of this Go substrate's
// scheduler noise rather than of the defense design (recorded runs showed
// 15–75 % for what the paper reports as 5.5–9.2 %), and made experiment
// output irreproducible byte-for-byte. The pipeline now charges each
// control-loop stage a fixed nominal cost in nanoseconds on a reference
// flight controller (a ~1 GHz class autopilot board running a 100 Hz
// loop, the paper's Pixhawk setting). The per-tick constants are frozen
// model parameters, not measurements: they were chosen once from the
// relative asymptotics of each stage (EKF fusion is O(n²) in the 19
// channels, the shadow propagation a single model step, diagnosis a
// factor-graph MLE pass over the window, reconstruction a replay of the
// recorded window) and scaled so the steady-state defense share lands in
// the paper's measured band. What the experiments then report is how the
// *workload mix* — alerts, diagnosis passes, reconstructions, recovery
// episodes — moves the overhead, which is the paper's Table 3 claim, and
// the output is deterministic for a given seed at any worker count.
//
// Every charge is keyed by the telemetry.Stage identity that also names
// FSM transition causes and run-report columns, so the cost model's stage
// vocabulary cannot drift from the pipeline's.
package core

import "repro/internal/telemetry"

const (
	// costBaseLoopNS is the non-defense control-loop floor per tick:
	// sensor-driver I/O, scheduling, telemetry, and logging on the
	// reference board.
	costBaseLoopNS = 180_000
	// costFusionNS is the EKF predict+correct over the 19-channel PS
	// vector, paid every tick defended or not.
	costFusionNS = 60_000
	// costControlNS is the cascaded PID (or LQR) control-law evaluation.
	costControlNS = 12_000

	// costShadowNS is the shadow-reference propagation (one dynamics-model
	// step plus the strapdown dead-reckon and anchor blend).
	costShadowNS = 6_000
	// costDetectNS is the residual + CUSUM detector update over the
	// monitored channels.
	costDetectNS = 4_000
	// costObserveNS is the diagnosis observation push (error-pair window
	// maintenance).
	costObserveNS = 2_500
	// costCheckpointNS is the historic-states record append.
	costCheckpointNS = 1_500

	// costDiagnoseNS is one diagnosis inference pass (factor-graph MLE for
	// DeLorean, residual attribution for the RA baselines) — episodic,
	// only while an alert is being triaged.
	costDiagnoseNS = 350_000
	// costReconstructPerRecordNS is the per-record cost of replaying the
	// checkpoint buffer through the dynamics model during state
	// reconstruction.
	costReconstructPerRecordNS = 2_000
	// costRecoveryMonitorNS is the per-tick re-validation and
	// attack-subsidence monitoring while recovery is engaged.
	costRecoveryMonitorNS = 2_000
)

// charge accrues ns modeled nanoseconds against the named pipeline stage.
func (p *Pipeline) charge(st telemetry.Stage, ns int64) {
	p.stages.AddNS(st, ns)
}

// chargeTick accrues the every-tick costs: the undefended loop floor and
// the always-on defense front end (shadow, detector, diagnosis
// observation, checkpointing).
func (p *Pipeline) chargeTick() {
	p.charge(telemetry.StageBaseLoop, costBaseLoopNS)
	p.charge(telemetry.StageFusion, costFusionNS)
	p.charge(telemetry.StageControl, costControlNS)
	p.charge(telemetry.StageShadow, costShadowNS)
	p.charge(telemetry.StageDetect, costDetectNS)
	p.charge(telemetry.StageObserve, costObserveNS)
	p.charge(telemetry.StageCheckpoint, costCheckpointNS)
}

// chargeDiagnosis accrues one diagnosis inference pass.
func (p *Pipeline) chargeDiagnosis() {
	p.charge(telemetry.StageDiagnose, costDiagnoseNS)
}

// chargeRecoveryTick accrues the recovery-mode monitoring overhead.
func (p *Pipeline) chargeRecoveryTick() {
	p.charge(telemetry.StageRecoveryMonitor, costRecoveryMonitorNS)
}

// Overhead returns the modeled defense-module cost, the modeled total
// control-loop cost (base + defense), and the tick count, for the Table 3
// CPU-overhead row. Values are deterministic for a given mission seed.
func (p *Pipeline) Overhead() (defenseNS, totalNS int64, ticks int) {
	return p.stages.DefenseNS(), p.stages.TotalNS(), p.ticks
}

// Stages returns the per-stage breakdown of the modeled cost.
func (p *Pipeline) Stages() telemetry.StageNS { return p.stages }
