// Cost model for the Table 3 CPU-overhead accounting.
//
// Earlier revisions timed the defense modules with the wall clock, which
// made the reported CPU overhead a measurement of this Go substrate's
// scheduler noise rather than of the defense design (recorded runs showed
// 15–75 % for what the paper reports as 5.5–9.2 %), and made experiment
// output irreproducible byte-for-byte. The framework now charges each
// control-loop stage a fixed nominal cost in nanoseconds on a reference
// flight controller (a ~1 GHz class autopilot board running a 100 Hz
// loop, the paper's Pixhawk setting). The per-tick constants are frozen
// model parameters, not measurements: they were chosen once from the
// relative asymptotics of each stage (EKF fusion is O(n²) in the 19
// channels, the shadow propagation a single model step, diagnosis a
// factor-graph MLE pass over the window, reconstruction a replay of the
// recorded window) and scaled so the steady-state defense share lands in
// the paper's measured band. What the experiments then report is how the
// *workload mix* — alerts, diagnosis passes, reconstructions, recovery
// episodes — moves the overhead, which is the paper's Table 3 claim, and
// the output is deterministic for a given seed at any worker count.
package core

import "repro/internal/telemetry"

const (
	// costBaseLoopNS is the non-defense control-loop floor per tick:
	// sensor-driver I/O, scheduling, telemetry, and logging on the
	// reference board.
	costBaseLoopNS = 180_000
	// costFusionNS is the EKF predict+correct over the 19-channel PS
	// vector, paid every tick defended or not.
	costFusionNS = 60_000
	// costControlNS is the cascaded PID (or LQR) control-law evaluation.
	costControlNS = 12_000

	// costShadowNS is the shadow-reference propagation (one dynamics-model
	// step plus the strapdown dead-reckon and anchor blend).
	costShadowNS = 6_000
	// costDetectNS is the residual + CUSUM detector update over the
	// monitored channels.
	costDetectNS = 4_000
	// costObserveNS is the diagnosis observation push (error-pair window
	// maintenance).
	costObserveNS = 2_500
	// costCheckpointNS is the historic-states record append.
	costCheckpointNS = 1_500

	// costDiagnoseNS is one diagnosis inference pass (factor-graph MLE for
	// DeLorean, residual attribution for the RA baselines) — episodic,
	// only while an alert is being triaged.
	costDiagnoseNS = 350_000
	// costReconstructPerRecordNS is the per-record cost of replaying the
	// checkpoint buffer through the dynamics model during state
	// reconstruction.
	costReconstructPerRecordNS = 2_000
	// costRecoveryMonitorNS is the per-tick re-validation and
	// attack-subsidence monitoring while recovery is engaged.
	costRecoveryMonitorNS = 2_000
)

// chargeTick accrues the every-tick costs: the undefended loop floor and
// the always-on defense front end (shadow, detector, diagnosis
// observation, checkpointing).
func (f *Framework) chargeTick() {
	f.stages.BaseLoop += costBaseLoopNS
	f.stages.Fusion += costFusionNS
	f.stages.Control += costControlNS
	f.stages.Shadow += costShadowNS
	f.stages.Detect += costDetectNS
	f.stages.Observe += costObserveNS
	f.stages.Checkpoint += costCheckpointNS
}

// chargeDiagnosis accrues one diagnosis inference pass.
func (f *Framework) chargeDiagnosis() {
	f.stages.Diagnose += costDiagnoseNS
}

// chargeReconstruction accrues a checkpoint replay over the recorded
// window (WindowSec at the control rate). The charge is a fixed function
// of the window — not of the replay's actual record count — so the
// modeled overhead stays independent of when within the window the alert
// fired; telemetry reports the actual counts separately.
func (f *Framework) chargeReconstruction() {
	records := int64(f.cfg.WindowSec / f.cfg.DT)
	if records < 1 {
		records = 1
	}
	f.stages.Reconstruct += records * costReconstructPerRecordNS
}

// chargeRecoveryTick accrues the recovery-mode monitoring overhead.
func (f *Framework) chargeRecoveryTick() {
	f.stages.RecoveryMonitor += costRecoveryMonitorNS
}

// Overhead returns the modeled defense-module cost, the modeled total
// control-loop cost (base + defense), and the tick count, for the Table 3
// CPU-overhead row. Values are deterministic for a given mission seed.
func (f *Framework) Overhead() (defenseNS, totalNS int64, ticks int) {
	return f.stages.DefenseNS(), f.stages.TotalNS(), f.ticks
}

// Stages returns the per-stage breakdown of the modeled cost.
func (f *Framework) Stages() telemetry.StageNS { return f.stages }
