package core

import (
	"strings"
	"testing"

	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// allModes enumerates every FSM state for the transition tables.
var allModes = []Mode{
	ModeNominal, ModeSuspicious, ModeDiagnosing,
	ModeRecovering, ModeRevalidating, ModeExiting,
}

// legalEdges is the FSM diagram, stated as data: exactly these (from, to)
// pairs are legal; every other pair must be rejected.
var legalEdges = map[Mode][]Mode{
	ModeNominal:      {ModeSuspicious},
	ModeSuspicious:   {ModeNominal, ModeDiagnosing},
	ModeDiagnosing:   {ModeRecovering},
	ModeRecovering:   {ModeRevalidating, ModeExiting},
	ModeRevalidating: {ModeExiting},
	ModeExiting:      {ModeNominal},
}

func edgeLegal(from, to Mode) bool {
	for _, m := range legalEdges[from] {
		if m == to {
			return true
		}
	}
	return false
}

// TestLegalTransitionTable checks LegalTransition over the full (from, to)
// cross product against the diagram.
func TestLegalTransitionTable(t *testing.T) {
	for _, from := range allModes {
		for _, to := range allModes {
			want := edgeLegal(from, to)
			if got := LegalTransition(from, to); got != want {
				t.Errorf("LegalTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
	if LegalTransition(Mode(0), ModeNominal) || LegalTransition(ModeNominal, Mode(99)) {
		t.Error("out-of-range modes must have no edges")
	}
}

// TestTransitionPanicsOnIllegalEdge asserts every non-edge panics, and
// every edge does not.
func TestTransitionPanicsOnIllegalEdge(t *testing.T) {
	tryTransition := func(from, to Mode) (panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, from.String()+"->"+to.String()) {
					t.Errorf("panic message %v should name the %s->%s edge", r, from, to)
				}
			}
		}()
		fsm := NewFSM(nil)
		fsm.mode = from
		fsm.Transition(1, to, telemetry.StageDetect)
		return false
	}
	for _, from := range allModes {
		for _, to := range allModes {
			panicked := tryTransition(from, to)
			if legal := edgeLegal(from, to); panicked == legal {
				t.Errorf("Transition(%s, %s): panicked=%v, want %v", from, to, panicked, !legal)
			}
		}
	}
}

func TestModeSides(t *testing.T) {
	tests := []struct {
		mode     Mode
		normal   bool
		recovery bool
	}{
		{mode: ModeNominal, normal: true},
		{mode: ModeSuspicious, normal: true},
		{mode: ModeDiagnosing},
		{mode: ModeRecovering, recovery: true},
		{mode: ModeRevalidating, recovery: true},
		{mode: ModeExiting},
	}
	for _, tt := range tests {
		if got := tt.mode.Normal(); got != tt.normal {
			t.Errorf("%s.Normal() = %v, want %v", tt.mode, got, tt.normal)
		}
		if got := tt.mode.Recovery(); got != tt.recovery {
			t.Errorf("%s.Recovery() = %v, want %v", tt.mode, got, tt.recovery)
		}
	}
}

// TestTransitionTelemetry walks a full DeLorean defense episode with
// transition tracing on and asserts the FSM's mode path is observable as
// exactly one stage-attributed mode_transition event per transition.
func TestTransitionTelemetry(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	tel := telemetry.NewRecorder()
	tel.EnableTransitions()
	fw, err := New(Config{
		Profile:   prof,
		DT:        0.01,
		Delta:     DefaultDelta(prof),
		WindowSec: 5,
		Telemetry: tel,
	}, StrategyDeLorean)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fw.Init(vehicle.State{Z: 10})

	target := mission.Waypoint{Z: 10}
	clean := hoverMeas(10)
	spoofed := clean
	spoofed[sensors.SX] += 30
	spoofed[sensors.SVX] += 1
	meas := func(i int) sensors.PhysState {
		if i >= 600 && i < 1100 {
			return spoofed
		}
		return clean
	}
	for i := 0; i < 2000; i++ {
		fw.Tick(float64(i)*0.01, meas(i), target)
	}
	if fw.Recovering() {
		t.Fatal("episode did not complete: still recovering")
	}

	var transitions []string
	for _, ev := range tel.Mission().Events {
		if ev.Kind == telemetry.KindModeTransition {
			transitions = append(transitions, ev.Detail)
		}
	}
	// The first alert latch clears once before diagnosis implicates (the
	// step-bias CUSUM unlatches for a tick while the triage masks it), so
	// the path bounces Suspicious→Nominal→Suspicious before engaging — an
	// FSM-visible detail the old two-mode flag could not express.
	want := []string{
		"nominal->suspicious stage=detect",
		"suspicious->nominal stage=detect",
		"nominal->suspicious stage=detect",
		"suspicious->diagnosing stage=diagnose",
		"diagnosing->recovering stage=reconstruct",
		"recovering->revalidating stage=recovery_monitor",
		"revalidating->exiting stage=recovery_monitor",
		"exiting->nominal stage=control",
	}
	if len(transitions) != len(want) {
		t.Fatalf("got %d transition events %v, want %d %v",
			len(transitions), transitions, len(want), want)
	}
	for i, detail := range want {
		if transitions[i] != detail {
			t.Errorf("transition %d = %q, want %q", i, transitions[i], detail)
		}
	}

	// Each event must carry a stage attribution.
	for _, detail := range transitions {
		if !strings.Contains(detail, " stage=") {
			t.Errorf("transition %q lacks stage attribution", detail)
		}
	}
}

// TestTransitionsOffByDefault pins the byte-identity contract: without
// EnableTransitions the same episode emits no mode_transition events, so
// default run reports are unchanged by the pipeline refactor.
func TestTransitionsOffByDefault(t *testing.T) {
	prof := vehicle.MustProfile(vehicle.ArduCopter)
	tel := telemetry.NewRecorder()
	fw, err := New(Config{
		Profile:   prof,
		DT:        0.01,
		Delta:     DefaultDelta(prof),
		WindowSec: 5,
		Telemetry: tel,
	}, StrategyDeLorean)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fw.Init(vehicle.State{Z: 10})
	target := mission.Waypoint{Z: 10}
	clean := hoverMeas(10)
	spoofed := clean
	spoofed[sensors.SX] += 30
	for i := 0; i < 900; i++ {
		m := clean
		if i >= 600 {
			m = spoofed
		}
		fw.Tick(float64(i)*0.01, m, target)
	}
	for _, ev := range tel.Mission().Events {
		if ev.Kind == telemetry.KindModeTransition {
			t.Fatalf("mode_transition recorded without EnableTransitions: %+v", ev)
		}
	}
}
