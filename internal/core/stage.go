// The staged defense pipeline's pluggable surface.
//
// The paper's thesis is that detection, diagnosis, checkpointing,
// reconstruction, and recovery are distinct concerns composing into one
// onboard framework. This file states that decomposition as code: six
// small stage interfaces, one per concern, plus the Composition that a
// strategy registry entry assembles from them. The pipeline's tick loop
// (pipeline.go) knows only these interfaces; per-strategy behavior lives
// entirely in the stage implementations (stage_*.go), so adding a
// strategy — SpecGuard-style recovery, a Bayesian diagnoser — is a new
// registry entry and stage set, not another branch through the tick path.
package core

import (
	"repro/internal/checkpoint"
	"repro/internal/detect"
	"repro/internal/diagnosis"
	"repro/internal/mission"
	"repro/internal/sensors"
	"repro/internal/vehicle"
)

// Detector is the attack-detection stage: it watches (reference,
// observed) state pairs and latches an alert. The residual+CUSUM
// detector of internal/detect is the default implementation; the FP
// experiments plug a forced-alert detector in.
type Detector = detect.Detector

// Diagnoser is the triage stage: it accumulates (reference, observed)
// observations and, on an alert, turns detector suspicion into an
// isolation verdict. Implementations wrap a diagnosis technique
// (internal/diagnosis) with the strategy's isolation policy.
type Diagnoser interface {
	// Observe feeds one (reference, observed) sample into the technique's
	// observation window.
	Observe(ref, meas sensors.PhysState)
	// Reference selects which reference the technique diagnoses against
	// (the attack-free shadow or the fused estimate).
	Reference() diagnosis.Reference
	// Triage runs one inference pass. diagnosed is the technique's raw
	// verdict (empty = masked false positive); isolate is the sensor set
	// the strategy masks for it.
	Triage() (diagnosed, isolate sensors.TypeSet)
	// Reset clears accumulated observations.
	Reset()
}

// Checkpointer is the historic-states stage: it records trusted history
// while no alert is active and serves the latest trusted anchor for
// reconstruction. *checkpoint.Recorder is the canonical implementation
// (asserted below); the pipeline holds it concretely because the replay
// reconstructors iterate its ring buffer directly.
type Checkpointer interface {
	// Record appends one full record (measurement, estimate, input).
	Record(rec checkpoint.Record)
	// RecordInput retains the control input even while recording is
	// stopped, letting reconstruction bridge the detection gap.
	RecordInput(t float64, u vehicle.Input)
	// OnAlert stops trusted recording (Fig. 6b).
	OnAlert()
	// Resume restarts trusted recording after a masked alert or a
	// recovery exit.
	Resume(t float64)
	// LatestTrusted returns the most recent pre-alert record.
	LatestTrusted() (checkpoint.Record, bool)
	// MemoryBytes reports the buffer footprint (Table 3).
	MemoryBytes() int
}

var _ Checkpointer = (*checkpoint.Recorder)(nil)

// Reconstructor is the state-reconstruction stage: at recovery engagement
// (and on widened verdicts during the settling window) it seeds the
// recovery-mode estimate — from checkpointed history for the
// checkpoint-based strategies, from the live estimate for the tolerating
// ones.
type Reconstructor interface {
	// Seed installs the recovery starting estimate. anchorFresh reports
	// whether the latest trusted checkpoint is recent enough for a replay
	// to beat the live estimate.
	Seed(t float64, meas sensors.PhysState, anchorFresh bool)
}

// RecoveryController is the recovery-mode control stage: it produces the
// control action while recovery owns the loop.
type RecoveryController interface {
	// Update flies one recovery-mode control period.
	Update(t float64, target mission.Waypoint) vehicle.Input
	// Describe names the controller that will fly an episode with the
	// given isolated set, for the recovery-engaged telemetry event.
	Describe(isolated sensors.TypeSet) string
}

// ExitPolicy is the subsidence-monitoring stage: it decides when the
// attack has demonstrably ended and control can be handed back.
type ExitPolicy interface {
	// ShouldExit reports whether to leave recovery this tick.
	ShouldExit(t float64, meas sensors.PhysState) bool
}

// Composition is a defense strategy stated declaratively: the stage
// implementations the pipeline wires together, plus the episode-shape
// flags the stages share. A strategy registry entry (strategy.go)
// produces exactly one of these at New; the tick path dispatches through
// it and never branches on the Strategy value again.
type Composition struct {
	// Diagnose is the triage stage. Nil for the undefended baseline:
	// alerts are observed (detection latency is a detector property) but
	// never acted on.
	Diagnose Diagnoser
	// Reconstruct seeds the recovery estimate at engagement.
	Reconstruct Reconstructor
	// Recover flies the recovery episode.
	Recover RecoveryController
	// Exit decides when the episode ends.
	Exit ExitPolicy

	// Revalidate enables the per-sensor re-validation loop and with it
	// the ModeRevalidating FSM state (targeted recovery only).
	Revalidate bool
	// UnionWindow enables the post-engagement settling window in which
	// diagnosis keeps running and may widen the isolated set (slow
	// sensors reveal their bias only at their next sample).
	UnionWindow bool
	// VirtualBelieved serves the virtual-sensor model state as the
	// believed state while recovery is engaged (SSR flies — and reports —
	// its approximate-model state, not the fused estimate).
	VirtualBelieved bool
}
