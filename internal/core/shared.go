package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/diagnosis"
	"repro/internal/ekf"
	"repro/internal/mat"
	"repro/internal/recovery"
	"repro/internal/vehicle"
)

// Shared bundles the read-only per-mission setup that is a pure function
// of (vehicle profile, control period): the recovery LQR gain (a DARE
// solve), the EKF covariance/gain schedule, and the δ-keyed diagnosis
// graph specs. The fleet executor builds one Shared per (profile, dt)
// key and attaches it to every mission in a batch via Config.Shared;
// each pipeline then references the caches instead of recomputing them.
// All contents are immutable after construction (the EKF schedule
// extends itself lazily behind its own synchronization), so one Shared
// is safe for any number of concurrent missions.
type Shared struct {
	profile vehicle.ProfileName
	dtBits  uint64

	lqrQuad *mat.Mat // hover LQR gain; nil for rovers
	ekf     *ekf.Schedule

	mu    sync.Mutex
	specs map[diagnosis.Delta]*diagnosis.GraphSpec
}

// NewShared builds the shared caches for one (profile, dt) pair.
func NewShared(p vehicle.Profile, dt float64) (*Shared, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("core shared: non-positive control period %v", dt)
	}
	k, err := recovery.QuadGain(p, dt)
	if err != nil {
		return nil, fmt.Errorf("core shared: %w", err)
	}
	return &Shared{
		profile: p.Name,
		dtBits:  math.Float64bits(dt),
		lqrQuad: k,
		ekf:     ekf.NewSchedule(p, dt),
		specs:   make(map[diagnosis.Delta]*diagnosis.GraphSpec),
	}, nil
}

// Matches reports whether the caches were built for exactly this
// (profile, dt) pair. The dt comparison is bitwise: any other value
// walks a different covariance trajectory.
func (s *Shared) Matches(name vehicle.ProfileName, dt float64) bool {
	return s != nil && s.profile == name && s.dtBits == math.Float64bits(dt)
}

// ProfileName identifies the profile the caches were built for.
func (s *Shared) ProfileName() vehicle.ProfileName { return s.profile }

// graphSpec returns the compiled diagnosis graph spec for δ, compiling
// and caching it on first use. Per-key lookup only — the map is never
// iterated, so it cannot leak ordering.
func (s *Shared) graphSpec(delta diagnosis.Delta) *diagnosis.GraphSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, ok := s.specs[delta]
	if !ok {
		sp = diagnosis.CompileSpec(delta)
		s.specs[delta] = sp
	}
	return sp
}
