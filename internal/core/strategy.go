package core

import (
	"fmt"
	"strings"
)

// Strategy selects the defense variant under evaluation.
type Strategy int

// The defense strategies of the evaluation (§5.1).
const (
	// StrategyNone flies undefended on the fused estimate.
	StrategyNone Strategy = iota + 1
	// StrategyDeLorean is the paper's contribution: diagnosis-guided
	// targeted recovery.
	StrategyDeLorean
	// StrategyLQRO is Zhang et al.'s worst-case checkpoint recovery: on
	// detection all sensors are isolated regardless of how many are
	// attacked.
	StrategyLQRO
	// StrategySSR is Choi et al.'s software-sensor recovery: on detection
	// the controller flies on virtual (approximate-model) sensor values,
	// anchored at the possibly-corrupted current estimate.
	StrategySSR
	// StrategyPIDPiper is Dash et al.'s feed-forward-controller recovery:
	// it blends a model feed-forward estimate with the (still attacked)
	// fused feedback rather than isolating sensors.
	StrategyPIDPiper
)

// String names the strategy as in the paper's tables. The switch is
// deliberately default-free: it is covered by the exhaustive lint
// analyzer, so adding a Strategy constant without naming it here fails
// `delint` instead of silently stringifying through a fallback.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "None"
	case StrategyDeLorean:
		return "DeLorean"
	case StrategyLQRO:
		return "LQR-O"
	case StrategySSR:
		return "SSR"
	case StrategyPIDPiper:
		return "PID-Piper"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// strategyDef is one registry entry: the strategy, its accepted spellings,
// and the stage composition it resolves to at New. The registry mirrors
// the experiment registry (internal/experiments): a fixed declarative
// table that every lookup and construction path goes through, so a new
// strategy is added in exactly one place.
type strategyDef struct {
	strategy Strategy
	// aliases are the lower-cased accepted spellings; the first is the
	// canonical lower-cased String() form.
	aliases []string
	// compose wires the strategy's stage composition onto a pipeline
	// whose shared plant (filter, recorder, controllers) is already
	// built.
	compose func(p *Pipeline) Composition
}

// strategyDefs returns the registry in Strategy declaration order.
func strategyDefs() []strategyDef {
	return []strategyDef{
		{
			strategy: StrategyNone,
			aliases:  []string{"none"},
			compose:  composeNone,
		},
		{
			strategy: StrategyDeLorean,
			aliases:  []string{"delorean"},
			compose:  composeDeLorean,
		},
		{
			strategy: StrategyLQRO,
			aliases:  []string{"lqr-o", "lqro"},
			compose:  composeLQRO,
		},
		{
			strategy: StrategySSR,
			aliases:  []string{"ssr"},
			compose:  composeSSR,
		},
		{
			strategy: StrategyPIDPiper,
			aliases:  []string{"pid-piper", "pidpiper"},
			compose:  composePIDPiper,
		},
	}
}

// AllStrategies returns every registered strategy in declaration order.
func AllStrategies() []Strategy {
	defs := strategyDefs()
	out := make([]Strategy, len(defs))
	for i, d := range defs {
		out[i] = d.strategy
	}
	return out
}

// StrategyByName resolves a strategy from its table name (as printed by
// String) or a registered alias, case-insensitively. It reports false for
// unknown names.
func StrategyByName(name string) (Strategy, bool) {
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, d := range strategyDefs() {
		for _, alias := range d.aliases {
			if alias == lower {
				return d.strategy, true
			}
		}
	}
	return 0, false
}

// lookupDef returns the registry entry for s.
func lookupDef(s Strategy) (strategyDef, bool) {
	for _, d := range strategyDefs() {
		if d.strategy == s {
			return d, true
		}
	}
	return strategyDef{}, false
}
